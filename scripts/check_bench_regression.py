#!/usr/bin/env python3
"""CI perf-regression gate for the event-kernel benchmark.

Compares a fresh ``bench_kernel_hotpath.py --quick --out`` artifact
against the events-per-wall-second reference committed in
``BENCH_kernel.json`` (the most recent PR's ``after`` block per
topology) and exits non-zero when any topology regressed by more than
the tolerance.

Noisy-container override knobs (documented in EXPERIMENTS.md):

* ``--tolerance 0.40`` / ``BENCH_GATE_TOLERANCE=0.40`` — widen the
  allowed slowdown (default 0.25, i.e. fail under 75% of reference).
  The environment variable loses to an explicit flag.
* ``BENCH_GATE_SKIP=1`` — skip the gate entirely (exit 0, loudly).
  For containers whose absolute throughput is incomparable to the
  reference machine; correctness checks still run.

Usage::

    python scripts/check_bench_regression.py \\
        --fresh bench-kernel.json --reference BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional

DEFAULT_TOLERANCE = 0.25

def reference_events_per_s(reference: Dict,
                           quick: bool) -> Dict[str, float]:
    """topology -> committed events/s from the newest 'after' block.

    Blocks are searched newest-first — the PR 8 observability block,
    the PR 7 city-scale block, the PR 5 multi-AP block, the PR 4
    data-plane block, then the PR 2 top-level block — so
    ``BENCH_kernel.json`` keeps its full before/after history while
    the gate always tracks the latest commitment."""
    mode = "quick" if quick else "full"
    candidates = [
        reference.get("pr8_observability", {}).get(mode),
        reference.get("pr7_city_scale", {}).get(mode),
        reference.get("pr5_multi_ap", {}).get(mode),
        reference.get("pr4_data_plane", {}).get(mode),
        reference.get(mode),
    ]
    for block in candidates:
        if not block:
            continue
        out = {}
        for topology, entry in block.items():
            after = entry.get("after")
            if after and "events_per_s" in after:
                out[topology] = after["events_per_s"]
        if out:
            return out
    return {}


def check(fresh: Dict, reference: Dict,
          tolerance: float) -> Optional[str]:
    """None if the gate passes, else a failure description."""
    expected = reference_events_per_s(reference,
                                      fresh.get("quick", True))
    if not expected:
        return "no usable 'after' events_per_s reference found"
    failures = []
    for topology, ref_rate in sorted(expected.items()):
        measured = fresh.get("topologies", {}).get(topology)
        if measured is None:
            failures.append(f"{topology}: missing from fresh run")
            continue
        rate = measured["events_per_s"]
        floor = ref_rate * (1.0 - tolerance)
        verdict = "ok" if rate >= floor else "REGRESSED"
        print(f"  {topology:<16} {rate:>9,}/s vs reference "
              f"{ref_rate:>9,}/s (floor {floor:>11,.0f})  {verdict}")
        if rate < floor:
            failures.append(
                f"{topology}: {rate:,}/s is below "
                f"{(1.0 - tolerance):.0%} of the committed "
                f"{ref_rate:,}/s")
    if failures:
        return "; ".join(failures)
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail CI when kernel events/s regressed vs the "
                    "committed reference")
    parser.add_argument("--fresh", required=True,
                        help="bench_kernel_hotpath.py --out artifact")
    parser.add_argument("--reference", default="BENCH_kernel.json")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed fractional slowdown "
                             f"(default {DEFAULT_TOLERANCE}; env "
                             "BENCH_GATE_TOLERANCE)")
    args = parser.parse_args(argv)

    if os.environ.get("BENCH_GATE_SKIP") == "1":
        print("BENCH_GATE_SKIP=1: perf-regression gate skipped")
        return 0
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(os.environ.get("BENCH_GATE_TOLERANCE",
                                         DEFAULT_TOLERANCE))
    if not 0.0 <= tolerance < 1.0:
        print(f"error: tolerance {tolerance} outside [0, 1)",
              file=sys.stderr)
        return 2

    with open(args.fresh) as handle:
        fresh = json.load(handle)
    with open(args.reference) as handle:
        reference = json.load(handle)
    print(f"perf gate (tolerance {tolerance:.0%}):")
    failure = check(fresh, reference, tolerance)
    if failure:
        print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        print("(override for a known-noisy container with "
              "BENCH_GATE_TOLERANCE=<frac> or BENCH_GATE_SKIP=1)",
              file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
