#!/usr/bin/env python3
"""CI smoke for resumable sweeps: kill a grid mid-run, resume it.

Starts an experiment sweep in a subprocess with a shared cache
directory, waits for the first per-point checkpoints to land, kills
the runner (SIGTERM by default — exercising the graceful-interrupt
path — or SIGKILL with ``--kill-9``), then resumes with the same
cache directory and asserts:

* the killed run exited nonzero;
* the resume re-used cached cells (``cache_hits > 0``) and only
  re-executed the remainder;
* the resumed rows are bit-identical to an uninterrupted run's rows
  (``--baseline`` artifact, e.g. the one the plain smoke step wrote).

Usage::

    PYTHONPATH=src python scripts/ci_interrupt_resume.py \\
        --experiment multi_ap --jobs 2 --baseline multi-ap.json
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path


def wait_for_checkpoints(cache_dir: Path, proc: subprocess.Popen,
                         minimum: int, timeout_s: float) -> int:
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        count = len(list(cache_dir.glob("*.json")))
        if count >= minimum:
            return count
        if proc.poll() is not None:
            raise SystemExit(
                f"sweep finished (rc={proc.returncode}) before "
                f"{minimum} checkpoints appeared — nothing to kill; "
                f"lower --min-checkpoints or slow the grid down")
        time.sleep(0.05)
    raise SystemExit(
        f"no {minimum} checkpoints within {timeout_s}s — the runner "
        f"is not flushing per-point results")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--experiment", default="multi_ap")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--cache-dir", default="ci-resume-cache")
    parser.add_argument("--baseline", default=None,
                        help="uninterrupted-run artifact to compare "
                             "rows against (bit-identical)")
    parser.add_argument("--out", default="resume-sweep.json")
    parser.add_argument("--min-checkpoints", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument("--kill-9", action="store_true",
                        help="SIGKILL instead of graceful SIGTERM")
    args = parser.parse_args()

    cache_dir = Path(args.cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)

    command = [sys.executable, "-m", "repro.experiments.runner",
               args.experiment, "--quick", "--jobs", str(args.jobs),
               "--cache-dir", str(cache_dir)]
    print(f"starting: {' '.join(command)}")
    proc = subprocess.Popen(command)
    count = wait_for_checkpoints(cache_dir, proc,
                                 args.min_checkpoints, args.timeout)
    signum = signal.SIGKILL if args.kill_9 else signal.SIGTERM
    print(f"{count} checkpoints on disk -> sending "
          f"{signal.Signals(signum).name}")
    proc.send_signal(signum)
    rc = proc.wait(timeout=120)
    assert rc != 0, f"killed sweep exited zero (rc={rc})"
    print(f"killed run exited rc={rc}")

    checkpointed = len(list(cache_dir.glob("*.json")))
    assert checkpointed >= args.min_checkpoints
    print(f"{checkpointed} checkpointed cells survive the kill")

    # Resume with the same cache dir; this run must complete.
    resume = subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner",
         args.experiment, "--quick", "--jobs", str(args.jobs),
         "--cache-dir", str(cache_dir), "--out", args.out],
        env=dict(os.environ))
    assert resume.returncode == 0, \
        f"resume failed (rc={resume.returncode})"

    sys.path.insert(0, "src")
    from repro.experiments import runner as experiments_runner
    from repro.experiments.batch import SweepResult

    with open(args.out) as handle:
        artifact = json.load(handle)[args.experiment]
    result = SweepResult.from_json_dict(artifact)
    assert result.failed == 0, f"{result.failed} failed points"
    assert not result.interrupted
    assert result.cache_hits > 0, \
        "resume executed everything from scratch — not resumable"
    assert result.executed + result.cache_hits == len(result.records)
    print(f"resume: {result.cache_hits} cells from cache, "
          f"{result.executed} re-executed")

    module = experiments_runner.EXPERIMENTS[args.experiment]
    resumed_rows = module.rows_from_sweep(result)
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = SweepResult.from_json_dict(
                json.load(handle)[args.experiment])
        baseline_rows = module.rows_from_sweep(baseline)
        assert json.loads(json.dumps(resumed_rows)) == \
            json.loads(json.dumps(baseline_rows)), \
            "resumed rows differ from the uninterrupted run's rows"
        print(f"{len(resumed_rows)} resumed rows bit-identical to "
              f"the uninterrupted baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
