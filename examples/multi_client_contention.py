#!/usr/bin/env python3
"""Contention scenario: several laptops downloading through one AP.

The paper's motivating workload (Fig 10): as more clients share the
medium, stock TCP's ACK packets collide with the AP's data frames, and
HACK's advantage grows by turning bidirectional TCP into unidirectional
traffic.

    python examples/multi_client_contention.py [n_clients ...]
"""

import sys

from repro import HackPolicy, ScenarioConfig, run_scenario
from repro.sim.units import MS, SEC


def run_one(n_clients: int, policy: HackPolicy):
    config = ScenarioConfig(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=n_clients,
        traffic="tcp_download", policy=policy,
        duration_ns=4 * SEC, warmup_ns=2 * SEC, stagger_ns=50 * MS)
    return run_scenario(config)


def main() -> None:
    counts = [int(a) for a in sys.argv[1:]] or [1, 2, 4, 10]
    print(f"{'clients':>8} {'stock TCP':>12} {'TCP/HACK':>12} "
          f"{'gain':>8} {'collisions T/H':>16}")
    for n in counts:
        vanilla = run_one(n, HackPolicy.VANILLA)
        hack = run_one(n, HackPolicy.MORE_DATA)
        v = vanilla.aggregate_goodput_mbps
        h = hack.aggregate_goodput_mbps
        print(f"{n:>8} {v:>10.1f} M {h:>10.1f} M "
              f"{100 * (h / v - 1):>6.1f}% "
              f"{vanilla.medium_frames_collided:>8}/"
              f"{hack.medium_frames_collided}")
        # Per-client fairness check.
        rates = sorted(hack.per_flow_goodput_mbps.values())
        if len(rates) > 1:
            print(f"         per-client HACK goodput: "
                  f"{rates[0]:.1f}..{rates[-1]:.1f} Mbps")


if __name__ == "__main__":
    main()
