#!/usr/bin/env python3
"""Overlapping cells: several APs contending for one channel.

The paper evaluates a single BSS; ``cells=N`` replicates the whole
topology — AP, wired server, clients, traffic — N times on the same
medium.  Co-channel cells defer to and collide with each other through
ordinary DCF carrier sense, so per-cell goodput drops as neighbours
appear; HACK's medium-utilisation savings matter most exactly here,
where airtime is scarcest.

    python examples/multi_ap_cells.py [cell_counts ...]
"""

import sys

from repro import HackPolicy, ScenarioConfig, run_scenario
from repro.sim.units import SEC


def run_one(cells: int, policy: HackPolicy):
    config = ScenarioConfig(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=2,
        cells=cells, traffic="tcp_download", policy=policy,
        duration_ns=4 * SEC, warmup_ns=2 * SEC, stagger_ns=0)
    return run_scenario(config)


def main() -> None:
    counts = [int(a) for a in sys.argv[1:]] or [1, 2, 3]
    print(f"{'cells':>6} {'scheme':>10} {'total':>9} {'per cell':>9} "
          f"{'cell Jain':>10} {'airtime sum':>12} {'collided':>9}")
    for cells in counts:
        for label, policy in (("stock TCP", HackPolicy.VANILLA),
                              ("TCP/HACK", HackPolicy.MORE_DATA)):
            res = run_one(cells, policy)
            total = res.aggregate_goodput_mbps
            shares = sum(b["airtime_share"] for b in res.cell_blocks)
            print(f"{cells:>6} {label:>10} {total:>7.1f} M "
                  f"{total / cells:>7.1f} M "
                  f"{res.cell_fairness_index:>10.3f} "
                  f"{shares:>12.3f} "
                  f"{res.medium_frames_collided:>9}")
            if cells > 1:
                for block in res.cell_blocks:
                    print(f"       {label} {block['label']} "
                          f"({block['ap']}): "
                          f"{block['aggregate_goodput_mbps']:.1f} "
                          f"Mbps, airtime "
                          f"{block['airtime_share']:.1%}")


if __name__ == "__main__":
    main()
