#!/usr/bin/env python3
"""Recreate the SoRa software-radio testbed (Fig 9) in simulation.

Three nodes: an AP and two clients on 802.11a at 54 Mbps, with SoRa's
late-LL-ACK quirk (~37 us extra, ACK timeout extended to match) and
client 1 on a slightly worse channel.  Prints the Fig 9 bars and the
Table 1 retry percentages.

    python examples/sora_testbed.py
"""

from repro.experiments import fig09


def main() -> None:
    rows = fig09.run(quick=True)
    print(fig09.format_rows(rows))
    print()
    one = {r["protocol"]: r["goodput_mbps"] for r in rows
           if r["clients"] == "one client"}
    print(f"TCP/HACK vs stock TCP (one client): "
          f"+{100 * (one['H'] / one['T'] - 1):.1f}% "
          f"(paper: +29%)")


if __name__ == "__main__":
    main()
