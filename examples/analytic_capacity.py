#!/usr/bin/env python3
"""Print the paper's Figure 1 capacity curves (no simulation).

Shows why HACK matters more as PHY rates climb: the fixed medium-
acquisition overhead (110.5 us mean on 802.11n) dwarfs ever-shorter
payload transmissions, and TCP ACK packets pay it for nothing.

    python examples/analytic_capacity.py
"""

from repro.experiments import fig01


def main() -> None:
    print(fig01.format_rows(fig01.run()))
    print()
    print("Reading guide: at 600 Mbps PHY, stock TCP reaches barely")
    print("2/3 of what the channel could carry; removing TCP-ACK")
    print("medium acquisitions recovers ~20% (paper §3.2).")


if __name__ == "__main__":
    main()
