#!/usr/bin/env python3
"""Flow churn: short flows arriving and leaving instead of bulk runs.

The paper's results are all long-lived transfers; this example drives
the same WLAN with a Poisson arrival process of finite, log-normally
sized flows (see ``repro.traffic``) and compares flow completion times
with HACK on and off.

    python examples/flow_churn.py
"""

from repro import HackPolicy, ScenarioConfig, run_scenario
from repro.sim.units import MS, SEC
from repro.traffic import ArrivalSpec, SizeSpec


def main() -> None:
    results = {}
    for label, policy in (("stock TCP/802.11n", HackPolicy.VANILLA),
                          ("TCP/HACK", HackPolicy.MORE_DATA)):
        config = ScenarioConfig(
            phy_mode="11n", data_rate_mbps=150.0, n_clients=2,
            traffic="dynamic", policy=policy,
            arrivals=ArrivalSpec(
                kind="poisson", rate_per_s=40.0,
                size=SizeSpec(kind="lognormal", median_bytes=50_000,
                              sigma=1.0)),
            duration_ns=2 * SEC, warmup_ns=1 * SEC, stagger_ns=0)
        results[label] = run_scenario(config)

    for label, res in results.items():
        fct = res.fct
        dist = fct["fct_ms"]
        print(f"{label}:")
        print(f"  flows              {fct['flows_spawned']:7d} spawned, "
              f"{fct['flows_completed']} completed, "
              f"{fct['flows_censored']} still in flight")
        print(f"  FCT                p50 {dist['p50']:7.1f} ms   "
              f"p95 {dist['p95']:7.1f} ms   p99 {dist['p99']:7.1f} ms")
        for label_bin, stats in fct["fct_by_size_ms"].items():
            print(f"    {label_bin:<12} p50 {stats['p50']:7.1f} ms "
                  f"({stats['flows']} flows)")
        print(f"  offered/carried    {fct['offered_load_mbps']:.1f} / "
              f"{fct['carried_load_mbps']:.1f} Mbps")
        print()

    hack = results["TCP/HACK"].fct["fct_ms"]["p50"]
    stock = results["stock TCP/802.11n"].fct["fct_ms"]["p50"]
    print(f"TCP/HACK p50 FCT: {hack:.1f} ms vs stock {stock:.1f} ms "
          f"({100 * (1 - hack / stock):+.1f}% faster)")


if __name__ == "__main__":
    main()
