#!/usr/bin/env python3
"""Wireless backup (upload): the paper's Time Capsule scenario.

§3.1: "we envisage TCP/HACK as especially useful for wireless backup to
LAN-attached storage, such as a Time Capsule."  Here the client pushes
a finite backup to the server; since the design is symmetric, it is the
**AP** that compresses the server's TCP ACKs into the LL ACKs it sends
for the client's data A-MPDUs.

    python examples/wireless_backup.py [backup_megabytes]
"""

import sys

from repro import HackPolicy, ScenarioConfig, run_scenario
from repro.sim.units import MS, SEC


def main() -> None:
    megabytes = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    for label, policy in (("stock 802.11n", HackPolicy.VANILLA),
                          ("TCP/HACK", HackPolicy.MORE_DATA)):
        res = run_scenario(ScenarioConfig(
            phy_mode="11n", data_rate_mbps=150.0, n_clients=1,
            traffic="tcp_upload", policy=policy,
            file_bytes=megabytes * 1_000_000,
            duration_ns=60 * SEC, warmup_ns=100 * MS, stagger_ns=0))
        completion = res.completion_times_ns[1]
        ap_driver = res.driver_stats["AP"]
        print(f"{label}: {megabytes} MB backup")
        if completion is None:
            print("  did not complete within 60 s of simulated time")
            continue
        print(f"  completed in        {completion / 1e9:6.2f} s "
              f"({res.per_flow_goodput_mbps[1]:.1f} Mbps)")
        print(f"  AP HACK frames      {ap_driver.hack_frames_attached:6d} "
              f"(server ACKs compressed by the AP)")
        print(f"  AP vanilla ACKs     {ap_driver.vanilla_acks_sent:6d}")
        print()


if __name__ == "__main__":
    main()
