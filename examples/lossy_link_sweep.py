#!/usr/bin/env python3
"""Lossy-regime sweep: TCP/HACK at the edge of the rate/SNR envelope.

Reproduces a slice of Fig 11: a single client at decreasing channel
quality, at each SNR picking the best PHY rate (ideal rate adaptation).
Verifies the §3.4 robustness claims along the way: zero decompression
CRC failures and no TCP timeout stalls even when frames are lost.

    python examples/lossy_link_sweep.py
"""

from repro import HackPolicy, LossSpec, ScenarioConfig, run_scenario
from repro.phy.errors import snr_from_distance
from repro.sim.units import MS, SEC

RATES = (15.0, 45.0, 90.0, 150.0)
DISTANCES_M = (2.0, 5.0, 8.0, 12.0, 18.0)


def best_goodput(policy: HackPolicy, snr_db: float):
    best = 0.0
    crc = 0
    timeouts = 0
    for rate in RATES:
        res = run_scenario(ScenarioConfig(
            phy_mode="11n", data_rate_mbps=rate, n_clients=1,
            traffic="tcp_download", policy=policy,
            loss=LossSpec(kind="snr", snr_db=snr_db),
            duration_ns=2 * SEC, warmup_ns=1 * SEC, stagger_ns=0))
        best = max(best, res.aggregate_goodput_mbps)
        crc += res.decomp_counters["crc_failures"]
        timeouts += sum(c["timeouts"]
                        for c in res.sender_counters.values())
    return best, crc, timeouts


def main() -> None:
    print(f"{'dist':>6} {'SNR':>6} {'stock TCP':>10} {'TCP/HACK':>10} "
          f"{'gain':>7} {'CRC fail':>9} {'TCP stalls':>10}")
    for distance in DISTANCES_M:
        snr = snr_from_distance(distance)
        tcp, _, _ = best_goodput(HackPolicy.VANILLA, snr)
        hack, crc, timeouts = best_goodput(HackPolicy.MORE_DATA, snr)
        gain = 100 * (hack / tcp - 1) if tcp > 0 else 0.0
        print(f"{distance:>5.0f}m {snr:>5.1f}dB {tcp:>8.1f} M "
              f"{hack:>8.1f} M {gain:>6.1f}% {crc:>9d} {timeouts:>10d}")


if __name__ == "__main__":
    main()
