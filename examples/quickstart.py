#!/usr/bin/env python3
"""Quickstart: does TCP/HACK help? (one client, 802.11n at 150 Mbps)

Runs the same bulk download twice — stock 802.11n and TCP/HACK with the
MORE DATA bit — and prints goodput plus where the ACK traffic went.

    python examples/quickstart.py
"""

from repro import HackPolicy, ScenarioConfig, run_scenario
from repro.sim.units import MS, SEC


def main() -> None:
    results = {}
    for label, policy in (("stock TCP/802.11n", HackPolicy.VANILLA),
                          ("TCP/HACK", HackPolicy.MORE_DATA)):
        config = ScenarioConfig(
            phy_mode="11n", data_rate_mbps=150.0, n_clients=1,
            traffic="tcp_download", policy=policy,
            duration_ns=3 * SEC, warmup_ns=1 * SEC, stagger_ns=0)
        results[label] = run_scenario(config)

    for label, res in results.items():
        print(f"{label}:")
        print(f"  goodput            {res.aggregate_goodput_mbps:7.1f} Mbps")
        print(f"  collisions         {res.medium_frames_collided:7d}")
        driver = res.driver_stats["C1"]
        print(f"  vanilla TCP ACKs   {driver.vanilla_acks_sent:7d}")
        print(f"  HACK frames        {driver.hack_frames_attached:7d} "
              f"({driver.hack_frame_bytes} bytes on LL ACKs)")
        print(f"  ACKs reconstituted {res.decomp_counters['acks_reconstructed']:7d} "
              f"(CRC failures: {res.decomp_counters['crc_failures']})")
        print()

    vanilla = results["stock TCP/802.11n"].aggregate_goodput_mbps
    hack = results["TCP/HACK"].aggregate_goodput_mbps
    print(f"TCP/HACK improvement: +{100 * (hack / vanilla - 1):.1f}% "
          f"(paper reports ~15% for one client at 150 Mbps)")


if __name__ == "__main__":
    main()
