"""Adversary determinism oracles.

The load-bearing guarantee of the whole scenario family: an *inert*
adversary plan (``kind="none"`` or ``intensity == 0``) must install
nothing and reproduce the cooperative run bit-identically — only the
zeroed ``metrics_dict()["adversary"]`` block may differ.  Anything
less and every attacked sweep row would be incomparable with the
cooperative goldens.
"""

import dataclasses

import pytest

from repro.adversary import AdversaryConfig
from repro.core.policies import HackPolicy
from repro.sim.units import MS
from repro.workloads.scenarios import ScenarioConfig, run_scenario


def base_config(**overrides):
    defaults = dict(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=2,
        traffic="tcp_download", policy=HackPolicy.MORE_DATA,
        duration_ns=300 * MS, warmup_ns=100 * MS, stagger_ns=0,
        seed=11)
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def stripped(metrics):
    out = dict(metrics)
    out.pop("adversary", None)
    return out


class TestZeroIntensityOracle:
    @pytest.mark.parametrize("kind", ["none", "greedy", "jammer",
                                      "mutator"])
    def test_inert_plan_bit_identical(self, kind):
        cooperative = run_scenario(base_config())
        attacked = run_scenario(base_config(
            adversary=AdversaryConfig(kind=kind, intensity=0.0)))
        assert stripped(attacked.metrics_dict()) \
            == stripped(cooperative.metrics_dict())

    def test_inert_plan_reports_zeroed_block(self):
        result = run_scenario(base_config(
            adversary=AdversaryConfig(kind="jammer", intensity=0.0)))
        block = result.metrics_dict()["adversary"]
        assert block["kind"] == "jammer"
        assert block["intensity"] == 0.0
        assert all(value == 0 for key, value in block.items()
                   if key not in ("kind", "intensity"))

    def test_no_adversary_means_no_block(self):
        result = run_scenario(base_config())
        metrics = result.metrics_dict()
        assert "adversary" not in metrics
        assert "rohc" in metrics  # robustness counters always present

    def test_cooperative_rohc_counters_all_zero(self):
        """The paper's Fig 11 claim, restated for the reproduction:
        no cooperative run ever exercises the containment paths."""
        result = run_scenario(base_config())
        assert all(value == 0
                   for value in result.metrics_dict()["rohc"].values())


class TestSeedReplay:
    def test_attacked_run_is_deterministic(self):
        cfg = base_config(adversary=AdversaryConfig(
            kind="mutator", intensity=0.7, mutate_mode="storm"))
        first = run_scenario(cfg).metrics_dict()
        second = run_scenario(cfg).metrics_dict()
        assert first == second

    def test_attack_randomness_isolated_from_workload(self):
        """Different attack intensities draw from dedicated adversary
        RNG streams — the workload's own arrival/backoff draws differ
        only through the attack's physical effects, which keeps
        intensity grids comparable point-to-point."""
        mild = run_scenario(base_config(adversary=AdversaryConfig(
            kind="mutator", intensity=0.2))).metrics_dict()
        hot = run_scenario(base_config(adversary=AdversaryConfig(
            kind="mutator", intensity=1.0))).metrics_dict()
        assert hot["adversary"]["frames_mutated"] \
            > mild["adversary"]["frames_mutated"]


class TestConfigValidation:
    def test_valid_plans_pass(self):
        AdversaryConfig().validate()
        AdversaryConfig(kind="greedy", intensity=1.0).validate()

    @pytest.mark.parametrize("kwargs", [
        dict(kind="ddos"),
        dict(intensity=-0.1),
        dict(intensity=1.5),
        dict(jam_mode="barrage"),
        dict(mutate_mode="scramble"),
        dict(greedy_stations=0),
        dict(jam_burst_ns=0),
        dict(jam_cycle_ns=0),
        dict(storm_frames=0),
        dict(start_ns=-1),
    ])
    def test_bad_plans_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdversaryConfig(**kwargs).validate()

    def test_scenario_validation_covers_adversary(self):
        cfg = base_config(adversary=AdversaryConfig(kind="bogus"))
        with pytest.raises(ValueError):
            run_scenario(cfg)

    def test_sweep_signature_includes_plan(self):
        """Attacked points must cache separately per plan."""
        plain = dataclasses.asdict(base_config())
        attacked = dataclasses.asdict(base_config(
            adversary=AdversaryConfig(kind="jammer", intensity=0.5)))
        assert plain != attacked
        assert attacked["adversary"]["kind"] == "jammer"
