"""Behavioural tests for the three attack families.

Each attack must (a) visibly perturb the system in the direction its
threat model predicts, and (b) stay fully contained: every injected
fault lands in a typed counter, never an escaped exception.
"""

import dataclasses

from repro.adversary import AdversaryConfig
from repro.core.policies import HackPolicy
from repro.sim.units import MS
from repro.workloads.scenarios import ScenarioConfig, run_scenario


def config(**overrides):
    defaults = dict(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=3,
        traffic="tcp_download", policy=HackPolicy.MORE_DATA,
        duration_ns=400 * MS, warmup_ns=100 * MS, stagger_ns=0,
        seed=3)
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestGreedyStation:
    def test_cheater_steals_uplink_goodput(self):
        coop = run_scenario(config(traffic="tcp_upload", n_clients=4))
        greedy = run_scenario(config(
            traffic="tcp_upload", n_clients=4,
            adversary=AdversaryConfig(kind="greedy", intensity=1.0)))
        adv = greedy.metrics_dict()["adversary"]
        assert adv["greedy_stations"] == 1
        assert adv["cheated_draws"] > 0
        # The cheating station's flow gains at honest expense.
        cheater_flow = min(greedy.per_flow_goodput_mbps)
        assert greedy.per_flow_goodput_mbps[cheater_flow] \
            > coop.per_flow_goodput_mbps[cheater_flow]
        assert greedy.fairness_index < coop.fairness_index

    def test_intensity_scales_cheating(self):
        mild = run_scenario(config(
            traffic="tcp_upload",
            adversary=AdversaryConfig(kind="greedy", intensity=0.3)))
        # cheated_draws counts draws the shrunken CW actually changed;
        # a mild shrink changes fewer draws than the full cheat.
        hot = run_scenario(config(
            traffic="tcp_upload",
            adversary=AdversaryConfig(kind="greedy", intensity=1.0)))
        assert hot.metrics_dict()["adversary"]["cheated_draws"] \
            >= mild.metrics_dict()["adversary"]["cheated_draws"]


class TestJammer:
    def test_periodic_jam_degrades_goodput(self):
        coop = run_scenario(config())
        jammed = run_scenario(config(adversary=AdversaryConfig(
            kind="jammer", intensity=0.5)))
        adv = jammed.metrics_dict()["adversary"]
        assert adv["jam_bursts"] > 0
        assert adv["jam_airtime_ns"] > 0
        assert jammed.aggregate_goodput_mbps \
            < 0.8 * coop.aggregate_goodput_mbps

    def test_degradation_graded_in_intensity(self):
        goodputs = [run_scenario(config(adversary=AdversaryConfig(
            kind="jammer", intensity=i))).aggregate_goodput_mbps
            for i in (0.25, 0.75)]
        assert goodputs[0] > goodputs[1]

    def test_reactive_jam_forces_collisions(self):
        coop = run_scenario(config())
        jammed = run_scenario(config(adversary=AdversaryConfig(
            kind="jammer", intensity=0.5, jam_mode="reactive")))
        assert jammed.metrics_dict()["adversary"]["jam_bursts"] > 0
        assert jammed.medium_frames_collided \
            > coop.medium_frames_collided
        assert jammed.aggregate_goodput_mbps \
            < coop.aggregate_goodput_mbps


class TestMutator:
    def test_corruption_contained_as_typed_counters(self):
        result = run_scenario(config(adversary=AdversaryConfig(
            kind="mutator", intensity=0.8, mutate_mode="storm")))
        metrics = result.metrics_dict()
        adv, rohc = metrics["adversary"], metrics["rohc"]
        assert adv["frames_mutated"] > 0
        # Containment: faults land in counters, nothing escapes.
        assert adv["tamper_errors"] == 0
        assert rohc["internal_errors"] == 0
        assert metrics["decompressor"]["crc_failures"] > 0
        # Storms defeat single-retry retention: desyncs are declared
        # and then recovered (absolute rebase or vanilla ACK).
        assert rohc["desync_events"] > 0
        assert rohc["recoveries"] > 0
        assert rohc["recovery_ns_total"] >= 0

    def test_tcp_survives_sustained_corruption(self):
        coop = run_scenario(config())
        stormed = run_scenario(config(adversary=AdversaryConfig(
            kind="mutator", intensity=1.0, mutate_mode="storm")))
        # HACK's added attack surface may cost goodput but must not
        # wedge the connection: the run retains most of its goodput.
        assert stormed.aggregate_goodput_mbps \
            > 0.5 * coop.aggregate_goodput_mbps

    def test_cid_forgery_counted(self):
        result = run_scenario(config(
            n_clients=4,
            adversary=AdversaryConfig(kind="mutator", intensity=0.8,
                                      mutate_mode="cid")))
        adv = result.metrics_dict()["adversary"]
        assert adv["frames_mutated"] > 0
        # Explicit-CID entries may be rare in a steady stream; the
        # forger falls back to bit flips when none are present.
        assert adv["cid_forges"] + adv["bit_flips"] \
            == adv["frames_mutated"]

    def test_vanilla_policy_immune(self):
        result = run_scenario(config(
            policy=HackPolicy.VANILLA,
            adversary=AdversaryConfig(kind="mutator", intensity=1.0)))
        adv = result.metrics_dict()["adversary"]
        assert adv["hack_frames_seen"] == 0
        assert adv["frames_mutated"] == 0


class TestShardedAttacks:
    def test_sharded_jammer_merges_identically(self):
        """Per-channel adversary actors + per-channel RNG streams:
        a sharded attacked run must merge to the unsharded metrics."""
        cfg = config(cells=2, channels=2, n_clients=2,
                     adversary=AdversaryConfig(kind="jammer",
                                               intensity=0.5))
        unsharded = run_scenario(cfg)
        sharded = run_scenario(cfg, shard_jobs=1)
        m0, m1 = unsharded.metrics_dict(), sharded.metrics_dict()
        assert m0["adversary"] == m1["adversary"]
        assert m0["rohc"] == m1["rohc"]
        assert m0["per_flow_goodput_mbps"] == \
            m1["per_flow_goodput_mbps"]

    def test_sharded_mutator_merges_identically(self):
        cfg = config(cells=2, channels=2, n_clients=2,
                     adversary=AdversaryConfig(kind="mutator",
                                               intensity=0.8,
                                               mutate_mode="storm"))
        m0 = run_scenario(cfg).metrics_dict()
        m1 = run_scenario(cfg, shard_jobs=1).metrics_dict()
        assert m0["adversary"] == m1["adversary"]
        assert m0["rohc"] == m1["rohc"]


class TestAttackWindow:
    def test_start_ns_delays_the_attack(self):
        early = run_scenario(config(adversary=AdversaryConfig(
            kind="mutator", intensity=1.0)))
        late = run_scenario(config(adversary=AdversaryConfig(
            kind="mutator", intensity=1.0, start_ns=300 * MS)))
        assert late.metrics_dict()["adversary"]["frames_mutated"] \
            < early.metrics_dict()["adversary"]["frames_mutated"]
