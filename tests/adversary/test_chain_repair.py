"""HACK buffered-chain repair under mid-buffer corruption.

``build_frame`` requires consecutive MSNs.  If corruption (or any
future bookkeeping bug) ever leaves a hole in the buffered compressed
ACK chain, the driver must flush the survivors to vanilla and carry
on — never stall the chain or abort the MAC's response transmission.
"""

from collections import deque

from repro.core.driver import HackDriver
from repro.core.policies import HackConfig, HackPolicy
from repro.mac.frames import AmpduFrame, Mpdu
from repro.sim.engine import Simulator
from repro.tcp.segment import FiveTuple, TcpSegment

FT = FiveTuple("10.0.0.1", "10.0.1.1", 5001, 80)


class FakeMac:
    def __init__(self):
        self.upper = None
        self.queues = {}
        self.enqueued = []

    def enqueue(self, payload, dst):
        self.queues.setdefault(dst, deque()).append(payload)
        self.enqueued.append((payload, dst))
        return True

    def remove_from_queue(self, dst, predicate):
        queue = self.queues.get(dst, deque())
        kept, removed = deque(), []
        for item in queue:
            (removed if predicate(item) else kept).append(item)
        self.queues[dst] = kept
        return removed


def tcp_ack(ack_no, ts=10):
    return TcpSegment(flow_id=1, src="C1", dst="SRV", seq=0,
                      payload_bytes=0, ack=ack_no, rwnd=65535,
                      ts_val=ts, ts_ecr=ts - 1, five_tuple=FT)


def tcp_data(seq):
    return TcpSegment(flow_id=1, src="SRV", dst="C1", seq=seq,
                      payload_bytes=1460, ack=0, rwnd=0,
                      five_tuple=FT.reversed())


def data_ppdu(seqs, more_data=True):
    mpdus = [Mpdu(src="AP", dst="C1", seq=s,
                  payload=tcp_data(s * 1460), more_data=more_data)
             for s in seqs]
    return AmpduFrame(mpdus=mpdus, rate_mbps=150.0), mpdus


def driver_with_buffer(n_entries=3):
    """A MORE DATA driver holding ``n_entries`` compressed ACKs."""
    sim, mac = Simulator(), FakeMac()
    driver = HackDriver(sim, mac,
                        HackConfig.for_policy(HackPolicy.MORE_DATA))
    frame, mpdus = data_ppdu([0, 1])
    driver.on_data_ppdu(frame, "AP", mpdus)
    driver.send_packet(tcp_ack(1460), "AP")  # context init (vanilla)
    for i in range(n_entries):
        driver.send_packet(tcp_ack(2920 + 1460 * i, ts=11 + i), "AP")
    ps = driver.peer("AP")
    assert len(ps.buffer) == n_entries
    return driver, mac, ps


class TestChainRepair:
    def test_consecutive_buffer_builds_fine(self):
        driver, _, _ = driver_with_buffer()
        assert driver.hack_payload_for("AP") is not None
        assert driver.stats.chain_repairs == 0

    def test_mid_buffer_hole_flushes_survivors_to_vanilla(self):
        driver, mac, ps = driver_with_buffer()
        survivors = [ps.buffer[0].msn, ps.buffer[2].msn]
        del ps.buffer[1]  # corruption left a hole in the MSN chain
        sent_before = len(mac.enqueued)
        assert driver.hack_payload_for("AP") is None
        assert driver.stats.chain_repairs == 1
        assert ps.buffer == []  # nothing stalls in the buffer
        # Both survivors were re-sent as vanilla ACKs.
        assert len(mac.enqueued) - sent_before == len(survivors)

    def test_confirmation_repairs_broken_chain(self):
        driver, mac, ps = driver_with_buffer(n_entries=4)
        # First entry confirmed (rode a previous response); corruption
        # left a hole in the middle of the unsent remainder.
        ps.buffer[0].sent_once = True
        del ps.buffer[2]
        frame, mpdus = data_ppdu([2, 3])
        driver.on_data_ppdu(frame, "AP", mpdus)
        # The confirmation strips the sent prefix; what remains is a
        # broken chain the driver repairs eagerly (flush to vanilla)
        # instead of tripping over at the next build_frame.
        assert driver.stats.chain_repairs == 1
        assert ps.buffer == []
        assert driver.hack_payload_for("AP") is None

    def test_repair_keeps_driving_compression(self):
        driver, _, ps = driver_with_buffer()
        del ps.buffer[1]
        assert driver.hack_payload_for("AP") is None  # repair flush
        # The chain restarts cleanly afterwards.
        driver.send_packet(tcp_ack(50_000, ts=40), "AP")
        driver.send_packet(tcp_ack(51_460, ts=41), "AP")
        payload = driver.hack_payload_for("AP")
        assert payload is not None
        assert driver.stats.chain_repairs == 1
