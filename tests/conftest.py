"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.medium import Medium, MediumListener


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(42)


class RecordingListener(MediumListener):
    """Test double that logs every medium event with its timestamp."""

    def __init__(self, sim: Simulator, name: str = "node"):
        self.sim = sim
        self.name = name
        self.events = []

    def on_channel_busy(self, now: int) -> None:
        self.events.append(("busy", now))

    def on_channel_idle(self, now: int) -> None:
        self.events.append(("idle", now))

    def on_frame_received(self, frame, sender) -> None:
        self.events.append(("rx", self.sim.now, frame, sender))

    def on_frame_error(self, frame, sender) -> None:
        self.events.append(("err", self.sim.now, frame, sender))

    def of_kind(self, kind: str):
        return [e for e in self.events if e[0] == kind]


@pytest.fixture
def medium(sim) -> Medium:
    return Medium(sim)


class FakeFrame:
    """Minimal frame object for medium/MAC plumbing tests."""

    def __init__(self, name: str = "f", byte_length: int = 100,
                 dst=None, src=None, is_control: bool = False):
        self.name = name
        self.byte_length = byte_length
        self.dst = dst
        self.src = src
        self.is_control = is_control

    def __repr__(self) -> str:
        return f"<FakeFrame {self.name}>"


class FakePayload:
    """Minimal higher-layer payload (stands in for a TcpSegment)."""

    def __init__(self, byte_length: int = 1500, kind: str = "data"):
        self.byte_length = byte_length
        self.kind = kind
