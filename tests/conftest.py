"""Shared fixtures for the test suite.

Reusable test doubles live in :mod:`tests.helpers`; the re-exports
below keep ``from conftest import ...``-era call sites working.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.medium import Medium

from tests.helpers import FakeFrame, FakePayload, RecordingListener

__all__ = ["FakeFrame", "FakePayload", "RecordingListener"]


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(42)


@pytest.fixture
def medium(sim) -> Medium:
    return Medium(sim)


@pytest.fixture(scope="session")
def sweep_cache_runner(tmp_path_factory):
    """One content-hash-cached SweepRunner for the whole session, so
    the golden-schema and golden-rows suites simulate each quick cell
    exactly once between them."""
    from repro.experiments.batch import SweepRunner

    return SweepRunner(cache_dir=tmp_path_factory.mktemp("sweep-golden"))
