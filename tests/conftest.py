"""Shared fixtures for the test suite.

Reusable test doubles live in :mod:`tests.helpers`; the re-exports
below keep ``from conftest import ...``-era call sites working.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.medium import Medium

from tests.helpers import FakeFrame, FakePayload, RecordingListener

__all__ = ["FakeFrame", "FakePayload", "RecordingListener"]


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(42)


@pytest.fixture
def medium(sim) -> Medium:
    return Medium(sim)
