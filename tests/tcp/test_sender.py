"""NewReno sender: slow start, CA, fast retransmit/recovery, RTO."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.units import MS, SEC
from repro.tcp.segment import TcpSegment
from repro.tcp.sender import TcpSender

MSS = 1460


def make_sender(sim, total=None, **kw):
    sent = []
    sender = TcpSender(sim, 1, "SRV", "C1", output=sent.append,
                       total_bytes=total, **kw)
    return sender, sent


def ack_for(sender, ack, ts_ecr=0, rwnd=1 << 30):
    return TcpSegment(flow_id=1, src="C1", dst="SRV", seq=0,
                      payload_bytes=0, ack=ack, rwnd=rwnd,
                      ts_val=0, ts_ecr=ts_ecr)


class TestSlowStart:
    def test_initial_window(self, sim):
        sender, sent = make_sender(sim, initial_cwnd_segments=2)
        sender.start()
        assert len(sent) == 2
        assert sent[0].seq == 0 and sent[1].seq == MSS

    def test_cwnd_grows_per_ack(self, sim):
        sender, sent = make_sender(sim)
        sender.start()
        sender.on_ack(ack_for(sender, MSS))
        assert sender.cwnd == 3 * MSS
        sender.on_ack(ack_for(sender, 2 * MSS))
        assert sender.cwnd == 4 * MSS

    def test_ack_releases_new_segments(self, sim):
        sender, sent = make_sender(sim)
        sender.start()
        sender.on_ack(ack_for(sender, 2 * MSS))
        # cwnd grew to 3 MSS (byte counting), una = 2 MSS: the highest
        # outstanding segment starts at 4 MSS.
        assert sent[-1].seq == 4 * MSS

    def test_delayed_ack_covering_two_segments(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        sender.on_ack(ack_for(sender, 2 * MSS))
        # Byte counting caps growth at 1 MSS per ACK.
        assert sender.cwnd == 3 * MSS


class TestCongestionAvoidance:
    def test_linear_growth_past_ssthresh(self, sim):
        sender, _ = make_sender(sim, initial_ssthresh_bytes=4 * MSS)
        sender.cwnd = 4 * MSS
        sender.start()
        # One full window of ACKs grows cwnd by ~1 MSS.
        for i in range(1, 5):
            sender.on_ack(ack_for(sender, i * MSS))
        assert sender.cwnd == pytest.approx(5 * MSS, abs=MSS // 2)


class TestFastRetransmit:
    def prime(self, sim, segments=10):
        sender, sent = make_sender(sim, initial_cwnd_segments=10)
        sender.start()
        assert len(sent) == segments
        return sender, sent

    def test_three_dupacks_trigger_retransmit(self, sim):
        sender, sent = self.prime(sim)
        before = len(sent)
        for _ in range(3):
            sender.on_ack(ack_for(sender, 0))
        retx = [s for s in sent[before:] if s.seq == 0]
        assert len(retx) == 1
        assert sender.fast_retransmits == 1
        assert sender.in_recovery

    def test_two_dupacks_do_not(self, sim):
        sender, sent = self.prime(sim)
        before = len(sent)
        for _ in range(2):
            sender.on_ack(ack_for(sender, 0))
        assert all(s.seq != 0 for s in sent[before:])

    def test_ssthresh_halves_flight(self, sim):
        sender, _ = self.prime(sim)
        flight = sender.flight_size
        for _ in range(3):
            sender.on_ack(ack_for(sender, 0))
        assert sender.ssthresh == flight // 2

    def test_full_ack_exits_recovery(self, sim):
        sender, _ = self.prime(sim)
        recover_target = sender.snd_nxt
        for _ in range(3):
            sender.on_ack(ack_for(sender, 0))
        sender.on_ack(ack_for(sender, recover_target))
        assert not sender.in_recovery
        assert sender.cwnd == sender.ssthresh

    def test_partial_ack_retransmits_next_hole(self, sim):
        sender, sent = self.prime(sim)
        for _ in range(3):
            sender.on_ack(ack_for(sender, 0))
        before = len(sent)
        sender.on_ack(ack_for(sender, 2 * MSS))  # partial
        assert sender.in_recovery
        retx = [s for s in sent[before:] if s.seq == 2 * MSS]
        assert len(retx) == 1

    def test_dupacks_inflate_cwnd(self, sim):
        sender, _ = self.prime(sim)
        for _ in range(3):
            sender.on_ack(ack_for(sender, 0))
        cwnd = sender.cwnd
        sender.on_ack(ack_for(sender, 0))
        assert sender.cwnd == cwnd + MSS


class TestRto:
    def test_rto_fires_and_retransmits(self, sim):
        sender, sent = make_sender(sim)
        sender.start()
        sim.run(until=3 * SEC)
        assert sender.timeouts >= 1
        assert any(s.seq == 0 for s in sent[2:])
        assert sender.cwnd == MSS

    def test_rto_backoff_doubles(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        sim.run(until=4 * SEC)
        assert sender.timeouts >= 2
        assert sender._backoff >= 4

    def test_ack_cancels_rto(self, sim):
        sender, _ = make_sender(sim, total=2 * MSS)
        sender.start()
        sender.on_ack(ack_for(sender, 2 * MSS))
        sim.run(until=5 * SEC)
        assert sender.timeouts == 0

    def test_rtt_sampling_from_timestamps(self, sim):
        sender, sent = make_sender(sim)
        sim.schedule(10 * MS, sender.start)
        sim.run(until=50 * MS)  # start at 10 ms, ack arrives at 50 ms
        ts = sent[0].ts_val
        assert ts == 10  # milliseconds
        sender.on_ack(ack_for(sender, MSS, ts_ecr=ts))
        assert sender.srtt_ns == pytest.approx(40 * MS, rel=0.1)
        assert sender.rto_ns >= sender.min_rto_ns


class TestFlowControl:
    def test_receiver_window_limits(self, sim):
        sender, sent = make_sender(sim, initial_cwnd_segments=10)
        sender.peer_rwnd = 3 * MSS
        sender.start()
        assert len(sent) == 3

    def test_window_update_releases(self, sim):
        sender, sent = make_sender(sim, initial_cwnd_segments=10)
        sender.peer_rwnd = 2 * MSS
        sender.start()
        sender.on_ack(ack_for(sender, 0, rwnd=8 * MSS))
        assert len(sent) > 2


class TestCompletion:
    def test_finite_transfer_completes(self, sim):
        done = []
        sender = TcpSender(sim, 1, "SRV", "C1",
                           output=lambda s: None, total_bytes=3 * MSS,
                           on_complete=lambda: done.append(sim.now))
        sender.start()
        sender.on_ack(ack_for(sender, 2 * MSS))
        sender.on_ack(ack_for(sender, 3 * MSS))
        assert sender.completed
        assert done

    def test_short_tail_segment(self, sim):
        sender, sent = make_sender(sim, total=MSS + 100)
        sender.start()
        assert sent[1].payload_bytes == 100

    def test_old_acks_ignored(self, sim):
        sender, sent = make_sender(sim)
        sender.start()
        sender.on_ack(ack_for(sender, 2 * MSS))
        count = len(sent)
        sender.on_ack(ack_for(sender, MSS))  # stale
        assert len(sent) == count
        assert sender.snd_una == 2 * MSS
