"""FlowStats snapshots and goodput windows."""

import pytest

from repro.sim.units import SEC, throughput_mbps
from repro.tcp.flow import FlowStats


class TestFlowStats:
    def test_goodput_between_snapshots(self):
        stats = FlowStats()
        stats.record(0, 0)
        stats.record(1 * SEC, 1_000_000)
        stats.record(2 * SEC, 3_000_000)
        # Whole run: 3 MB in 2 s = 12 Mbps.
        assert stats.goodput_mbps() == pytest.approx(12.0)
        # Steady-state window only: 2 MB in 1 s = 16 Mbps.
        assert stats.goodput_mbps(1 * SEC, 2 * SEC) == pytest.approx(
            16.0)

    def test_nearest_snapshot_selection(self):
        stats = FlowStats()
        stats.record(0, 0)
        stats.record(1 * SEC, 8_000_000)
        # Query times between snapshots resolve to the nearest one.
        assert stats.goodput_mbps(100, SEC - 100) == pytest.approx(
            64.0)

    def test_too_few_snapshots(self):
        stats = FlowStats()
        assert stats.goodput_mbps() == 0.0
        stats.record(0, 100)
        assert stats.goodput_mbps() == 0.0

    def test_empty_window_with_explicit_bounds(self):
        # Edge case: bounds given but no snapshots at all.
        stats = FlowStats()
        assert stats.goodput_mbps(0, 1 * SEC) == 0.0

    def test_one_sample_window_collapses_to_zero(self):
        # Both window edges resolve to the same (single nearest)
        # snapshot: zero-duration window must not divide by zero.
        stats = FlowStats()
        stats.record(0, 0)
        stats.record(1 * SEC, 4_000_000)
        assert stats.goodput_mbps(1 * SEC, 1 * SEC) == 0.0
        assert stats.goodput_mbps(SEC - 1, 2 * SEC) == 0.0

    def test_identical_timestamps(self):
        # Two snapshots at the same instant (duration 0): guarded.
        stats = FlowStats()
        stats.record(5, 100)
        stats.record(5, 200)
        assert stats.goodput_mbps() == 0.0

    def test_window_wider_than_snapshots_clamps(self):
        stats = FlowStats()
        stats.record(1 * SEC, 1_000_000)
        stats.record(2 * SEC, 3_000_000)
        # Querying far outside the recorded range uses the extreme
        # snapshots rather than extrapolating.
        assert stats.goodput_mbps(0, 100 * SEC) == pytest.approx(16.0)


class TestSummaryDict:
    def test_json_serialisable(self):
        import json

        from repro import HackPolicy, ScenarioConfig, run_scenario
        from repro.sim.units import MS
        res = run_scenario(ScenarioConfig(
            duration_ns=600 * MS, warmup_ns=300 * MS,
            policy=HackPolicy.MORE_DATA, stagger_ns=0))
        blob = json.dumps(res.summary_dict())
        parsed = json.loads(blob)
        assert parsed["config"]["policy"] == "more_data"
        assert parsed["aggregate_goodput_mbps"] > 0
        assert parsed["decompressor"]["crc_failures"] == 0
        assert "1" in parsed["tcp"]
