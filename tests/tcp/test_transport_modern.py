"""Modern-transport sender features and the correctness fixes that
shipped with them: the RTO-backoff ceiling, zero-window persist
probes, the non-negative SACK pipe, and sender pacing."""

import pytest

from repro.sim.units import MS, SEC
from repro.tcp.segment import TcpSegment
from repro.tcp.sender import TcpSender

MSS = 1460


def make_sender(sim, total=None, **kw):
    sent = []
    sender = TcpSender(sim, 1, "SRV", "C1", output=sent.append,
                       total_bytes=total, **kw)
    return sender, sent


def ack_for(ack, ts_ecr=0, rwnd=1 << 30, sack=()):
    return TcpSegment(flow_id=1, src="C1", dst="SRV", seq=0,
                      payload_bytes=0, ack=ack, rwnd=rwnd,
                      ts_val=0, ts_ecr=ts_ecr, sack_blocks=tuple(sack))


class TestRtoBackoffCeiling:
    """Regression: rto_ns * backoff must respect max_rto_ns too
    (RFC 6298 §5.5) — rto_ns alone being clamped is not enough."""

    def test_backed_off_delay_clamped_to_max_rto(self, sim):
        sender, _ = make_sender(sim, min_rto_ns=200 * MS,
                                max_rto_ns=200 * MS)
        sender.start()
        sim.run(until=2 * SEC)
        # With the ceiling honoured the timer fires every 200 ms even
        # though the backoff multiplier keeps doubling; unclamped, the
        # 1 s initial RTO backs off to 1, 2, 4... s and only ~1 timeout
        # fits in two seconds.
        assert sender.timeouts >= 8
        assert sender._backoff >= 32

    def test_armed_event_never_beyond_ceiling(self, sim):
        sender, _ = make_sender(sim, max_rto_ns=1 * SEC)
        sender.start()
        sim.run(until=10 * SEC)
        assert sender.timeouts >= 2
        assert sender._rto_event is not None
        assert sender._rto_event.time - sim.now <= sender.max_rto_ns


class TestZeroWindowPersist:
    """Regression: a genuine rwnd=0 advertisement must stall the flow
    and fall back to persist probes, not be ignored."""

    def prime(self, sim):
        sender, sent = make_sender(sim, initial_cwnd_segments=10)
        sender.start()
        assert len(sent) == 10
        sender.on_ack(ack_for(10 * MSS, rwnd=0))
        return sender, sent

    def test_zero_window_stalls_new_data(self, sim):
        sender, sent = self.prime(sim)
        assert len(sent) == 10          # nothing released past the ACK
        assert sender.peer_rwnd == 0
        assert sender._persist_event is not None

    def test_probe_is_one_byte_at_una(self, sim):
        sender, sent = self.prime(sim)
        sim.run(until=sender.rto_ns + MS)
        assert sender.persist_probes == 1
        probe = sent[-1]
        assert probe.payload_bytes == 1
        assert probe.seq == sender.snd_una

    def test_probe_backoff_doubles(self, sim):
        sender, _ = self.prime(sim)
        # rto_ns = 1 s: probes at ~1 s, 3 s (backoff 2), 7 s (4)...
        sim.run(until=7 * SEC + 10 * MS)
        assert sender.persist_probes == 3
        assert sender._persist_backoff == 8

    def test_window_reopen_resumes_and_resets(self, sim):
        sender, sent = self.prime(sim)
        sim.run(until=sender.rto_ns + MS)   # one probe out
        count = len(sent)
        sender.on_ack(ack_for(10 * MSS))
        assert len(sent) > count            # new data flows again
        assert sender._persist_event is None
        assert sender._persist_backoff == 1

    def test_no_probe_when_no_data_pending(self, sim):
        sender, sent = make_sender(sim, total=2 * MSS)
        sender.start()
        sender.on_ack(ack_for(2 * MSS, rwnd=0))
        assert sender.completed
        assert sender._persist_event is None
        sim.run(until=10 * SEC)
        assert sender.persist_probes == 0


class TestSackPipeNonNegative:
    """Regression: a stale SACK arriving after an RTO rewound snd_nxt
    could drive the RFC 6675 pipe estimate negative, over-injecting a
    burst on the next send opportunity."""

    def test_stale_sack_after_rto(self, sim):
        sent = []
        sender = TcpSender(sim, 1, "SRV", "C1", output=sent.append,
                           initial_cwnd_segments=10, use_sack=True)
        sender.start()
        sim.run(until=3 * SEC)          # RTO: go-back-N, snd_nxt = MSS
        assert sender.timeouts >= 1
        assert sender.flight_size == MSS
        # SACK ranges far beyond the rewound snd_nxt (in flight before
        # the timeout, delivered late).
        sender.on_ack(ack_for(0, sack=((2 * MSS, 8 * MSS),)))
        assert sender._sack_pipe() == 0

    def test_pipe_never_negative_during_recovery(self, sim):
        sent = []
        sender = TcpSender(sim, 1, "SRV", "C1", output=sent.append,
                           initial_cwnd_segments=10, use_sack=True)
        sender.start()
        sim.run(until=3 * SEC)
        for _ in range(3):              # dup ACKs enter SACK recovery
            sender.on_ack(ack_for(0, sack=((2 * MSS, 8 * MSS),)))
            assert sender._sack_pipe() >= 0
        assert sender.in_recovery


class TestPacing:
    def prime(self, sim, **kw):
        sent = []
        sender = TcpSender(
            sim, 1, "SRV", "C1",
            output=lambda seg: sent.append((sim.now, seg)),
            pacing=True, **kw)
        return sender, sent

    def test_unpaced_before_first_rtt_sample(self, sim):
        sender, sent = self.prime(sim, initial_cwnd_segments=8)
        sender.start()
        assert len(sent) == 8
        assert len({t for t, _ in sent}) == 1   # one burst at t=0

    def establish_srtt(self, sim, sender, sent):
        sim.schedule(10 * MS, sender.start)
        sim.run(until=50 * MS)
        sender.on_ack(ack_for(8 * MSS, ts_ecr=sent[0][1].ts_val))
        assert sender.srtt_ns == pytest.approx(40 * MS, rel=0.1)

    def test_sends_spread_at_two_cwnd_per_srtt(self, sim):
        sender, sent = self.prime(sim, initial_cwnd_segments=8)
        self.establish_srtt(sim, sender, sent)
        sim.run(until=200 * MS)
        times = [t for t, _ in sent[8:]]
        assert len(times) == 9          # cwnd grew to 9 MSS, all sent
        gap = sender._pace_gap_ns()
        assert gap == 40 * MS * MSS // (2 * sender.cwnd)
        assert all(b - a >= gap for a, b in zip(times, times[1:]))

    def test_retransmit_bypasses_gate(self, sim):
        sender, sent = self.prime(sim, initial_cwnd_segments=8)
        self.establish_srtt(sim, sender, sent)
        sender._next_pace_ns = sim.now + SEC    # gate shut
        before = len(sent)
        # More data was queued at 8*MSS..; dup-ACK it three times.
        for _ in range(3):
            sender.on_ack(ack_for(8 * MSS))
        retx = [seg for _, seg in sent[before:] if seg.seq == 8 * MSS]
        assert len(retx) == 1
        assert sender.in_recovery

    def test_completion_cancels_pacing_timer(self, sim):
        sender, sent = self.prime(sim, total_bytes=12 * MSS,
                                  initial_cwnd_segments=8)
        self.establish_srtt(sim, sender, sent)
        sim.run(until=SEC)
        sender.on_ack(ack_for(12 * MSS))
        assert sender.completed
        assert sender._pacing_event is None

    def test_paced_transfer_still_completes(self, sim):
        done = []
        sender = TcpSender(sim, 1, "SRV", "C1", output=lambda s: None,
                           total_bytes=4 * MSS, pacing=True,
                           on_complete=lambda: done.append(sim.now))
        sender.start()
        sender.on_ack(ack_for(2 * MSS))
        sender.on_ack(ack_for(4 * MSS))
        assert sender.completed and done
