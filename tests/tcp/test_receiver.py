"""Receiver: delayed ACKs, dup ACKs, reordering, SACK generation."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.units import MS, SEC
from repro.tcp.receiver import TcpReceiver
from repro.tcp.segment import TcpSegment

MSS = 1460


def make_receiver(sim, **kw):
    acks = []
    receiver = TcpReceiver(sim, 1, "C1", "SRV", output=acks.append, **kw)
    return receiver, acks


def data(seq, length=MSS, ts_val=7):
    return TcpSegment(flow_id=1, src="SRV", dst="C1", seq=seq,
                      payload_bytes=length, ack=0, rwnd=0, ts_val=ts_val)


class TestDelayedAck:
    def test_every_second_segment_acked(self, sim):
        receiver, acks = make_receiver(sim)
        receiver.on_segment(data(0))
        assert acks == []
        receiver.on_segment(data(MSS))
        assert len(acks) == 1
        assert acks[0].ack == 2 * MSS

    def test_delack_timer_fires(self, sim):
        receiver, acks = make_receiver(sim, delack_timeout_ns=40 * MS)
        receiver.on_segment(data(0))
        sim.run(until=SEC)
        assert len(acks) == 1
        assert acks[0].ack == MSS

    def test_disabled_delayed_ack(self, sim):
        receiver, acks = make_receiver(sim, delayed_ack=False)
        receiver.on_segment(data(0))
        assert len(acks) == 1

    def test_ack_carries_rwnd_and_ts(self, sim):
        receiver, acks = make_receiver(sim, rwnd_bytes=123_456)
        receiver.on_segment(data(0, ts_val=99))
        receiver.on_segment(data(MSS, ts_val=100))
        assert acks[0].rwnd == 123_456
        assert acks[0].ts_ecr == 100
        assert acks[0].is_pure_ack


class TestReordering:
    def test_out_of_order_dup_ack(self, sim):
        receiver, acks = make_receiver(sim)
        receiver.on_segment(data(MSS))  # hole at 0
        assert len(acks) == 1
        assert acks[0].ack == 0
        assert receiver.dup_acks_sent == 1

    def test_hole_fill_delivers_all(self, sim):
        receiver, acks = make_receiver(sim)
        receiver.on_segment(data(MSS))
        receiver.on_segment(data(2 * MSS))
        receiver.on_segment(data(0))
        assert receiver.rcv_nxt == 3 * MSS
        assert receiver.bytes_delivered == 3 * MSS
        assert acks[-1].ack == 3 * MSS

    def test_duplicate_segment_reacked(self, sim):
        receiver, acks = make_receiver(sim)
        receiver.on_segment(data(0))
        receiver.on_segment(data(MSS))
        count = len(acks)
        receiver.on_segment(data(0))  # duplicate
        assert receiver.duplicates_received == 1
        assert len(acks) == count + 1
        assert receiver.bytes_delivered == 2 * MSS

    def test_partial_hole_fill_acks_immediately(self, sim):
        receiver, acks = make_receiver(sim)
        receiver.on_segment(data(2 * MSS))  # ooo
        receiver.on_segment(data(0))        # fills part of hole
        assert acks[-1].ack == MSS

    def test_deliver_callback(self, sim):
        got = []
        receiver = TcpReceiver(sim, 1, "C1", "SRV",
                               output=lambda a: None,
                               on_deliver=got.append)
        receiver.on_segment(data(0))
        assert got == [MSS]


class TestSack:
    def test_sack_blocks_generated(self, sim):
        receiver, acks = make_receiver(sim, generate_sack=True)
        receiver.on_segment(data(2 * MSS))
        assert acks[-1].sack_blocks == ((2 * MSS, 3 * MSS),)

    def test_contiguous_blocks_merge(self, sim):
        receiver, acks = make_receiver(sim, generate_sack=True)
        receiver.on_segment(data(2 * MSS))
        receiver.on_segment(data(3 * MSS))
        assert acks[-1].sack_blocks == ((2 * MSS, 4 * MSS),)

    def test_disjoint_blocks(self, sim):
        receiver, acks = make_receiver(sim, generate_sack=True)
        receiver.on_segment(data(2 * MSS))
        receiver.on_segment(data(5 * MSS))
        assert len(acks[-1].sack_blocks) == 2

    def test_no_sack_by_default(self, sim):
        receiver, acks = make_receiver(sim)
        receiver.on_segment(data(2 * MSS))
        assert acks[-1].sack_blocks == ()


class TestAckClock:
    def test_burst_produces_half_as_many_acks(self, sim):
        # 42 segments arriving back-to-back (an A-MPDU's worth) must
        # produce 21 ACKs under delayed ACK — the paper's assumption.
        receiver, acks = make_receiver(sim)
        for i in range(42):
            receiver.on_segment(data(i * MSS))
        assert len(acks) == 21
        assert acks[-1].ack == 42 * MSS
