"""TCP segment size arithmetic and classification."""

from repro.tcp.segment import FiveTuple, TcpSegment, UdpDatagram


def seg(payload=0, sack=()):
    return TcpSegment(flow_id=1, src="C1", dst="SRV", seq=0,
                      payload_bytes=payload, ack=100, rwnd=65535,
                      sack_blocks=sack)


class TestSizes:
    def test_pure_ack_is_52_bytes(self):
        # 20 IP + 20 TCP + 12 timestamp option: Table 2's 52 B/ACK.
        assert seg().byte_length == 52

    def test_data_segment(self):
        assert seg(payload=1460).byte_length == 1512

    def test_sack_blocks_add_bytes(self):
        assert seg(sack=((0, 10),)).byte_length == 52 + 4 + 8
        assert seg(sack=((0, 10), (20, 30))).byte_length == 52 + 4 + 16


class TestClassification:
    def test_pure_ack(self):
        assert seg().is_pure_ack
        assert seg().kind == "tcp_ack"

    def test_data(self):
        assert not seg(payload=1).is_pure_ack
        assert seg(payload=1).kind == "tcp_data"

    def test_end_seq(self):
        s = TcpSegment(flow_id=1, src="a", dst="b", seq=1000,
                       payload_bytes=500, ack=0, rwnd=0)
        assert s.end_seq == 1500


class TestFiveTuple:
    def test_key_and_reverse(self):
        ft = FiveTuple("10.0.0.1", "10.0.0.2", 5001, 80)
        assert ft.key() == ("10.0.0.1", "10.0.0.2", 5001, 80)
        assert ft.reversed().key() == ("10.0.0.2", "10.0.0.1", 80, 5001)


class TestUdp:
    def test_length(self):
        d = UdpDatagram(src="SRV", dst="C1", payload_bytes=1472)
        assert d.byte_length == 1500
        assert d.kind == "udp"
