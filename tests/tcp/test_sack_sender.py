"""SACK-based sender recovery (simplified RFC 6675)."""

import pytest

from repro.sim.engine import Simulator
from repro.tcp.segment import TcpSegment
from repro.tcp.sender import TcpSender

MSS = 1460


def make_sender(sim, cwnd=10):
    sent = []
    sender = TcpSender(sim, 1, "SRV", "C1", output=sent.append,
                       initial_cwnd_segments=cwnd, use_sack=True)
    return sender, sent


def ack(ack_no, sack=()):
    return TcpSegment(flow_id=1, src="C1", dst="SRV", seq=0,
                      payload_bytes=0, ack=ack_no, rwnd=1 << 30,
                      sack_blocks=tuple(sack))


class TestScoreboard:
    def test_blocks_merge(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        sender._register_sack(((MSS, 2 * MSS), (2 * MSS, 3 * MSS)))
        assert sender._sack_scoreboard == [(MSS, 3 * MSS)]

    def test_blocks_below_una_dropped(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        sender.snd_una = 2 * MSS
        sender._register_sack(((0, MSS),))
        assert sender._sack_scoreboard == []

    def test_holes_enumerated_per_mss(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        sender._register_sack(((2 * MSS, 3 * MSS), (4 * MSS, 5 * MSS)))
        holes = sender._sack_holes()
        assert holes == [(0, MSS), (MSS, MSS), (3 * MSS, MSS)]


class TestRecovery:
    def lose_segments(self, sim, lost):
        """Simulate a window where `lost` (set of indices) are dropped:
        feed dup ACKs carrying the SACKs a real receiver would send."""
        sender, sent = make_sender(sim, cwnd=10)
        sender.start()
        assert len(sent) == 10
        received = [i for i in range(10) if i not in lost]
        blocks = []
        events = []
        for i in received:
            if i == 0 and 0 not in lost:
                continue  # would advance cumulative ACK
            blocks.append((i * MSS, (i + 1) * MSS))
            merged = self.merge(blocks)
            events.append(ack(0, sack=tuple(merged[:3])))
        # Tail dup ACKs: the receiver keeps dup-ACKing while holes
        # remain, which is what clocks out the later retransmissions.
        final_sack = tuple(self.merge(blocks)[:3])
        for _ in range(4):
            events.append(ack(0, sack=final_sack))
        for event in events:
            sender.on_ack(event)
        return sender, sent

    @staticmethod
    def merge(blocks):
        out = []
        for start, end in sorted(blocks):
            if out and start <= out[-1][1]:
                out[-1] = (out[-1][0], max(out[-1][1], end))
            else:
                out.append((start, end))
        return out

    def test_multiple_holes_repaired_in_one_rtt(self, sim):
        # Segments 0, 3 and 6 lost: SACK recovery retransmits all
        # three without waiting for partial ACK round trips.
        sender, sent = self.lose_segments(sim, lost={0, 3, 6})
        retx = [s.seq for s in sent[10:]]
        assert 0 in retx and 3 * MSS in retx and 6 * MSS in retx

    def test_each_hole_retransmitted_once(self, sim):
        sender, sent = self.lose_segments(sim, lost={0, 3})
        retx = [s.seq for s in sent[10:]]
        assert retx.count(0) == 1
        assert retx.count(3 * MSS) == 1

    def test_no_inflation_in_sack_mode(self, sim):
        sender, sent = self.lose_segments(sim, lost={0})
        assert sender.in_recovery
        assert sender.cwnd == sender.ssthresh

    def test_full_ack_exits_and_clears(self, sim):
        sender, sent = self.lose_segments(sim, lost={0})
        recover_point = sender.recover
        sender.on_ack(ack(recover_point))
        assert not sender.in_recovery
        assert sender._sack_scoreboard == []
        assert not sender._sack_retransmitted

    def test_new_data_flows_on_pipe_space(self, sim):
        # SACKed bytes leave the pipe, freeing window for new data
        # even before recovery completes.
        sender, sent = self.lose_segments(sim, lost={0})
        new_data = [s.seq for s in sent[10:] if s.seq >= 10 * MSS]
        assert new_data  # something new was sent during recovery

    def test_rto_discards_scoreboard(self, sim):
        from repro.sim.units import SEC
        sender, sent = make_sender(sim)
        sender.start()
        sender._register_sack(((MSS, 2 * MSS),))
        sim.run(until=3 * SEC)
        assert sender.timeouts >= 1
        assert sender._sack_scoreboard == []


class TestEndToEnd:
    def test_sack_survives_heavy_tcp_visible_loss(self):
        from repro import HackPolicy, LossSpec, ScenarioConfig, \
            run_scenario
        from repro.sim.units import MS, SEC
        res = run_scenario(ScenarioConfig(
            phy_mode="11n", data_rate_mbps=150.0,
            policy=HackPolicy.MORE_DATA, sack_recovery=True,
            ap_queue_per_client=30,  # small queue: real TCP drops
            duration_ns=2 * SEC, warmup_ns=1 * SEC, stagger_ns=0))
        assert res.aggregate_goodput_mbps > 40
        assert res.decomp_counters["crc_failures"] == 0
