"""CUBIC congestion control (RFC 8312): window law and sender hooks."""

import pytest

from repro.sim.units import MS, SEC
from repro.tcp.cubic import CubicState
from repro.tcp.segment import TcpSegment
from repro.tcp.sender import TcpSender

MSS = 1460


def make_sender(sim, **kw):
    sent = []
    sender = TcpSender(sim, 1, "SRV", "C1", output=sent.append,
                       cc="cubic", **kw)
    return sender, sent


def ack_for(ack, ts_ecr=0):
    return TcpSegment(flow_id=1, src="C1", dst="SRV", seq=0,
                      payload_bytes=0, ack=ack, rwnd=1 << 30,
                      ts_val=0, ts_ecr=ts_ecr)


class TestCubicState:
    def test_multiplicative_decrease_is_beta(self):
        state = CubicState()
        assert state.on_congestion_event(100 * MSS, MSS) == \
            int(100 * MSS * 0.7)

    def test_ssthresh_floor_two_mss(self):
        state = CubicState()
        assert state.on_congestion_event(MSS, MSS) == 2 * MSS

    def test_wmax_remembered(self):
        state = CubicState()
        state.on_congestion_event(100 * MSS, MSS)
        assert state.w_max == pytest.approx(100.0)

    def test_fast_convergence_releases_bandwidth(self):
        state = CubicState()
        state.on_congestion_event(100 * MSS, MSS)
        # Losing again below the old plateau: give up extra share.
        state.on_congestion_event(80 * MSS, MSS)
        assert state.w_max == pytest.approx(80 * (2 - 0.7) / 2)

    def test_increment_capped_at_one_mss(self):
        state = CubicState()
        state.on_congestion_event(100 * MSS, MSS)
        state.cwnd_increment(0, 10 * MSS, MSS, 40 * MS, MSS)
        # Ten idle seconds put W_cubic far above cwnd; the per-ACK
        # increment still stays ACK-clocked at one MSS.
        inc = state.cwnd_increment(10 * SEC, 10 * MSS, MSS,
                                   40 * MS, MSS)
        assert inc == MSS

    def test_no_growth_at_the_plateau(self):
        state = CubicState()
        state.on_congestion_event(100 * MSS, MSS)
        # At epoch start, W_cubic(t=srtt) sits essentially at cwnd.
        inc = state.cwnd_increment(0, 70 * MSS, MSS, MS, MSS)
        assert inc <= MSS // 50

    def test_concave_regrowth_toward_wmax(self):
        state = CubicState()
        state.on_congestion_event(100 * MSS, MSS)
        cwnd = 70 * MSS
        now, srtt = 0, 40 * MS
        grown = []
        for _ in range(200):
            now += srtt
            inc = state.cwnd_increment(now, cwnd, MSS, srtt, MSS)
            assert 0 <= inc <= MSS
            cwnd += inc
            grown.append(cwnd)
        # K = ((100-70)/0.4)^(1/3) = 4.2 s: by t=8 s the curve has
        # regained (and crept past) the old plateau.
        assert grown[-1] >= 100 * MSS
        # Concave approach: the first half of the epoch grows less
        # than a Reno-style MSS-per-RTT ramp would.
        assert grown[99] < 70 * MSS + 100 * MSS

    def test_tcp_friendly_floor_without_loss_history(self):
        state = CubicState()
        cwnd = 10 * MSS
        now = 0
        for _ in range(100):
            now += MS
            cwnd += state.cwnd_increment(now, cwnd, MSS, 40 * MS, MSS)
        # W_est emulates Reno's 3(1-b)/(1+b) segments per RTT, so a
        # hundred ACKs (ten RTT-equivalents) grow a few segments —
        # neither frozen nor runaway.
        assert 10 * MSS < cwnd < 20 * MSS


class TestCubicSender:
    def test_rejects_unknown_cc(self, sim):
        with pytest.raises(ValueError, match="unknown congestion"):
            TcpSender(sim, 1, "SRV", "C1", output=lambda s: None,
                      cc="vegas")

    def test_reno_default_has_no_cubic_state(self, sim):
        sender = TcpSender(sim, 1, "SRV", "C1", output=lambda s: None)
        assert sender.cc == "reno"
        assert sender._cubic is None

    def test_fast_retransmit_uses_beta(self, sim):
        sender, sent = make_sender(sim, initial_cwnd_segments=10)
        sender.start()
        for _ in range(3):
            sender.on_ack(ack_for(0))
        assert sender.ssthresh == int(10 * MSS * 0.7)
        assert sender.in_recovery

    def test_rto_uses_beta(self, sim):
        sender, _ = make_sender(sim, initial_cwnd_segments=10)
        sender.start()
        sim.run(until=1 * SEC + MS)
        assert sender.timeouts == 1
        assert sender.ssthresh == int(10 * MSS * 0.7)
        assert sender.cwnd == MSS

    def test_ca_growth_is_cubic_driven(self, sim):
        sender, sent = make_sender(sim)
        sim.schedule(10 * MS, sender.start)
        sim.run(until=50 * MS)
        sender.ssthresh = 0                     # force CA
        sender._cubic.w_max = 30.0              # prior loss history
        sender.on_ack(ack_for(MSS, ts_ecr=sent[0].ts_val))
        assert sender.srtt_ns == 40 * MS
        start_cwnd = sender.cwnd
        history = [sender.cwnd]
        for i in range(2, 30):
            sim.run(until=sim.now + 100 * MS)
            sender.on_ack(ack_for(i * MSS))
            assert sender.cwnd - history[-1] <= MSS
            history.append(sender.cwnd)
        assert sender.cwnd > start_cwnd
        # Regrowth targets the 30-segment plateau, never far past it.
        assert sender.cwnd <= 31 * MSS

    def test_slow_start_unchanged_under_cubic(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        sender.on_ack(ack_for(MSS))
        assert sender.cwnd == 3 * MSS           # classic byte counting

    def test_ca_falls_back_to_reno_without_srtt(self, sim):
        sender, _ = make_sender(sim, initial_ssthresh_bytes=2 * MSS)
        sender.start()
        # No timestamp echo yet (srtt unknown): the Reno accumulator
        # keeps the window moving instead of stalling CA.
        for i in range(1, 4):
            sender.on_ack(ack_for(i * MSS))
        assert sender.cwnd > 2 * MSS
