"""Per-Simulator frame ids: identical runs yield identical ids.

Frame ids used to come from a process-global ``itertools.count``, so
the ids one simulation observed depended on every simulation the
process had executed before it — test order, sweep order, even an
unrelated benchmark in the same interpreter.  ``Simulator.new_frame_id``
scopes the counter to the run: back-to-back identical scenarios now
produce identical id sequences regardless of interleaved work.
"""

from repro.mac.dcf import DcfMac, MacUpper
from repro.mac.frames import Mpdu
from repro.mac.params import MacParams
from repro.phy.params import PHY_11N
from repro.sim.engine import Simulator
from repro.sim.medium import Medium

from tests.helpers import FakePayload


class _IdRecorder(MacUpper):
    def __init__(self):
        self.frame_ids = []

    def on_mpdu_delivered(self, mpdu, sender):
        self.frame_ids.append(mpdu.frame_id)


class _Rng:
    def randint(self, lo, hi):
        return 0


def _run_cell(n_payloads: int, payload_bytes: int = 1500):
    """One tiny AP -> client download; returns delivered frame ids."""
    sim = Simulator()
    medium = Medium(sim)
    params = MacParams(data_rate_mbps=150.0, aggregation=True,
                       queue_limit=None)
    recorder = _IdRecorder()
    ap = DcfMac(sim, medium, PHY_11N, "AP", params, _Rng())
    DcfMac(sim, medium, PHY_11N, "C1", params, _Rng(),
           upper=recorder)
    for _ in range(n_payloads):
        ap.enqueue(FakePayload(byte_length=payload_bytes), "C1")
    sim.run(until=20_000_000)
    return recorder.frame_ids


def test_new_frame_id_counts_from_one():
    sim = Simulator()
    assert [sim.new_frame_id() for _ in range(3)] == [1, 2, 3]


def test_back_to_back_runs_produce_identical_ids():
    first = _run_cell(8)
    second = _run_cell(8)
    assert first, "expected delivered MPDUs"
    assert first == second


def test_ids_survive_interleaved_unrelated_work():
    reference = _run_cell(6)
    # Unrelated simulations and direct (fallback-counter) Mpdu
    # construction in between must not shift the next run's ids.
    _run_cell(3, payload_bytes=400)
    for seq in range(25):
        Mpdu(src="X", dst="Y", seq=seq, payload=FakePayload())
    assert _run_cell(6) == reference


def test_ids_are_contiguous_per_run():
    ids = _run_cell(10)
    # Every transmitted MPDU draws from the same per-run counter, so
    # a single-destination run sees 1..n in order.
    assert ids == sorted(ids)
    assert ids[0] == 1
