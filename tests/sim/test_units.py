"""Unit conversions and serialisation-time arithmetic."""

import pytest

from repro.sim.units import MS, NS, SEC, US, msec, sec, throughput_mbps, \
    to_msec, to_sec, to_usec, transmission_time_ns, usec


class TestConstants:
    def test_hierarchy(self):
        assert US == 1_000 * NS
        assert MS == 1_000 * US
        assert SEC == 1_000 * MS


class TestConversions:
    def test_usec(self):
        assert usec(16) == 16_000

    def test_usec_fractional(self):
        assert usec(3.6) == 3_600

    def test_usec_rounds(self):
        assert usec(0.0006) == 1  # rounds, not truncates

    def test_msec(self):
        assert msec(1.5) == 1_500_000

    def test_sec(self):
        assert sec(2) == 2_000_000_000

    def test_roundtrips(self):
        assert to_usec(usec(110.5)) == pytest.approx(110.5)
        assert to_msec(msec(4)) == pytest.approx(4.0)
        assert to_sec(sec(1.25)) == pytest.approx(1.25)


class TestTransmissionTime:
    def test_simple(self):
        # 1500 bytes at 12 Mbps = 1000 us.
        assert transmission_time_ns(1500, 12.0) == 1_000_000

    def test_ceil(self):
        # 1 byte at 1000 Mbps = 8 ns exactly.
        assert transmission_time_ns(1, 1000.0) == 8

    def test_rounds_up(self):
        # 1 byte at 3 Mbps = 2666.67 ns -> 2667.
        assert transmission_time_ns(1, 3.0) == 2667

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            transmission_time_ns(100, 0.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            transmission_time_ns(100, -5.0)


class TestThroughput:
    def test_basic(self):
        # 1,000,000 bytes in one second = 8 Mbps.
        assert throughput_mbps(1_000_000, SEC) == pytest.approx(8.0)

    def test_zero_duration(self):
        assert throughput_mbps(100, 0) == 0.0

    def test_inverse_of_transmission_time(self):
        nbytes, rate = 12_345, 54.0
        duration = transmission_time_ns(nbytes, rate)
        assert throughput_mbps(nbytes, duration) == pytest.approx(
            rate, rel=1e-3)
