"""Seeded RNG streams: determinism and independence."""

from repro.sim.rng import RngRegistry, _stable_hash


class TestStreams:
    def test_same_seed_same_sequence(self):
        a = RngRegistry(7).stream("mac")
        b = RngRegistry(7).stream("mac")
        assert [a.random() for _ in range(10)] == \
            [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("mac")
        b = RngRegistry(2).stream("mac")
        assert [a.random() for _ in range(5)] != \
            [b.random() for _ in range(5)]

    def test_streams_independent_of_creation_order(self):
        r1 = RngRegistry(3)
        r2 = RngRegistry(3)
        first_a = r1.stream("a").random()
        r2.stream("b")  # create b first in the other registry
        assert r2.stream("a").random() == first_a

    def test_stream_identity_cached(self):
        reg = RngRegistry(1)
        assert reg.stream("x") is reg.stream("x")

    def test_named_streams_differ(self):
        reg = RngRegistry(1)
        assert reg.stream("a").random() != reg.stream("b").random()


class TestNamespace:
    def test_prefixes_the_underlying_stream(self):
        reg = RngRegistry(5)
        ns = reg.namespace("traffic")
        assert ns.stream("poisson") is reg.stream("traffic:poisson")

    def test_isolated_from_bare_names(self):
        reg = RngRegistry(5)
        assert reg.namespace("traffic").stream("x") is not \
            reg.stream("x")

    def test_nested_namespaces(self):
        reg = RngRegistry(5)
        nested = reg.namespace("a").namespace("b")
        assert nested.stream("c") is reg.stream("a:b:c")

    def test_deterministic_across_registries(self):
        a = RngRegistry(9).namespace("traffic").stream("web-C1-u0")
        b = RngRegistry(9).namespace("traffic").stream("web-C1-u0")
        assert a.random() == b.random()

    def test_stream_names_lists_created(self):
        reg = RngRegistry(1)
        reg.stream("mac-AP")
        reg.namespace("traffic").stream("poisson")
        assert reg.stream_names() == ["mac-AP", "traffic:poisson"]


class TestStableHash:
    def test_deterministic(self):
        assert _stable_hash("phy-loss") == _stable_hash("phy-loss")

    def test_distinct(self):
        assert _stable_hash("a") != _stable_hash("b")

    def test_empty(self):
        assert isinstance(_stable_hash(""), int)
