"""Event engine: ordering, cancellation, horizons, determinism,
heap hygiene under mass cancellation."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.units import SEC, usec


class TestScheduling:
    def test_runs_in_time_order(self, sim):
        log = []
        sim.schedule(30, lambda: log.append("c"))
        sim.schedule(10, lambda: log.append("a"))
        sim.schedule(20, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(usec(5), lambda: seen.append(sim.now))
        sim.run()
        assert seen == [usec(5)]

    def test_fifo_for_ties(self, sim):
        log = []
        for tag in "abcd":
            sim.schedule(100, lambda t=tag: log.append(t))
        sim.run()
        assert log == list("abcd")

    def test_priority_breaks_ties(self, sim):
        log = []
        sim.schedule(100, lambda: log.append("low"), priority=5)
        sim.schedule(100, lambda: log.append("high"), priority=-5)
        sim.run()
        assert log == ["high", "low"]

    def test_args_passed(self, sim):
        out = []
        sim.schedule(1, out.append, "x")
        sim.run()
        assert out == ["x"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(50, lambda: None)

    def test_events_scheduled_during_run(self, sim):
        log = []

        def first():
            log.append("first")
            sim.schedule(10, lambda: log.append("nested"))

        sim.schedule(5, first)
        sim.run()
        assert log == ["first", "nested"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        log = []
        event = sim.schedule(10, lambda: log.append("no"))
        event.cancel()
        sim.run()
        assert log == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.run() == 0

    def test_pending_events_excludes_cancelled(self, sim):
        sim.schedule(10, lambda: None)
        event = sim.schedule(20, lambda: None)
        event.cancel()
        assert sim.pending_events == 1


class TestRunControl:
    def test_until_is_exclusive(self, sim):
        log = []
        sim.schedule(100, lambda: log.append("at"))
        sim.run(until=100)
        assert log == []
        assert sim.now == 100

    def test_until_resumable(self, sim):
        log = []
        sim.schedule(100, lambda: log.append("x"))
        sim.run(until=50)
        assert log == []
        sim.run(until=200)
        assert log == ["x"]

    def test_max_events(self, sim):
        log = []
        for i in range(10):
            sim.schedule(i + 1, lambda i=i: log.append(i))
        executed = sim.run(max_events=3)
        assert executed == 3
        assert log == [0, 1, 2]

    def test_stop_from_callback(self, sim):
        log = []
        sim.schedule(1, lambda: (log.append("a"), sim.stop()))
        sim.schedule(2, lambda: log.append("b"))
        sim.run()
        assert log[0][0] == "a" if isinstance(log[0], tuple) else True
        assert "b" not in log

    def test_clock_advances_to_horizon_when_drained(self, sim):
        sim.schedule(10, lambda: None)
        sim.run(until=1 * SEC)
        assert sim.now == 1 * SEC

    def test_run_returns_event_count(self, sim):
        for i in range(5):
            sim.schedule(i + 1, lambda: None)
        assert sim.run() == 5


def brute_force_pending(sim):
    return sum(1 for e in sim._heap if not e.cancelled)


class TestHeapHygiene:
    def test_million_cancels_keep_heap_bounded(self, sim):
        # Regression: cancelled timers used to sit in the heap until
        # popped, so a timer-heavy run accreted unbounded garbage.
        sim.schedule(2 * SEC, lambda: None)  # one long-lived survivor
        peak = 0
        for i in range(1_000_000):
            sim.schedule(SEC + i, lambda: None).cancel()
            if i % 4096 == 0:
                peak = max(peak, len(sim._heap))
        peak = max(peak, len(sim._heap))
        assert peak <= 2 * 64 + 2  # compaction threshold, not 10^6
        assert sim.stats.cancelled == 1_000_000
        assert sim.stats.compactions > 1_000
        assert sim.pending_events == 1

    def test_compaction_does_not_lose_or_reorder_events(self, sim):
        log = []
        events = []
        for i in range(500):
            events.append(sim.schedule(100 + i, lambda i=i: log.append(i)))
        for i, event in enumerate(events):
            if i % 2:
                event.cancel()
        sim.run()
        assert log == [i for i in range(500) if i % 2 == 0]

    def test_pending_events_matches_brute_force(self, sim):
        rng = random.Random(7)
        live = []
        for step in range(2000):
            action = rng.random()
            if action < 0.5 or not live:
                live.append(sim.schedule(rng.randint(1, 1000),
                                         lambda: None))
            elif action < 0.9:
                live.pop(rng.randrange(len(live))).cancel()
            else:
                sim.run(max_events=rng.randint(1, 5))
                live = [e for e in live
                        if not e.cancelled and e.time > sim.now]
            assert sim.pending_events == brute_force_pending(sim)

    def test_cancel_after_execution_is_harmless(self, sim):
        event = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        sim.run()
        before = sim.pending_events
        event.cancel()  # already ran; must not corrupt live counts
        assert sim.pending_events == before == 0
        assert sim.stats.cancelled == 0

    def test_stats_counters(self, sim):
        done = sim.schedule(10, lambda: None)
        dead = sim.schedule(20, lambda: None)
        dead.cancel()
        sim.run()
        assert sim.stats.scheduled == 2
        assert sim.stats.executed == 1
        assert sim.stats.cancelled == 1
        stats = sim.stats.as_dict()
        assert stats["events_executed"] == 1
        assert stats["events_scheduled"] == 2
        assert stats["events_cancelled"] == 1
        assert stats["heap_compactions"] == 0


class TestDeterminism:
    def test_identical_runs(self):
        def build_and_run():
            sim = Simulator()
            log = []
            for i in range(100):
                sim.schedule((i * 7919) % 1000 + 1,
                             lambda i=i: log.append(i))
            sim.run()
            return log

        assert build_and_run() == build_and_run()
