"""Event engine: ordering, cancellation, horizons, determinism."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.units import SEC, usec


class TestScheduling:
    def test_runs_in_time_order(self, sim):
        log = []
        sim.schedule(30, lambda: log.append("c"))
        sim.schedule(10, lambda: log.append("a"))
        sim.schedule(20, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(usec(5), lambda: seen.append(sim.now))
        sim.run()
        assert seen == [usec(5)]

    def test_fifo_for_ties(self, sim):
        log = []
        for tag in "abcd":
            sim.schedule(100, lambda t=tag: log.append(t))
        sim.run()
        assert log == list("abcd")

    def test_priority_breaks_ties(self, sim):
        log = []
        sim.schedule(100, lambda: log.append("low"), priority=5)
        sim.schedule(100, lambda: log.append("high"), priority=-5)
        sim.run()
        assert log == ["high", "low"]

    def test_args_passed(self, sim):
        out = []
        sim.schedule(1, out.append, "x")
        sim.run()
        assert out == ["x"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(50, lambda: None)

    def test_events_scheduled_during_run(self, sim):
        log = []

        def first():
            log.append("first")
            sim.schedule(10, lambda: log.append("nested"))

        sim.schedule(5, first)
        sim.run()
        assert log == ["first", "nested"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        log = []
        event = sim.schedule(10, lambda: log.append("no"))
        event.cancel()
        sim.run()
        assert log == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.run() == 0

    def test_pending_events_excludes_cancelled(self, sim):
        sim.schedule(10, lambda: None)
        event = sim.schedule(20, lambda: None)
        event.cancel()
        assert sim.pending_events == 1


class TestRunControl:
    def test_until_is_exclusive(self, sim):
        log = []
        sim.schedule(100, lambda: log.append("at"))
        sim.run(until=100)
        assert log == []
        assert sim.now == 100

    def test_until_resumable(self, sim):
        log = []
        sim.schedule(100, lambda: log.append("x"))
        sim.run(until=50)
        assert log == []
        sim.run(until=200)
        assert log == ["x"]

    def test_max_events(self, sim):
        log = []
        for i in range(10):
            sim.schedule(i + 1, lambda i=i: log.append(i))
        executed = sim.run(max_events=3)
        assert executed == 3
        assert log == [0, 1, 2]

    def test_stop_from_callback(self, sim):
        log = []
        sim.schedule(1, lambda: (log.append("a"), sim.stop()))
        sim.schedule(2, lambda: log.append("b"))
        sim.run()
        assert log[0][0] == "a" if isinstance(log[0], tuple) else True
        assert "b" not in log

    def test_clock_advances_to_horizon_when_drained(self, sim):
        sim.schedule(10, lambda: None)
        sim.run(until=1 * SEC)
        assert sim.now == 1 * SEC

    def test_run_returns_event_count(self, sim):
        for i in range(5):
            sim.schedule(i + 1, lambda: None)
        assert sim.run() == 5


class TestDeterminism:
    def test_identical_runs(self):
        def build_and_run():
            sim = Simulator()
            log = []
            for i in range(100):
                sim.schedule((i * 7919) % 1000 + 1,
                             lambda i=i: log.append(i))
            sim.run()
            return log

        assert build_and_run() == build_and_run()
