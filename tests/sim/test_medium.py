"""Medium semantics: delivery, collisions, carrier sense, utilisation,
per-station dispatch."""

import pytest

from repro.sim.medium import Medium
from repro.sim.units import usec

from tests.helpers import FakeFrame, RecordingListener


class AddressedListener(RecordingListener):
    """Listener with a MAC address that tells received from overheard."""

    def __init__(self, sim, address):
        super().__init__(sim, address)
        self.address = address

    def on_frame_overheard(self, frame, sender) -> None:
        self.events.append(("oh", self.sim.now, frame, sender))


def make_net(sim, n=3, loss_model=None):
    medium = Medium(sim, loss_model=loss_model)
    nodes = [RecordingListener(sim, f"n{i}") for i in range(n)]
    for node in nodes:
        medium.attach(node)
    return medium, nodes


class TestDelivery:
    def test_frame_delivered_to_all_but_sender(self, sim):
        medium, (a, b, c) = make_net(sim)
        frame = FakeFrame("hello")
        medium.transmit(a, frame, usec(100))
        sim.run()
        assert len(b.of_kind("rx")) == 1
        assert len(c.of_kind("rx")) == 1
        assert len(a.of_kind("rx")) == 0

    def test_delivery_at_frame_end(self, sim):
        medium, (a, b, _) = make_net(sim)
        medium.transmit(a, FakeFrame(), usec(100))
        sim.run()
        assert b.of_kind("rx")[0][1] == usec(100)

    def test_sender_identity_passed(self, sim):
        medium, (a, b, _) = make_net(sim)
        medium.transmit(a, FakeFrame(), usec(10))
        sim.run()
        assert b.of_kind("rx")[0][3] is a

    def test_zero_duration_rejected(self, sim):
        medium, (a, _, _) = make_net(sim)
        with pytest.raises(ValueError):
            medium.transmit(a, FakeFrame(), 0)


class TestCollisions:
    def test_overlap_corrupts_both(self, sim):
        medium, (a, b, c) = make_net(sim)
        medium.transmit(a, FakeFrame("f1"), usec(100))
        sim.schedule(usec(50),
                     lambda: medium.transmit(b, FakeFrame("f2"), usec(100)))
        sim.run()
        # c hears both frames as errors.
        assert len(c.of_kind("err")) == 2
        assert len(c.of_kind("rx")) == 0
        assert medium.frames_collided == 2

    def test_same_instant_collision(self, sim):
        medium, (a, b, c) = make_net(sim)
        medium.transmit(a, FakeFrame("f1"), usec(100))
        medium.transmit(b, FakeFrame("f2"), usec(100))
        sim.run()
        assert len(c.of_kind("err")) == 2

    def test_back_to_back_do_not_collide(self, sim):
        medium, (a, b, c) = make_net(sim)
        medium.transmit(a, FakeFrame("f1"), usec(100))
        sim.schedule(usec(100),
                     lambda: medium.transmit(b, FakeFrame("f2"), usec(50)))
        sim.run()
        assert len(c.of_kind("rx")) == 2
        assert medium.frames_collided == 0

    def test_three_way_collision(self, sim):
        medium, nodes = make_net(sim, n=4)
        for node in nodes[:3]:
            medium.transmit(node, FakeFrame(), usec(10))
        sim.run()
        assert medium.frames_collided == 3
        # The idle fourth node hears three errors.
        assert len(nodes[3].of_kind("err")) == 3


class TestCarrierSense:
    def test_busy_and_idle_notifications(self, sim):
        medium, (a, b, _) = make_net(sim)
        medium.transmit(a, FakeFrame(), usec(100))
        sim.run()
        assert ("busy", 0) in b.events
        assert ("idle", usec(100)) in b.events

    def test_busy_property(self, sim):
        medium, (a, _, _) = make_net(sim)
        assert not medium.busy
        medium.transmit(a, FakeFrame(), usec(100))
        assert medium.busy
        sim.run()
        assert not medium.busy

    def test_idle_only_after_last_overlapping_tx(self, sim):
        medium, (a, b, c) = make_net(sim)
        medium.transmit(a, FakeFrame(), usec(100))
        sim.schedule(usec(50),
                     lambda: medium.transmit(b, FakeFrame(), usec(100)))
        sim.run()
        idles = c.of_kind("idle")
        assert len(idles) == 1
        assert idles[0][1] == usec(150)

    def test_idle_notified_before_frame_delivery(self, sim):
        medium, (a, b, _) = make_net(sim)
        medium.transmit(a, FakeFrame(), usec(100))
        sim.run()
        kinds = [e[0] for e in b.events]
        assert kinds.index("idle") < kinds.index("rx")


class TestLossModel:
    def test_loss_model_consulted(self, sim):
        class AlwaysLose:
            def is_lost(self, sender, receiver, frame):
                return True

        medium, (a, b, _) = make_net(sim)
        medium.loss_model = AlwaysLose()
        medium.transmit(a, FakeFrame(), usec(10))
        sim.run()
        assert len(b.of_kind("err")) == 1
        assert len(b.of_kind("rx")) == 0

    def test_per_receiver_loss(self, sim):
        class LoseForB:
            def __init__(self, b):
                self.b = b

            def is_lost(self, sender, receiver, frame):
                return receiver is self.b

        medium, (a, b, c) = make_net(sim)
        medium.loss_model = LoseForB(b)
        medium.transmit(a, FakeFrame(), usec(10))
        sim.run()
        assert len(b.of_kind("err")) == 1
        assert len(c.of_kind("rx")) == 1


class TestAddressDispatch:
    def make_addressed(self, sim, n=3):
        medium = Medium(sim)
        nodes = [AddressedListener(sim, f"S{i}") for i in range(n)]
        for node in nodes:
            medium.attach(node)
        return medium, nodes

    def test_addressed_station_receives_others_overhear(self, sim):
        medium, (a, b, c) = self.make_addressed(sim)
        medium.transmit(a, FakeFrame(dst="S1"), usec(10))
        sim.run()
        assert len(b.of_kind("rx")) == 1
        assert len(b.of_kind("oh")) == 0
        assert len(c.of_kind("oh")) == 1
        assert len(c.of_kind("rx")) == 0
        assert len(a.of_kind("rx")) + len(a.of_kind("oh")) == 0

    def test_unknown_destination_is_overheard_by_all(self, sim):
        medium, (a, b, c) = self.make_addressed(sim)
        medium.transmit(a, FakeFrame(dst="nobody"), usec(10))
        sim.run()
        assert len(b.of_kind("oh")) == 1
        assert len(c.of_kind("oh")) == 1

    def test_default_overheard_forwards_to_received(self, sim):
        # Address-less listeners (plain MediumListener subclasses) keep
        # the historical promiscuous behaviour.
        medium, (a, b, _) = make_net(sim)
        medium.transmit(a, FakeFrame(dst="S1"), usec(10))
        sim.run()
        assert len(b.of_kind("rx")) == 1

    def test_collisions_reach_everyone_as_errors(self, sim):
        medium, (a, b, c) = self.make_addressed(sim)
        medium.transmit(a, FakeFrame(dst="S1"), usec(10))
        medium.transmit(c, FakeFrame(dst="S1"), usec(10))
        sim.run()
        assert len(b.of_kind("err")) == 2
        assert len(b.of_kind("rx")) + len(b.of_kind("oh")) == 0

    def test_busy_until_tracks_longest_transmission(self, sim):
        medium, (a, b, _) = self.make_addressed(sim)
        assert medium.busy_until is None
        medium.transmit(a, FakeFrame(dst="S1"), usec(100))
        medium.transmit(b, FakeFrame(dst="S0"), usec(250))
        assert medium.busy_until == usec(250)
        sim.run()
        assert medium.busy_until is None


class TestUtilisation:
    def test_utilisation_fraction(self, sim):
        medium, (a, _, _) = make_net(sim)
        medium.transmit(a, FakeFrame(), usec(100))
        sim.run(until=usec(400))
        assert medium.utilisation() == pytest.approx(0.25)

    def test_sub_window_clamped_to_one(self, sim):
        # A measurement window shorter than the accumulated busy time
        # used to report >100% utilisation.
        medium, (a, _, _) = make_net(sim)
        medium.transmit(a, FakeFrame(), usec(100))
        sim.run(until=usec(400))
        assert medium.utilisation(usec(50)) == 1.0

    def test_negative_window_raises(self, sim):
        medium, _ = make_net(sim)
        with pytest.raises(ValueError):
            medium.utilisation(-1)

    def test_zero_window_is_zero(self, sim):
        medium, _ = make_net(sim)
        assert medium.utilisation(0) == 0.0

    def test_in_flight_busy_time_counted(self, sim):
        medium, (a, _, _) = make_net(sim)
        medium.transmit(a, FakeFrame(), usec(100))
        sim.run(until=usec(50))
        assert medium.utilisation() == pytest.approx(1.0)

    def test_busy_time_counts_overlap_once(self, sim):
        medium, (a, b, _) = make_net(sim)
        medium.transmit(a, FakeFrame(), usec(100))
        medium.transmit(b, FakeFrame(), usec(100))
        sim.run(until=usec(200))
        assert medium.busy_time == usec(100)

    def test_observer_called(self, sim):
        medium, (a, _, _) = make_net(sim)
        seen = []
        medium.observers.append(seen.append)
        medium.transmit(a, FakeFrame(), usec(10))
        sim.run()
        assert len(seen) == 1
        assert seen[0].sender is a
