"""Wired link: serialisation, propagation, FIFO, drop-tail."""

import pytest

from repro.sim.units import MS, usec
from repro.sim.wired import WiredLink, WiredPipe

from tests.helpers import FakeFrame


class Sink:
    def __init__(self):
        self.received = []

    def receive_wired(self, packet):
        self.received.append(packet)


class TestWiredPipe:
    def test_serialisation_plus_propagation(self, sim):
        got = []

        def deliver(p):
            got.append((sim.now, p))

        pipe = WiredPipe(sim, rate_mbps=8.0, delay_ns=MS, deliver=deliver)
        pipe.send(FakeFrame(byte_length=1000))  # 8000 bits @ 8Mbps = 1ms
        sim.run()
        assert got[0][0] == 2 * MS

    def test_fifo_order(self, sim):
        got = []
        pipe = WiredPipe(sim, 100.0, 0, lambda p: got.append(p.name))
        for name in "abc":
            pipe.send(FakeFrame(name))
        sim.run()
        assert got == ["a", "b", "c"]

    def test_back_to_back_serialisation(self, sim):
        times = []
        pipe = WiredPipe(sim, 8.0, 0, lambda p: times.append(sim.now))
        pipe.send(FakeFrame(byte_length=1000))
        pipe.send(FakeFrame(byte_length=1000))
        sim.run()
        assert times == [MS, 2 * MS]

    def test_queue_limit_drop_tail(self, sim):
        pipe = WiredPipe(sim, 1.0, 0, lambda p: None, queue_limit=2)
        # First packet starts transmitting immediately (leaves queue).
        assert pipe.send(FakeFrame(byte_length=10_000))
        assert pipe.send(FakeFrame(byte_length=10_000))
        assert pipe.send(FakeFrame(byte_length=10_000))
        assert not pipe.send(FakeFrame(byte_length=10_000))
        assert pipe.packets_dropped == 1

    def test_counters(self, sim):
        pipe = WiredPipe(sim, 100.0, 0, lambda p: None)
        pipe.send(FakeFrame(byte_length=500))
        sim.run()
        assert pipe.packets_sent == 1
        assert pipe.bytes_sent == 500

    def test_counters_reflect_serialisation_not_delivery(self, sim):
        # 8000 bits @ 8 Mbps serialise by 1 ms; propagation adds 1 ms.
        pipe = WiredPipe(sim, 8.0, MS, lambda p: None)
        pipe.send(FakeFrame(byte_length=1000))
        sim.run(until=MS + usec(1))
        assert pipe.packets_sent == 1  # on the wire, not yet delivered
        assert pipe.bytes_sent == 1000

    def test_bookkeeping_stays_bounded_without_queue_limit(self, sim):
        # Regression: the accepted-packet deque must be pruned even on
        # unlimited pipes (every scenario's backhaul), not only when a
        # queue-limit check happens to read it.
        pipe = WiredPipe(sim, 100.0, usec(10), lambda p: None)
        for _ in range(1000):
            pipe.send(FakeFrame(byte_length=1000))
            sim.run()
        assert len(pipe._pending) <= 1

    def test_invalid_params(self, sim):
        with pytest.raises(ValueError):
            WiredPipe(sim, 0.0, 0, lambda p: None)
        with pytest.raises(ValueError):
            WiredPipe(sim, 10.0, -1, lambda p: None)


class TestWiredLink:
    def test_bidirectional(self, sim):
        a, b = Sink(), Sink()
        link = WiredLink(sim, a, b, 100.0, usec(10))
        link.send_from(a, FakeFrame("to-b"))
        link.send_from(b, FakeFrame("to-a"))
        sim.run()
        assert b.received[0].name == "to-b"
        assert a.received[0].name == "to-a"

    def test_foreign_endpoint_rejected(self, sim):
        a, b, c = Sink(), Sink(), Sink()
        link = WiredLink(sim, a, b, 100.0, 0)
        with pytest.raises(ValueError):
            link.send_from(c, FakeFrame())

    def test_pipes_accessor(self, sim):
        a, b = Sink(), Sink()
        link = WiredLink(sim, a, b, 100.0, 0)
        ab, ba = link.pipes()
        link.send_from(a, FakeFrame())
        sim.run()
        assert ab.packets_sent == 1
        assert ba.packets_sent == 0
