"""Multi-cell Medium semantics: per-cell dispatch groups sharing one
collision domain (carrier sense and collisions are global; decoding —
and its cost — stays inside the transmitter's cell)."""

import pytest

from repro.sim.medium import DEFAULT_CELL, Medium
from repro.sim.units import usec

from tests.helpers import FakeFrame, RecordingListener


class AddressedListener(RecordingListener):
    """Listener with a MAC address that tells received from overheard."""

    def __init__(self, sim, address):
        super().__init__(sim, address)
        self.address = address

    def on_frame_overheard(self, frame, sender) -> None:
        self.events.append(("oh", self.sim.now, frame, sender))


def two_cells(sim, loss_model=None):
    """Two 2-station cells; addresses deliberately duplicated across
    cells ('AP' in both) to prove dispatch resolves per cell."""
    medium = Medium(sim, loss_model=loss_model)
    cell_a = [AddressedListener(sim, "AP"),
              AddressedListener(sim, "C1")]
    cell_b = [AddressedListener(sim, "AP"),
              AddressedListener(sim, "C1")]
    for node in cell_a:
        medium.attach(node, cell=0)
    for node in cell_b:
        medium.attach(node, cell=1)
    return medium, cell_a, cell_b


class TestCellDispatch:
    def test_intact_frame_stays_in_sender_cell(self, sim):
        medium, (ap_a, c1_a), (ap_b, c1_b) = two_cells(sim)
        medium.transmit(ap_a, FakeFrame(dst="C1"), usec(100))
        sim.run()
        assert len(c1_a.of_kind("rx")) == 1      # addressed, own cell
        assert len(ap_a.of_kind("rx")) == 0      # the sender
        # The other cell senses energy only: busy/idle, no decode.
        for node in (ap_b, c1_b):
            assert node.of_kind("rx") == []
            assert node.of_kind("oh") == []
            assert node.of_kind("err") == []
            assert len(node.of_kind("busy")) == 1
            assert len(node.of_kind("idle")) == 1

    def test_duplicate_addresses_resolve_per_cell(self, sim):
        medium, (ap_a, c1_a), (ap_b, c1_b) = two_cells(sim)
        medium.transmit(c1_b, FakeFrame(dst="AP"), usec(50))
        sim.run()
        assert len(ap_b.of_kind("rx")) == 1      # cell B's AP, not A's
        assert ap_a.of_kind("rx") == []
        assert ap_a.of_kind("oh") == []

    def test_overheard_within_cell_only(self, sim):
        medium, (ap_a, c1_a), (ap_b, c1_b) = two_cells(sim)
        third = AddressedListener(sim, "C2")
        medium.attach(third, cell=0)
        medium.transmit(ap_a, FakeFrame(dst="C1"), usec(10))
        sim.run()
        assert len(third.of_kind("oh")) == 1     # same cell, other dst
        assert c1_b.of_kind("oh") == []          # other cell: nothing

    def test_cross_cell_collision_corrupts_both_everywhere(self, sim):
        medium, (ap_a, c1_a), (ap_b, c1_b) = two_cells(sim)
        medium.transmit(ap_a, FakeFrame("fa", dst="C1"), usec(100))
        sim.schedule(usec(40), medium.transmit, ap_b,
                     FakeFrame("fb", dst="C1"), usec(100))
        sim.run()
        # Both frames are garbage for every station on the channel.
        assert len(c1_a.of_kind("err")) == 2
        assert len(c1_b.of_kind("err")) == 2
        assert c1_a.of_kind("rx") == []
        assert c1_b.of_kind("rx") == []
        assert medium.frames_collided == 2

    def test_busy_idle_broadcast_across_cells(self, sim):
        medium, cell_a, cell_b = two_cells(sim)
        medium.transmit(cell_a[0], FakeFrame(dst="C1"), usec(100))
        sim.run()
        for node in cell_a[1:] + cell_b:
            assert node.of_kind("busy") == [("busy", 0)]
            assert node.of_kind("idle") == [("idle", usec(100))]

    def test_unattached_sender_transmits_in_default_cell(self, sim):
        medium, (ap_a, c1_a), (ap_b, c1_b) = two_cells(sim)
        stranger = object()
        medium.transmit(stranger, FakeFrame(dst="C1"), usec(10))
        sim.run()
        assert len(c1_a.of_kind("rx")) == 1
        assert c1_b.of_kind("rx") == []
        assert medium.cell_stats(DEFAULT_CELL)["frames_sent"] == 1


class TestCellAccounting:
    def test_cell_keys_and_cell_of(self, sim):
        medium, (ap_a, _), (ap_b, _) = two_cells(sim)
        assert medium.cell_keys() == [0, 1]
        assert medium.cell_of(ap_a) == 0
        assert medium.cell_of(ap_b) == 1
        assert medium.cell_of(object()) == DEFAULT_CELL

    def test_clean_airtime_credited_to_sender_cell(self, sim):
        medium, (ap_a, _), (ap_b, _) = two_cells(sim)
        medium.transmit(ap_a, FakeFrame(dst="C1"), usec(100))
        sim.schedule(usec(200), medium.transmit, ap_b,
                     FakeFrame(dst="C1"), usec(50))
        sim.run()
        assert medium.cell_stats(0)["airtime_ns"] == usec(100)
        assert medium.cell_stats(1)["airtime_ns"] == usec(50)
        assert medium.cell_stats(0)["frames_sent"] == 1
        assert medium.cell_stats(0)["frames_collided"] == 0

    def test_collided_airtime_not_credited(self, sim):
        medium, (ap_a, _), (ap_b, _) = two_cells(sim)
        medium.transmit(ap_a, FakeFrame(dst="C1"), usec(100))
        sim.schedule(usec(40), medium.transmit, ap_b,
                     FakeFrame(dst="C1"), usec(100))
        sim.run()
        assert medium.cell_stats(0)["airtime_ns"] == 0
        assert medium.cell_stats(1)["airtime_ns"] == 0
        assert medium.cell_stats(0)["frames_collided"] == 1
        assert medium.cell_stats(1)["frames_collided"] == 1
        # The channel was still busy for the overlap's span.
        assert medium.busy_time == usec(140)

    def test_airtime_share_window(self, sim):
        medium, (ap_a, _), _ = two_cells(sim)
        medium.transmit(ap_a, FakeFrame(dst="C1"), usec(100))
        sim.run()
        assert medium.cell_airtime_share(0, usec(200)) == \
            pytest.approx(0.5)
        assert medium.cell_airtime_share(1, usec(200)) == 0.0
        # Shorter-than-busy windows clamp, like utilisation().
        assert medium.cell_airtime_share(0, usec(10)) == 1.0
        with pytest.raises(ValueError):
            medium.cell_airtime_share(0, -1)

    def test_unknown_cell_reads_as_empty(self, sim):
        medium = Medium(sim)
        assert medium.cell_stats("nope") == {
            "airtime_ns": 0, "frames_sent": 0, "frames_collided": 0}
        assert medium.cell_airtime_share("nope", usec(1)) == 0.0
