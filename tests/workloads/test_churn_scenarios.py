"""Registry churn scenarios, UDP background knob, determinism."""

import json

import pytest

from repro import HackPolicy, ScenarioConfig, run_scenario
from repro.experiments.batch import SweepRunner
from repro.sim.units import MS
from repro.workloads import registry

CHURN_NAMES = ("churn-poisson", "churn-poisson-vanilla", "churn-web",
               "churn-web-vanilla", "churn-bursty")

#: Short windows so the whole file stays CI-friendly.
QUICK = dict(duration_ns=700 * MS, warmup_ns=300 * MS)


class TestChurnRegistry:
    def test_all_registered(self):
        assert set(CHURN_NAMES) | {"udp-background"} <= \
            set(registry.names())

    @pytest.mark.parametrize("name", CHURN_NAMES)
    def test_runs_and_completes_flows(self, name):
        res = run_scenario(registry.build(name, **QUICK))
        assert res.fct is not None
        assert res.fct["flows_completed"] > 0
        for p in ("p50", "p95", "p99"):
            assert res.fct["fct_ms"][p] > 0

    def test_policy_pairs_differ_only_in_policy(self):
        hack = registry.build("churn-poisson")
        stock = registry.build("churn-poisson-vanilla")
        assert hack.policy is HackPolicy.MORE_DATA
        assert stock.policy is HackPolicy.VANILLA
        assert hack.arrivals == stock.arrivals


class TestUdpBackground:
    def test_background_traffic_flows(self):
        res = run_scenario(registry.build("udp-background",
                                          duration_ns=1000 * MS,
                                          warmup_ns=400 * MS))
        noise = res.udp_background_goodput_mbps
        tcp = {k: v for k, v in res.per_flow_goodput_mbps.items()
               if k > 0}
        assert sorted(noise) == ["C1", "C2"]   # one source per client
        assert all(v > 1.0 for v in noise.values())
        assert len(tcp) == 2
        assert all(v > 5.0 for v in tcp.values())
        # Noise is environment, not workload: it must not inflate the
        # headline goodput (which is what HACK-vs-stock compares).
        assert not any(k < 0 for k in res.per_flow_goodput_mbps)
        assert res.aggregate_goodput_mbps == pytest.approx(
            sum(tcp.values()))
        assert 0.5 < res.fairness_index <= 1.0
        assert res.metrics_dict()[
            "udp_background_goodput_mbps"].keys() == {"C1", "C2"}

    def test_knob_composes_with_churn(self):
        cfg = registry.build("churn-poisson", udp_background_mbps=5.0,
                             **QUICK)
        res = run_scenario(cfg)
        assert res.fct["flows_completed"] > 0
        assert res.udp_background_goodput_mbps.keys() == {"C1", "C2"}

    def test_rejected_for_udp_download(self):
        with pytest.raises(ValueError, match="udp_background_mbps"):
            run_scenario(ScenarioConfig(traffic="udp_download",
                                        udp_background_mbps=5.0,
                                        **QUICK))

    def test_zero_means_off(self):
        res = run_scenario(registry.build("quickstart",
                                          **QUICK))
        assert res.udp_background_goodput_mbps == {}
        assert not any(k < 0 for k in res.per_flow_goodput_mbps)


class TestChurnDeterminism:
    """Satellite: churn rows must be bit-identical serial vs --jobs N
    and across repeated runs with the same seed."""

    def _spec(self):
        spec = registry.sweep_spec("churn-web", seeds=(1, 2),
                                   **QUICK)
        for point in registry.sweep_spec("churn-poisson", seeds=(1,),
                                         **QUICK).points:
            spec.points.append(point)
        return spec

    def test_serial_equals_parallel_and_repeat(self):
        spec = self._spec()
        serial = SweepRunner(jobs=None).run(spec)
        parallel = SweepRunner(jobs=2).run(spec)
        repeat = SweepRunner(jobs=None).run(spec)

        def canon(result):
            return json.dumps(
                [[list(r.key), r.seed, r.metrics]
                 for r in result.records], sort_keys=True)

        assert canon(serial) == canon(parallel)
        assert canon(serial) == canon(repeat)
        # Per-flow records themselves are identical, not just the
        # aggregates: per-process RNG streams are interleaving-proof.
        for rec_a, rec_b in zip(serial.records, parallel.records):
            assert rec_a.metrics["fct"]["flows"] == \
                rec_b.metrics["fct"]["flows"]
            assert rec_a.metrics["fct"]["flows_completed"] > 0

    def test_different_seeds_differ(self):
        rows = SweepRunner().run(
            registry.sweep_spec("churn-poisson", seeds=(1, 2),
                                **QUICK))
        a, b = (r.metrics["fct"]["flows"] for r in rows.records)
        assert a != b
