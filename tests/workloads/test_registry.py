"""Scenario-registry tests: lookups, overrides, errors, sweep bridge."""

import pytest

from repro.core.policies import HackPolicy
from repro.workloads import UnknownScenarioError, registry
from repro.workloads.scenarios import ScenarioConfig


class TestLookup:
    def test_builtin_scenarios_registered(self):
        assert {"quickstart", "lossy-link", "multi-client",
                "wireless-backup", "sora-testbed"} <= \
            set(registry.names())

    def test_get_returns_described_entry(self):
        entry = registry.get("quickstart")
        assert entry.name == "quickstart"
        assert "150 Mbps" in entry.description

    def test_unknown_name_raises_with_suggestion(self):
        with pytest.raises(UnknownScenarioError) as err:
            registry.get("quickstrt")
        assert "quickstart" in str(err.value)
        assert err.value.suggestions == ["quickstart"]

    def test_unknown_name_lists_known(self):
        with pytest.raises(UnknownScenarioError, match="multi-client"):
            registry.get("zzz-not-a-scenario")

    def test_describe_all_is_sorted(self):
        names = [e["name"] for e in registry.describe_all()]
        assert names == sorted(names)


class TestBuild:
    def test_build_mirrors_example(self):
        config = registry.build("multi-client")
        assert isinstance(config, ScenarioConfig)
        assert config.n_clients == 4
        assert config.phy_mode == "11n"
        assert config.policy is HackPolicy.MORE_DATA

    def test_build_applies_seed_and_overrides(self):
        config = registry.build("quickstart", seed=7,
                                policy=HackPolicy.VANILLA,
                                n_clients=3)
        assert config.seed == 7
        assert config.policy is HackPolicy.VANILLA
        assert config.n_clients == 3

    def test_build_rejects_unknown_fields(self):
        with pytest.raises(TypeError, match="unknown config fields"):
            registry.build("quickstart", bogus_field=1)

    def test_factories_return_fresh_configs(self):
        a = registry.build("wireless-backup")
        b = registry.build("wireless-backup")
        assert a is not b
        assert a.traffic == "tcp_upload"
        assert a.file_bytes == b.file_bytes == 20_000_000

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register("quickstart", "dup")(
                lambda: ScenarioConfig())


class TestSweepBridge:
    def test_sweep_spec_expands_seeds(self):
        spec = registry.sweep_spec("lossy-link", seeds=(1, 2, 3))
        assert spec.name == "scenario:lossy-link"
        assert len(spec) == 3
        assert spec.keys() == [("lossy-link",)]
        assert [p.config.seed for p in spec.points] == [1, 2, 3]

    def test_sweep_spec_applies_overrides(self):
        spec = registry.sweep_spec("quickstart", seeds=(1,),
                                   n_clients=2)
        assert spec.points[0].config.n_clients == 2
