"""Scenario-level transport & queue knobs: cc, pacing,
queue_discipline, the always-present "aqm" metrics block, and the new
registry entries."""

import pytest

from repro import HackPolicy, ScenarioConfig, run_scenario
from repro.sim.units import MS
from repro.workloads import registry


def quick(**kw):
    defaults = dict(phy_mode="11n", data_rate_mbps=150.0, n_clients=1,
                    traffic="tcp_download", policy=HackPolicy.MORE_DATA,
                    duration_ns=1000 * MS, warmup_ns=400 * MS,
                    stagger_ns=0)
    defaults.update(kw)
    return ScenarioConfig(**defaults)


class TestAqmMetricsBlock:
    def test_always_present_with_defaults(self):
        metrics = run_scenario(quick()).metrics_dict()
        aqm = metrics["aqm"]
        assert aqm["discipline"] == "droptail"
        assert aqm["drops"] == 0            # tail drops are the MAC's
        assert aqm["marks"] == 0
        assert aqm["dequeued"] > 0
        # Sojourn percentiles exist for every discipline, so the CI
        # gate can compare drop-tail against CoDel.
        assert aqm["sojourn_p50_ms"] is not None
        assert aqm["sojourn_p50_ms"] <= aqm["sojourn_p99_ms"]
        assert aqm["sojourn_bins"]

    def test_discipline_reflected(self):
        res = run_scenario(quick(queue_discipline="codel"))
        assert res.metrics_dict()["aqm"]["discipline"] == "codel"


class TestTransportKnobs:
    def test_defaults_are_legacy_stack(self):
        cfg = ScenarioConfig()
        assert cfg.cc == "reno"
        assert cfg.pacing is False
        assert cfg.queue_discipline == "droptail"

    @pytest.mark.parametrize("kw", [dict(cc="cubic"),
                                    dict(pacing=True),
                                    dict(queue_discipline="codel"),
                                    dict(queue_discipline="fq_codel")])
    def test_each_knob_runs_end_to_end(self, kw):
        res = run_scenario(quick(**kw))
        assert res.aggregate_goodput_mbps > 40
        assert res.decomp_counters["crc_failures"] == 0

    def test_knobs_are_deterministic(self):
        cfg = quick(cc="cubic", pacing=True,
                    queue_discipline="fq_codel")
        assert run_scenario(cfg).metrics_dict() == \
            run_scenario(cfg).metrics_dict()


class TestTransportRegistryEntries:
    def test_registered(self):
        assert {"churn-cubic-codel", "churn-paced", "aqm-fqcodel"} <= \
            set(registry.names())

    def test_configs_match_their_story(self):
        cubic = registry.build("churn-cubic-codel")
        assert cubic.cc == "cubic"
        assert cubic.queue_discipline == "codel"
        paced = registry.build("churn-paced")
        assert paced.pacing is True
        fq = registry.build("aqm-fqcodel")
        assert fq.queue_discipline == "fq_codel"
        assert fq.udp_background_mbps == 50.0

    def test_aqm_fqcodel_runs_and_counts_sojourn(self):
        cfg = registry.build("aqm-fqcodel", duration_ns=700 * MS,
                             warmup_ns=300 * MS)
        res = run_scenario(cfg)
        aqm = res.metrics_dict()["aqm"]
        assert aqm["discipline"] == "fq_codel"
        assert aqm["dequeued"] > 0
        assert res.fct["flows_completed"] > 0
