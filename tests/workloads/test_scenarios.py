"""Integration tests: full scenarios through the public API.

These are the system-level checks: a complete simulated WLAN (server,
wired link, AP, clients, TCP/UDP) run end-to-end under each policy.
Durations are kept short; assertions target invariants and coarse
magnitudes rather than exact numbers.
"""

import pytest

from repro import HackPolicy, LossSpec, ScenarioConfig, run_scenario
from repro.sim.units import MS, SEC, usec


def quick(policy=HackPolicy.VANILLA, **kw):
    defaults = dict(phy_mode="11n", data_rate_mbps=150.0, n_clients=1,
                    traffic="tcp_download", policy=policy,
                    duration_ns=1500 * MS, warmup_ns=700 * MS,
                    stagger_ns=0)
    defaults.update(kw)
    return ScenarioConfig(**defaults)


class TestTcpDownload11n:
    def test_vanilla_reasonable_goodput(self):
        res = run_scenario(quick())
        assert 70 < res.aggregate_goodput_mbps < 123

    def test_hack_beats_vanilla(self):
        vanilla = run_scenario(quick())
        hack = run_scenario(quick(HackPolicy.MORE_DATA))
        assert hack.aggregate_goodput_mbps > \
            1.05 * vanilla.aggregate_goodput_mbps

    def test_hack_stays_below_analytic_bound(self):
        from repro.analysis.capacity import hack_goodput_11n
        hack = run_scenario(quick(HackPolicy.MORE_DATA))
        assert hack.aggregate_goodput_mbps < hack_goodput_11n(150.0)

    def test_no_crc_failures_or_stalls(self):
        res = run_scenario(quick(HackPolicy.MORE_DATA))
        assert res.decomp_counters["crc_failures"] == 0
        assert all(c["timeouts"] == 0
                   for c in res.sender_counters.values())

    def test_hack_reduces_collisions(self):
        vanilla = run_scenario(quick())
        hack = run_scenario(quick(HackPolicy.MORE_DATA))
        assert hack.medium_frames_collided < vanilla.medium_frames_collided

    def test_hack_attaches_payloads(self):
        res = run_scenario(quick(HackPolicy.MORE_DATA))
        assert res.driver_stats["C1"].hack_frames_attached > 0
        assert res.decomp_counters["acks_reconstructed"] > 100

    def test_augmented_acks_fit_aifs(self):
        # §3.3.2 footnote: ~98.5% of augmented LL ACKs fit within AIFS.
        res = run_scenario(quick(HackPolicy.MORE_DATA))
        assert res.mac_stats.hack_fit_fraction() > 0.9


class TestTcpDownload11a:
    def test_vanilla_and_hack(self):
        vanilla = run_scenario(quick(phy_mode="11a",
                                     data_rate_mbps=54.0))
        hack = run_scenario(quick(HackPolicy.MORE_DATA, phy_mode="11a",
                                  data_rate_mbps=54.0))
        assert 17 < vanilla.aggregate_goodput_mbps < 27
        assert hack.aggregate_goodput_mbps > \
            vanilla.aggregate_goodput_mbps
        assert hack.aggregate_goodput_mbps < 30.5


class TestUdp:
    def test_udp_saturates_channel(self):
        res = run_scenario(quick(traffic="udp_download",
                                 udp_rate_mbps=200.0))
        assert 120 < res.aggregate_goodput_mbps < 140

    def test_udp_11a(self):
        res = run_scenario(quick(traffic="udp_download", phy_mode="11a",
                                 data_rate_mbps=54.0,
                                 udp_rate_mbps=40.0))
        # Paper: ideal-MAC UDP at 54 Mbps is ~30 Mbps.
        assert 27 < res.aggregate_goodput_mbps < 31


class TestMultiClient:
    def test_aggregate_roughly_flat_with_clients(self):
        one = run_scenario(quick(HackPolicy.MORE_DATA))
        four = run_scenario(quick(HackPolicy.MORE_DATA, n_clients=4,
                                  stagger_ns=50 * MS,
                                  duration_ns=2 * SEC,
                                  warmup_ns=1 * SEC))
        assert four.aggregate_goodput_mbps > \
            0.75 * one.aggregate_goodput_mbps

    def test_fairness_across_clients(self):
        res = run_scenario(quick(HackPolicy.MORE_DATA, n_clients=4,
                                 stagger_ns=50 * MS,
                                 duration_ns=2 * SEC,
                                 warmup_ns=1 * SEC))
        rates = list(res.per_flow_goodput_mbps.values())
        assert min(rates) > 0.4 * max(rates)


class TestUpload:
    def test_hack_symmetric_for_uploads(self):
        # §3.1: "TCP/HACK is a fully symmetric design" — for uploads
        # the AP compresses the server's TCP ACKs.
        vanilla = run_scenario(quick(traffic="tcp_upload"))
        hack = run_scenario(quick(HackPolicy.MORE_DATA,
                                  traffic="tcp_upload"))
        assert vanilla.aggregate_goodput_mbps > 50
        assert hack.aggregate_goodput_mbps > \
            vanilla.aggregate_goodput_mbps
        assert hack.driver_stats["AP"].hack_frames_attached > 0


class TestLossy:
    def test_uniform_loss_still_works(self):
        res = run_scenario(quick(
            HackPolicy.MORE_DATA,
            loss=LossSpec(kind="uniform", data_loss=0.05)))
        assert res.aggregate_goodput_mbps > 40
        assert res.decomp_counters["crc_failures"] == 0

    def test_snr_sweep_monotone(self):
        goodputs = []
        for snr in (18.0, 26.0, 34.0):
            res = run_scenario(quick(
                HackPolicy.MORE_DATA,
                loss=LossSpec(kind="snr", snr_db=snr)))
            goodputs.append(res.aggregate_goodput_mbps)
        assert goodputs[0] < goodputs[-1]

    def test_sora_quirks(self):
        res = run_scenario(quick(
            phy_mode="11a", data_rate_mbps=54.0,
            extra_response_delay_ns=usec(37),
            ack_timeout_extra_ns=usec(60)))
        # Late LL ACKs shave throughput but must not break anything.
        assert 14 < res.aggregate_goodput_mbps < 25


class TestFiniteTransfer:
    def test_file_download_completes(self):
        res = run_scenario(quick(
            HackPolicy.MORE_DATA, file_bytes=2_000_000,
            duration_ns=3 * SEC))
        assert res.completion_times_ns[1] is not None
        assert res.per_flow_goodput_mbps[1] > 30


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_scenario(quick(HackPolicy.MORE_DATA, seed=5))
        b = run_scenario(quick(HackPolicy.MORE_DATA, seed=5))
        assert a.per_flow_goodput_mbps == b.per_flow_goodput_mbps
        assert a.medium_frames_sent == b.medium_frames_sent

    def test_different_seed_differs(self):
        a = run_scenario(quick(HackPolicy.MORE_DATA, seed=5))
        b = run_scenario(quick(HackPolicy.MORE_DATA, seed=6))
        assert a.medium_frames_sent != b.medium_frames_sent
