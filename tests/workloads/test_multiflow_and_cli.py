"""Multi-flow scenarios and the top-level CLI."""

import pytest

from repro import HackPolicy, ScenarioConfig, run_scenario
from repro.cli import main as cli_main
from repro.sim.units import MS, SEC


class TestFlowsPerClient:
    def test_flow_count(self):
        res = run_scenario(ScenarioConfig(
            phy_mode="11n", data_rate_mbps=150.0, n_clients=2,
            flows_per_client=2, policy=HackPolicy.MORE_DATA,
            duration_ns=1500 * MS, warmup_ns=700 * MS,
            stagger_ns=20 * MS))
        assert sorted(res.per_flow_goodput_mbps) == [1, 2, 3, 4]

    def test_flows_share_capacity_fairly(self):
        res = run_scenario(ScenarioConfig(
            phy_mode="11n", data_rate_mbps=150.0, n_clients=1,
            flows_per_client=3, policy=HackPolicy.MORE_DATA,
            duration_ns=2 * SEC, warmup_ns=1 * SEC,
            stagger_ns=20 * MS))
        assert res.fairness_index > 0.8
        assert res.aggregate_goodput_mbps > 90

    def test_ap_queue_scales_with_flows(self):
        # The paper sizes the AP queue per *flow*; with three flows the
        # slow-start overshoot of one flow must not starve the others.
        res = run_scenario(ScenarioConfig(
            phy_mode="11n", data_rate_mbps=150.0, n_clients=1,
            flows_per_client=3, policy=HackPolicy.VANILLA,
            duration_ns=2 * SEC, warmup_ns=1 * SEC,
            stagger_ns=20 * MS))
        assert min(res.per_flow_goodput_mbps.values()) > 5

    def test_distinct_five_tuples(self):
        res = run_scenario(ScenarioConfig(
            phy_mode="11n", n_clients=1, flows_per_client=2,
            duration_ns=600 * MS, warmup_ns=300 * MS,
            stagger_ns=10 * MS))
        tuples = {f.sender.five_tuple.key() for f in res.flows}
        assert len(tuples) == 2


class TestCli:
    def test_simulate_prints_report(self, capsys):
        code = cli_main([
            "simulate", "--phy", "11n", "--rate", "150",
            "--policy", "more_data", "--duration", "1",
            "--warmup", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregate goodput" in out
        assert "HACK ACKs" in out
        assert "fairness" in out

    def test_simulate_vanilla_no_hack_line(self, capsys):
        cli_main(["simulate", "--policy", "vanilla",
                  "--duration", "1", "--warmup", "0.5"])
        out = capsys.readouterr().out
        assert "HACK ACKs" not in out

    def test_simulate_with_loss_and_aarf(self, capsys):
        code = cli_main([
            "simulate", "--snr", "20", "--aarf", "--duration", "1",
            "--warmup", "0.5"])
        assert code == 0

    def test_simulate_transport_flags(self, capsys):
        code = cli_main([
            "simulate", "--cc", "cubic", "--pacing", "--qdisc",
            "codel", "--duration", "1", "--warmup", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AQM (codel" in out

    def test_simulate_default_hides_aqm_line(self, capsys):
        cli_main(["simulate", "--duration", "1", "--warmup", "0.5"])
        out = capsys.readouterr().out
        assert "AQM (" not in out       # drop-tail, zero AQM drops

    def test_scenario_transport_overrides_only_when_set(self, capsys):
        # churn-cubic-codel keeps its registered cc/qdisc under the
        # default flags, and --qdisc overrides it when given.
        code = cli_main(["simulate", "--scenario", "churn-cubic-codel",
                         "--qdisc", "fq_codel"])
        assert code == 0
        assert "AQM (fq_codel" in capsys.readouterr().out

    def test_experiments_forwarding(self, capsys):
        assert cli_main(["experiments", "fig01"]) == 0
        assert "Figure 1a" in capsys.readouterr().out

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            cli_main(["bogus"])
