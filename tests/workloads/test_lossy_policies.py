"""Policy robustness under loss: every policy must stay correct.

Correctness here means: no decompression CRC failures, no duplicate
ACK reinjection beyond the dedup counters, goodput above a sanity
floor, and no permanently stalled flows — across all HACK policies and
both loss models.
"""

import pytest

from repro import HackPolicy, LossSpec, ScenarioConfig, run_scenario
from repro.sim.units import MS, SEC

ALL_POLICIES = [HackPolicy.VANILLA, HackPolicy.MORE_DATA,
                HackPolicy.OPPORTUNISTIC, HackPolicy.EXPLICIT_TIMER,
                HackPolicy.TS_ECHO]


def run_policy(policy, loss, **kw):
    defaults = dict(phy_mode="11n", data_rate_mbps=150.0, n_clients=1,
                    traffic="tcp_download", policy=policy, loss=loss,
                    duration_ns=1500 * MS, warmup_ns=700 * MS,
                    stagger_ns=0)
    defaults.update(kw)
    return run_scenario(ScenarioConfig(**defaults))


class TestUniformLoss:
    @pytest.mark.parametrize("policy", ALL_POLICIES,
                             ids=lambda p: p.value)
    def test_five_percent_loss(self, policy):
        res = run_policy(policy,
                         LossSpec(kind="uniform", data_loss=0.05))
        assert res.aggregate_goodput_mbps > 40
        assert res.decomp_counters["crc_failures"] == 0
        assert all(c["timeouts"] <= 1
                   for c in res.sender_counters.values())


class TestSnrLoss:
    @pytest.mark.parametrize("policy", [HackPolicy.MORE_DATA,
                                        HackPolicy.TS_ECHO],
                             ids=lambda p: p.value)
    def test_marginal_snr(self, policy):
        res = run_policy(policy, LossSpec(kind="snr", snr_db=23.0))
        assert res.aggregate_goodput_mbps > 20
        assert res.decomp_counters["crc_failures"] == 0


class TestSplitUnderLoss:
    def test_split_mode_stays_correct(self):
        res = run_policy(HackPolicy.MORE_DATA,
                         LossSpec(kind="uniform", data_loss=0.05),
                         hack_split_to_aifs=True)
        assert res.aggregate_goodput_mbps > 40
        assert res.decomp_counters["crc_failures"] == 0
        assert res.mac_stats.hack_fit_fraction() == 1.0


class TestSoraPlusLoss:
    def test_everything_at_once(self):
        # SoRa quirks + per-client loss + two clients + HACK: the
        # kitchen-sink configuration must stay stable.
        res = run_scenario(ScenarioConfig(
            phy_mode="11a", data_rate_mbps=54.0, n_clients=2,
            traffic="tcp_download", policy=HackPolicy.MORE_DATA,
            loss=LossSpec(kind="uniform", data_loss=0.01,
                          per_client={"C1": 0.03}),
            extra_response_delay_ns=37_000,
            ack_timeout_extra_ns=60_000,
            duration_ns=2 * SEC, warmup_ns=1 * SEC,
            stagger_ns=100 * MS))
        assert res.aggregate_goodput_mbps > 15
        assert res.decomp_counters["crc_failures"] == 0
        assert res.fairness_index > 0.9
