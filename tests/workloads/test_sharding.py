"""Channel sharding: the plan/shard/merge pipeline's oracles.

The headline equivalence (this PR's analogue of the silent-cell
oracle): a multi-channel scenario executed as one shard per channel —
serially or across a process pool — must produce metrics identical to
the single-simulator run of the same config.  Cross-channel
invisibility makes that an exact, bitwise claim for everything except
the kernel view: a merged result's own ``kernel_stats`` is empty and
each shard's counters ride under ``metrics_dict()["shards"]`` (an
unsharded run has no such key — per-shard simulators schedule their
own snapshot events, so their counts never equal the shared kernel's).

A second, stronger oracle pins the channel semantics themselves:
N cells on N distinct channels must each reproduce the corresponding
*isolated single-cell run* bit-for-bit — sharding is not merely
self-consistent, it equals the world where the other channels never
existed.
"""

import json

import pytest

from repro import ScenarioConfig, run_scenario
from repro.sim.units import MS
from repro.traffic.arrivals import ArrivalSpec, SizeSpec
from repro.workloads.sharding import ShardExecutionError, ShardPlan, \
    execute_shard

from tests.workloads.test_multi_cell import base_config, normalised

CHURN = dict(traffic="dynamic",
             arrivals=ArrivalSpec(
                 kind="poisson", rate_per_s=30.0,
                 size=SizeSpec(kind="lognormal",
                               median_bytes=40_000, sigma=1.0)))


def metrics_except_kernel(result):
    metrics = normalised(result.metrics_dict())
    metrics.pop("kernel_stats")
    metrics.pop("shards", None)
    return metrics


class TestShardPlan:
    def test_round_robin_partition(self):
        plan = ShardPlan.from_config(base_config(cells=5, channels=3))
        assert plan.channels == (0, 1, 2)
        assert plan.cells_by_channel == ((0, 3), (1, 4), (2,))
        assert plan.shard_count == 3

    def test_explicit_map_first_appearance_order(self):
        plan = ShardPlan.from_config(
            base_config(cells=4, channels=3,
                        cell_channel=(2, 0, 2, 1)))
        assert plan.channels == (2, 0, 1)
        assert plan.cells_by_channel == ((0, 2), (1,), (3,))

    def test_single_channel_is_one_shard(self):
        plan = ShardPlan.from_config(base_config(cells=3))
        assert plan.shard_count == 1
        assert plan.cells_by_channel == ((0, 1, 2),)

    def test_describe_is_json_able(self):
        plan = ShardPlan.from_config(base_config(cells=4, channels=2))
        payload = json.loads(json.dumps(plan.describe()))
        assert payload["shards"] == 2
        assert payload["cells_by_channel"] == {"0": [0, 2],
                                               "1": [1, 3]}

    def test_invalid_channel_map_rejected(self):
        with pytest.raises(ValueError, match="channel"):
            ShardPlan.from_config(
                base_config(cells=2, channels=2, cell_channel=(0, 5)))


class TestShardEquivalence:
    """Sharded == unsharded, bit for bit (modulo kernel_stats)."""

    @pytest.fixture(scope="class")
    def static_runs(self):
        cfg = base_config(cells=4, channels=2, n_clients=1, seed=3)
        return (run_scenario(cfg), run_scenario(cfg, shard_jobs=1))

    def test_static_metrics_identical(self, static_runs):
        unsharded, sharded = static_runs
        assert metrics_except_kernel(unsharded) == \
            metrics_except_kernel(sharded)

    def test_kernel_stats_are_per_shard_blocks(self, static_runs):
        unsharded, sharded = static_runs
        # A merged result never pretends its shards shared a kernel:
        # its own counters are empty and each shard's ride verbatim
        # under metrics_dict()["shards"], plan order.
        assert sharded.kernel_stats == {}
        blocks = sharded.metrics_dict()["shards"]
        assert [b["channel"] for b in blocks] == [0, 1]
        assert [b["cells"] for b in blocks] == [[0, 2], [1, 3]]
        assert all(b["kernel_stats"]["events_executed"] > 0
                   for b in blocks)
        assert all(b["telemetry"] is None for b in blocks)
        assert "shards" not in unsharded.metrics_dict()
        assert unsharded.kernel_stats["events_executed"] > 0

    def test_shard_info_records_the_plan(self, static_runs):
        _, sharded = static_runs
        info = sharded.shard_info
        assert info["mode"] == "serial"
        assert info["plan"]["shards"] == 2
        assert set(info["shard_wall_s"]) == {"0", "1"}

    def test_churn_metrics_identical(self):
        cfg = base_config(cells=4, channels=2, n_clients=1, seed=7,
                          duration_ns=1200 * MS, warmup_ns=400 * MS,
                          **CHURN)
        unsharded = run_scenario(cfg)
        sharded = run_scenario(cfg, shard_jobs=1)
        assert metrics_except_kernel(unsharded) == \
            metrics_except_kernel(sharded)

    def test_parallel_equals_serial_including_kernel(self):
        cfg = base_config(cells=4, channels=2, n_clients=1, seed=3)
        serial = run_scenario(cfg, shard_jobs=1)
        parallel = run_scenario(cfg, shard_jobs=2)
        assert normalised(serial.metrics_dict()) == \
            normalised(parallel.metrics_dict())
        assert parallel.shard_info["mode"] == "parallel"

    def test_single_channel_sharding_is_identity(self):
        """One channel -> one shard -> run_scenario's plain path: the
        shard machinery must not even engage."""
        cfg = base_config(cells=2, n_clients=1, seed=2)
        plain = run_scenario(cfg)
        routed = run_scenario(cfg, shard_jobs=4)
        assert normalised(plain.metrics_dict()) == \
            normalised(routed.metrics_dict())
        assert routed.shard_info is None


class TestIsolationOracle:
    """N cells on N distinct channels == N isolated single-cell runs."""

    def assert_cells_match_isolated_runs(self, cfg):
        combined = run_scenario(cfg, shard_jobs=1)
        plan = ShardPlan.from_config(cfg)
        for channel, cells in plan.shards():
            assert len(cells) == 1
            outcome = execute_shard(cfg, cells)
            cell = cells[0]
            block = dict(combined.cell_blocks[cell])
            shard_block = dict(outcome.cell_blocks[0][1])
            assert normalised(block) == normalised(shard_block)
            assert outcome.channel_block == \
                combined.channel_blocks[plan.channels.index(channel)]

    def test_static_cells_isolated(self):
        self.assert_cells_match_isolated_runs(
            base_config(cells=3, channels=3, n_clients=1, seed=5))

    def test_churn_cells_isolated(self):
        self.assert_cells_match_isolated_runs(
            base_config(cells=3, channels=3, n_clients=1, seed=5,
                        duration_ns=1200 * MS, warmup_ns=400 * MS,
                        **CHURN))


class TestShardGuards:
    def test_trace_refuses_to_shard(self):
        cfg = base_config(cells=2, channels=2, trace=True)
        with pytest.raises(ValueError, match="trace"):
            run_scenario(cfg, shard_jobs=1)

    def test_trace_spans_channels_unsharded(self):
        """One simulator can trace every channel: the channelized
        tracer tags records with their channel id."""
        cfg = base_config(cells=2, channels=2, trace=True)
        result = run_scenario(cfg)
        assert result.trace is not None
        channels = {record.channel for record in result.trace.records}
        assert channels == {0, 1}

    def test_shard_failure_names_the_shard(self):
        cfg = base_config(cells=2, channels=2,
                          traffic="nonsense")
        with pytest.raises(ValueError):
            # Traffic validation fires before sharding: the config is
            # rejected up front, not wrapped per shard.
            run_scenario(cfg, shard_jobs=1)
        error = ShardExecutionError(1, (1,), RuntimeError("boom"))
        assert "channel 1" in str(error)
        assert error.cells == (1,)
