"""Multi-AP scenarios: cells axis, per-cell metrics, equivalence.

The headline oracle (the multi-AP analogue of PR 2's lazy-vs-slotted
check): a 2-cell run whose second cell carries zero traffic must be
metric-identical to the single-cell run of cell A — proof that the
multi-cell refactor is behaviour-preserving exactly where it overlaps
the paper's topologies.
"""

import json

import pytest

from repro import HackPolicy, ScenarioConfig, run_scenario
from repro.sim.units import MS
from repro.stats.fct import has_completions
from repro.traffic.arrivals import ArrivalSpec, SizeSpec
from repro.workloads import registry

QUICK = dict(duration_ns=900 * MS, warmup_ns=400 * MS)

CELL_KEYS = {"label", "ap", "clients", "channel",
             "aggregate_goodput_mbps",
             "per_flow_goodput_mbps", "fairness_index", "carried_mbps",
             "airtime_share", "frames_sent", "frames_collided", "fct",
             "udp_background_goodput_mbps"}


def base_config(**overrides) -> ScenarioConfig:
    fields = dict(phy_mode="11n", data_rate_mbps=150.0, n_clients=2,
                  traffic="tcp_download",
                  policy=HackPolicy.MORE_DATA, stagger_ns=0, **QUICK)
    fields.update(overrides)
    return ScenarioConfig(**fields)


def normalised(metrics):
    return json.loads(json.dumps(metrics, sort_keys=True))


class TestCellValidation:
    def test_zero_cells_rejected(self):
        with pytest.raises(ValueError, match="cells must be >= 1"):
            run_scenario(base_config(cells=0))

    def test_cell_clients_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="entries for"):
            run_scenario(base_config(cells=2, cell_clients=(2,)))

    def test_negative_cell_clients_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            run_scenario(base_config(cells=2, cell_clients=(2, -1)))

    def test_naming_is_unique_across_cells(self):
        cfg = base_config(cells=3, cell_clients=(2, 1, 2))
        names = []
        for cell in range(3):
            names.append(cfg.cell_ap_name(cell))
            names.extend(cfg.cell_client_names(cell))
        assert names == ["AP", "C1", "C2", "AP2", "C1.2",
                         "AP3", "C1.3", "C2.3"]
        assert len(set(names)) == len(names)


class TestEmptyCellEquivalence:
    """Satellite oracle: a silent second BSS changes nothing."""

    @pytest.fixture(scope="class")
    def pair(self):
        single = run_scenario(base_config())
        padded = run_scenario(base_config(cells=2,
                                          cell_clients=(2, 0)))
        return single, padded

    def test_metrics_identical_outside_cell_blocks(self, pair):
        single, padded = pair
        m_single = normalised(single.metrics_dict())
        m_padded = normalised(padded.metrics_dict())
        # The silent cell legitimately adds: its (all-zero) AP driver
        # entry, a second cells[] block, and the cross-cell index.
        for metrics in (m_single, m_padded):
            metrics.pop("cells")
            metrics.pop("cell_fairness_index")
        assert m_padded["drivers"].pop("AP2") is not None
        assert m_single == m_padded

    def test_cell_a_block_matches_single_cell_block(self, pair):
        single, padded = pair
        assert normalised(single.cell_blocks[0]) == \
            normalised(padded.cell_blocks[0])

    def test_silent_cell_block_is_all_zero(self, pair):
        _, padded = pair
        block = padded.cell_blocks[1]
        assert block["label"] == "cell2"
        assert block["clients"] == []
        assert block["aggregate_goodput_mbps"] == 0.0
        assert block["airtime_share"] == 0.0
        assert block["frames_sent"] == 0

    def test_churn_variant_also_equivalent(self):
        arrivals = ArrivalSpec(
            kind="poisson", rate_per_s=40.0,
            size=SizeSpec(kind="lognormal", median_bytes=50_000,
                          sigma=1.0))
        single = run_scenario(base_config(traffic="dynamic",
                                          arrivals=arrivals))
        padded = run_scenario(base_config(traffic="dynamic",
                                          arrivals=arrivals, cells=2,
                                          cell_clients=(2, 0)))
        m_single = normalised(single.metrics_dict())
        m_padded = normalised(padded.metrics_dict())
        assert m_single["fct"] == m_padded["fct"]
        assert m_single["per_flow_goodput_mbps"] == \
            m_padded["per_flow_goodput_mbps"]
        assert m_single["medium_utilisation"] == \
            m_padded["medium_utilisation"]


class TestContention:
    @pytest.fixture(scope="class")
    def runs(self):
        return (run_scenario(base_config()),
                run_scenario(base_config(cells=2)))

    def test_contended_cells_carry_strictly_less(self, runs):
        single, double = runs
        isolated = single.aggregate_goodput_mbps
        assert isolated > 0
        for block in double.cell_blocks:
            assert 0 < block["aggregate_goodput_mbps"] < isolated

    def test_airtime_shares_sum_at_most_one(self, runs):
        _, double = runs
        shares = [b["airtime_share"] for b in double.cell_blocks]
        assert all(0 < share < 1 for share in shares)
        assert sum(shares) <= 1.0
        # Collisions burn the rest: the busy union covers the clean
        # shares plus collided spans.
        assert double.medium_utilisation >= max(shares)

    def test_cross_cell_collisions_observed(self, runs):
        _, double = runs
        assert double.medium_frames_collided > 0
        assert sum(b["frames_collided"]
                   for b in double.cell_blocks) >= \
            double.medium_frames_collided

    def test_cell_block_schema(self, runs):
        single, double = runs
        assert len(single.cell_blocks) == 1
        assert len(double.cell_blocks) == 2
        for block in single.cell_blocks + double.cell_blocks:
            assert set(block) == CELL_KEYS
        assert [b["label"] for b in double.cell_blocks] == \
            ["cell1", "cell2"]
        assert single.cell_fairness_index == 1.0
        assert 0 < double.cell_fairness_index <= 1.0

    def test_multi_cell_deterministic(self):
        first = run_scenario(base_config(cells=2))
        second = run_scenario(base_config(cells=2))
        assert normalised(first.metrics_dict()) == \
            normalised(second.metrics_dict())


class TestMultiCellChurn:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(
            registry.build("multi-ap-churn", **QUICK))

    def test_per_cell_fct_blocks(self, result):
        assert len(result.cell_blocks) == 2
        for block in result.cell_blocks:
            assert block["fct"] is not None
            assert block["fct"]["flows_completed"] > 0
            assert "flows" not in block["fct"]   # per-cell stays light

    def test_merged_fct_is_sum_of_cells(self, result):
        merged = result.fct
        for key in ("flows_spawned", "flows_completed",
                    "flows_censored"):
            assert merged[key] == sum(b["fct"][key]
                                      for b in result.cell_blocks)
        assert merged["offered_load_mbps"] == pytest.approx(
            sum(b["fct"]["offered_load_mbps"]
                for b in result.cell_blocks))
        assert has_completions(merged["fct_ms"])

    def test_per_cell_managers_tracked(self, result):
        assert len(result.traffic_managers) == 2
        assert result.traffic_manager is result.traffic_managers[0]
        # Disjoint dynamic-flow id ranges per cell.
        ids_a = {r.flow_id for r
                 in result.traffic_managers[0].collector.records}
        ids_b = {r.flow_id for r
                 in result.traffic_managers[1].collector.records}
        assert ids_a and ids_b
        assert not ids_a & ids_b
        # Cell ranges are strided far apart: cell A can spawn ten
        # million flows before its ids could reach cell B's base.
        assert max(ids_a) - min(ids_a) < 10_000_000
        assert min(ids_b) > 10_000_000


class TestZeroFlowChurn:
    """Regression (satellite): a churn run that completes zero flows
    must still emit the explicit zero-count fct block — never a
    missing/None distribution."""

    def test_zero_completion_block_survives_metrics_dict(self):
        cfg = base_config(
            traffic="dynamic",
            # One enormous flow arriving late: spawned, never done.
            arrivals=ArrivalSpec(
                kind="trace", trace=((700.0, 0, 50_000_000),)),
            duration_ns=800 * MS, warmup_ns=100 * MS)
        metrics = run_scenario(cfg).metrics_dict()
        fct = metrics["fct"]
        assert fct is not None
        assert fct["flows_completed"] == 0
        assert fct["fct_ms"] == {
            "p50": None, "p95": None, "p99": None, "mean": None,
            "min": None, "max": None, "flows": 0}
        assert not has_completions(fct["fct_ms"])
        # And the block round-trips through the sweep engine's JSON
        # normalisation unchanged.
        assert normalised(fct)["fct_ms"]["flows"] == 0

    def test_no_arrivals_at_all_still_explicit(self):
        cfg = base_config(
            traffic="dynamic",
            arrivals=ArrivalSpec(kind="trace", trace=()))
        fct = run_scenario(cfg).metrics_dict()["fct"]
        assert fct["flows_spawned"] == 0
        assert fct["fct_ms"]["flows"] == 0
