"""Golden regression tests for every experiment module.

Each module's ``run(quick=True, ...)`` must (a) return rows with a
stable schema and (b) be deterministic across two invocations with the
same seeds.  A shared content-hash cache makes the second invocation
free, and doubles as a check that cache-restored sweeps rebuild the
exact same tables; one module (fig10) is additionally re-run with the
cache disabled to pin down simulator-level determinism.

Sweep scopes are trimmed to the smallest slice each module supports so
the whole file stays tractable in CI.
"""

import pytest

from repro.experiments import ablations, crossval, fig01, fig09, \
    fig10, fig11, fig12, table2, table3

GOLDEN = {
    "fig01": (
        lambda runner: fig01.run(quick=True, runner=runner),
        {"figure", "phy", "rate_mbps", "tcp_mbps", "hack_mbps",
         "improvement_pct"}),
    "fig09": (
        lambda runner: fig09.run(quick=True, runner=runner),
        {"figure", "clients", "protocol", "client", "goodput_mbps",
         "stdev", "no_retry_frac"}),
    "fig10": (
        lambda runner: fig10.run(quick=True, client_counts=(1,),
                                 runner=runner),
        {"figure", "clients", "scheme", "goodput_mbps", "stdev",
         "hack_fit_fraction"}),
    "fig11": (
        lambda runner: fig11.run(quick=True, snrs=(18.0,),
                                 rates=(60.0, 150.0), runner=runner),
        {"figure", "snr_db", "tcp_envelope_mbps",
         "hack_envelope_mbps", "improvement_pct", "tcp_per_rate",
         "hack_per_rate", "crc_failures", "hack_timeouts"}),
    "fig12": (
        lambda runner: fig12.run(quick=True, rates=(150.0,),
                                 runner=runner),
        {"figure", "rate_mbps", "theory_tcp_mbps", "theory_hack_mbps",
         "sim_tcp_mbps", "sim_hack_mbps", "sim_improvement_pct",
         "theory_improvement_pct"}),
    "table2": (
        lambda runner: table2.run(quick=True, runner=runner),
        {"table", "protocol", "ack_count", "ack_bytes",
         "compressed_count", "compressed_bytes", "compression_ratio",
         "transfer_bytes", "completed"}),
    "table3": (
        lambda runner: table3.run(quick=True, runner=runner),
        {"table", "protocol", "tcp_ack_airtime", "rohc_airtime",
         "channel_acquisition", "ll_ack_overhead"}),
    "crossval": (
        lambda runner: crossval.run(quick=True, runner=runner),
        {"figure", "protocol", "loss_rate", "ideal_mbps",
         "sora_mbps"}),
    "ablations": (
        lambda runner: ablations.run_delack_ablation(quick=True,
                                                     runner=runner),
        {"ablation", "variant", "tcp_mbps", "hack_mbps",
         "improvement_pct"}),
}

MODULES = {"fig01": fig01, "fig09": fig09, "fig10": fig10,
           "fig11": fig11, "fig12": fig12, "table2": table2,
           "table3": table3, "crossval": crossval,
           "ablations": ablations}


@pytest.fixture(scope="module")
def cached_runner(sweep_cache_runner):
    return sweep_cache_runner


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_schema_and_determinism(name, cached_runner):
    run, schema = GOLDEN[name]
    first = run(cached_runner)
    second = run(cached_runner)
    assert first, f"{name}: no rows"
    for row in first:
        assert set(row) == schema, f"{name}: row schema drifted"
    assert first == second, f"{name}: rows not reproducible"
    # Every table renders from golden rows.
    module = MODULES[name]
    if name == "ablations":
        assert "delayed ACKs" in module.format_rows(first)
    else:
        assert module.format_rows(first)


def test_fig10_deterministic_without_cache():
    """Same seeds => identical rows even when every cell re-simulates."""
    first = fig10.run(quick=True, client_counts=(1,))
    second = fig10.run(quick=True, client_counts=(1,))
    assert first == second


def test_every_experiment_declares_a_sweep():
    for name, module in MODULES.items():
        spec = module.sweep_spec(quick=True)
        assert len(spec) > 0, f"{name}: empty sweep spec"
        assert spec.name == name
        assert all(point.key for point in spec.points)
