"""Ablation harness units (cheap synthetic-row checks plus stubbed
sweep runs exercising the declarative grid end-to-end)."""

from repro.experiments import ablations

from tests.helpers import StubSweepRunner


class TestFormatters:
    def test_all_sections_render(self):
        rows = [
            {"ablation": "policy", "variant": "MORE DATA",
             "goodput_mbps": 129.0},
            {"ablation": "txop", "variant": "1 ms", "tcp_mbps": 93.0,
             "hack_mbps": 114.0, "improvement_pct": 22.6},
            {"ablation": "buffer", "variant": "16 pkts",
             "tcp_mbps": 57.0, "hack_mbps": 57.0,
             "improvement_pct": 0.0},
            {"ablation": "delack", "variant": "delayed ACKs off",
             "tcp_mbps": 108.0, "hack_mbps": 130.0,
             "improvement_pct": 19.9},
        ]
        out = ablations.format_rows(rows)
        for title in ("policy", "TXOP", "AP queue", "delayed ACKs"):
            assert title in out

    def test_negative_gain_formats_with_sign(self):
        rows = [{"ablation": "buffer", "variant": "42 pkts",
                 "tcp_mbps": 81.7, "hack_mbps": 80.7,
                 "improvement_pct": -1.3}]
        assert "-1.3%" in ablations.format_rows(rows)


class TestRunAll:
    def test_run_includes_every_dimension(self):
        # Stub the sweep execution so run() is instant.
        rows = ablations.run(quick=True, runner=StubSweepRunner())
        dims = {r["ablation"] for r in rows}
        assert dims == {"policy", "txop", "buffer", "delack"}
        policies = [r["variant"] for r in rows
                    if r["ablation"] == "policy"]
        assert "TS_ECHO (§5 future work)" in policies

    def test_single_dimension_runners(self):
        stub = StubSweepRunner()
        rows = ablations.run_txop_ablation(quick=True, runner=stub)
        assert {r["ablation"] for r in rows} == {"txop"}
        assert all(r["improvement_pct"] == 0.0 for r in rows)
        # One spec, tcp+hack per variant, one quick seed each.
        assert len(stub.specs) == 1
        assert len(stub.specs[0]) == 2 * len(ablations.TXOP_VARIANTS)
