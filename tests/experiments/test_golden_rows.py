"""Pinned golden rows: the kernel rework must not move a single digit.

``golden/quick_rows.json`` holds every experiment's quick-sweep rows as
produced by the seed's slotted-countdown, two-event-wired-pipe,
per-slot-polling kernel (captured immediately before the lazy-backoff
rework landed).  The current kernel must reproduce them bit for bit:
the hot-path optimisations are pure event-count reductions, not
behaviour changes.

Sweep scopes are the same trimmed slices ``test_golden`` uses, and the
two files share one session-scoped content-hash cache, so each cell is
simulated exactly once for both suites.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import ablations, crossval, fig01, fig09, \
    fig10, fig11, fig12, table2, table3

GOLDEN_PATH = Path(__file__).parent / "golden" / "quick_rows.json"

RUNS = {
    "fig01": lambda runner: fig01.run(quick=True, runner=runner),
    "fig09": lambda runner: fig09.run(quick=True, runner=runner),
    "fig10": lambda runner: fig10.run(quick=True, client_counts=(1,),
                                      runner=runner),
    "fig11": lambda runner: fig11.run(quick=True, snrs=(18.0,),
                                      rates=(60.0, 150.0),
                                      runner=runner),
    "fig12": lambda runner: fig12.run(quick=True, rates=(150.0,),
                                      runner=runner),
    "table2": lambda runner: table2.run(quick=True, runner=runner),
    "table3": lambda runner: table3.run(quick=True, runner=runner),
    "crossval": lambda runner: crossval.run(quick=True, runner=runner),
    "ablations": lambda runner: ablations.run_delack_ablation(
        quick=True, runner=runner),
}


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def test_golden_covers_every_experiment(golden):
    assert set(golden) == set(RUNS)


@pytest.mark.parametrize("name", sorted(RUNS))
def test_rows_bit_identical_to_seed_kernel(name, golden,
                                           sweep_cache_runner):
    rows = RUNS[name](sweep_cache_runner)
    # JSON round-trip normalises container types exactly as the stored
    # golden rows were normalised.
    assert json.loads(json.dumps(rows)) == golden[name], (
        f"{name}: kernel rework changed experiment output")
