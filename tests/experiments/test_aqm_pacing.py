"""aqm_pacing experiment harness: schema, acceptance, determinism."""

import pytest

from repro.experiments import aqm_pacing, runner
from repro.experiments.batch import SweepRunner

SCHEMA = {"figure", "transport", "qdisc", "scheme", "flows_completed",
          "flows_censored", "fct_p50_ms", "fct_p99_ms", "aqm_drops",
          "sojourn_p50_ms", "sojourn_p99_ms", "carried_mbps",
          "offered_mbps"}

#: Trimmed grid for the fixture: the stock transport against the two
#: disciplines the CI gate compares.
TRIM_TRANSPORTS = (("reno", "reno", False),)
TRIM_QDISCS = ("droptail", "codel")


@pytest.fixture(scope="module")
def quick_rows(sweep_cache_runner):
    return aqm_pacing.run(quick=True, transports=TRIM_TRANSPORTS,
                          qdiscs=TRIM_QDISCS,
                          runner=sweep_cache_runner)


class TestHarness:
    def test_registered_with_runner(self):
        assert runner.EXPERIMENTS["aqm_pacing"] is aqm_pacing

    def test_sweep_spec_shape(self):
        spec = aqm_pacing.sweep_spec(quick=True)
        assert spec.name == "aqm_pacing"
        # transports x qdiscs x schemes x one quick seed
        assert len(spec) == 4 * 3 * 2
        configs = [p.config for p in spec.points]
        assert all(c.traffic == "dynamic" for c in configs)
        assert all(c.udp_background_mbps == 50.0 for c in configs)
        assert {c.cc for c in configs} == {"reno", "cubic"}
        assert {c.queue_discipline for c in configs} == \
            {"droptail", "codel", "fq_codel"}

    def test_row_schema(self, quick_rows):
        assert quick_rows
        for row in quick_rows:
            assert set(row) == SCHEMA

    def test_acceptance_cells(self, quick_rows):
        for row in quick_rows:
            assert row["flows_completed"] > 0
            assert 0 < row["fct_p50_ms"] <= row["fct_p99_ms"]
            assert 0 < row["sojourn_p50_ms"] <= row["sojourn_p99_ms"]
            assert row["offered_mbps"] > 0
            assert row["carried_mbps"] > 0
        # Drop-tail never head-drops; AQM counters stay zero there.
        assert all(r["aqm_drops"] == 0 for r in quick_rows
                   if r["qdisc"] == "droptail")

    def test_codel_beats_droptail_sojourn_tail(self, quick_rows):
        """The CI smoke gate: under the standing-queue load, CoDel
        holds the delivered-sojourn p99 below drop-tail's for the
        stock scheme, and it actually drops."""
        cell = {(r["qdisc"], r["scheme"]): r for r in quick_rows}
        tail = cell[("droptail", "TCP/802.11")]
        codel = cell[("codel", "TCP/802.11")]
        assert codel["sojourn_p99_ms"] < tail["sojourn_p99_ms"]
        assert codel["aqm_drops"] > 0

    def test_rows_deterministic(self, quick_rows, sweep_cache_runner):
        again = aqm_pacing.run(quick=True, transports=TRIM_TRANSPORTS,
                               qdiscs=TRIM_QDISCS,
                               runner=sweep_cache_runner)
        assert quick_rows == again

    def test_parallel_matches_serial(self, quick_rows):
        parallel = aqm_pacing.run(quick=True,
                                  transports=TRIM_TRANSPORTS,
                                  qdiscs=TRIM_QDISCS,
                                  runner=SweepRunner(jobs=2))
        assert parallel == quick_rows

    def test_format_rows_renders(self, quick_rows):
        text = aqm_pacing.format_rows(quick_rows)
        assert "Modern transport & AQM" in text
        assert "sojourn p50" in text
        assert "CoDel moves stock sojourn p99" in text
