"""The CI perf-regression gate: reference parsing and verdicts."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    Path(__file__).resolve().parents[2] / "scripts"
    / "check_bench_regression.py")
gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(gate)


def reference(quick_rate=50_000, pr4_rate=None):
    payload = {
        "quick": {
            "fig10-4c-hack": {
                "before": {"events_per_s": 30_000},
                "after": {"events_per_s": quick_rate},
            },
        },
    }
    if pr4_rate is not None:
        payload["pr4_data_plane"] = {
            "quick": {
                "fig10-4c-hack": {
                    "before": {"events_per_s": quick_rate},
                    "after": {"events_per_s": pr4_rate},
                },
            },
        }
    return payload


def fresh(rate, topology="fig10-4c-hack"):
    return {"quick": True,
            "topologies": {topology: {"events_per_s": rate}}}


class TestReferenceSelection:
    def test_prefers_newest_block(self):
        ref = reference(quick_rate=50_000, pr4_rate=90_000)
        assert gate.reference_events_per_s(ref, quick=True) == \
            {"fig10-4c-hack": 90_000}

    def test_falls_back_to_pr2_block(self):
        ref = reference(quick_rate=50_000)
        assert gate.reference_events_per_s(ref, quick=True) == \
            {"fig10-4c-hack": 50_000}

    def test_empty_reference(self):
        assert gate.reference_events_per_s({}, quick=True) == {}


class TestVerdicts:
    def test_passes_at_reference_speed(self):
        assert gate.check(fresh(90_000),
                          reference(pr4_rate=90_000), 0.25) is None

    def test_passes_just_above_floor(self):
        assert gate.check(fresh(67_501),
                          reference(pr4_rate=90_000), 0.25) is None

    def test_fails_below_floor(self):
        failure = gate.check(fresh(60_000),
                             reference(pr4_rate=90_000), 0.25)
        assert failure is not None and "fig10-4c-hack" in failure

    def test_missing_topology_fails(self):
        failure = gate.check(fresh(90_000, topology="other"),
                             reference(pr4_rate=90_000), 0.25)
        assert failure is not None and "missing" in failure

    def test_no_reference_is_a_failure(self):
        assert gate.check(fresh(90_000), {}, 0.25) is not None


class TestMain:
    def _write(self, tmp_path, fresh_payload, ref_payload):
        fresh_path = tmp_path / "fresh.json"
        ref_path = tmp_path / "ref.json"
        fresh_path.write_text(json.dumps(fresh_payload))
        ref_path.write_text(json.dumps(ref_payload))
        return str(fresh_path), str(ref_path)

    def test_exit_codes(self, tmp_path, monkeypatch):
        monkeypatch.delenv("BENCH_GATE_SKIP", raising=False)
        monkeypatch.delenv("BENCH_GATE_TOLERANCE", raising=False)
        fresh_path, ref_path = self._write(
            tmp_path, fresh(60_000), reference(pr4_rate=90_000))
        assert gate.main(["--fresh", fresh_path,
                          "--reference", ref_path]) == 1
        assert gate.main(["--fresh", fresh_path,
                          "--reference", ref_path,
                          "--tolerance", "0.5"]) == 0

    def test_env_overrides(self, tmp_path, monkeypatch):
        fresh_path, ref_path = self._write(
            tmp_path, fresh(10_000), reference(pr4_rate=90_000))
        monkeypatch.setenv("BENCH_GATE_SKIP", "1")
        assert gate.main(["--fresh", fresh_path,
                          "--reference", ref_path]) == 0
        monkeypatch.delenv("BENCH_GATE_SKIP")
        monkeypatch.setenv("BENCH_GATE_TOLERANCE", "0.95")
        assert gate.main(["--fresh", fresh_path,
                          "--reference", ref_path]) == 0

    def test_bad_tolerance(self, tmp_path, monkeypatch):
        monkeypatch.delenv("BENCH_GATE_SKIP", raising=False)
        fresh_path, ref_path = self._write(
            tmp_path, fresh(90_000), reference(pr4_rate=90_000))
        assert gate.main(["--fresh", fresh_path,
                          "--reference", ref_path,
                          "--tolerance", "1.5"]) == 2
