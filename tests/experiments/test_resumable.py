"""Incremental, fault-isolated, resumable sweep execution.

Covers the runner rework end to end: per-point checkpointing (kill a
runner mid-grid with SIGKILL, resume from its cache, rows bit-identical
to an uninterrupted run), poisoned points recorded as first-class
errors instead of aborting, retry-with-backoff for transient failures
and worker-pool deaths, graceful SIGINT/SIGTERM interruption with a
partial artifact, the cache's corruption quarantine and unique staging
names, the v2 artifact schema, and the engine-version guard.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.experiments.batch import ENGINE_VERSION, RESULT_VERSION, \
    StaleArtifactError, SweepCache, SweepInterrupted, SweepResult, \
    SweepRunner, SweepSpec, point_signature
from repro.sim.units import MS

FAST = dict(duration_ns=400 * MS, warmup_ns=200 * MS, stagger_ns=0)


def scenario_spec(seeds=(1, 2, 3)) -> SweepSpec:
    return SweepSpec.grid("resume", FAST, {"n_clients": [1, 2]},
                          seeds=seeds)


def analytic_spec(n=3, **kwargs) -> SweepSpec:
    spec = SweepSpec("analytic")
    for i in range(n):
        spec.add_analytic((i,), "tests.helpers:constant_metrics",
                          value=float(i), **kwargs)
    return spec


def poisoned_spec() -> SweepSpec:
    """Three points; the middle one always raises."""
    spec = SweepSpec("poisoned")
    spec.add_analytic((0,), "tests.helpers:constant_metrics", value=0.0)
    spec.add_analytic((1,), "tests.helpers:raising_metrics_fn",
                      message="poisoned cell")
    spec.add_analytic((2,), "tests.helpers:constant_metrics", value=2.0)
    return spec


# ----------------------------------------------------------------------
# Fault isolation: a raising point must not abort the sweep
# ----------------------------------------------------------------------
class TestPoisonedPoint:
    @pytest.mark.parametrize("jobs", [None, 2])
    def test_other_points_complete_and_failure_is_recorded(
            self, jobs, tmp_path):
        runner = SweepRunner(jobs=jobs, cache_dir=tmp_path)
        result = runner.run(poisoned_spec())
        assert result.failed == 1
        assert result.executed == 2
        assert len(result.records) == 3

        ok = [r for r in result.records if r.ok]
        assert [r.metrics["value"] for r in ok] == [0.0, 2.0]

        [failure] = result.failures()
        assert failure.key == (1,)
        assert failure.metrics is None
        assert failure.error["type"] == "RuntimeError"
        assert failure.error["message"] == "poisoned cell"
        assert "RuntimeError" in failure.error["traceback"]
        assert failure.error["attempts"] == 1

    def test_failure_leaves_status_breadcrumb_not_a_hit(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path)
        spec = poisoned_spec()
        runner.run(spec)
        sig = point_signature(spec.points[1])
        cache = SweepCache(tmp_path)
        assert cache.probe(sig) == "failed"
        assert cache.load(sig) is None           # still re-executed
        assert cache.load_failure(sig)["type"] == "RuntimeError"
        # A rerun retries the poisoned point (and fails again) while
        # the good points come from cache.
        rerun = SweepRunner(cache_dir=tmp_path).run(spec)
        assert rerun.cache_hits == 2 and rerun.failed == 1

    def test_success_clears_failure_breadcrumb(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.store_failure("sig", {"type": "X"})
        assert cache.probe("sig") == "failed"
        cache.store("sig", {"v": 1})
        assert cache.probe("sig") == "complete"
        assert cache.load_failure("sig") is None

    def test_metrics_for_skips_failures(self):
        result = SweepRunner().run(poisoned_spec())
        assert result.metrics_for((1,)) == []
        with pytest.raises(KeyError):
            result.cell((1,), "value")

    def test_artifact_roundtrips_failures(self, tmp_path):
        result = SweepRunner().run(poisoned_spec())
        path = tmp_path / "artifact.json"
        result.save(path)
        loaded = SweepResult.load(path)
        assert loaded.failed == 1
        assert loaded.failures()[0].error["message"] == "poisoned cell"
        assert loaded.failures()[0].metrics is None


# ----------------------------------------------------------------------
# Retries
# ----------------------------------------------------------------------
class TestRetries:
    @pytest.mark.parametrize("jobs", [None, 2])
    def test_transient_failure_succeeds_within_budget(
            self, jobs, tmp_path):
        spec = SweepSpec("flaky")
        spec.add_analytic((0,), "tests.helpers:flaky_metrics_fn",
                          counter_path=str(tmp_path / "count"),
                          fail_times=2)
        runner = SweepRunner(jobs=jobs, retries=2, retry_backoff_s=0.0)
        result = runner.run(spec)
        assert result.failed == 0 and result.executed == 1
        assert result.records[0].metrics["calls"] == 3

    def test_budget_exhausted_records_attempt_count(self, tmp_path):
        spec = SweepSpec("flaky")
        spec.add_analytic((0,), "tests.helpers:flaky_metrics_fn",
                          counter_path=str(tmp_path / "count"),
                          fail_times=5)
        result = SweepRunner(retries=1, retry_backoff_s=0.0).run(spec)
        assert result.failed == 1
        assert result.failures()[0].error["attempts"] == 2
        assert (tmp_path / "count").read_text() == "2"

    def test_worker_death_fails_point_without_aborting(self, tmp_path):
        # The dying point delays so the healthy points finish first;
        # its death breaks the pool, which must be contained to it.
        spec = analytic_spec(n=4)
        spec.add_analytic(("die",), "tests.helpers:dying_worker_fn",
                          delay_s=0.5)
        runner = SweepRunner(jobs=2, retries=0, retry_backoff_s=0.0,
                             cache_dir=tmp_path)
        result = runner.run(spec)
        assert result.executed == 4
        assert result.failed == 1
        [failure] = result.failures()
        assert failure.key == ("die",)
        assert "Broken" in failure.error["type"]

    def test_worker_death_retried_on_rebuilt_pool(self, tmp_path):
        spec = analytic_spec(n=2)
        spec.add_analytic(("die-once",), "tests.helpers:dying_worker_fn",
                          counter_path=str(tmp_path / "count"),
                          die_times=1, delay_s=0.3)
        runner = SweepRunner(jobs=2, retries=1, retry_backoff_s=0.0)
        result = runner.run(spec)
        assert result.failed == 0
        assert result.executed == 3
        record = result.records_for(("die-once",))[0]
        assert record.metrics["calls"] == 2


# ----------------------------------------------------------------------
# Incremental checkpointing + kill/resume
# ----------------------------------------------------------------------
class TestIncrementalCheckpointing:
    def test_serial_run_checkpoints_each_point_as_it_completes(
            self, tmp_path):
        spec = scenario_spec(seeds=(1,))
        seen = []

        class SpyCache(SweepCache):
            def store(self, signature, metrics):
                super().store(signature, metrics)
                seen.append(len(list(
                    Path(self.directory).glob("*.json"))))

        runner = SweepRunner(cache_dir=tmp_path)
        runner.cache = SpyCache(tmp_path)
        runner.run(spec)
        # After each of the two stores the directory held exactly that
        # many entries: point N was on disk before point N+1 ran.
        assert seen == [1, 2]

    def test_sigkill_mid_grid_resumes_from_cache_bit_identical(
            self, tmp_path):
        """The acceptance-criteria test: SIGKILL a runner mid-flight,
        rerun with the same cache dir, assert only unfinished cells
        re-execute and the final rows match an uninterrupted run."""
        cache_dir = tmp_path / "cache"
        script = textwrap.dedent(f"""
            from repro.experiments.batch import SweepRunner, SweepSpec
            from repro.sim.units import MS
            spec = SweepSpec.grid(
                "resume",
                dict(duration_ns=400 * MS, warmup_ns=200 * MS,
                     stagger_ns=0),
                {{"n_clients": [1, 2]}}, seeds=(1, 2, 3))
            SweepRunner(cache_dir={str(cache_dir)!r}).run(spec)
        """)
        env = dict(os.environ)
        root = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = os.pathsep.join(
            [str(root / "src"), str(root),
             env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        proc = subprocess.Popen([sys.executable, "-c", script],
                                env=env)
        # Wait for the first checkpoint to land, then kill -9.
        deadline = time.time() + 60
        while time.time() < deadline:
            if list(cache_dir.glob("*.json")):
                break
            if proc.poll() is not None:  # pragma: no cover - too fast
                break
            time.sleep(0.005)
        proc.kill()
        proc.wait(timeout=30)

        checkpointed = len(list(cache_dir.glob("*.json")))
        assert checkpointed >= 1, "no checkpoint before the kill"

        spec = scenario_spec(seeds=(1, 2, 3))
        resumed = SweepRunner(cache_dir=cache_dir).run(spec)
        assert resumed.cache_hits >= 1
        assert resumed.executed == len(spec) - resumed.cache_hits
        assert resumed.failed == 0

        fresh = SweepRunner().run(spec)
        assert [r.metrics for r in resumed.records] == \
            [r.metrics for r in fresh.records]
        assert resumed.aggregate("aggregate_goodput_mbps") == \
            fresh.aggregate("aggregate_goodput_mbps")


# ----------------------------------------------------------------------
# Graceful SIGINT/SIGTERM
# ----------------------------------------------------------------------
class TestGracefulInterrupt:
    def _interrupt_after(self, n_executed, signum):
        fired = []

        def progress(snapshot):
            if snapshot.executed >= n_executed and not fired:
                fired.append(signum)
                os.kill(os.getpid(), signum)

        return progress

    def test_serial_sigint_flushes_completed_work(self, tmp_path):
        spec = scenario_spec(seeds=(1, 2))
        runner = SweepRunner(
            cache_dir=tmp_path,
            progress=self._interrupt_after(2, signal.SIGINT))
        with pytest.raises(SweepInterrupted) as excinfo:
            runner.run(spec)
        partial = excinfo.value.result
        assert excinfo.value.signum == signal.SIGINT
        assert partial.interrupted is True
        assert partial.executed == 2
        assert len(partial.records) == 2        # unstarted: no record
        assert len(list(tmp_path.glob("*.json"))) == 2

        # Resume: the flushed points come from cache, the rest run.
        resumed = SweepRunner(cache_dir=tmp_path).run(spec)
        assert resumed.cache_hits == 2
        assert resumed.executed == len(spec) - 2
        fresh = SweepRunner().run(spec)
        assert [r.metrics for r in resumed.records] == \
            [r.metrics for r in fresh.records]

    def test_parallel_sigterm_interrupts_and_reports_signal(self):
        spec = SweepSpec("slow")
        for i in range(8):
            spec.add_analytic((i,), "tests.helpers:slow_metrics_fn",
                              delay_s=0.1, value=float(i))
        runner = SweepRunner(
            jobs=2, progress=self._interrupt_after(1, signal.SIGTERM))
        with pytest.raises(SweepInterrupted) as excinfo:
            runner.run(spec)
        assert excinfo.value.signum == signal.SIGTERM
        partial = excinfo.value.result
        assert partial.interrupted is True
        assert 1 <= partial.executed < len(spec)

    def test_partial_artifact_is_marked_interrupted(self, tmp_path):
        spec = scenario_spec(seeds=(1, 2))
        runner = SweepRunner(
            cache_dir=tmp_path,
            progress=self._interrupt_after(1, signal.SIGINT))
        with pytest.raises(SweepInterrupted) as excinfo:
            runner.run(spec)
        payload = excinfo.value.result.to_json_dict()
        assert payload["interrupted"] is True
        assert payload["version"] == RESULT_VERSION
        loaded = SweepResult.from_json_dict(payload)
        assert loaded.interrupted is True

    def test_signal_handlers_are_restored(self):
        before = (signal.getsignal(signal.SIGINT),
                  signal.getsignal(signal.SIGTERM))
        SweepRunner().run(analytic_spec(n=1))
        after = (signal.getsignal(signal.SIGINT),
                 signal.getsignal(signal.SIGTERM))
        assert before == after


# ----------------------------------------------------------------------
# Cache hardening (staging names, quarantine, probe)
# ----------------------------------------------------------------------
class TestCacheHardening:
    def test_staging_names_are_unique_per_call_and_process(
            self, tmp_path):
        cache = SweepCache(tmp_path)
        a, b = cache._staging_path("sig"), cache._staging_path("sig")
        assert a != b
        assert str(os.getpid()) in a.name
        other = SweepCache(tmp_path)
        assert other._staging_path("sig") != cache._staging_path("sig")

    def test_store_leaves_no_staging_litter(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.store("sig", {"v": 1})
        cache.store("sig", {"v": 2})
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.load("sig") == {"v": 2}

    def test_concurrent_stores_same_signature_end_consistent(
            self, tmp_path):
        a, b = SweepCache(tmp_path), SweepCache(tmp_path)
        a.store("sig", {"v": "a"})
        b.store("sig", {"v": "b"})
        assert SweepCache(tmp_path).load("sig") in \
            ({"v": "a"}, {"v": "b"})
        assert list(tmp_path.glob("*.tmp")) == []

    def test_truncated_json_is_quarantined_and_counted(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.store("sig", {"v": 1})
        (tmp_path / "sig.json").write_text('{"v": 1')   # truncated
        assert cache.load("sig") is None
        assert cache.corrupt == 1 and cache.misses == 1
        assert not (tmp_path / "sig.json").exists()
        assert (tmp_path / "sig.json.corrupt").exists()
        # Quarantined means the next run stores fresh and hits again.
        cache.store("sig", {"v": 2})
        assert cache.load("sig") == {"v": 2}

    def test_non_dict_payload_is_rejected_and_quarantined(
            self, tmp_path):
        cache = SweepCache(tmp_path)
        (tmp_path / "sig.json").write_text("[1, 2, 3]")
        assert cache.load("sig") is None
        assert cache.corrupt == 1
        assert (tmp_path / "sig.json.corrupt").exists()

    def test_probe_reports_all_states(self, tmp_path):
        cache = SweepCache(tmp_path)
        assert cache.probe("nothing") == "missing"
        cache.store("good", {"v": 1})
        assert cache.probe("good") == "complete"
        cache.store_failure("bad", {"type": "RuntimeError"})
        assert cache.probe("bad") == "failed"
        (tmp_path / "mangled.json").write_text("{nope")
        assert cache.probe("mangled") == "corrupt"
        (tmp_path / "listy.json").write_text("[]")
        assert cache.probe("listy") == "corrupt"
        # probe never mutates: counters untouched, files unmoved.
        assert cache.corrupt == 0
        assert (tmp_path / "mangled.json").exists()


# ----------------------------------------------------------------------
# Artifact schema v2 + engine guard
# ----------------------------------------------------------------------
class TestArtifactVersioning:
    def test_v2_schema_fields(self):
        payload = SweepRunner().run(analytic_spec(n=1)).to_json_dict()
        assert payload["version"] == RESULT_VERSION
        assert payload["engine"] == ENGINE_VERSION
        assert payload["failed"] == 0
        assert payload["interrupted"] is False
        assert payload["records"][0]["error"] is None

    def test_v1_artifact_still_loads(self):
        v1 = {
            "format": "repro-sweep-result", "version": 1,
            "engine": ENGINE_VERSION, "spec": "old",
            "executed": 1, "cache_hits": 0,
            "records": [{"key": [1], "seed": 1, "signature": "s",
                         "cached": False, "metrics": {"v": 1.0}}],
        }
        loaded = SweepResult.from_json_dict(v1)
        assert loaded.failed == 0 and loaded.interrupted is False
        assert loaded.records[0].ok
        assert loaded.records[0].metrics == {"v": 1.0}

    def test_stale_engine_raises(self):
        stale = SweepRunner().run(analytic_spec(n=1)).to_json_dict()
        stale["engine"] = ENGINE_VERSION - 1
        with pytest.raises(StaleArtifactError,
                           match="engine version"):
            SweepResult.from_json_dict(stale)
        with pytest.raises(StaleArtifactError):
            SweepResult.from_json_dict(dict(stale, engine=None))

    def test_allow_stale_escape_hatch(self, tmp_path):
        stale = SweepRunner().run(analytic_spec(n=1)).to_json_dict()
        stale["engine"] = ENGINE_VERSION - 1
        loaded = SweepResult.from_json_dict(stale, allow_stale=True)
        assert loaded.records
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(stale))
        assert SweepResult.load(path, allow_stale=True).records
        with pytest.raises(StaleArtifactError):
            SweepResult.load(path)

    def test_unknown_version_rejected(self):
        payload = SweepRunner().run(analytic_spec(n=1)).to_json_dict()
        payload["version"] = RESULT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            SweepResult.from_json_dict(payload)
