"""Whole-scenario equivalence: lazy backoff vs the slotted oracle.

Runs complete WLAN scenarios twice — once with the production
:class:`~repro.mac.dcf.DcfMac` (lazy backoff, busy-aware response
re-poll) and once with the slotted reference MAC from
``tests/mac/slotted_reference.py`` (per-slot countdown, per-slot
response poll, i.e. the seed's kernel behaviour) — and asserts the
full flattened metrics are identical, across contention-heavy,
lossy, device-quirk and upload regimes.

``kernel_stats`` is excluded from the comparison: it is exactly the
thing that must differ (the lazy kernel executes fewer events for the
same simulated behaviour), which the last test asserts directly.
"""

import pytest

from repro.core.policies import HackPolicy
from repro.sim.units import MS, SEC, usec
from repro.workloads import scenarios
from repro.workloads.scenarios import LossSpec, ScenarioConfig, \
    run_scenario

from tests.mac.slotted_reference import SlottedDcfMac

CONFIGS = {
    "single-client-hack": ScenarioConfig(
        duration_ns=800 * MS, warmup_ns=300 * MS, stagger_ns=0),
    "multi-client-vanilla": ScenarioConfig(
        n_clients=3, policy=HackPolicy.VANILLA,
        duration_ns=800 * MS, warmup_ns=300 * MS, stagger_ns=50 * MS),
    "lossy-snr": ScenarioConfig(
        data_rate_mbps=90.0, loss=LossSpec(kind="snr", snr_db=18.0),
        duration_ns=800 * MS, warmup_ns=300 * MS, stagger_ns=0),
    "sora-11a": ScenarioConfig(
        phy_mode="11a", data_rate_mbps=54.0, n_clients=2,
        loss=LossSpec(kind="uniform", data_loss=0.02,
                      control_loss=0.002),
        extra_response_delay_ns=usec(37),
        ack_timeout_extra_ns=usec(60),
        duration_ns=800 * MS, warmup_ns=300 * MS, stagger_ns=50 * MS),
    "upload-finite": ScenarioConfig(
        traffic="tcp_upload", file_bytes=2_000_000,
        duration_ns=5 * SEC, warmup_ns=100 * MS, stagger_ns=0),
}


def run_with_mac(mac_cls, cfg, monkeypatch):
    with monkeypatch.context() as patch:
        patch.setattr(scenarios, "DcfMac", mac_cls)
        result = run_scenario(cfg)
    metrics = result.metrics_dict()
    kernel = metrics.pop("kernel_stats")
    return metrics, kernel


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_lazy_kernel_matches_slotted_oracle(name, monkeypatch):
    cfg = CONFIGS[name]
    lazy, lazy_kernel = run_with_mac(scenarios.DcfMac, cfg, monkeypatch)
    oracle, oracle_kernel = run_with_mac(SlottedDcfMac, cfg, monkeypatch)
    assert lazy == oracle, f"{name}: lazy kernel changed behaviour"
    assert lazy_kernel["events_executed"] < \
        oracle_kernel["events_executed"], (
            f"{name}: lazy kernel should execute fewer events")


def test_event_reduction_is_substantial_under_contention(monkeypatch):
    cfg = CONFIGS["multi-client-vanilla"]
    _, lazy = run_with_mac(scenarios.DcfMac, cfg, monkeypatch)
    _, oracle = run_with_mac(SlottedDcfMac, cfg, monkeypatch)
    # The oracle here already benefits from the single-event wired
    # pipe (shared code); the MAC-side laziness alone must still cut
    # a decent chunk of the kernel's event budget.
    assert lazy["events_executed"] < 0.8 * oracle["events_executed"]
