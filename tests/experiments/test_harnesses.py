"""Experiment harness smoke tests.

Full experiment runs live in ``benchmarks/``; here we verify that the
harnesses produce well-formed rows and tables on minimal settings.
"""

import pytest

from repro.experiments import ablations, common, crossval, fig01, \
    fig09, fig10, fig11, fig12, runner, table2, table3


class TestCommon:
    def test_seeds(self):
        assert common.seeds_for(True) == common.QUICK_SEEDS
        assert len(common.seeds_for(False)) == 5

    def test_format_table_alignment(self):
        out = common.format_table(["a", "long_header"],
                                  [["xx", "1"], ["y", "22"]],
                                  title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1


class TestFig01:
    def test_rows_cover_both_figures(self):
        rows = fig01.run()
        assert {r["figure"] for r in rows} == {"1a", "1b"}
        assert all(r["hack_mbps"] > r["tcp_mbps"] for r in rows)

    def test_format(self):
        out = fig01.format_rows(fig01.run())
        assert "Figure 1a" in out and "Figure 1b" in out


class TestSimulationHarnesses:
    """One tiny run through each sim-backed harness."""

    def test_fig11_minimal(self):
        rows = fig11.run(quick=True, snrs=(26.0,), rates=(150.0,))
        assert len(rows) == 1
        row = rows[0]
        assert row["hack_envelope_mbps"] > 0
        assert row["crc_failures"] == 0
        assert "improvement" in fig11.format_rows(rows)

    def test_fig12_minimal(self):
        rows = fig12.run(quick=True, rates=(150.0,))
        assert rows[0]["sim_tcp_mbps"] <= \
            1.05 * rows[0]["theory_tcp_mbps"]
        assert "Figure 12" in fig12.format_rows(rows)

    def test_fig10_minimal(self):
        rows = fig10.run(quick=True, client_counts=(1,))
        schemes = {r["scheme"] for r in rows}
        assert len(schemes) == 4
        assert "Figure 10" in fig10.format_rows(rows)


class TestFormatters:
    """format_rows must handle synthetic rows without running sims."""

    def test_fig09_formatter(self):
        rows = [{"figure": "9", "clients": "one client",
                 "protocol": "T", "client": "C1",
                 "goodput_mbps": 19.4, "stdev": 0.5,
                 "no_retry_frac": 0.87}]
        out = fig09.format_rows(rows)
        assert "Figure 9" in out and "Table 1" in out
        assert "87%" in out

    def test_table2_formatter(self):
        rows = [{"table": "2", "protocol": "TCP/802.11a",
                 "ack_count": 9060, "ack_bytes": 471120,
                 "compressed_count": 0, "compressed_bytes": 0,
                 "compression_ratio": 1.0, "transfer_bytes": 25e6,
                 "completed": True},
                {"table": "2", "protocol": "TCP/HACK",
                 "ack_count": 10, "ack_bytes": 520,
                 "compressed_count": 9050, "compressed_bytes": 39478,
                 "compression_ratio": 11.9, "transfer_bytes": 25e6,
                 "completed": True}]
        out = table2.format_rows(rows)
        assert "9060" in out and "11.9" in out and "(1)" in out

    def test_table3_formatter(self):
        rows = [{"table": "3", "protocol": "TCP/802.11a",
                 "tcp_ack_airtime": 70.0, "rohc_airtime": 0.0,
                 "channel_acquisition": 1093.0,
                 "ll_ack_overhead": 456.0}]
        assert "1093.00" in table3.format_rows(rows)

    def test_crossval_formatter(self):
        rows = [{"figure": "crossval", "protocol": "TCP/HACK",
                 "loss_rate": 0.02, "ideal_mbps": 28.0,
                 "sora_mbps": 25.5}]
        out = crossval.format_rows(rows)
        assert "28.0" in out and "2%" in out

    def test_ablations_formatter(self):
        rows = [{"ablation": "policy", "variant": "MORE DATA",
                 "goodput_mbps": 129.0},
                {"ablation": "txop", "variant": "1 ms",
                 "tcp_mbps": 93.0, "hack_mbps": 114.0,
                 "improvement_pct": 22.6}]
        out = ablations.format_rows(rows)
        assert "MORE DATA" in out and "TXOP" in out


class TestRunner:
    def test_cli_fig01(self, capsys):
        assert runner.main(["fig01"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1a" in out
        assert "[fig01:" in out

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            runner.main(["nonsense"])

    def test_experiment_registry_complete(self):
        assert set(runner.EXPERIMENTS) == {
            "fig01", "fig09", "table2", "table3", "crossval",
            "fig10", "fig11", "fig12", "ablations", "fct_churn",
            "multi_ap", "city_scale", "adversarial", "aqm_pacing"}
