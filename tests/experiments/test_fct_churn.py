"""fct_churn experiment harness: schema, acceptance, determinism."""

import pytest

from repro.experiments import fct_churn, runner
from repro.experiments.batch import SweepRunner

SCHEMA = {"figure", "shape", "load", "scheme", "flows_completed",
          "flows_censored", "fct_p50_ms", "fct_p95_ms", "fct_p99_ms",
          "offered_mbps", "carried_mbps"}


@pytest.fixture(scope="module")
def quick_rows(sweep_cache_runner):
    # Trimmed grid: one load level, both shapes, both policies.
    return fct_churn.run(quick=True, loads=("high",),
                         runner=sweep_cache_runner)


class TestHarness:
    def test_registered_with_runner(self):
        assert runner.EXPERIMENTS["fct_churn"] is fct_churn

    def test_sweep_spec_shape(self):
        spec = fct_churn.sweep_spec(quick=True)
        assert spec.name == "fct_churn"
        # shapes x loads x schemes x one quick seed
        assert len(spec) == 2 * 2 * 2
        assert all(p.config.traffic == "dynamic" for p in spec.points)

    def test_row_schema(self, quick_rows):
        assert quick_rows
        for row in quick_rows:
            assert set(row) == SCHEMA

    def test_acceptance_cells(self, quick_rows):
        """>= 4 cells (HACK on/off x 2 shapes) with completions and
        p50/p95/p99 — the PR's acceptance criterion."""
        cells = {(r["shape"], r["scheme"]) for r in quick_rows}
        assert len(cells) >= 4
        for row in quick_rows:
            assert row["flows_completed"] > 0
            assert 0 < row["fct_p50_ms"] <= row["fct_p95_ms"] \
                <= row["fct_p99_ms"]
            assert row["offered_mbps"] > 0
            assert row["carried_mbps"] > 0

    def test_rows_deterministic(self, quick_rows, sweep_cache_runner):
        again = fct_churn.run(quick=True, loads=("high",),
                              runner=sweep_cache_runner)
        assert quick_rows == again

    def test_deterministic_without_cache(self):
        kwargs = dict(quick=True, shapes=("web",), loads=("high",))
        assert fct_churn.run(**kwargs) == fct_churn.run(**kwargs)

    def test_format_rows_renders(self, quick_rows):
        text = fct_churn.format_rows(quick_rows)
        assert "Flow churn" in text
        assert "FCT p50" in text
        assert "HACK changes p50 FCT" in text

    def test_parallel_matches_serial(self, quick_rows):
        parallel = fct_churn.run(quick=True, loads=("high",),
                                 runner=SweepRunner(jobs=2))
        assert parallel == quick_rows
