"""Sweep observability: progress snapshots/ETA, the throttled
reporter, cache status audits, and the CLI surfaces (--progress,
--status, failure exit codes)."""

import io
import types

import pytest

from repro.cli import main as cli_main
from repro.experiments import runner as experiments_runner
from repro.experiments.batch import SweepCache, SweepRunner, SweepSpec
from repro.experiments.progress import CellStatus, ProgressReporter, \
    SweepProgress, format_status, render_progress, sweep_status


def snapshot(**kwargs):
    defaults = dict(spec_name="s", total=10)
    defaults.update(kwargs)
    return SweepProgress(**defaults)


class TestSweepProgress:
    def test_counts_and_remaining(self):
        p = snapshot(executed=3, cached=2, failed=1)
        assert p.completed == 6
        assert p.remaining == 4
        assert not p.finished

    def test_finished_when_everything_resolved(self):
        p = snapshot(total=4, executed=2, cached=1, failed=1)
        assert p.finished and p.remaining == 0

    def test_rate_counts_executed_points_only(self):
        p = snapshot(executed=4, cached=4, elapsed_s=2.0)
        assert p.rate_per_s == pytest.approx(2.0)

    def test_eta_scales_with_remaining(self):
        p = snapshot(executed=2, elapsed_s=4.0)     # 0.5 pts/s, 8 left
        assert p.eta_s == pytest.approx(16.0)

    def test_rate_and_eta_undefined_before_first_execution(self):
        p = snapshot(cached=3, elapsed_s=1.0)
        assert p.rate_per_s is None and p.eta_s is None

    def test_render_mentions_failures_and_eta(self):
        line = render_progress(snapshot(
            executed=2, failed=1, elapsed_s=1.0))
        assert "1 FAILED" in line and "ETA" in line
        done = render_progress(snapshot(
            total=2, executed=2, elapsed_s=1.0))
        assert "done in" in done


class TestShardUnitWeighting:
    """ETA in shard-units: a 3-channel point is three units of work,
    so a sweep mixing cheap and fan-out points must not extrapolate
    the cheap points' pace (the pre-shard ETA bug)."""

    def test_unit_fields_default_to_point_counts(self):
        p = snapshot(executed=2, elapsed_s=4.0)
        assert not p.units_tracked
        assert p.completed_units == p.completed
        assert p.remaining_units == p.remaining
        assert p.eta_s == pytest.approx(16.0)

    def test_rate_and_eta_use_units_when_tracked(self):
        # 10 points of 3 shard-units each; 2 points (6 units) executed
        # in 4 s -> 1.5 units/s, 24 units left -> ETA 16 s.  The
        # point-based estimator would also say 16 s here; the mixed
        # case below is where they diverge.
        p = snapshot(executed=2, elapsed_s=4.0, total_units=30,
                     executed_units=6)
        assert p.units_tracked
        assert p.rate_per_s == pytest.approx(1.5)
        assert p.eta_s == pytest.approx(16.0)

    def test_mixed_fanout_eta_weighs_the_expensive_points(self):
        # 2 points: one 1-unit (done) and one 3-unit (pending).  The
        # naive point ETA says 2 s; the unit ETA correctly says 6 s.
        p = snapshot(total=2, executed=1, elapsed_s=2.0,
                     total_units=4, executed_units=1)
        assert p.eta_s == pytest.approx(6.0)

    def test_cached_and_failed_units_complete_the_total(self):
        p = snapshot(total=3, executed=1, cached=1, failed=1,
                     elapsed_s=1.0, total_units=9, executed_units=3,
                     cached_units=3, failed_units=3)
        assert p.completed_units == 9
        assert p.remaining_units == 0
        assert p.finished

    def test_render_shows_units_when_they_differ(self):
        line = render_progress(snapshot(
            executed=2, elapsed_s=1.0, total_units=30,
            executed_units=6))
        assert "6/30 shard-units" in line
        assert "units/s" in line
        plain = render_progress(snapshot(executed=2, elapsed_s=1.0))
        assert "shard-units" not in plain and "pts/s" in plain


class TestProgressReporter:
    def test_unthrottled_prints_every_snapshot(self):
        stream = io.StringIO()
        report = ProgressReporter(stream, min_interval_s=0.0)
        for executed in range(3):
            report(snapshot(executed=executed))
        assert len(stream.getvalue().splitlines()) == 3

    def test_throttled_always_prints_first_final_and_failures(self):
        stream = io.StringIO()
        report = ProgressReporter(stream, min_interval_s=3600.0)
        report(snapshot(executed=0))                # first: prints
        report(snapshot(executed=1))                # throttled
        report(snapshot(executed=1, failed=1))      # new failure
        report(snapshot(executed=2, failed=1))      # throttled
        report(snapshot(total=3, executed=2, failed=1))  # finished
        assert report.lines_emitted == 3

    def test_runner_tracks_shard_units(self, tmp_path):
        from repro.experiments.batch import point_shard_units
        from repro.sim.units import MS
        from repro.workloads.scenarios import ScenarioConfig

        cfg = ScenarioConfig(n_clients=1, cells=2, channels=2,
                             duration_ns=120 * MS, warmup_ns=40 * MS,
                             stagger_ns=0)
        spec = SweepSpec("sharded")
        spec.add_scenario(("city",), cfg)
        spec.add_analytic(("flat",),
                          "tests.helpers:constant_metrics", value=1.0)
        assert point_shard_units(spec.points[0], 1) == 2
        assert point_shard_units(spec.points[0], None) == 1
        assert point_shard_units(spec.points[1], 1) == 1

        snapshots = []
        SweepRunner(cache_dir=tmp_path, shard_jobs=1,
                    progress=snapshots.append).run(spec)
        final = snapshots[-1]
        assert final.total_units == 3       # 2 shards + 1 analytic
        assert final.completed_units == 3
        assert final.finished

    def test_runner_emits_progress_through_reporter(self, tmp_path):
        stream = io.StringIO()
        spec = SweepSpec("p")
        for i in range(3):
            spec.add_analytic((i,), "tests.helpers:constant_metrics",
                              value=float(i))
        runner = SweepRunner(
            cache_dir=tmp_path,
            progress=ProgressReporter(stream, min_interval_s=0.0))
        runner.run(spec)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 4                  # initial + 3 points
        assert "3/3 points" in lines[-1]
        assert "done in" in lines[-1]


class TestSweepStatus:
    def spec(self):
        spec = SweepSpec("audit")
        for i in range(3):
            spec.add_analytic((i,), "tests.helpers:constant_metrics",
                              value=float(i))
        return spec

    def test_reports_complete_missing_failed(self, tmp_path):
        from repro.experiments.batch import point_signature

        spec = self.spec()
        cache = SweepCache(tmp_path)
        cache.store(point_signature(spec.points[0]), {"v": 1})
        cache.store_failure(point_signature(spec.points[1]),
                            {"type": "RuntimeError"})
        status = sweep_status(spec, cache)
        assert [c.state for c in status.cells] == \
            ["complete", "failed", "missing"]
        assert status.totals() == {"complete": 1, "failed": 1,
                                   "missing": 1, "corrupt": 0}
        assert not status.complete
        text = format_status(status)
        assert "INCOMPLETE" in text
        assert "1/3 points complete" in text

    def test_complete_after_running_the_sweep(self, tmp_path):
        spec = self.spec()
        SweepRunner(cache_dir=tmp_path).run(spec)
        status = sweep_status(spec, SweepCache(tmp_path))
        assert status.complete
        assert "COMPLETE" in format_status(status)

    def test_multi_seed_cells_aggregate_per_key(self, tmp_path):
        from repro.experiments.batch import point_signature

        spec = SweepSpec("multi")
        for seed in (1, 2):
            spec.add_analytic(("cell",),
                              "tests.helpers:constant_metrics",
                              seed_tag=seed)
        cache = SweepCache(tmp_path)
        cache.store(point_signature(spec.points[0]), {"v": 1})
        status = sweep_status(spec, cache)
        [cell] = status.cells
        assert cell.total == 2
        assert cell.counts["complete"] == 1
        assert cell.state == "missing"      # partially-filled cell

    def test_cell_state_severity_order(self):
        cell = CellStatus(key=("k",))
        cell.counts.update(complete=1, failed=1, missing=1)
        assert cell.state == "failed"


def _stub_experiment(spec):
    module = types.ModuleType("stub_experiment")
    module.sweep_spec = lambda quick=False: spec
    module.rows_from_sweep = lambda result: [
        dict(r.metrics) for r in result.records if r.ok]
    module.format_rows = lambda rows: f"{len(rows)} rows"
    return module


class TestCliStatusAndExitCodes:
    def register(self, monkeypatch, spec):
        monkeypatch.setitem(experiments_runner.EXPERIMENTS,
                            "stub", _stub_experiment(spec))

    def analytic_spec(self, raising=False):
        spec = SweepSpec("stub")
        spec.add_analytic((0,), "tests.helpers:constant_metrics",
                          value=1.0)
        if raising:
            spec.add_analytic((1,), "tests.helpers:raising_metrics_fn")
        return spec

    def test_status_incomplete_then_complete(self, monkeypatch,
                                             tmp_path, capsys):
        self.register(monkeypatch, self.analytic_spec())
        cache_dir = str(tmp_path / "cache")
        status_args = ["sweep", "stub", "--status",
                       "--cache-dir", cache_dir]
        assert cli_main(status_args) == 3
        assert "INCOMPLETE" in capsys.readouterr().out

        assert cli_main(["sweep", "stub",
                         "--cache-dir", cache_dir]) == 0
        assert cli_main(status_args) == 0
        assert "COMPLETE" in capsys.readouterr().out

    def test_status_refuses_no_cache(self, monkeypatch, tmp_path,
                                     capsys):
        self.register(monkeypatch, self.analytic_spec())
        code = cli_main(["sweep", "stub", "--status", "--no-cache"])
        assert code == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_failed_point_exits_nonzero_and_reports(
            self, monkeypatch, tmp_path, capsys):
        self.register(monkeypatch, self.analytic_spec(raising=True))
        code = cli_main(["sweep", "stub",
                         "--cache-dir", str(tmp_path / "c")])
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILED cell" in captured.err
        assert "RuntimeError" in captured.err
        assert "1 failed" in captured.out

    def test_runner_main_failed_point_exits_nonzero(
            self, monkeypatch, tmp_path, capsys):
        self.register(monkeypatch, self.analytic_spec(raising=True))
        code = experiments_runner.main(
            ["stub", "--cache-dir", str(tmp_path / "c")])
        assert code == 1
        assert "FAILED cell" in capsys.readouterr().err

    def test_progress_flag_prints_lines(self, monkeypatch, tmp_path,
                                        capsys):
        self.register(monkeypatch, self.analytic_spec())
        code = cli_main(["sweep", "stub", "--progress", "--no-cache"])
        assert code == 0
        assert "[sweep stub]" in capsys.readouterr().err
