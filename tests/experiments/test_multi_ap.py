"""multi_ap experiment harness: schema, acceptance, determinism.

Acceptance criteria pinned here: the sweep runs green serially and
with ``--jobs 2`` producing identical rows, and the 2-cell contended
static cells carry strictly less per cell than the isolated
single-cell baseline (for both schemes).
"""

import pytest

from repro.experiments import multi_ap, runner
from repro.experiments.batch import SweepRunner

SCHEMA = {"figure", "workload", "cells", "scheme", "combined_mbps",
          "per_cell_mbps", "cell_jain", "airtime_sum",
          "collision_frac", "utilisation", "flows_completed",
          "fct_p50_ms"}


@pytest.fixture(scope="module")
def quick_rows(sweep_cache_runner):
    return multi_ap.run(quick=True, runner=sweep_cache_runner)


class TestHarness:
    def test_registered_with_runner(self):
        assert runner.EXPERIMENTS["multi_ap"] is multi_ap

    def test_sweep_spec_shape(self):
        spec = multi_ap.sweep_spec(quick=True)
        assert spec.name == "multi_ap"
        # workloads x cell counts x schemes x one quick seed
        assert len(spec) == 2 * 3 * 2
        cells = {p.config.cells for p in spec.points}
        assert cells == {1, 2, 3}
        assert all(p.config.n_clients == multi_ap.CLIENTS_PER_CELL
                   for p in spec.points)

    def test_row_schema(self, quick_rows):
        assert len(quick_rows) == 12
        for row in quick_rows:
            assert set(row) == SCHEMA

    def test_contended_cells_below_isolated_baseline(self, quick_rows):
        """The PR's acceptance criterion, at the sweep level."""
        static = {(r["cells"], r["scheme"]): r for r in quick_rows
                  if r["workload"] == "static"}
        for scheme, _policy in multi_ap.SCHEMES:
            isolated = static[(1, scheme)]["per_cell_mbps"]
            assert isolated > 0
            for cells in (2, 3):
                contended = static[(cells, scheme)]["per_cell_mbps"]
                assert 0 < contended < isolated, (scheme, cells)

    def test_airtime_and_fairness_bounds(self, quick_rows):
        for row in quick_rows:
            assert 0 < row["airtime_sum"] <= 1.0, row
            assert 0 < row["cell_jain"] <= 1.0, row
            assert 0 <= row["collision_frac"] < 1.0, row
            assert row["utilisation"] >= \
                row["airtime_sum"] / row["cells"]

    def test_churn_rows_have_completions(self, quick_rows):
        for row in quick_rows:
            if row["workload"] == "churn":
                assert row["flows_completed"] > 0
                assert row["fct_p50_ms"] > 0
            else:
                assert row["flows_completed"] is None
                assert row["fct_p50_ms"] is None

    def test_multi_cell_collides_more(self, quick_rows):
        by_cells = {
            r["cells"]: r["collision_frac"] for r in quick_rows
            if r["workload"] == "static"
            and r["scheme"] == "TCP/HACK More Data"}
        assert by_cells[2] > by_cells[1]

    def test_rows_deterministic(self, quick_rows, sweep_cache_runner):
        again = multi_ap.run(quick=True, runner=sweep_cache_runner)
        assert quick_rows == again

    def test_parallel_rows_identical_to_serial(self, quick_rows):
        """Serial vs --jobs 2, trimmed to the 2-cell slice so the
        uncached parallel pass stays CI-sized."""
        kwargs = dict(quick=True, cell_counts=(1, 2),
                      workloads=("static",))
        serial = multi_ap.run(**kwargs, runner=SweepRunner())
        parallel = multi_ap.run(**kwargs, runner=SweepRunner(jobs=2))
        assert serial == parallel
        trimmed = [r for r in quick_rows
                   if r["workload"] == "static" and r["cells"] in (1, 2)]
        assert serial == trimmed

    def test_format_rows_renders(self, quick_rows):
        text = multi_ap.format_rows(quick_rows)
        assert "Multi-AP overlapping cells" in text
        assert "airtime sum" in text
        assert "a second co-channel cell costs" in text
        assert "stretches p50 FCT" in text
