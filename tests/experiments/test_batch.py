"""Sweep-engine unit tests: grids, signatures, parallel equivalence,
caching, persistence, and analytic points."""

import json

import pytest

from repro.experiments.batch import SweepResult, SweepRunner, \
    SweepSpec, execute_point, point_signature
from repro.sim.units import MS
from repro.workloads.scenarios import ScenarioConfig

#: Short but non-trivial windows so four runs stay around a second.
FAST = dict(duration_ns=400 * MS, warmup_ns=200 * MS, stagger_ns=0)


def fast_spec(seeds=(1, 2)) -> SweepSpec:
    return SweepSpec.grid("unit", FAST, {"n_clients": [1, 2]},
                          seeds=seeds)


class TestSpec:
    def test_grid_crosses_axes_and_seeds(self):
        spec = SweepSpec.grid(
            "g", FAST, {"n_clients": [1, 2], "data_rate_mbps": [54.0]},
            seeds=(1, 2, 3))
        assert len(spec) == 6
        assert spec.keys() == [(1, 54.0), (2, 54.0)]
        assert {p.config.seed for p in spec.points} == {1, 2, 3}
        assert all(p.kind == "scenario" for p in spec.points)

    def test_add_analytic_points(self):
        spec = SweepSpec("a")
        spec.add_analytic(("x",), "tests.helpers:constant_metrics",
                          value=3.5)
        metrics = execute_point(spec.points[0])
        assert metrics == {"value": 3.5}

    def test_analytic_fn_must_be_dotted(self):
        spec = SweepSpec("a")
        spec.add_analytic(("x",), "no_colon_here")
        with pytest.raises(ValueError, match="module:function"):
            execute_point(spec.points[0])

    def test_analytic_fn_must_return_dict(self):
        spec = SweepSpec("a")
        spec.add_analytic(("x",), "tests.helpers:not_a_metrics_fn")
        with pytest.raises(TypeError, match="metrics dict"):
            execute_point(spec.points[0])

    def test_with_config_overrides_replaces_every_scenario(self):
        spec = fast_spec(seeds=(1, 2))
        spec.add_analytic(("x",), "tests.helpers:constant_metrics",
                          value=1.0)
        overridden = spec.with_config_overrides(stream_stats=True,
                                                seed=9)
        assert overridden.name == spec.name
        assert len(overridden) == len(spec)
        assert overridden.keys() == spec.keys()
        for before, after in zip(spec.points, overridden.points):
            if before.config is None:
                assert after is before          # analytic pass-through
            else:
                assert after.config.stream_stats is True
                assert after.config.seed == 9
                assert before.config.stream_stats is False  # untouched
                assert after.config.n_clients == \
                    before.config.n_clients

    def test_with_config_overrides_changes_signatures(self):
        spec = fast_spec(seeds=(1,))
        overridden = spec.with_config_overrides(stream_stats=True)
        assert point_signature(spec.points[0]) != \
            point_signature(overridden.points[0])

    def test_grid_axis_overrides_base_field(self):
        # Regression: an axis field that also appears in ``base`` used
        # to raise "got multiple values for keyword argument".
        spec = SweepSpec.grid(
            "x", dict(FAST, n_clients=2), {"n_clients": [1, 2]},
            seeds=(1,))
        assert [p.config.n_clients for p in spec.points] == [1, 2]
        assert spec.keys() == [(1,), (2,)]

    def test_grid_seed_overrides_base_seed(self):
        spec = SweepSpec.grid(
            "x", dict(FAST, seed=99), {"n_clients": [1]}, seeds=(1, 2))
        assert [p.config.seed for p in spec.points] == [1, 2]


class TestSignatures:
    def test_stable_for_equal_configs(self):
        a = SweepSpec.grid("s", FAST, {"n_clients": [1]}, seeds=(1,))
        b = SweepSpec.grid("s", FAST, {"n_clients": [1]}, seeds=(1,))
        assert point_signature(a.points[0]) == \
            point_signature(b.points[0])

    def test_sensitive_to_any_config_field(self):
        base = SweepSpec.grid("s", FAST, {"n_clients": [1]}, seeds=(1,))
        changed = SweepSpec("s")
        changed.add_scenario((1,), ScenarioConfig(
            n_clients=1, seed=1,
            **dict(FAST, duration_ns=FAST["duration_ns"] + 1)))
        assert point_signature(base.points[0]) != \
            point_signature(changed.points[0])

    def test_sensitive_to_seed(self):
        spec = fast_spec(seeds=(1, 2))
        sigs = {point_signature(p) for p in spec.points}
        assert len(sigs) == len(spec.points)


class TestExecution:
    def test_parallel_equals_serial(self):
        spec = fast_spec()
        serial = SweepRunner().run(spec)
        parallel = SweepRunner(jobs=2).run(spec)
        assert [r.key for r in serial.records] == \
            [r.key for r in parallel.records]
        assert [r.metrics for r in serial.records] == \
            [r.metrics for r in parallel.records]
        assert serial.aggregate("aggregate_goodput_mbps") == \
            parallel.aggregate("aggregate_goodput_mbps")
        assert parallel.executed == len(spec)

    def test_jobs_zero_means_cpu_count(self):
        assert SweepRunner(jobs=0).jobs >= 1

    def test_aggregate_matches_historical_averaged(self):
        result = SweepRunner().run(fast_spec())
        cell = result.cell((1,), "aggregate_goodput_mbps")
        values = result.values((1,), "aggregate_goodput_mbps")
        import statistics
        assert cell["mean"] == statistics.fmean(values)
        assert cell["stdev"] == statistics.stdev(values)
        assert cell["runs"] == 2

    def test_callable_metric(self):
        result = SweepRunner().run(fast_spec(seeds=(1,)))
        timeouts = result.cell((1,), lambda m: sum(
            c["timeouts"] for c in m["sender_counters"].values()))
        assert timeouts["runs"] == 1

    def test_unknown_cell_raises_with_known_keys(self):
        result = SweepRunner().run(fast_spec(seeds=(1,)))
        with pytest.raises(KeyError, match="known cells"):
            result.cell((99,), "aggregate_goodput_mbps")


class TestCache:
    def test_second_run_is_all_hits(self, tmp_path):
        spec = fast_spec(seeds=(1,))
        first = SweepRunner(cache_dir=tmp_path).run(spec)
        second = SweepRunner(cache_dir=tmp_path).run(spec)
        assert first.executed == 2 and first.cache_hits == 0
        assert second.executed == 0 and second.cache_hits == 2
        assert all(r.cached for r in second.records)
        assert [r.metrics for r in first.records] == \
            [r.metrics for r in second.records]

    def test_changed_cells_invalidate_only_themselves(self, tmp_path):
        spec = fast_spec(seeds=(1,))
        SweepRunner(cache_dir=tmp_path).run(spec)
        changed = SweepSpec("unit")
        changed.add_scenario((1,), ScenarioConfig(
            n_clients=1, seed=1, **FAST))         # unchanged cell
        changed.add_scenario((2,), ScenarioConfig(
            n_clients=2, seed=99, **FAST))        # new seed -> miss
        result = SweepRunner(cache_dir=tmp_path).run(changed)
        assert result.cache_hits == 1
        assert result.executed == 1

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        spec = fast_spec(seeds=(1,))
        SweepRunner(cache_dir=tmp_path).run(spec)
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        runner = SweepRunner(cache_dir=tmp_path)
        result = runner.run(spec)
        assert result.executed == 2 and result.cache_hits == 0
        assert runner.cache.corrupt == 2
        # Quarantined, re-stored: the third run hits cleanly again.
        assert len(list(tmp_path.glob("*.json.corrupt"))) == 2
        third = SweepRunner(cache_dir=tmp_path).run(spec)
        assert third.cache_hits == 2 and third.executed == 0

    def test_parallel_run_populates_cache(self, tmp_path):
        spec = fast_spec(seeds=(1,))
        SweepRunner(jobs=2, cache_dir=tmp_path).run(spec)
        serial = SweepRunner(cache_dir=tmp_path).run(spec)
        assert serial.executed == 0 and serial.cache_hits == 2


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        result = SweepRunner().run(fast_spec(seeds=(1,)))
        path = tmp_path / "sweep.json"
        result.save(path)
        loaded = SweepResult.load(path)
        assert loaded.spec_name == result.spec_name
        assert loaded.keys() == result.keys()
        assert loaded.aggregate("aggregate_goodput_mbps") == \
            result.aggregate("aggregate_goodput_mbps")
        assert all(isinstance(r.key, tuple) for r in loaded.records)

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="sweep-result"):
            SweepResult.load(path)
