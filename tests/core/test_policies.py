"""HackConfig presets."""

from repro.core.policies import HackConfig, HackPolicy
from repro.sim.units import msec


class TestPresets:
    def test_vanilla_disabled(self):
        config = HackConfig.for_policy(HackPolicy.VANILLA)
        assert not config.enabled

    def test_more_data_enabled_no_timer(self):
        config = HackConfig.for_policy(HackPolicy.MORE_DATA)
        assert config.enabled
        assert config.flush_after_ns is None
        assert config.stall_guard_ns is None

    def test_explicit_timer_has_default_delay(self):
        config = HackConfig.for_policy(HackPolicy.EXPLICIT_TIMER)
        assert config.flush_after_ns == msec(5)

    def test_opportunistic(self):
        config = HackConfig.for_policy(HackPolicy.OPPORTUNISTIC)
        assert config.enabled
        assert config.policy is HackPolicy.OPPORTUNISTIC

    def test_init_vanilla_default(self):
        assert HackConfig.for_policy(HackPolicy.MORE_DATA
                                     ).init_vanilla_acks == 1

    def test_max_buffered_within_frame_limit(self):
        # HACK frames carry at most 255 entries.
        for policy in HackPolicy:
            assert HackConfig.for_policy(policy).max_buffered <= 255
