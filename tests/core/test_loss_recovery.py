"""End-to-end reproductions of the paper's loss scenarios (Figs 5-8).

A real AP-side MAC+driver talks to a real client-side MAC+driver over
the simulated medium, with control-frame losses injected by script.
The client auto-generates TCP ACKs for arriving data (a stand-in for
its TCP stack), and the tests verify the retention / SYNC / flush
rules deliver every TCP ACK exactly once to the AP.
"""

from typing import List

import pytest

from repro.core.driver import HackDriver
from repro.core.policies import HackConfig, HackPolicy
from repro.mac.dcf import DcfMac
from repro.mac.params import MacParams
from repro.phy.params import PHY_11A, PHY_11N
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.sim.units import usec
from repro.tcp.segment import FiveTuple, TcpSegment

FT = FiveTuple("10.0.0.1", "10.0.1.1", 5001, 80)


class ScriptedControlLoss:
    """Loses the i-th LL response (ACK / Block ACK) sent by the
    client when script[i] is True — the frames the Fig 5-8 scenarios
    lose."""

    def __init__(self, script: List[bool] = ()):
        self.script = list(script)
        self.seen = 0

    def is_lost(self, sender, receiver, frame):
        from repro.mac.frames import AckFrame, BlockAckFrame
        if not isinstance(frame, (AckFrame, BlockAckFrame)):
            return False
        if getattr(frame, "src", None) != "C1":
            return False
        index = self.seen
        self.seen += 1
        if index < len(self.script):
            return self.script[index]
        return False

    def ppdu_lost(self, sender, receiver, frame):
        return False

    def mpdu_lost(self, sender, receiver, mpdu, rate):
        return False


class ApSide:
    """AP node double: counts TCP ACKs arriving (vanilla or HACK)."""

    def __init__(self):
        self.acks_received = []

    def on_packet_received(self, packet, sender):
        if isinstance(packet, TcpSegment) and packet.is_pure_ack:
            self.acks_received.append(packet.ack)


class ClientSide:
    """Client node double: ACKs every data segment after a stack delay."""

    def __init__(self, sim, driver, delayed_ack=False):
        self.sim = sim
        self.driver = driver
        self.delayed_ack = delayed_ack
        self.rcv_nxt = 0
        self.pending = 0
        self.data_received = []
        self.ts = 100

    def on_packet_received(self, packet, sender):
        if not isinstance(packet, TcpSegment) or packet.is_pure_ack:
            return
        self.data_received.append(packet.seq)
        self.rcv_nxt = max(self.rcv_nxt, packet.end_seq)
        self.pending += 1
        if not self.delayed_ack or self.pending >= 2:
            self.pending = 0
            self.sim.schedule(usec(100), self._emit_ack, self.rcv_nxt)

    def _emit_ack(self, ack_no):
        self.ts += 1
        ack = TcpSegment(flow_id=1, src="C1", dst="SRV", seq=0,
                         payload_bytes=0, ack=ack_no, rwnd=65535,
                         ts_val=self.ts, ts_ecr=self.ts - 1,
                         five_tuple=FT)
        self.driver.send_packet(ack, "AP")


def tcp_data(seq):
    return TcpSegment(flow_id=1, src="SRV", dst="C1", seq=seq,
                      payload_bytes=1460, ack=0, rwnd=0,
                      five_tuple=FT.reversed())


class Rng:
    def __init__(self):
        self.n = 0

    def randint(self, lo, hi):
        # Deterministic, desynchronised backoffs.
        self.n += 1
        return (self.n * 3) % (hi - lo + 1) + lo


def build_testbed(loss_script=(), aggregation=True, delayed_ack=False,
                  bar_retry_limit=7):
    sim = Simulator()
    loss = ScriptedControlLoss(loss_script)
    medium = Medium(sim, loss_model=loss)
    phy = PHY_11N if aggregation else PHY_11A
    rate = 150.0 if aggregation else 54.0

    def make(addr):
        # Small batches (4 MPDUs) so that multi-batch exchanges — and
        # hence the MORE DATA bit — occur with test-sized workloads.
        params = MacParams(data_rate_mbps=rate, aggregation=aggregation,
                           bar_retry_limit=bar_retry_limit,
                           ampdu_max_mpdus=4)
        mac = DcfMac(sim, medium, phy, addr, params, Rng(),
                     loss_model=loss)
        driver = HackDriver(
            sim, mac, HackConfig.for_policy(HackPolicy.MORE_DATA))
        return mac, driver

    ap_mac, ap_driver = make("AP")
    client_mac, client_driver = make("C1")
    ap = ApSide()
    ap_driver.node = ap
    client = ClientSide(sim, client_driver, delayed_ack=delayed_ack)
    client_driver.node = client
    return sim, medium, (ap_mac, ap_driver, ap), \
        (client_mac, client_driver, client)


def feed(ap_mac, n, start=0):
    for i in range(n):
        ap_mac.enqueue(tcp_data((start + i) * 1460), "C1")


class TestLosslessBaseline:
    def test_all_acks_arrive_via_hack(self):
        sim, _, (ap_mac, ap_driver, ap), (_, cd, client) = \
            build_testbed()
        feed(ap_mac, 8)
        sim.run()
        assert len(client.data_received) == 8
        # First ACK vanilla (context init); every ACK number arrives.
        assert ap.acks_received[-1] == 8 * 1460
        assert cd.stats.hack_frames_attached > 0
        assert ap_driver.decompressor_counters()["crc_failures"] == 0

    def test_no_duplicate_acks_delivered(self):
        sim, _, (ap_mac, _, ap), _ = build_testbed()
        feed(ap_mac, 10)
        sim.run()
        assert len(ap.acks_received) == len(set(ap.acks_received))


class TestFig5BlockAckLoss:
    def test_lost_block_ack_recovered_by_retention(self):
        # Fig 5(a): the Block ACK carrying compressed TCP ACKs is lost;
        # the AP sends a BAR; the re-sent Block ACK carries the same
        # compressed ACKs; the AP deduplicates.
        # Control frames: [BA(batch1)] lost.
        sim, medium, (ap_mac, ap_driver, ap), (_, cd, client) = \
            build_testbed(loss_script=[False, True])
        # 1st control frame: BA of batch 1 (no hack yet) - keep.
        # Script: feed two batches; exact indices depend on schedule,
        # so instead lose the *second* control frame (the Block ACK
        # that would carry compressed ACKs 1..k).
        feed(ap_mac, 6)
        sim.run()
        counters = ap_driver.decompressor_counters()
        assert ap.acks_received[-1] == 6 * 1460
        assert len(ap.acks_received) == len(set(ap.acks_received))
        assert counters["crc_failures"] == 0

    def test_repeated_block_ack_loss(self):
        script = [False, True, True, True, False, False, False]
        sim, _, (ap_mac, ap_driver, ap), _ = build_testbed(
            loss_script=script)
        feed(ap_mac, 10)
        sim.run()
        assert ap.acks_received[-1] == 10 * 1460
        assert len(ap.acks_received) == len(set(ap.acks_received))
        assert ap_driver.decompressor_counters()["crc_failures"] == 0


class TestFig5bSingleAckLoss:
    def test_lost_ll_ack_802_11a(self):
        # Fig 5(b): single-MPDU mode; an LL ACK carrying a compressed
        # TCP ACK is lost; the AP retransmits the MPDU (same seq); the
        # client's re-sent LL ACK carries the same compressed ACK.
        script = [False, False, True, False, False, False, False]
        sim, _, (ap_mac, ap_driver, ap), (_, _, client) = build_testbed(
            loss_script=script, aggregation=False)
        feed(ap_mac, 5)
        sim.run()
        assert len(client.data_received) == 5
        assert ap.acks_received[-1] == 5 * 1460
        assert len(ap.acks_received) == len(set(ap.acks_received))
        assert ap_driver.decompressor_counters()["crc_failures"] == 0


class TestFig8SyncBit:
    def test_sync_preserves_compressed_acks(self):
        # Lose the Block ACK and all BAR-elicited Block ACKs so the AP
        # exhausts its BAR retries and moves on with SYNC set; the
        # client must retain and re-attach its compressed ACKs.
        sim, _, (ap_mac, ap_driver, ap), (_, cd, client) = \
            build_testbed(loss_script=[False] + [True] * 9,
                          bar_retry_limit=3)
        feed(ap_mac, 6)
        sim.run()
        # Despite the giant loss burst the ACK stream recovers.
        assert ap.acks_received
        assert ap.acks_received[-1] == 6 * 1460
        assert cd.stats.sync_events >= 1
        assert ap_driver.decompressor_counters()["crc_failures"] == 0


class TestFig7FlushToVanilla:
    def test_unlatch_then_vanilla_cumulative_covers(self):
        # Feed one batch with no follow-up: MORE DATA clear, the
        # compressed ACKs ride the final Block ACK; if that is lost the
        # next vanilla ACKs (cumulative) cover the gap.
        sim, _, (ap_mac, ap_driver, ap), (_, cd, client) = \
            build_testbed(loss_script=[True, True])
        feed(ap_mac, 4)
        sim.run()
        # Feed a second wave: ACKs resume vanilla, cumulative numbers
        # cover anything lost.
        feed(ap_mac, 4, start=4)
        sim.run()
        assert ap.acks_received
        assert max(ap.acks_received) == 8 * 1460
        assert ap_driver.decompressor_counters()["crc_failures"] == 0


@pytest.mark.parametrize("seed_script", [
    [True, False, True, False, True],
    [False, True, True, False, False, True],
    [True] * 5 + [False] * 5,
])
class TestAckDeliveryInvariant:
    def test_final_ack_always_arrives(self, seed_script):
        """Invariant: whatever control frames are lost, the highest
        cumulative ACK eventually reaches the AP, with zero CRC
        failures and no duplicate reinjections."""
        sim, _, (ap_mac, ap_driver, ap), _ = build_testbed(
            loss_script=seed_script)
        feed(ap_mac, 12)
        sim.run()
        assert ap.acks_received
        assert max(ap.acks_received) == 12 * 1460
        assert len(ap.acks_received) == len(set(ap.acks_received))
        counters = ap_driver.decompressor_counters()
        assert counters["crc_failures"] == 0
