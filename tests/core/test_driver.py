"""HackDriver unit tests: policy routing, buffering, flush transitions.

These use a fake MAC so each driver rule can be exercised in isolation;
the end-to-end loss scenarios of Figs 5-8 live in test_loss_recovery.
"""

from collections import deque

import pytest

from repro.core.driver import HackDriver
from repro.core.policies import HackConfig, HackPolicy
from repro.mac.frames import AmpduFrame, DataFrame, Mpdu
from repro.rohc.packets import parse_frame
from repro.sim.engine import Simulator
from repro.sim.units import msec, usec
from repro.tcp.segment import FiveTuple, TcpSegment

FT = FiveTuple("10.0.0.1", "10.0.1.1", 5001, 80)


class FakeMac:
    def __init__(self):
        self.upper = None
        self.queues = {}
        self.enqueued = []

    def enqueue(self, payload, dst):
        self.queues.setdefault(dst, deque()).append(payload)
        self.enqueued.append((payload, dst))
        return True

    def remove_from_queue(self, dst, predicate):
        queue = self.queues.get(dst, deque())
        kept, removed = deque(), []
        for item in queue:
            (removed if predicate(item) else kept).append(item)
        self.queues[dst] = kept
        return removed


class FakeNode:
    def __init__(self):
        self.received = []

    def on_packet_received(self, packet, sender):
        self.received.append((packet, sender))


def tcp_ack(ack_no, ts=10, flow_id=1):
    return TcpSegment(flow_id=flow_id, src="C1", dst="SRV", seq=0,
                      payload_bytes=0, ack=ack_no, rwnd=65535,
                      ts_val=ts, ts_ecr=ts - 1, five_tuple=FT)


def tcp_data(seq):
    return TcpSegment(flow_id=1, src="SRV", dst="C1", seq=seq,
                      payload_bytes=1460, ack=0, rwnd=0,
                      five_tuple=FT.reversed())


def make_driver(policy=HackPolicy.MORE_DATA, **cfg_kw):
    sim = Simulator()
    mac = FakeMac()
    config = HackConfig.for_policy(policy)
    for key, value in cfg_kw.items():
        setattr(config, key, value)
    driver = HackDriver(sim, mac, config, node=FakeNode())
    return sim, mac, driver


def data_ppdu(seqs, more_data=True, sync=False, batch=True):
    mpdus = [Mpdu(src="AP", dst="C1", seq=s, payload=tcp_data(s * 1460),
                  more_data=more_data, sync=sync) for s in seqs]
    if batch:
        return AmpduFrame(mpdus=mpdus, rate_mbps=150.0), mpdus
    return DataFrame(mpdu=mpdus[0], rate_mbps=54.0), mpdus


class TestVanillaPolicy:
    def test_everything_goes_to_queue(self):
        _, mac, driver = make_driver(HackPolicy.VANILLA)
        driver.send_packet(tcp_ack(1460), "AP")
        driver.send_packet(tcp_data(0), "AP")
        assert len(mac.enqueued) == 2

    def test_no_payload_offered(self):
        _, _, driver = make_driver(HackPolicy.VANILLA)
        assert driver.hack_payload_for("AP") is None


class TestMoreDataPolicy:
    def latch(self, driver, more=True):
        frame, mpdus = data_ppdu([0, 1], more_data=more)
        driver.on_data_ppdu(frame, "AP", mpdus)

    def test_first_ack_always_vanilla(self):
        _, mac, driver = make_driver()
        self.latch(driver)
        driver.send_packet(tcp_ack(1460), "AP")
        assert len(mac.enqueued) == 1  # context init rides vanilla
        assert driver.stats.vanilla_acks_sent == 1

    def test_latched_acks_compressed(self):
        _, mac, driver = make_driver()
        self.latch(driver)
        driver.send_packet(tcp_ack(1460), "AP")
        driver.send_packet(tcp_ack(2920), "AP")
        driver.send_packet(tcp_ack(5840), "AP")
        assert len(mac.enqueued) == 1
        payload = driver.hack_payload_for("AP")
        assert payload is not None
        _, entries = parse_frame(payload)
        assert len(entries) == 2

    def test_unlatched_acks_vanilla(self):
        _, mac, driver = make_driver()
        self.latch(driver, more=False)
        driver.send_packet(tcp_ack(1460), "AP")
        driver.send_packet(tcp_ack(2920), "AP")
        assert len(mac.enqueued) == 2

    def test_data_never_compressed(self):
        _, mac, driver = make_driver()
        self.latch(driver)
        driver.send_packet(tcp_data(0), "AP")
        assert len(mac.enqueued) == 1

    def test_payload_retained_until_confirmed(self):
        _, _, driver = make_driver()
        self.latch(driver)
        driver.send_packet(tcp_ack(1460), "AP")
        driver.send_packet(tcp_ack(2920), "AP")
        first = driver.hack_payload_for("AP")
        response = object()
        driver.on_ll_response_tx("AP", response, first)
        # Not yet confirmed: the same entries ride again.
        assert driver.hack_payload_for("AP") == first

    def test_new_batch_confirms(self):
        _, _, driver = make_driver()
        self.latch(driver)
        driver.send_packet(tcp_ack(1460), "AP")
        driver.send_packet(tcp_ack(2920), "AP")
        payload = driver.hack_payload_for("AP")
        driver.on_ll_response_tx("AP", object(), payload)
        self.latch(driver)  # any new A-MPDU confirms (Fig 5a)
        assert driver.hack_payload_for("AP") is None
        assert driver.stats.entries_confirmed == 1

    def test_sync_bit_blocks_confirmation(self):
        _, _, driver = make_driver()
        self.latch(driver)
        driver.send_packet(tcp_ack(1460), "AP")
        driver.send_packet(tcp_ack(2920), "AP")
        payload = driver.hack_payload_for("AP")
        driver.on_ll_response_tx("AP", object(), payload)
        frame, mpdus = data_ppdu([2, 3], more_data=True, sync=True)
        driver.on_data_ppdu(frame, "AP", mpdus)  # Fig 8
        assert driver.hack_payload_for("AP") == payload
        assert driver.stats.sync_events == 1

    def test_unlatch_flushes_after_last_ride(self):
        _, _, driver = make_driver()
        self.latch(driver)
        driver.send_packet(tcp_ack(1460), "AP")
        driver.send_packet(tcp_ack(2920), "AP")
        # Final batch: MORE DATA clear (Fig 2 / Fig 7).
        self.latch(driver, more=False)
        payload = driver.hack_payload_for("AP")
        assert payload is not None  # last ride
        driver.on_ll_response_tx("AP", object(), payload)
        assert driver.hack_payload_for("AP") is None
        assert driver.stats.unlatch_flushes == 1

    def test_singleton_higher_seq_confirms(self):
        _, _, driver = make_driver()
        frame, mpdus = data_ppdu([0], batch=False)
        driver.on_data_ppdu(frame, "AP", mpdus)
        driver.send_packet(tcp_ack(1460), "AP")
        driver.send_packet(tcp_ack(2920), "AP")
        payload = driver.hack_payload_for("AP")
        driver.on_ll_response_tx("AP", object(), payload)
        # Retransmission (same seq) does NOT confirm (Fig 5b).
        frame2, mpdus2 = data_ppdu([0], batch=False)
        driver.on_data_ppdu(frame2, "AP", mpdus2)
        assert driver.hack_payload_for("AP") == payload
        driver.on_ll_response_tx("AP", object(), payload)
        # Higher sequence number confirms.
        frame3, mpdus3 = data_ppdu([1], batch=False)
        driver.on_data_ppdu(frame3, "AP", mpdus3)
        assert driver.hack_payload_for("AP") is None

    def test_buffer_overflow_flushes_vanilla(self):
        _, mac, driver = make_driver(max_buffered=4)
        self.latch(driver)
        driver.send_packet(tcp_ack(1460), "AP")  # vanilla init
        for i in range(6):
            driver.send_packet(tcp_ack(2920 + i * 1460), "AP")
        assert driver.stats.overflow_flushes == 1
        # 1 init + 4 flushed entries re-sent vanilla.
        assert len(mac.enqueued) == 5


class TestOpportunisticPolicy:
    def test_acks_queue_normally(self):
        _, mac, driver = make_driver(HackPolicy.OPPORTUNISTIC)
        driver.send_packet(tcp_ack(1460), "AP")
        driver.send_packet(tcp_ack(2920), "AP")
        assert len(mac.enqueued) == 2

    def test_queued_acks_pulled_at_response_time(self):
        _, mac, driver = make_driver(HackPolicy.OPPORTUNISTIC)
        driver.send_packet(tcp_ack(1460), "AP")  # establishes context
        mac.queues["AP"].popleft()               # ...and "transmits"
        driver.send_packet(tcp_ack(2920), "AP")
        driver.send_packet(tcp_ack(4380), "AP")
        payload = driver.hack_payload_for("AP")
        assert payload is not None
        _, entries = parse_frame(payload)
        assert len(entries) == 2
        assert len(mac.queues["AP"]) == 0  # yanked from the queue

    def test_uninitialised_flows_left_queued(self):
        _, mac, driver = make_driver(HackPolicy.OPPORTUNISTIC)
        driver.send_packet(tcp_ack(1460), "AP")  # still in queue: the
        # context needs one vanilla delivery, so it must not be pulled.
        assert driver.hack_payload_for("AP") is None
        assert len(mac.queues["AP"]) == 1


class TestExplicitTimerPolicy:
    def test_flush_fires_after_delay(self):
        sim, mac, driver = make_driver(HackPolicy.EXPLICIT_TIMER,
                                       flush_after_ns=msec(5))
        driver.send_packet(tcp_ack(1460), "AP")  # vanilla init
        driver.send_packet(tcp_ack(2920), "AP")  # compressed + timer
        assert len(mac.enqueued) == 1
        sim.run(until=msec(6))
        assert driver.stats.timer_flushes == 1
        assert len(mac.enqueued) == 2  # flushed vanilla
        assert driver.hack_payload_for("AP") is None

    def test_ride_before_timer_cancels_nothing_but_confirm_does(self):
        sim, mac, driver = make_driver(HackPolicy.EXPLICIT_TIMER,
                                       flush_after_ns=msec(5))
        driver.send_packet(tcp_ack(1460), "AP")
        driver.send_packet(tcp_ack(2920), "AP")
        payload = driver.hack_payload_for("AP")
        driver.on_ll_response_tx("AP", object(), payload)
        frame, mpdus = data_ppdu([5, 6])
        driver.on_data_ppdu(frame, "AP", mpdus)  # confirmed
        sim.run(until=msec(6))
        assert driver.stats.timer_flushes == 0
        assert len(mac.enqueued) == 1


class TestDecompressionPath:
    def test_ll_ack_payload_reinjected(self):
        _, mac, driver = make_driver()
        # Peer context: snoop a vanilla ACK arriving as an MPDU.
        mpdu = Mpdu(src="C1", dst="AP", seq=0, payload=tcp_ack(1460))
        driver.on_mpdu_delivered(mpdu, "C1")
        # Build a frame as the peer would.
        peer_sim, peer_mac, peer_driver = make_driver()
        frame, mpdus = data_ppdu([0, 1])
        peer_driver.on_data_ppdu(frame, "C1", mpdus)
        peer_driver.send_packet(tcp_ack(1460), "C1")
        peer_driver.send_packet(tcp_ack(2920), "C1")
        payload = peer_driver.hack_payload_for("C1")

        class Response:
            hack_payload = payload

        driver.on_ll_ack_rx(Response(), "C1")
        assert driver.stats.acks_reinjected == 1
        reinjected = driver.node.received[-1][0]
        assert reinjected.ack == 2920
        assert reinjected.is_pure_ack
