"""§3.3.2 footnote: splitting compressed ACKs across LL ACKs."""

import pytest

from repro.core.driver import HackDriver
from repro.core.policies import HackConfig, HackPolicy
from repro.mac.frames import AmpduFrame, Mpdu
from repro.mac.params import MacParams
from repro.phy.params import PHY_11N
from repro.rohc.packets import parse_frame
from repro.sim.engine import Simulator
from repro.tcp.segment import FiveTuple, TcpSegment

FT = FiveTuple("10.0.0.1", "10.0.1.1", 5001, 80)


class FakeMacWithPhy:
    """Fake MAC exposing the phy/params the splitter consults."""

    def __init__(self):
        self.upper = None
        self.enqueued = []
        self.phy = PHY_11N
        self.params = MacParams(data_rate_mbps=150.0, aggregation=True)

    def enqueue(self, payload, dst):
        self.enqueued.append(payload)
        return True

    def remove_from_queue(self, dst, predicate):
        return []


def tcp_ack(ack_no, ts=10, sack=()):
    return TcpSegment(flow_id=1, src="C1", dst="SRV", seq=0,
                      payload_bytes=0, ack=ack_no, rwnd=65535,
                      ts_val=ts, ts_ecr=ts - 1, five_tuple=FT,
                      sack_blocks=sack)


def make_driver(split=True, max_buffered=200):
    config = HackConfig.for_policy(HackPolicy.MORE_DATA)
    config.split_to_aifs = split
    config.max_buffered = max_buffered
    driver = HackDriver(Simulator(), FakeMacWithPhy(), config)
    return driver


def latch(driver):
    data = TcpSegment(flow_id=1, src="SRV", dst="C1", seq=0,
                      payload_bytes=1460, ack=0, rwnd=0,
                      five_tuple=FT.reversed())
    mpdus = [Mpdu(src="AP", dst="C1", seq=0, payload=data,
                  more_data=True)]
    driver.on_data_ppdu(AmpduFrame(mpdus=mpdus, rate_mbps=150.0),
                        "AP", mpdus)


def buffer_acks(driver, n, bulky=False):
    latch(driver)
    driver.send_packet(tcp_ack(1460), "AP")  # vanilla init
    for i in range(n):
        sack = ((10_000 * i, 10_000 * i + 1460),
                (50_000 * i + 7, 50_000 * i + 2920)) if bulky else ()
        driver.send_packet(tcp_ack(2920 + 1460 * i, ts=11 + i,
                                   sack=sack), "AP")


class TestSplitting:
    def test_small_buffer_unsplit(self):
        driver = make_driver(split=True)
        buffer_acks(driver, 5)
        payload = driver.hack_payload_for("AP")
        _, entries = parse_frame(payload)
        assert len(entries) == 5

    def test_large_buffer_is_limited(self):
        driver = make_driver(split=True)
        buffer_acks(driver, 150, bulky=True)
        payload = driver.hack_payload_for("AP")
        _, entries = parse_frame(payload)
        assert len(entries) < 150
        # The appended airtime fits within AIFS at the control rate.
        phy, params = driver.mac.phy, driver.mac.params
        rate = phy.control_rate_for(params.data_rate_mbps)
        extra = (phy.control_duration_ns(32 + len(payload), rate)
                 - phy.control_duration_ns(32, rate))
        assert extra <= phy.difs_ns

    def test_remainder_rides_later(self):
        # Each response carries an AIFS-bounded prefix; across enough
        # response opportunities every entry rides exactly once.
        driver = make_driver(split=True)
        buffer_acks(driver, 150, bulky=True)
        total = 0
        rounds = 0
        while driver.peer("AP").buffer and rounds < 200:
            payload = driver.hack_payload_for("AP")
            _, entries = parse_frame(payload)
            total += len(entries)
            driver.on_ll_response_tx("AP", object(), payload)
            latch(driver)  # new batch confirms the sent prefix
            rounds += 1
        assert total == 150
        assert rounds > 1  # it really was split across responses

    def test_at_least_one_entry_even_if_oversized(self):
        driver = make_driver(split=True)
        latch(driver)
        driver.send_packet(tcp_ack(1460), "AP")
        # A single huge-SACK ACK exceeds the AIFS budget by itself.
        driver.send_packet(
            tcp_ack(2920, sack=tuple((i * 10, i * 10 + 5)
                                     for i in range(3))), "AP")
        ps = driver.peer("AP")
        # Even if it cannot fit, it must still be sent (unsplittable).
        assert driver._aifs_prefix_len(ps) >= 1

    def test_disabled_split_sends_everything(self):
        driver = make_driver(split=False)
        buffer_acks(driver, 150, bulky=True)
        payload = driver.hack_payload_for("AP")
        _, entries = parse_frame(payload)
        assert len(entries) == 150
