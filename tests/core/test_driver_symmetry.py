"""Driver symmetry: the AP compresses the server's ACKs for uploads.

§3.1: "TCP/HACK is a fully symmetric design — both the design and our
implementation of it also work on TCP uploads by an 802.11 client."
These tests drive the AP-side driver directly through the same code
paths a client uses.
"""

from repro.core.driver import HackDriver
from repro.core.policies import HackConfig, HackPolicy
from repro.mac.frames import AmpduFrame, Mpdu
from repro.rohc.packets import parse_frame
from repro.sim.engine import Simulator
from repro.tcp.segment import FiveTuple, TcpSegment

FT_UP = FiveTuple("10.0.1.1", "10.0.0.1", 6001, 443)


class FakeMac:
    def __init__(self):
        self.upper = None
        self.enqueued = []

    def enqueue(self, payload, dst):
        self.enqueued.append((payload, dst))
        return True

    def remove_from_queue(self, dst, predicate):
        return []


def server_ack(ack_no, ts=50):
    """A TCP ACK from the wired server, heading to client C1."""
    return TcpSegment(flow_id=9, src="SRV", dst="C1", seq=0,
                      payload_bytes=0, ack=ack_no, rwnd=65535,
                      ts_val=ts, ts_ecr=ts - 1, five_tuple=FT_UP)


def client_upload_ppdu(seqs, more=True):
    """An A-MPDU of upload data from client C1."""
    mpdus = []
    for seq in seqs:
        data = TcpSegment(flow_id=9, src="C1", dst="SRV",
                          seq=seq * 1460, payload_bytes=1460, ack=0,
                          rwnd=0, five_tuple=FT_UP.reversed())
        mpdus.append(Mpdu(src="C1", dst="AP", seq=seq, payload=data,
                          more_data=more))
    return AmpduFrame(mpdus=mpdus, rate_mbps=150.0), mpdus


class TestApSideCompression:
    def make_ap(self):
        config = HackConfig.for_policy(HackPolicy.MORE_DATA)
        return HackDriver(Simulator(), FakeMac(), config)

    def test_ap_latches_on_client_more_data(self):
        ap = self.make_ap()
        frame, mpdus = client_upload_ppdu([0, 1], more=True)
        ap.on_data_ppdu(frame, "C1", mpdus)
        assert ap.peer("C1").more_data_latched

    def test_server_acks_compressed_onto_ap_block_ack(self):
        ap = self.make_ap()
        frame, mpdus = client_upload_ppdu([0, 1], more=True)
        ap.on_data_ppdu(frame, "C1", mpdus)
        # Server ACKs arrive over the wire; AP forwards toward C1.
        ap.send_packet(server_ack(1460), "C1")   # context init, vanilla
        ap.send_packet(server_ack(2920), "C1")   # compressed
        ap.send_packet(server_ack(5840), "C1")   # compressed
        assert len(ap.mac.enqueued) == 1
        payload = ap.hack_payload_for("C1")
        _, entries = parse_frame(payload)
        assert len(entries) == 2

    def test_unlatch_when_client_has_no_more_uploads(self):
        ap = self.make_ap()
        frame, mpdus = client_upload_ppdu([0, 1], more=False)
        ap.on_data_ppdu(frame, "C1", mpdus)
        ap.send_packet(server_ack(1460), "C1")
        ap.send_packet(server_ack(2920), "C1")
        # Both vanilla: the client's queue is drained.
        assert len(ap.mac.enqueued) == 2

    def test_per_peer_isolation(self):
        # Two clients uploading: their compressed-ACK buffers and
        # contexts must not interfere.
        ap = self.make_ap()
        for peer in ("C1", "C2"):
            frame, mpdus = client_upload_ppdu([0, 1], more=True)
            ap.on_data_ppdu(frame, peer, mpdus)
            ap.send_packet(server_ack(1460), peer)
            ap.send_packet(server_ack(2920), peer)
        p1 = ap.hack_payload_for("C1")
        p2 = ap.hack_payload_for("C2")
        assert p1 is not None and p2 is not None
        assert ap.peer("C1").buffer is not ap.peer("C2").buffer
