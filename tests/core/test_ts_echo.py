"""TS_ECHO policy (§5 future work): echo-driven ACK deferral."""

from collections import deque

import pytest

from repro.core.driver import HackDriver
from repro.core.policies import HackConfig, HackPolicy
from repro.mac.frames import AmpduFrame, Mpdu
from repro.sim.engine import Simulator
from repro.sim.units import MS, SEC, msec
from repro.tcp.segment import FiveTuple, TcpSegment

FT = FiveTuple("10.0.0.1", "10.0.1.1", 5001, 80)


class FakeMac:
    def __init__(self):
        self.upper = None
        self.enqueued = []

    def enqueue(self, payload, dst):
        self.enqueued.append(payload)
        return True

    def remove_from_queue(self, dst, predicate):
        return []


class FakeNode:
    def __init__(self):
        self.received = []

    def on_packet_received(self, packet, sender):
        self.received.append(packet)


def make_driver(sim=None, stall_guard=msec(50)):
    sim = sim or Simulator()
    config = HackConfig.for_policy(HackPolicy.TS_ECHO)
    config.stall_guard_ns = stall_guard
    driver = HackDriver(sim, FakeMac(), config, node=FakeNode())
    return sim, driver


def tcp_ack(ack_no, ts_val):
    return TcpSegment(flow_id=1, src="C1", dst="SRV", seq=0,
                      payload_bytes=0, ack=ack_no, rwnd=65535,
                      ts_val=ts_val, ts_ecr=ts_val - 1, five_tuple=FT)


def deliver_data(driver, seq, ts_ecr):
    data = TcpSegment(flow_id=1, src="SRV", dst="C1", seq=seq,
                      payload_bytes=1460, ack=0, rwnd=0, ts_val=0,
                      ts_ecr=ts_ecr, five_tuple=FT.reversed())
    mpdu = Mpdu(src="AP", dst="C1", seq=seq // 1460, payload=data)
    driver.on_mpdu_delivered(mpdu, "AP")
    return data


class TestEchoDeferral:
    def test_first_ack_vanilla(self):
        _, driver = make_driver()
        driver.send_packet(tcp_ack(1460, ts_val=10), "AP")
        assert len(driver.mac.enqueued) == 1

    def test_ack_deferred_while_echo_outstanding(self):
        _, driver = make_driver()
        driver.send_packet(tcp_ack(1460, ts_val=10), "AP")  # vanilla
        # No echo for ts 10 yet: the next ACK defers.
        driver.send_packet(tcp_ack(2920, ts_val=11), "AP")
        assert len(driver.mac.enqueued) == 1
        assert driver.hack_payload_for("AP") is not None

    def test_echo_catchup_goes_vanilla(self):
        _, driver = make_driver()
        driver.send_packet(tcp_ack(1460, ts_val=10), "AP")
        deliver_data(driver, 0, ts_ecr=10)  # echo of our newest ACK
        # Caught up: the next ACK may find the sender idle -> vanilla.
        driver.send_packet(tcp_ack(2920, ts_val=11), "AP")
        assert len(driver.mac.enqueued) == 2

    def test_stale_echo_does_not_catch_up(self):
        _, driver = make_driver()
        driver.send_packet(tcp_ack(1460, ts_val=10), "AP")
        driver.send_packet(tcp_ack(2920, ts_val=12), "AP")  # deferred
        deliver_data(driver, 0, ts_ecr=10)  # echoes the OLD ACK only
        driver.send_packet(tcp_ack(4380, ts_val=13), "AP")
        # Still outstanding (12 > 10): keeps deferring.
        assert len(driver.mac.enqueued) == 1

    def test_catchup_flushes_buffer_vanilla(self):
        _, driver = make_driver()
        driver.send_packet(tcp_ack(1460, ts_val=10), "AP")
        driver.send_packet(tcp_ack(2920, ts_val=12), "AP")  # deferred
        deliver_data(driver, 0, ts_ecr=12)  # echo catches right up
        assert driver.stats.echo_flushes == 1
        # The deferred ACK was re-sent vanilla.
        assert len(driver.mac.enqueued) == 2
        assert driver.hack_payload_for("AP") is None

    def test_ignores_more_data_bit(self):
        _, driver = make_driver()
        mpdus = [Mpdu(src="AP", dst="C1", seq=0,
                      payload=deliver_data(make_driver()[1], 0, 0),
                      more_data=False)]
        frame = AmpduFrame(mpdus=mpdus, rate_mbps=150.0)
        driver.on_data_ppdu(frame, "AP", mpdus)
        ps = driver.peer("AP")
        assert not ps.flush_after_response  # MORE DATA logic inert


class TestStallGuard:
    def test_guard_flushes_deadlocked_acks(self):
        sim, driver = make_driver(stall_guard=msec(20))
        driver.send_packet(tcp_ack(1460, ts_val=10), "AP")
        driver.send_packet(tcp_ack(2920, ts_val=12), "AP")  # deferred
        # No data ever arrives (the sender is window-limited and
        # waiting for exactly this ACK): the guard must fire.
        sim.run(until=msec(25))
        assert driver.stats.stall_guard_flushes == 1
        assert len(driver.mac.enqueued) == 2

    def test_preset_has_guard(self):
        config = HackConfig.for_policy(HackPolicy.TS_ECHO)
        assert config.stall_guard_ns is not None


class TestEndToEnd:
    def test_download_with_ts_echo(self):
        from repro import ScenarioConfig, run_scenario
        res = run_scenario(ScenarioConfig(
            phy_mode="11n", data_rate_mbps=150.0,
            traffic="tcp_download", policy=HackPolicy.TS_ECHO,
            duration_ns=1500 * MS, warmup_ns=700 * MS, stagger_ns=0))
        assert res.aggregate_goodput_mbps > 100
        assert res.driver_stats["C1"].hack_frames_attached > 0
        assert res.decomp_counters["crc_failures"] == 0
        assert all(c["timeouts"] == 0
                   for c in res.sender_counters.values())

    def test_ts_echo_competitive_with_more_data(self):
        from repro import ScenarioConfig, run_scenario

        def goodput(policy):
            return run_scenario(ScenarioConfig(
                phy_mode="11n", data_rate_mbps=150.0,
                traffic="tcp_download", policy=policy,
                duration_ns=1500 * MS, warmup_ns=700 * MS,
                stagger_ns=0)).aggregate_goodput_mbps

        assert goodput(HackPolicy.TS_ECHO) > \
            0.9 * goodput(HackPolicy.MORE_DATA)
