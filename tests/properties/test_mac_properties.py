"""Property-based tests for MAC data structures."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.mac.blockack import BlockAckOriginator, BlockAckRecipient
from repro.mac.frames import Mpdu

from tests.helpers import FakePayload


def mpdu(seq):
    return Mpdu(src="AP", dst="C1", seq=seq, payload=FakePayload(100))


class TestRecipientReordering:
    @settings(max_examples=200, deadline=None)
    @given(perm=st.permutations(list(range(20))))
    def test_in_order_delivery_any_arrival_order(self, perm):
        """All 20 MPDUs arriving in any order are delivered exactly
        once and in sequence order (the window never abandons a seq
        that eventually arrives within the window)."""
        recipient = BlockAckRecipient(window=64)
        delivered = []
        for seq in perm:
            m = mpdu(seq)
            if recipient.record(m):
                delivered.extend(x.seq for x in recipient.insert(m))
        assert delivered == sorted(delivered)
        assert sorted(delivered) == list(range(20))

    @settings(max_examples=100, deadline=None)
    @given(seqs=st.lists(st.integers(0, 50), min_size=1, max_size=80))
    def test_duplicates_never_delivered_twice(self, seqs):
        recipient = BlockAckRecipient(window=64)
        delivered = []
        for seq in seqs:
            m = mpdu(seq)
            if recipient.record(m):
                delivered.extend(x.seq for x in recipient.insert(m))
        assert len(delivered) == len(set(delivered))

    @settings(max_examples=100, deadline=None)
    @given(missing=st.integers(0, 9))
    def test_window_rule_abandons_dropped_seq(self, missing):
        """If one seq never arrives, delivery resumes once the window
        moves 64 past it."""
        recipient = BlockAckRecipient(window=64)
        delivered = []
        for seq in range(0, 100):
            if seq == missing:
                continue
            m = mpdu(seq)
            if recipient.record(m):
                delivered.extend(x.seq for x in recipient.insert(m))
        assert missing not in delivered
        assert delivered == sorted(delivered)
        assert set(delivered) == set(range(100)) - {missing}


class TestOriginatorInvariants:
    @settings(max_examples=100, deadline=None)
    @given(acked=st.sets(st.integers(0, 9)))
    def test_resolution_partitions_batch(self, acked):
        orig = BlockAckOriginator(retry_limit=7)
        batch = [mpdu(orig.allocate_seq()) for _ in range(10)]
        orig.mark_in_flight(batch)
        delivered, requeued, dropped = orig.on_block_ack(
            frozenset(acked))
        seqs = sorted(m.seq for m in delivered + requeued + dropped)
        assert seqs == list(range(10))
        assert {m.seq for m in delivered} == acked
        assert not orig.in_flight

    @settings(max_examples=50, deadline=None)
    @given(rounds=st.lists(st.sets(st.integers(0, 63)), min_size=1,
                           max_size=10))
    def test_window_start_monotone(self, rounds):
        orig = BlockAckOriginator(retry_limit=2)
        last_start = 0
        for acked in rounds:
            limit = orig.window_limit
            batch = [mpdu(orig.allocate_seq()) for _ in range(4)
                     if orig.next_seq < limit]
            if not batch and not orig.retry_queue:
                break
            if batch:
                orig.mark_in_flight(batch)
                orig.on_block_ack(frozenset(
                    m.seq for m in batch if m.seq % 64 in acked))
            assert orig.window_start >= last_start
            last_start = orig.window_start
