"""Property-based tests for the simulation substrate."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.tcp.receiver import TcpReceiver
from repro.tcp.segment import TcpSegment

from tests.helpers import FakeFrame, RecordingListener

MSS = 1460


class TestEngineProperties:
    @settings(max_examples=100)
    @given(delays=st.lists(st.integers(0, 10**6), min_size=1,
                           max_size=50))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @settings(max_examples=50)
    @given(delays=st.lists(st.integers(1, 1000), min_size=1,
                           max_size=30),
           horizon=st.integers(1, 1000))
    def test_horizon_respected(self, delays, horizon):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run(until=horizon)
        assert all(d < horizon for d in fired)
        assert sim.now == horizon


class TestMediumProperties:
    @settings(max_examples=100, deadline=None)
    @given(txs=st.lists(
        st.tuples(st.integers(0, 1000), st.integers(1, 500)),
        min_size=1, max_size=12))
    def test_collision_iff_overlap(self, txs):
        """Every frame is delivered intact to the idle observer iff no
        other transmission overlapped it in time."""
        sim = Simulator()
        medium = Medium(sim)
        senders = [RecordingListener(sim, f"s{i}")
                   for i in range(len(txs))]
        observer = RecordingListener(sim, "observer")
        for node in senders + [observer]:
            medium.attach(node)
        frames = []
        for i, (start, duration) in enumerate(txs):
            frame = FakeFrame(f"f{i}")
            frames.append((frame, start, start + duration))
            sim.schedule_at(start,
                            lambda s=senders[i], f=frame, d=duration:
                            medium.transmit(s, f, d))
        sim.run()
        received = {e[2].name for e in observer.of_kind("rx")}
        errored = {e[2].name for e in observer.of_kind("err")}
        for i, (frame, start, end) in enumerate(frames):
            overlaps = any(
                s2 < end and start < e2
                for j, (_, s2, e2) in enumerate(frames) if j != i)
            if overlaps:
                assert frame.name in errored
            else:
                assert frame.name in received
        assert received | errored == {f.name for f, _, _ in frames}


class TestReceiverProperties:
    @settings(max_examples=100, deadline=None)
    @given(perm=st.permutations(list(range(12))))
    def test_delivery_complete_under_any_reordering(self, perm):
        sim = Simulator()
        acks = []
        receiver = TcpReceiver(sim, 1, "C1", "SRV", output=acks.append)
        for index in perm:
            receiver.on_segment(TcpSegment(
                flow_id=1, src="SRV", dst="C1", seq=index * MSS,
                payload_bytes=MSS, ack=0, rwnd=0, ts_val=1))
        sim.run()
        assert receiver.rcv_nxt == 12 * MSS
        assert receiver.bytes_delivered == 12 * MSS
        assert acks and acks[-1].ack == 12 * MSS

    @settings(max_examples=50, deadline=None)
    @given(dups=st.lists(st.integers(0, 7), min_size=8, max_size=40))
    def test_duplicates_never_inflate_delivery(self, dups):
        sim = Simulator()
        receiver = TcpReceiver(sim, 1, "C1", "SRV",
                               output=lambda a: None)
        # Guarantee every segment 0..7 arrives at least once.
        for index in list(range(8)) + dups:
            receiver.on_segment(TcpSegment(
                flow_id=1, src="SRV", dst="C1", seq=index * MSS,
                payload_bytes=MSS, ack=0, rwnd=0, ts_val=1))
        assert receiver.bytes_delivered == 8 * MSS
