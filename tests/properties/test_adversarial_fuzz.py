"""Coverage-driven fuzzing of the HACK wire format and receive path.

The adversarial scenario family stands on one invariant: *no byte
sequence the air can deliver may crash the receive path*.  Parsing may
reject (``ParseError``), the decompressor may drop and count, but
nothing escapes.  The second invariant is quantitative: the only thing
standing between a mutated-but-FCS-clean frame and a wrong TCP ACK is
ROHC's CRC-3, so the single-bit-flip false-accept rate must stay in
the neighbourhood of 2^-3 — measured here by deterministic enumeration
of every bit position in a valid multi-entry frame.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.adversary import AdversaryConfig
from repro.adversary.mutator import AirframeMutator
from repro.rohc.compressor import Compressor
from repro.rohc.decompressor import Decompressor
from repro.rohc.packets import ParseError, build_frame, parse_entry, \
    parse_frame
from repro.tcp.segment import FiveTuple, TcpSegment

FT = FiveTuple("10.0.0.1", "10.0.1.1", 5001, 80)


def ack_segment(ack, ts_val, ts_ecr, rwnd):
    return TcpSegment(flow_id=1, src="C1", dst="SRV", seq=0,
                      payload_bytes=0, ack=ack, rwnd=rwnd,
                      ts_val=ts_val, ts_ecr=ts_ecr, five_tuple=FT)


def make_stream(n=8):
    """A realistic compressed stream: (first vanilla ACK, entries,
    expected (ack, ts_val, ts_ecr, rwnd) per entry).  Varies deltas so
    the frame mixes stride/u8/u16 ack modes and ts/wnd fields; no SACK
    blocks, so every payload byte feeds a CRC-covered field or the
    framing itself."""
    comp = Compressor()
    first = ack_segment(ack=1000, ts_val=50, ts_ecr=49, rwnd=65535)
    comp.note_vanilla_ack(first)
    entries, expected = [], []
    ack_no, ts = 1000, 50
    for i in range(n):
        ack_no += 1460 + 997 * (i % 3)
        ts += i % 2
        rwnd = 65535 - 200 * i
        entries.append(comp.compress(
            ack_segment(ack=ack_no, ts_val=ts, ts_ecr=ts - 1,
                        rwnd=rwnd)))
        expected.append((ack_no, ts, ts - 1, rwnd))
    return first, entries, expected


def fresh_decompressor(first):
    decomp = Decompressor()
    decomp.note_vanilla_ack(first)
    return decomp


class TestParserTotality:
    @settings(max_examples=300, deadline=None)
    @given(data=st.binary(max_size=200))
    def test_parse_frame_rejects_cleanly(self, data):
        try:
            _, entries = parse_frame(data)
        except ParseError:
            return
        for entry in entries:
            assert 2 <= entry.size <= len(data)

    @settings(max_examples=300, deadline=None)
    @given(data=st.binary(min_size=1, max_size=64),
           offset=st.integers(0, 63))
    def test_parse_entry_rejects_cleanly(self, data, offset):
        try:
            entry = parse_entry(data, offset % len(data))
        except ParseError:
            return
        assert entry.size >= 2

    @settings(max_examples=300, deadline=None)
    @given(data=st.binary(max_size=300))
    def test_decompressor_is_total_on_arbitrary_bytes(self, data):
        first, entries, _ = make_stream(2)
        decomp = fresh_decompressor(first)
        out = decomp.decompress_frame(data)
        assert all(isinstance(s, TcpSegment) for s in out)
        assert decomp.frames_processed == 1
        # Internal errors are for bugs, not for wire garbage: malformed
        # input must be *recognised* as such.
        assert decomp.internal_errors == 0

    @settings(max_examples=200, deadline=None)
    @given(flips=st.lists(st.integers(0, 10_000), min_size=1,
                          max_size=16),
           split=st.integers(1, 7))
    def test_mutated_valid_frames_never_crash(self, flips, split):
        """Bit-storms on genuine frames — delivered across arbitrary
        frame boundaries — drop or decode, never raise."""
        first, entries, expected = make_stream()
        frames = [build_frame(entries[:split]),
                  build_frame(entries[split:])]
        mutated = []
        for i, frame in enumerate(frames):
            data = bytearray(frame)
            for flip in flips[i::2]:
                bit = flip % (len(data) * 8)
                data[bit // 8] ^= 1 << (bit % 8)
            mutated.append(bytes(data))
        decomp = fresh_decompressor(first)
        out = []
        for data in mutated:
            out.extend(decomp.decompress_frame(data))
        # Totality is the claim here; value-correctness under
        # corruption is only probabilistic (CRC-3) and is quantified
        # by the deterministic false-accept bound below.
        assert decomp.internal_errors == 0
        assert all(isinstance(s, TcpSegment) for s in out)


class TestCrcFalseAcceptBound:
    def test_single_bit_flip_false_accept_rate(self):
        """Enumerate EVERY single-bit corruption of a valid frame.
        CRC-3 passes a corrupted entry with probability ~2^-3; framing
        bits mostly fail structurally.  The measured false-accept rate
        over all positions must stay within the CRC-width bound (with
        slack for stride aliasing), and detection must actually fire."""
        first, entries, expected = make_stream()
        frame = build_frame(entries)
        good = set(expected)
        total_bits = len(frame) * 8
        false_accepts = 0
        detections = 0
        for bit in range(total_bits):
            data = bytearray(frame)
            data[bit // 8] ^= 1 << (bit % 8)
            decomp = fresh_decompressor(first)
            out = decomp.decompress_frame(bytes(data))
            if any((s.ack, s.ts_val, s.ts_ecr, s.rwnd) not in good
                   for s in out):
                false_accepts += 1
            if decomp.crc_failures or decomp.parse_errors:
                detections += 1
        rate = false_accepts / total_bits
        # Empirically the rate is 0.0: aliasing CRC-3 needs the carry
        # propagation of multi-bit damage, which single flips rarely
        # cause.  The bound is a ceiling (2^-3 plus slack) guarding
        # against regressions in what the CRC covers.
        assert rate <= 0.35, f"false-accept rate {rate:.3f}"
        # The defence is load-bearing: most flips are caught outright.
        assert detections > total_bits // 2


class _Frame:
    def __init__(self, payload):
        self.hack_payload = payload


class TestMutatorTotality:
    @settings(max_examples=200, deadline=None)
    @given(payload=st.binary(max_size=120),
           seed=st.integers(0, 2**16),
           mode=st.sampled_from(["flip", "cid", "storm"]))
    def test_mutator_never_raises_on_junk(self, payload, seed, mode):
        mutator = AirframeMutator(
            random.Random(seed),
            AdversaryConfig(kind="mutator", intensity=1.0,
                            mutate_mode=mode))
        frame = _Frame(payload)
        mutator(frame)
        assert mutator.tamper_errors == 0
        # Equal-length rewrite: airtime accounting stays untouched.
        assert len(frame.hack_payload) == len(payload)

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_mutated_output_still_contained(self, seed):
        """Close the loop: mutator-corrupted genuine frames flow into
        the decompressor without a single escaped exception."""
        first, entries, _ = make_stream()
        frame = _Frame(build_frame(entries))
        mutator = AirframeMutator(
            random.Random(seed),
            AdversaryConfig(kind="mutator", intensity=1.0,
                            mutate_mode="cid"))
        mutator(frame)
        assert mutator.frames_mutated == 1
        decomp = fresh_decompressor(first)
        decomp.decompress_frame(frame.hack_payload)
        assert decomp.internal_errors == 0
