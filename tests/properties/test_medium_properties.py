"""Property tests: Medium utilisation / busy-window bookkeeping under
interleaved multi-cell transmissions.

The invariants every scaling PR leans on:

* ``utilisation()`` is always in [0, 1], whatever window it is asked
  about;
* ``busy_until`` is monotone non-decreasing within one busy period
  (new transmissions can only extend it, never shrink it);
* ``busy_time`` equals the length of the *union* of transmission
  intervals — concurrent transmissions (same cell or not) are never
  double-counted;
* per-cell clean airtime equals the summed durations of that cell's
  non-collided transmissions, and summed across cells it can never
  exceed the busy union (clean transmissions are disjoint by the
  definition of a collision).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim.engine import Simulator
from repro.sim.medium import Medium

from tests.helpers import FakeFrame, RecordingListener

#: One scheduled transmission: (cell, start_ns, duration_ns).
TX = st.tuples(st.integers(0, 2), st.integers(0, 2000),
               st.integers(1, 600))


def interval_union(intervals):
    total, last_end = 0, None
    for start, end in sorted(intervals):
        if last_end is None or start >= last_end:
            total += end - start
            last_end = end
        elif end > last_end:
            total += end - last_end
            last_end = end
    return total


def build_and_run(txs):
    """Run every (cell, start, duration) transmission; sample
    ``busy_until`` at each start/end instant."""
    sim = Simulator()
    medium = Medium(sim)
    senders = {cell: RecordingListener(sim, f"s{cell}")
               for cell in sorted({cell for cell, _, _ in txs})}
    for cell, sender in senders.items():
        medium.attach(sender, cell=cell)

    samples = []        # (now, busy_until) at every start and end

    def sample():
        samples.append((sim.now, medium.busy_until))

    def start_tx(cell, duration):
        medium.transmit(senders[cell], FakeFrame(), duration)
        sample()

    for cell, start, duration in txs:
        sim.schedule(start, start_tx, cell, duration)
        # Priority above the end event's -1 so the end-of-busy sample
        # sees the post-removal state.
        sim.schedule(start + duration, sample, priority=0)
    sim.run()
    return medium, samples


class TestBusyWindowProperties:
    @settings(max_examples=120, deadline=None)
    @given(txs=st.lists(TX, min_size=1, max_size=14))
    def test_busy_time_is_interval_union(self, txs):
        medium, _ = build_and_run(txs)
        expected = interval_union(
            (start, start + duration) for _, start, duration in txs)
        assert medium.busy_time == expected

    @settings(max_examples=120, deadline=None)
    @given(txs=st.lists(TX, min_size=1, max_size=14),
           window=st.integers(0, 4000))
    def test_utilisation_always_in_unit_interval(self, txs, window):
        medium, _ = build_and_run(txs)
        assert 0.0 <= medium.utilisation() <= 1.0
        assert 0.0 <= medium.utilisation(window) <= 1.0

    @settings(max_examples=120, deadline=None)
    @given(txs=st.lists(TX, min_size=1, max_size=14))
    def test_busy_until_monotone_within_busy_period(self, txs):
        _, samples = build_and_run(txs)
        high = None
        for _, busy_until in samples:
            if busy_until is None:      # idle: the period ended
                high = None
                continue
            if high is not None:
                assert busy_until >= high
            high = busy_until

    @settings(max_examples=120, deadline=None)
    @given(txs=st.lists(TX, min_size=1, max_size=14))
    def test_per_cell_airtime_no_double_count(self, txs):
        medium, _ = build_and_run(txs)
        intervals = [(start, start + duration)
                     for _, start, duration in txs]

        def overlaps_another(i):
            s_i, e_i = intervals[i]
            return any(j != i and s_j < e_i and s_i < e_j
                       for j, (s_j, e_j) in enumerate(intervals))

        expected = {}
        for i, (cell, start, duration) in enumerate(txs):
            if not overlaps_another(i):
                expected[cell] = expected.get(cell, 0) + duration
        for cell in medium.cell_keys():
            assert medium.cell_stats(cell)["airtime_ns"] == \
                expected.get(cell, 0)
        # Clean airtime is globally disjoint: cells can never jointly
        # claim more than the busy union.
        assert sum(medium.cell_stats(c)["airtime_ns"]
                   for c in medium.cell_keys()) <= medium.busy_time

    @settings(max_examples=80, deadline=None)
    @given(txs=st.lists(TX, min_size=1, max_size=14),
           window=st.integers(1, 4000))
    def test_cell_shares_sum_below_one(self, txs, window):
        medium, _ = build_and_run(txs)
        shares = [medium.cell_airtime_share(c, window)
                  for c in medium.cell_keys()]
        assert all(0.0 <= share <= 1.0 for share in shares)
        # Shares are exact (un-clamped) whenever the window covers the
        # run, so the disjointness argument bounds their sum by 1.
        if window >= max(s + d for _, s, d in txs):
            assert sum(shares) <= 1.0
