"""Property tests: Medium utilisation / busy-window bookkeeping under
interleaved multi-cell transmissions.

The invariants every scaling PR leans on:

* ``utilisation()`` is always in [0, 1], whatever window it is asked
  about;
* ``busy_until`` is monotone non-decreasing within one busy period
  (new transmissions can only extend it, never shrink it);
* ``busy_time`` equals the length of the *union* of transmission
  intervals — concurrent transmissions (same cell or not) are never
  double-counted;
* per-cell clean airtime equals the summed durations of that cell's
  non-collided transmissions, and summed across cells it can never
  exceed the busy union (clean transmissions are disjoint by the
  definition of a collision).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim.engine import Simulator
from repro.sim.medium import ChannelizedMedium, Medium

from tests.helpers import FakeFrame, RecordingListener

#: One scheduled transmission: (cell, start_ns, duration_ns).
TX = st.tuples(st.integers(0, 2), st.integers(0, 2000),
               st.integers(1, 600))

#: A channel-tagged transmission: (channel, cell, start_ns, dur_ns).
CH_TX = st.tuples(st.integers(0, 2), st.integers(0, 2),
                  st.integers(0, 2000), st.integers(1, 600))


def interval_union(intervals):
    total, last_end = 0, None
    for start, end in sorted(intervals):
        if last_end is None or start >= last_end:
            total += end - start
            last_end = end
        elif end > last_end:
            total += end - last_end
            last_end = end
    return total


def build_and_run(txs):
    """Run every (cell, start, duration) transmission; sample
    ``busy_until`` at each start/end instant."""
    sim = Simulator()
    medium = Medium(sim)
    senders = {cell: RecordingListener(sim, f"s{cell}")
               for cell in sorted({cell for cell, _, _ in txs})}
    for cell, sender in senders.items():
        medium.attach(sender, cell=cell)

    samples = []        # (now, busy_until) at every start and end

    def sample():
        samples.append((sim.now, medium.busy_until))

    def start_tx(cell, duration):
        medium.transmit(senders[cell], FakeFrame(), duration)
        sample()

    for cell, start, duration in txs:
        sim.schedule(start, start_tx, cell, duration)
        # Priority above the end event's -1 so the end-of-busy sample
        # sees the post-removal state.
        sim.schedule(start + duration, sample, priority=0)
    sim.run()
    return medium, samples


class TestBusyWindowProperties:
    @settings(max_examples=120, deadline=None)
    @given(txs=st.lists(TX, min_size=1, max_size=14))
    def test_busy_time_is_interval_union(self, txs):
        medium, _ = build_and_run(txs)
        expected = interval_union(
            (start, start + duration) for _, start, duration in txs)
        assert medium.busy_time == expected

    @settings(max_examples=120, deadline=None)
    @given(txs=st.lists(TX, min_size=1, max_size=14),
           window=st.integers(0, 4000))
    def test_utilisation_always_in_unit_interval(self, txs, window):
        medium, _ = build_and_run(txs)
        assert 0.0 <= medium.utilisation() <= 1.0
        assert 0.0 <= medium.utilisation(window) <= 1.0

    @settings(max_examples=120, deadline=None)
    @given(txs=st.lists(TX, min_size=1, max_size=14))
    def test_busy_until_monotone_within_busy_period(self, txs):
        _, samples = build_and_run(txs)
        high = None
        for _, busy_until in samples:
            if busy_until is None:      # idle: the period ended
                high = None
                continue
            if high is not None:
                assert busy_until >= high
            high = busy_until

    @settings(max_examples=120, deadline=None)
    @given(txs=st.lists(TX, min_size=1, max_size=14))
    def test_per_cell_airtime_no_double_count(self, txs):
        medium, _ = build_and_run(txs)
        intervals = [(start, start + duration)
                     for _, start, duration in txs]

        def overlaps_another(i):
            s_i, e_i = intervals[i]
            return any(j != i and s_j < e_i and s_i < e_j
                       for j, (s_j, e_j) in enumerate(intervals))

        expected = {}
        for i, (cell, start, duration) in enumerate(txs):
            if not overlaps_another(i):
                expected[cell] = expected.get(cell, 0) + duration
        for cell in medium.cell_keys():
            assert medium.cell_stats(cell)["airtime_ns"] == \
                expected.get(cell, 0)
        # Clean airtime is globally disjoint: cells can never jointly
        # claim more than the busy union.
        assert sum(medium.cell_stats(c)["airtime_ns"]
                   for c in medium.cell_keys()) <= medium.busy_time

    @settings(max_examples=80, deadline=None)
    @given(txs=st.lists(TX, min_size=1, max_size=14),
           window=st.integers(1, 4000))
    def test_cell_shares_sum_below_one(self, txs, window):
        medium, _ = build_and_run(txs)
        shares = [medium.cell_airtime_share(c, window)
                  for c in medium.cell_keys()]
        assert all(0.0 <= share <= 1.0 for share in shares)
        # Shares are exact (un-clamped) whenever the window covers the
        # run, so the disjointness argument bounds their sum by 1.
        if window >= max(s + d for _, s, d in txs):
            assert sum(shares) <= 1.0


def build_channelized(txs):
    """Drive one ChannelizedMedium with channel-tagged transmissions."""
    sim = Simulator()
    media = ChannelizedMedium(sim)
    senders = {}
    for channel, cell, _, _ in txs:
        if channel not in media.channels():
            media.add_channel(channel)
        key = (channel, cell)
        if key not in senders:
            senders[key] = RecordingListener(sim,
                                             f"s{channel}-{cell}")
            media.medium(channel).attach(senders[key], cell=cell)

    def start_tx(channel, cell, duration):
        media.medium(channel).transmit(senders[(channel, cell)],
                                       FakeFrame(), duration)

    for channel, cell, start, duration in txs:
        sim.schedule(start, start_tx, channel, cell, duration)
    sim.run()
    return media


class TestMultiChannelProperties:
    """The per-channel scoping of every single-medium invariant.

    Channels are separate ``Medium`` instances, so cross-channel
    transmissions must be mutually invisible: each channel's busy
    union and airtime-share bound depend only on that channel's
    transmissions, while the *city-wide* share sum may exceed 1 (one
    fully-busy medium per channel)."""

    @settings(max_examples=100, deadline=None)
    @given(txs=st.lists(CH_TX, min_size=1, max_size=14))
    def test_per_channel_busy_union_ignores_other_channels(self, txs):
        media = build_channelized(txs)
        for channel in media.channels():
            expected = interval_union(
                (start, start + duration)
                for ch, _, start, duration in txs if ch == channel)
            assert media.medium(channel).busy_time == expected

    @settings(max_examples=100, deadline=None)
    @given(txs=st.lists(CH_TX, min_size=1, max_size=14))
    def test_airtime_share_sums_bounded_per_channel(self, txs):
        """The <= 1 disjointness bound holds *within* each channel;
        summed across channels it is bounded by the channel count."""
        media = build_channelized(txs)
        window = max(s + d for _, _, s, d in txs)
        total = 0.0
        for channel in media.channels():
            medium = media.medium(channel)
            shares = sum(medium.cell_airtime_share(c, window)
                         for c in medium.cell_keys())
            assert 0.0 <= shares <= 1.0
            total += shares
        assert total <= len(media.channels())

    @settings(max_examples=100, deadline=None)
    @given(txs=st.lists(CH_TX, min_size=1, max_size=14))
    def test_aggregates_sum_over_channels(self, txs):
        media = build_channelized(txs)
        assert media.frames_sent == \
            sum(media.medium(c).frames_sent for c in media.channels())
        assert media.frames_sent + media.frames_collided >= len(txs)
        window = max(s + d for _, _, s, d in txs)
        assert 0.0 <= media.utilisation(window) <= 1.0
