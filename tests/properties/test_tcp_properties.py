"""Property-based TCP sender invariants.

A model receiver acks a randomly lossy, occasionally reordered copy of
everything the sender emits; after every ACK the sender must hold its
structural invariants (non-negative pipe, ordered sequence space, a
disjoint scoreboard above snd_una, cwnd >= 1 MSS), and every transfer
must eventually complete with recovery exited."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim.engine import Simulator
from repro.sim.units import SEC
from repro.tcp.segment import TcpSegment
from repro.tcp.sender import TcpSender

MSS = 1460
TOTAL = 30 * MSS


def ack_segment(ack, sack=()):
    return TcpSegment(flow_id=1, src="C1", dst="SRV", seq=0,
                      payload_bytes=0, ack=ack, rwnd=1 << 30,
                      sack_blocks=tuple(sack))


class ModelReceiver:
    """Tracks received byte ranges; emits cum ACK + up to 3 SACKs."""

    def __init__(self):
        self.ranges = []

    def deliver(self, segment):
        self.ranges.append(
            (segment.seq, segment.seq + segment.payload_bytes))
        self.ranges.sort()
        merged = []
        for start, end in self.ranges:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0],
                              max(merged[-1][1], end))
            else:
                merged.append((start, end))
        self.ranges = merged

    @property
    def cum_ack(self):
        if self.ranges and self.ranges[0][0] == 0:
            return self.ranges[0][1]
        return 0

    def sack_blocks(self):
        above = [r for r in self.ranges if r[0] > self.cum_ack or
                 (self.cum_ack == 0 and r[0] > 0)]
        return tuple(above[:3])


def check_invariants(sender):
    assert sender.snd_una <= sender.snd_nxt
    assert sender.cwnd >= sender.mss
    assert sender._sack_pipe() >= 0
    board = sender._sack_scoreboard
    for start, end in board:
        assert start < end
        assert start >= sender.snd_una
    for (_, end0), (start1, _) in zip(board, board[1:]):
        assert end0 < start1        # disjoint and sorted


class TestSenderInvariants:
    @settings(max_examples=40, deadline=None)
    @given(drops=st.lists(st.booleans(), max_size=60),
           swaps=st.lists(st.booleans(), max_size=30),
           cc=st.sampled_from(["reno", "cubic"]),
           pacing=st.booleans())
    def test_invariants_hold_and_transfer_completes(
            self, drops, swaps, cc, pacing):
        sim = Simulator()
        sent = []
        sender = TcpSender(sim, 1, "SRV", "C1", output=sent.append,
                           total_bytes=TOTAL,
                           initial_cwnd_segments=10, use_sack=True,
                           cc=cc, pacing=pacing)
        receiver = ModelReceiver()
        sender.start()
        drop_iter, swap_iter = iter(drops), iter(swaps)
        delivered = 0
        for _ in range(600):
            if sender.completed:
                break
            if delivered < len(sent):
                batch = sent[delivered:delivered + 2]
                if len(batch) == 2 and next(swap_iter, False):
                    batch = batch[::-1]     # reorder in flight
                delivered += len(batch)
                for segment in batch:
                    if segment.payload_bytes \
                            and not next(drop_iter, False):
                        receiver.deliver(segment)
                    sender.on_ack(ack_segment(
                        receiver.cum_ack, receiver.sack_blocks()))
                    check_invariants(sender)
            else:
                # Everything acked-or-dropped is in: let the RTO (and
                # any pacing timer) clock out repairs.
                sim.run(until=sim.now + 2 * SEC)
                check_invariants(sender)
        assert sender.completed
        assert not sender.in_recovery
        assert sender.snd_una == TOTAL
