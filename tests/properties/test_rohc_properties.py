"""Property-based tests for the ROHC subsystem (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.rohc.compressor import Compressor
from repro.rohc.context import DynamicState
from repro.rohc.crc import crc3, crc8
from repro.rohc.decompressor import Decompressor
from repro.rohc.packets import apply_entry, build_frame, encode_entry, \
    parse_entry, unzigzag, zigzag
from repro.rohc.wlsb import lsb_decode, lsb_encode
from repro.tcp.segment import FiveTuple, TcpSegment

FT = FiveTuple("10.0.0.1", "10.0.1.1", 5001, 80)


def ack_segment(ack, ts_val, ts_ecr, rwnd, seq=0, sack=()):
    return TcpSegment(flow_id=1, src="C1", dst="SRV", seq=seq,
                      payload_bytes=0, ack=ack, rwnd=rwnd,
                      ts_val=ts_val, ts_ecr=ts_ecr,
                      sack_blocks=sack, five_tuple=FT)


header_values = st.integers(min_value=0, max_value=2**31 - 1)


class TestZigzagProperties:
    @given(st.integers(min_value=-2**40, max_value=2**40))
    def test_roundtrip(self, n):
        assert unzigzag(zigzag(n)) == n

    @given(st.integers(min_value=-2**20, max_value=2**20))
    def test_nonnegative(self, n):
        assert zigzag(n) >= 0


class TestWlsbProperties:
    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=1, max_value=16),
           st.integers(min_value=0, max_value=64))
    def test_decode_within_window(self, v_ref, k, p):
        # Any non-negative value inside the interpretation interval
        # [v_ref - p, v_ref - p + 2^k - 1] round-trips.
        low = v_ref - p
        high = low + (1 << k) - 1
        candidates = {value for value in (low, (low + high) // 2, high)
                      if low <= value <= high and value >= 0}
        for value in candidates:
            assert lsb_decode(lsb_encode(value, k), k, v_ref,
                              p=p) == value


class TestEntryProperties:
    @settings(max_examples=200)
    @given(prev_ack=header_values, d_ack=st.integers(0, 10**6),
           ts1=st.integers(0, 2**30), dts=st.integers(-1000, 1000),
           rwnd1=st.integers(0, 2**20), drwnd=st.integers(-5000, 5000),
           msn=st.integers(0, 10**6),
           force=st.booleans())
    def test_encode_decode_identity(self, prev_ack, d_ack, ts1, dts,
                                    rwnd1, drwnd, msn, force):
        state = DynamicState(ack=prev_ack, ack_delta=0, ts_val=ts1,
                             ts_ecr=max(0, ts1 - 5), rwnd=rwnd1, seq=0)
        segment = ack_segment(
            ack=prev_ack + d_ack, ts_val=max(0, ts1 + dts),
            ts_ecr=max(0, ts1 - 5 + dts), rwnd=max(0, rwnd1 + drwnd))
        data, new_state = encode_entry(state, segment, cid=9,
                                       same_cid=False, msn=msn,
                                       force_absolute=force)
        entry = parse_entry(data, 0)
        decoded = apply_entry(entry, state)
        assert decoded.ack == segment.ack
        assert decoded.ts_val == segment.ts_val
        assert decoded.ts_ecr == segment.ts_ecr
        assert decoded.rwnd == segment.rwnd
        assert decoded == new_state
        assert entry.msn_nibble == (msn & 0xF)
        assert crc3(decoded.crc_input()) == entry.crc

    @settings(max_examples=100)
    @given(blocks=st.lists(
        st.tuples(st.integers(0, 2**31), st.integers(0, 2**31)),
        min_size=0, max_size=3))
    def test_sack_roundtrip(self, blocks):
        state = DynamicState(ack=100, ts_val=1, ts_ecr=1, rwnd=1000)
        segment = ack_segment(ack=200, ts_val=1, ts_ecr=1, rwnd=1000,
                              sack=tuple(blocks))
        data, _ = encode_entry(state, segment, 3, False, 0)
        entry = parse_entry(data, 0)
        assert entry.sack_blocks == tuple(blocks)


class TestStreamProperties:
    @settings(max_examples=50, deadline=None)
    @given(deltas=st.lists(st.integers(0, 65_000), min_size=1,
                           max_size=40),
           chunks=st.integers(1, 5))
    def test_any_ack_stream_roundtrips(self, deltas, chunks):
        """Whatever the ACK number progression, compress->frame->
        decompress reproduces the stream exactly and in order."""
        comp, decomp = Compressor(), Decompressor()
        first = ack_segment(ack=1, ts_val=1, ts_ecr=1, rwnd=65535)
        comp.note_vanilla_ack(first)
        decomp.note_vanilla_ack(first)
        ack_no, ts = 1, 1
        entries = []
        expected = []
        for delta in deltas:
            ack_no += delta
            ts += 1
            seg = ack_segment(ack=ack_no, ts_val=ts, ts_ecr=ts - 1,
                              rwnd=65535)
            entries.append(comp.compress(seg))
            expected.append(ack_no)
        # Deliver in arbitrary chunk sizes (frames are consecutive).
        out = []
        size = max(1, len(entries) // chunks)
        for i in range(0, len(entries), size):
            frame = build_frame(entries[i:i + size])
            out.extend(s.ack for s in decomp.decompress_frame(frame))
        assert out == expected
        assert decomp.crc_failures == 0

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(1, 30), resend_from=st.integers(0, 29))
    def test_duplicate_prefix_never_reapplied(self, n, resend_from):
        comp, decomp = Compressor(), Decompressor()
        first = ack_segment(ack=1, ts_val=1, ts_ecr=1, rwnd=65535)
        comp.note_vanilla_ack(first)
        decomp.note_vanilla_ack(first)
        entries = [comp.compress(ack_segment(
            ack=1 + 1460 * (i + 1), ts_val=1, ts_ecr=1, rwnd=65535))
            for i in range(n)]
        decomp.decompress_frame(build_frame(entries))
        start = min(resend_from, n - 1)
        again = decomp.decompress_frame(build_frame(entries[start:]))
        assert again == []


class TestCrcProperties:
    @settings(max_examples=200)
    @given(data=st.binary(min_size=1, max_size=64),
           bit=st.integers(0, 511))
    def test_crc8_single_bit_sensitivity(self, data, bit):
        index = bit % (len(data) * 8)
        mutated = bytearray(data)
        mutated[index // 8] ^= 1 << (index % 8)
        assert crc8(bytes(mutated)) != crc8(data)
