"""Wire-format round trips for compressed ACK entries and frames."""

import pytest

from repro.rohc.context import DynamicState
from repro.rohc.crc import crc3
from repro.rohc.packets import ACK_ABSOLUTE, ACK_D8, ACK_STRIDE, \
    CompressedAck, EncodingError, ParseError, apply_entry, build_frame, \
    encode_entry, parse_entry, parse_frame, unzigzag, zigzag
from repro.tcp.segment import TcpSegment


def ack_segment(ack=2920, ts_val=10, ts_ecr=9, rwnd=65535, seq=0,
                sack=()):
    return TcpSegment(flow_id=1, src="C1", dst="SRV", seq=seq,
                      payload_bytes=0, ack=ack, rwnd=rwnd,
                      ts_val=ts_val, ts_ecr=ts_ecr, sack_blocks=sack)


def roundtrip(state, segment, cid=7, same_cid=False, msn=0,
              force_absolute=False):
    data, new_state = encode_entry(state, segment, cid, same_cid, msn,
                                   force_absolute)
    entry = parse_entry(data, 0)
    assert entry.size == len(data)
    decoded = apply_entry(entry, state)
    assert decoded.ack == segment.ack
    assert decoded.ts_val == segment.ts_val
    assert decoded.ts_ecr == segment.ts_ecr
    assert decoded.rwnd == segment.rwnd
    assert crc3(decoded.crc_input()) == entry.crc
    assert decoded == new_state
    return data, entry


class TestZigzag:
    @pytest.mark.parametrize("n", [0, 1, -1, 2, -2, 1000, -1000])
    def test_roundtrip(self, n):
        assert unzigzag(zigzag(n)) == n

    def test_ordering(self):
        assert zigzag(0) == 0
        assert zigzag(-1) == 1
        assert zigzag(1) == 2


class TestEntryRoundtrip:
    def test_first_ack_absolute(self):
        state = DynamicState()
        data, entry = roundtrip(state, ack_segment(), force_absolute=True)
        assert entry.ack_mode == ACK_ABSOLUTE

    def test_delta_entry(self):
        state = DynamicState(ack=1460, ts_val=10, ts_ecr=9, rwnd=65535)
        data, entry = roundtrip(state, ack_segment(ack=1460 + 2920,
                                                   ts_val=10, ts_ecr=9))
        assert entry.ack_mode != ACK_ABSOLUTE
        # ctrl+msn byte + cid + 2-byte delta.
        assert len(data) <= 5

    def test_stride_repeat_is_tiny(self):
        # Steady-state bulk download: constant 2920-byte stride and
        # unchanged ms timestamps -> the paper's "3 bytes or fewer".
        state = DynamicState(ack=5840, ack_delta=2920, ts_val=10,
                             ts_ecr=9, rwnd=65535)
        data, entry = roundtrip(
            state, ack_segment(ack=5840 + 2920, ts_val=10, ts_ecr=9),
            same_cid=True)
        assert entry.ack_mode == ACK_STRIDE
        assert len(data) == 2

    def test_dup_ack_zero_delta(self):
        state = DynamicState(ack=2920, ack_delta=2920, ts_val=10,
                             ts_ecr=9, rwnd=65535)
        data, entry = roundtrip(
            state, ack_segment(ack=2920, ts_val=10, ts_ecr=9),
            same_cid=True)
        assert entry.ack_mode == ACK_D8
        assert entry.d_ack == 0

    def test_timestamp_deltas(self):
        state = DynamicState(ack=0, ts_val=100, ts_ecr=90, rwnd=65535)
        roundtrip(state, ack_segment(ack=1460, ts_val=103, ts_ecr=95))

    def test_negative_ts_delta(self):
        state = DynamicState(ack=0, ts_val=100, ts_ecr=90, rwnd=65535)
        roundtrip(state, ack_segment(ack=1460, ts_val=100, ts_ecr=85))

    def test_window_update_delta(self):
        state = DynamicState(ack=0, ts_val=1, ts_ecr=1, rwnd=65535)
        data, entry = roundtrip(
            state, ack_segment(ack=1460, ts_val=1, ts_ecr=1, rwnd=60000))
        assert entry.wnd_present

    def test_large_window_change_forces_absolute(self):
        state = DynamicState(ack=0, ts_val=1, ts_ecr=1, rwnd=1000)
        data, entry = roundtrip(
            state, ack_segment(ack=1460, ts_val=1, ts_ecr=1,
                               rwnd=4 * 1024 * 1024))
        assert entry.ack_mode == ACK_ABSOLUTE

    def test_ack_regression_forces_absolute(self):
        state = DynamicState(ack=9999, ts_val=1, ts_ecr=1, rwnd=65535)
        data, entry = roundtrip(
            state, ack_segment(ack=5000, ts_val=1, ts_ecr=1))
        assert entry.ack_mode == ACK_ABSOLUTE

    def test_seq_change_forces_absolute(self):
        state = DynamicState(ack=0, ts_val=1, ts_ecr=1, rwnd=65535,
                             seq=0)
        data, entry = roundtrip(
            state, ack_segment(ack=1460, ts_val=1, ts_ecr=1, seq=777))
        assert entry.ack_mode == ACK_ABSOLUTE
        assert apply_entry(entry, state).seq == 777

    def test_sack_blocks_roundtrip(self):
        state = DynamicState(ack=0, ts_val=1, ts_ecr=1, rwnd=65535)
        data, entry = roundtrip(
            state, ack_segment(ack=1460, ts_val=1, ts_ecr=1,
                               sack=((2920, 4380), (7300, 8760))))
        assert entry.sack_blocks == ((2920, 4380), (7300, 8760))

    def test_data_segment_rejected(self):
        seg = TcpSegment(flow_id=1, src="a", dst="b", seq=0,
                         payload_bytes=100, ack=0, rwnd=0)
        with pytest.raises(EncodingError):
            encode_entry(DynamicState(), seg, 0, False, 0)

    def test_msn_nibble_recorded(self):
        state = DynamicState(ack=0, ts_val=1, ts_ecr=1, rwnd=65535)
        data, _ = encode_entry(state, ack_segment(ack=100, ts_val=1,
                                                  ts_ecr=1), 7, False, 0x2B)
        assert parse_entry(data, 0).msn_nibble == 0xB

    def test_same_cid_omits_cid_byte(self):
        state = DynamicState(ack=0, ts_val=1, ts_ecr=1, rwnd=65535)
        with_cid, _ = encode_entry(state, ack_segment(ack=100, ts_val=1,
                                                      ts_ecr=1),
                                   7, False, 0)
        without, _ = encode_entry(state, ack_segment(ack=100, ts_val=1,
                                                     ts_ecr=1),
                                  7, True, 0)
        assert len(with_cid) == len(without) + 1


class TestFrames:
    def entries(self, n, start_msn=0):
        state = DynamicState(ack=0, ts_val=1, ts_ecr=1, rwnd=65535)
        out = []
        for i in range(n):
            seg = ack_segment(ack=(i + 1) * 2920, ts_val=1, ts_ecr=1)
            data, state = encode_entry(state, seg, 7, i > 0,
                                       start_msn + i,
                                       force_absolute=(i == 0))
            out.append(CompressedAck(msn=start_msn + i, cid=7,
                                     data=data, segment=seg))
        return out

    def test_build_and_parse(self):
        frame = build_frame(self.entries(3))
        first_msn8, entries = parse_frame(frame)
        assert first_msn8 == 0
        assert len(entries) == 3

    def test_empty_frame_rejected(self):
        with pytest.raises(ValueError):
            build_frame([])

    def test_nonconsecutive_msns_rejected(self):
        entries = self.entries(2)
        entries[1].msn = 5
        with pytest.raises(ValueError):
            build_frame(entries)

    def test_first_msn_wraps_mod_256(self):
        entries = self.entries(1, start_msn=300)
        frame = build_frame(entries)
        first_msn8, _ = parse_frame(frame)
        assert first_msn8 == 300 % 256

    def test_truncated_frame_rejected(self):
        frame = build_frame(self.entries(2))
        with pytest.raises(ParseError):
            parse_frame(frame[:-1])

    def test_trailing_garbage_rejected(self):
        frame = build_frame(self.entries(2))
        with pytest.raises(ParseError):
            parse_frame(frame + b"\x00")
