"""ROHC CRC and W-LSB primitives."""

import pytest

from repro.rohc.crc import crc3, crc7, crc8
from repro.rohc.wlsb import interpretation_interval, lsb_decode, \
    lsb_encode


class TestCrc:
    def test_ranges(self):
        data = b"hello rohc"
        assert 0 <= crc3(data) <= 7
        assert 0 <= crc7(data) <= 127
        assert 0 <= crc8(data) <= 255

    def test_deterministic(self):
        assert crc3(b"abc") == crc3(b"abc")

    def test_sensitive_to_change(self):
        # CRC-3 has only 8 values; test across many perturbations that
        # at least most flips are detected.
        base = b"\x12\x34\x56\x78" * 4
        baseline = crc3(base)
        changed = 0
        for i in range(len(base)):
            mutated = bytearray(base)
            mutated[i] ^= 0x01
            if crc3(bytes(mutated)) != baseline:
                changed += 1
        assert changed >= len(base) // 2

    def test_crc8_detects_single_bit_flips(self):
        base = b"\xDE\xAD\xBE\xEF"
        baseline = crc8(base)
        for i in range(32):
            mutated = bytearray(base)
            mutated[i // 8] ^= 1 << (i % 8)
            assert crc8(bytes(mutated)) != baseline

    def test_empty_input(self):
        assert isinstance(crc3(b""), int)

    def test_tables_match_bitwise_reference(self):
        # The table-driven fast path must agree exactly with the
        # retained bit-by-bit reference on a broad input set: every
        # single byte, and structured multi-byte patterns.
        from repro.rohc.crc import CRC3_POLY, CRC7_POLY, CRC8_POLY, \
            _crc_bitwise
        cases = [bytes([b]) for b in range(256)]
        cases += [bytes(range(n)) for n in (2, 3, 7, 16, 40)]
        cases += [b"\xFF" * 8, b"\x00" * 8, b"\xA5\x5A" * 10, b""]
        for data in cases:
            assert crc3(data) == _crc_bitwise(data, 3, CRC3_POLY, 0x7)
            assert crc7(data) == _crc_bitwise(data, 7, CRC7_POLY, 0x7F)
            assert crc8(data) == _crc_bitwise(data, 8, CRC8_POLY, 0xFF)


class TestWlsb:
    def test_encode_keeps_low_bits(self):
        assert lsb_encode(0x1234, 8) == 0x34

    def test_decode_recovers_nearby_value(self):
        value = 1000
        lsbs = lsb_encode(value, 8)
        assert lsb_decode(lsbs, 8, v_ref=998) == value

    def test_decode_with_negative_offset(self):
        # p > 0 allows values slightly behind the reference.
        value = 995
        lsbs = lsb_encode(value, 8)
        assert lsb_decode(lsbs, 8, v_ref=1000, p=16) == value

    def test_roundtrip_across_window(self):
        for ref in (0, 100, 255, 256, 70000):
            low, high = interpretation_interval(8, ref, p=64)
            for value in (low, ref, high):
                if value < 0:
                    continue
                assert lsb_decode(lsb_encode(value, 8), 8, ref,
                                  p=64) == value

    def test_wraparound_256(self):
        # Reference 250, value 260: low bits 4.
        assert lsb_decode(260 & 0xFF, 8, v_ref=250) == 260

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            lsb_encode(5, 0)
        with pytest.raises(ValueError):
            lsb_decode(0, 0, 0)

    def test_out_of_range_lsbs(self):
        with pytest.raises(ValueError):
            lsb_decode(256, 8, 0)
