"""Two-stage CRC containment: retry, desync declaration, recovery.

Exercises the hardened decompressor's state machine directly:
first-mismatch retry via §3.4 retention, consecutive-mismatch desync
declaration, both repair paths (absolute rebase and snooped vanilla
ACK), and the recovery-latency measurement against an injected clock.
"""

from repro.rohc.compressor import Compressor
from repro.rohc.context import cid_for_flow
from repro.rohc.decompressor import Decompressor
from repro.rohc.packets import build_frame
from repro.tcp.segment import FiveTuple, TcpSegment

FT = FiveTuple("10.0.0.1", "10.0.1.1", 5001, 80)


def ack(ack_no, ts=10, ft=FT):
    return TcpSegment(flow_id=1, src="C1", dst="SRV", seq=0,
                      payload_bytes=0, ack=ack_no, rwnd=65535,
                      ts_val=ts, ts_ecr=ts - 1, five_tuple=ft)


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


def linked_pair(clock=None):
    comp = Compressor()
    decomp = Decompressor(clock=clock)
    first = ack(1460)
    comp.note_vanilla_ack(first)
    decomp.note_vanilla_ack(first)
    return comp, decomp


def corrupt(entries):
    frame = bytearray(build_frame(entries))
    frame[-1] ^= 0xFF
    return bytes(frame)


class TestTwoStageContainment:
    def test_first_miss_is_retryable(self):
        comp, decomp = linked_pair()
        e1 = comp.compress(ack(2920))
        assert decomp.decompress_frame(corrupt([e1])) == []
        assert (decomp.crc_failures, decomp.mid_frame_aborts,
                decomp.desync_events) == (1, 1, 0)
        # Retention re-offers the clean bytes: full recovery, no
        # context damage, streak cleared.
        out = decomp.decompress_frame(build_frame([e1]))
        assert [s.ack for s in out] == [2920]
        assert decomp.open_desyncs == 0

    def test_success_resets_the_streak(self):
        comp, decomp = linked_pair()
        e1 = comp.compress(ack(2920))
        decomp.decompress_frame(corrupt([e1]))
        decomp.decompress_frame(build_frame([e1]))  # clean retry
        e2 = comp.compress(ack(4380))
        decomp.decompress_frame(corrupt([e2]))
        # Not consecutive: still a first-stage retry, no desync.
        assert decomp.desync_events == 0
        assert decomp.crc_failures == 2

    def test_consecutive_misses_declare_desync(self):
        comp, decomp = linked_pair()
        e1 = comp.compress(ack(2920))
        bad = corrupt([e1])
        decomp.decompress_frame(bad)
        decomp.decompress_frame(bad)
        assert decomp.desync_events == 1
        assert decomp.open_desyncs == 1
        assert decomp.contexts[cid_for_flow(FT)].damaged


class TestRecoveryPaths:
    def desynced_pair(self, clock=None):
        comp, decomp = linked_pair(clock)
        e1 = comp.compress(ack(2920))
        bad = corrupt([e1])
        decomp.decompress_frame(bad)
        decomp.decompress_frame(bad)
        assert decomp.open_desyncs == 1
        return comp, decomp

    def test_absolute_entry_recovers_in_band(self):
        comp, decomp = self.desynced_pair()
        comp.rebase_all()
        e2 = comp.compress(ack(4380, ts=11))
        out = decomp.decompress_frame(build_frame([e2]))
        assert [s.ack for s in out] == [4380]
        assert decomp.recoveries == 1
        assert decomp.open_desyncs == 0

    def test_vanilla_ack_recovers_out_of_band(self):
        _, decomp = self.desynced_pair()
        decomp.note_vanilla_ack(ack(7300, ts=12))
        assert decomp.recoveries == 1
        assert decomp.open_desyncs == 0
        assert not decomp.contexts[cid_for_flow(FT)].damaged

    def test_recovery_latency_measured(self):
        clock = FakeClock()
        clock.now = 1_000_000
        comp, decomp = self.desynced_pair(clock)
        clock.now = 5_000_000  # 4 ms pass before the repair lands
        comp.rebase_all()
        e2 = comp.compress(ack(4380, ts=11))
        decomp.decompress_frame(build_frame([e2]))
        assert decomp.recoveries == 1
        assert decomp.recovery_ns_total == 4_000_000
        assert decomp.recovery_frames_total == 1
        block = decomp.robustness_counters()
        assert block["recovery_ns_total"] == 4_000_000

    def test_released_flow_closes_the_mark_without_recovery(self):
        _, decomp = self.desynced_pair()
        assert decomp.release_flow(FT)
        assert decomp.open_desyncs == 0
        assert decomp.recoveries == 0


class TestInternalErrorContainment:
    def test_apply_crash_is_counted_not_raised(self, monkeypatch):
        comp, decomp = linked_pair()
        e1 = comp.compress(ack(2920))
        frame = build_frame([e1])
        monkeypatch.setattr(
            "repro.rohc.decompressor.apply_entry",
            lambda *a: (_ for _ in ()).throw(RuntimeError("boom")))
        assert decomp.decompress_frame(frame) == []
        assert decomp.internal_errors == 1

    def test_parse_crash_is_counted_not_raised(self, monkeypatch):
        _, decomp = linked_pair()
        monkeypatch.setattr(
            "repro.rohc.decompressor.parse_frame",
            lambda *a: (_ for _ in ()).throw(RuntimeError("boom")))
        assert decomp.decompress_frame(b"\x01\x00\x00") == []
        assert decomp.internal_errors == 1
