"""Compressor <-> decompressor protocol: contexts, MSN dedup, repair."""

import pytest

from repro.rohc.compressor import Compressor
from repro.rohc.context import cid_for_flow
from repro.rohc.decompressor import Decompressor
from repro.rohc.packets import build_frame
from repro.tcp.segment import FiveTuple, TcpSegment

FT1 = FiveTuple("10.0.0.1", "10.0.1.1", 5001, 80)
FT2 = FiveTuple("10.0.0.1", "10.0.1.2", 5002, 80)


def ack(ft=FT1, ack_no=2920, ts_val=10, ts_ecr=9, rwnd=65535,
        flow_id=1):
    return TcpSegment(flow_id=flow_id, src="C1", dst="SRV", seq=0,
                      payload_bytes=0, ack=ack_no, rwnd=rwnd,
                      ts_val=ts_val, ts_ecr=ts_ecr, five_tuple=ft)


def linked_pair():
    comp, decomp = Compressor(), Decompressor()
    first = ack(ack_no=1460)
    comp.note_vanilla_ack(first)
    decomp.note_vanilla_ack(first)
    return comp, decomp


class TestContextEstablishment:
    def test_cannot_compress_before_vanilla(self):
        comp = Compressor()
        assert not comp.can_compress(ack())
        with pytest.raises(ValueError):
            comp.compress(ack())

    def test_vanilla_establishes_context(self):
        comp, _ = linked_pair()
        assert comp.can_compress(ack(ack_no=2920))

    def test_init_threshold(self):
        comp = Compressor(init_threshold=2)
        comp.note_vanilla_ack(ack(ack_no=1460))
        assert not comp.can_compress(ack(ack_no=2920))
        comp.note_vanilla_ack(ack(ack_no=2920))
        assert comp.can_compress(ack(ack_no=4380))

    def test_data_segments_ignored(self):
        comp = Compressor()
        data = TcpSegment(flow_id=1, src="a", dst="b", seq=0,
                          payload_bytes=100, ack=0, rwnd=0,
                          five_tuple=FT1)
        comp.note_vanilla_ack(data)
        assert not comp.can_compress(ack())

    def test_cid_collision_blocks_newer_flow(self):
        comp = Compressor()
        comp.note_vanilla_ack(ack(ft=FT1))
        # Find a tuple that collides with FT1's CID.
        target = cid_for_flow(FT1)
        port = 1000
        while True:
            candidate = FiveTuple("10.9.9.9", "10.8.8.8", port, 80)
            if cid_for_flow(candidate) == target:
                break
            port += 1
        comp.note_vanilla_ack(ack(ft=candidate, flow_id=2))
        assert not comp.can_compress(ack(ft=candidate, flow_id=2,
                                         ack_no=99999))
        assert comp.collisions == 1
        # The original flow is unaffected.
        assert comp.can_compress(ack(ft=FT1, ack_no=2920))


class TestRoundtrip:
    def test_single_ack(self):
        comp, decomp = linked_pair()
        entry = comp.compress(ack(ack_no=4380))
        out = decomp.decompress_frame(build_frame([entry]))
        assert len(out) == 1
        assert out[0].ack == 4380
        assert out[0].is_pure_ack
        assert out[0].five_tuple.key() == FT1.key()

    def test_stream_of_acks(self):
        comp, decomp = linked_pair()
        entries = [comp.compress(ack(ack_no=1460 + 2920 * (i + 1),
                                     ts_val=10 + i, ts_ecr=9 + i))
                   for i in range(20)]
        out = decomp.decompress_frame(build_frame(entries))
        assert [s.ack for s in out] == \
            [1460 + 2920 * (i + 1) for i in range(20)]
        assert decomp.crc_failures == 0

    def test_steady_state_compression_ratio(self):
        # Table 2: ~12x compression on a bulk download's ACK stream.
        comp, decomp = linked_pair()
        entries = [comp.compress(ack(ack_no=1460 + 2920 * (i + 1),
                                     ts_val=10 + i // 8,
                                     ts_ecr=9 + i // 8))
                   for i in range(200)]
        out = decomp.decompress_frame(build_frame(entries))
        assert len(out) == 200
        uncompressed = 52 * 200
        ratio = uncompressed / comp.compressed_bytes
        assert ratio > 8  # paper: 12x

    def test_multiple_flows_interleaved(self):
        comp, decomp = Compressor(), Decompressor()
        for ft, fid in ((FT1, 1), (FT2, 2)):
            first = ack(ft=ft, ack_no=1460, flow_id=fid)
            comp.note_vanilla_ack(first)
            decomp.note_vanilla_ack(first)
        entries = []
        for i in range(6):
            ft, fid = ((FT1, 1), (FT2, 2))[i % 2]
            entries.append(comp.compress(
                ack(ft=ft, flow_id=fid, ack_no=1460 + 2920 * (i + 1))))
        out = decomp.decompress_frame(build_frame(entries))
        assert len(out) == 6
        assert {s.flow_id for s in out} == {1, 2}
        assert decomp.crc_failures == 0


class TestRetentionSemantics:
    def test_duplicate_frames_deduplicated(self):
        comp, decomp = linked_pair()
        entry = comp.compress(ack(ack_no=4380))
        frame = build_frame([entry])
        assert len(decomp.decompress_frame(frame)) == 1
        assert len(decomp.decompress_frame(frame)) == 0
        assert decomp.duplicates_skipped == 1

    def test_retained_prefix_plus_new(self):
        # The client re-sends unconfirmed entries with new ones appended
        # (Fig 5/6): the AP must apply only the new suffix.
        comp, decomp = linked_pair()
        e1 = comp.compress(ack(ack_no=4380))
        decomp.decompress_frame(build_frame([e1]))
        e2 = comp.compress(ack(ack_no=7300))
        out = decomp.decompress_frame(build_frame([e1, e2]))
        assert [s.ack for s in out] == [7300]

    def test_lost_frame_recovered_by_retention(self):
        comp, decomp = linked_pair()
        e1 = comp.compress(ack(ack_no=4380))
        build_frame([e1])  # frame lost in flight
        e2 = comp.compress(ack(ack_no=7300))
        out = decomp.decompress_frame(build_frame([e1, e2]))
        assert [s.ack for s in out] == [4380, 7300]

    def test_rebase_after_discard(self):
        # Fig 7: the client discards unconfirmed entries; the stream
        # resumes with an MSN gap and an absolute entry.
        comp, decomp = linked_pair()
        e1 = comp.compress(ack(ack_no=4380))
        e2 = comp.compress(ack(ack_no=7300))
        del e1, e2  # never delivered
        comp.rebase_all()
        e3 = comp.compress(ack(ack_no=10220))
        out = decomp.decompress_frame(build_frame([e3]))
        assert [s.ack for s in out] == [10220]
        assert decomp.crc_failures == 0

    def test_vanilla_interleaving_stays_synced(self):
        comp, decomp = linked_pair()
        e1 = comp.compress(ack(ack_no=4380))
        decomp.decompress_frame(build_frame([e1]))
        # Flow falls back to vanilla for a while (both ends note it).
        mid = ack(ack_no=10220)
        comp.note_vanilla_ack(mid)
        decomp.note_vanilla_ack(mid)
        # Back to compressed.
        e2 = comp.compress(ack(ack_no=13140))
        out = decomp.decompress_frame(build_frame([e2]))
        assert [s.ack for s in out] == [13140]
        assert decomp.crc_failures == 0

    def test_stale_vanilla_does_not_regress(self):
        comp, decomp = linked_pair()
        e1 = comp.compress(ack(ack_no=40000))
        decomp.decompress_frame(build_frame([e1]))
        # A reordered old vanilla ACK arrives late at the decompressor.
        decomp.note_vanilla_ack(ack(ack_no=2920))
        assert decomp.contexts[cid_for_flow(FT1)].state.ack == 40000


class TestFailureContainment:
    def test_unknown_cid_counted(self):
        comp, _ = linked_pair()
        entry = comp.compress(ack(ack_no=4380))
        fresh = Decompressor()
        out = fresh.decompress_frame(build_frame([entry]))
        assert out == []
        assert fresh.unknown_cid == 1

    def test_corrupted_entry_crc_detected(self):
        comp, decomp = linked_pair()
        e1 = comp.compress(ack(ack_no=4380))
        frame = bytearray(build_frame([e1]))
        frame[-1] ^= 0xFF  # corrupt the ack delta
        out = decomp.decompress_frame(bytes(frame))
        assert out == []
        assert decomp.crc_failures == 1
        # A first mismatch is treated as transient: the entry's MSN is
        # not consumed (mid-frame abort), so the §3.4 re-offer of the
        # clean bytes decodes normally and no desync is declared.
        assert decomp.mid_frame_aborts == 1
        assert decomp.desync_events == 0
        out = decomp.decompress_frame(build_frame([e1]))
        assert [s.ack for s in out] == [4380]

    def test_damaged_context_repaired_by_absolute(self):
        comp, decomp = linked_pair()
        e1 = comp.compress(ack(ack_no=4380))
        frame = bytearray(build_frame([e1]))
        frame[-1] ^= 0xFF
        # A second consecutive mismatch on the same context declares
        # a desynchronization (two-stage containment).
        decomp.decompress_frame(bytes(frame))
        decomp.decompress_frame(bytes(frame))
        assert decomp.crc_failures == 2
        assert decomp.desync_events == 1
        assert decomp.open_desyncs == 1
        # Delta entries are suppressed while damaged...
        e2 = comp.compress(ack(ack_no=7300))
        assert decomp.decompress_frame(build_frame([e2])) == []
        assert decomp.damaged_skips == 1
        # ...until an absolute entry repairs the context (and the
        # repair is counted as a measured recovery).
        comp.rebase_all()
        e3 = comp.compress(ack(ack_no=10220))
        out = decomp.decompress_frame(build_frame([e3]))
        assert [s.ack for s in out] == [10220]
        assert decomp.recoveries == 1
        assert decomp.open_desyncs == 0

    def test_garbage_frame_counted(self):
        decomp = Decompressor()
        assert decomp.decompress_frame(b"\xFF") == []
        assert decomp.parse_errors == 1
