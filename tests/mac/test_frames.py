"""Frame size arithmetic and A-MPDU invariants."""

import pytest

from repro.mac.frames import AckFrame, AmpduFrame, BarFrame, \
    BlockAckFrame, DataFrame, Mpdu
from repro.mac.params import ACK_BYTES, BAR_BYTES, BLOCK_ACK_BYTES, \
    MAC_DATA_OVERHEAD, mpdu_subframe_bytes

from tests.helpers import FakePayload


def mpdu(seq=0, size=1500, dst="C1"):
    return Mpdu(src="AP", dst=dst, seq=seq, payload=FakePayload(size))


class TestMpdu:
    def test_byte_length_includes_mac_overhead(self):
        assert mpdu(size=1500).byte_length == 1500 + MAC_DATA_OVERHEAD

    def test_retransmission_flag(self):
        m = mpdu()
        assert not m.is_retransmission
        m.retry_count = 1
        assert m.is_retransmission

    def test_frame_ids_unique(self):
        assert mpdu().frame_id != mpdu().frame_id


class TestDataFrame:
    def test_wraps_single_mpdu(self):
        m = mpdu()
        frame = DataFrame(mpdu=m, rate_mbps=54.0)
        assert frame.mpdus == [m]
        assert frame.byte_length == m.byte_length
        assert not frame.is_control
        assert frame.src == "AP" and frame.dst == "C1"


class TestAmpduFrame:
    def test_subframe_padding(self):
        # 1538-byte MPDU: pad to 1540, plus 4-byte delimiter.
        assert mpdu_subframe_bytes(1538) == 1544

    def test_already_aligned(self):
        assert mpdu_subframe_bytes(1540) == 1544

    def test_aggregate_length(self):
        mpdus = [mpdu(seq=i) for i in range(3)]
        frame = AmpduFrame(mpdus=mpdus, rate_mbps=150.0)
        expected = 3 * mpdu_subframe_bytes(1500 + MAC_DATA_OVERHEAD)
        assert frame.byte_length == expected

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AmpduFrame(mpdus=[], rate_mbps=150.0)

    def test_rejects_mixed_receivers(self):
        with pytest.raises(ValueError):
            AmpduFrame(mpdus=[mpdu(dst="C1"), mpdu(dst="C2")],
                       rate_mbps=150.0)

    def test_flag_aggregation(self):
        mpdus = [mpdu(seq=i) for i in range(3)]
        mpdus[1].more_data = True
        frame = AmpduFrame(mpdus=mpdus, rate_mbps=150.0)
        assert frame.more_data
        assert not frame.sync

    def test_seq_range(self):
        frame = AmpduFrame(mpdus=[mpdu(seq=5), mpdu(seq=9)],
                           rate_mbps=150.0)
        assert frame.seq_range == (5, 9)


class TestControlFrames:
    def test_stock_ack_size(self):
        ack = AckFrame(src="C1", dst="AP", acked_seq=3)
        assert ack.byte_length == ACK_BYTES
        assert ack.is_control

    def test_hack_payload_lengthens_ack(self):
        ack = AckFrame(src="C1", dst="AP", acked_seq=3,
                       hack_payload=b"\x01" * 10)
        assert ack.byte_length == ACK_BYTES + 10

    def test_stock_block_ack_size(self):
        ba = BlockAckFrame(src="C1", dst="AP", win_start=0,
                           acked_seqs=frozenset({1, 2}))
        assert ba.byte_length == BLOCK_ACK_BYTES

    def test_hack_payload_lengthens_block_ack(self):
        ba = BlockAckFrame(src="C1", dst="AP", win_start=0,
                           acked_seqs=frozenset(), hack_payload=b"abc")
        assert ba.byte_length == BLOCK_ACK_BYTES + 3

    def test_bar_size(self):
        bar = BarFrame(src="AP", dst="C1", win_start=7)
        assert bar.byte_length == BAR_BYTES
        assert bar.is_control
