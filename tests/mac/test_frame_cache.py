"""Cached frame geometry: construction-time lengths stay correct.

PR 4 converted the hot frame classes to ``__slots__`` with
``byte_length`` computed once at construction instead of a re-summing
property.  That is only sound if every mutation a frame admits after
construction either *cannot* change its geometry (retry counts,
flags), *re-derives* the cache (``hack_payload`` on control frames),
or is *rejected* outright (the A-MPDU's MPDU tuple).  These tests pin
each of those invariants, property-style where the input space is
wide, and check the airtime memo tracks the cached lengths.
"""

import pytest
from hypothesis import given, strategies as st

from repro.mac.frames import AckFrame, AmpduFrame, BarFrame, \
    BlockAckFrame, DataFrame, Mpdu, mpdu_byte_length
from repro.mac.params import ACK_BYTES, BAR_BYTES, BLOCK_ACK_BYTES, \
    MAC_DATA_OVERHEAD, mpdu_subframe_bytes
from repro.phy.params import PHY_11N

from tests.helpers import FakePayload


def mpdu(size=1500, seq=0, dst="C1"):
    return Mpdu(src="AP", dst=dst, seq=seq,
                payload=FakePayload(byte_length=size))


class TestMpduGeometry:
    @given(size=st.integers(min_value=0, max_value=65_535))
    def test_cached_length_matches_formula(self, size):
        frame = mpdu(size=size)
        assert frame.byte_length == MAC_DATA_OVERHEAD + size
        assert frame.byte_length == mpdu_byte_length(frame.payload)

    @given(retries=st.integers(min_value=1, max_value=12))
    def test_geometry_free_mutations_keep_length(self, retries):
        frame = mpdu(size=1200)
        before = frame.byte_length
        for _ in range(retries):
            frame.retry_count += 1
        frame.more_data = True
        frame.sync = True
        frame.enqueued_at = 12345
        assert frame.byte_length == before

    def test_dataframe_mirrors_mpdu_length(self):
        inner = mpdu(size=777)
        frame = DataFrame(mpdu=inner, rate_mbps=150.0)
        assert frame.byte_length == inner.byte_length


class TestAmpduGeometry:
    @given(sizes=st.lists(st.integers(min_value=40, max_value=4000),
                          min_size=1, max_size=16))
    def test_cached_aggregate_matches_subframe_sum(self, sizes):
        mpdus = [mpdu(size=s, seq=i) for i, s in enumerate(sizes)]
        frame = AmpduFrame(mpdus=mpdus, rate_mbps=150.0)
        assert frame.byte_length == sum(
            mpdu_subframe_bytes(m.byte_length) for m in mpdus)

    def test_mpdu_list_mutation_is_rejected(self):
        # The cache can never go stale because the MPDU collection is
        # a tuple: there is no append/assignment to invalidate it.
        frame = AmpduFrame(mpdus=[mpdu(seq=0), mpdu(seq=1)],
                           rate_mbps=150.0)
        assert isinstance(frame.mpdus, tuple)
        with pytest.raises(AttributeError):
            frame.mpdus.append(mpdu(seq=2))
        with pytest.raises(TypeError):
            frame.mpdus[0] = mpdu(seq=9)

    def test_builds_from_any_iterable(self):
        frame = AmpduFrame(mpdus=(m for m in [mpdu(seq=0)]),
                           rate_mbps=150.0)
        assert len(frame.mpdus) == 1


class TestHackPayloadInvalidation:
    @given(payloads=st.lists(
        st.one_of(st.none(),
                  st.binary(min_size=0, max_size=64)),
        min_size=1, max_size=6))
    def test_ack_setter_rederives_length(self, payloads):
        frame = AckFrame(src="C1", dst="AP", acked_seq=1)
        for payload in payloads:
            frame.hack_payload = payload
            expected = ACK_BYTES + (len(payload) if payload else 0)
            assert frame.byte_length == expected
            assert frame.hack_payload == payload

    @given(payloads=st.lists(
        st.one_of(st.none(),
                  st.binary(min_size=0, max_size=64)),
        min_size=1, max_size=6))
    def test_block_ack_setter_rederives_length(self, payloads):
        frame = BlockAckFrame(src="C1", dst="AP", win_start=0,
                              acked_seqs=frozenset({0, 1}))
        for payload in payloads:
            frame.hack_payload = payload
            expected = BLOCK_ACK_BYTES + \
                (len(payload) if payload else 0)
            assert frame.byte_length == expected

    def test_construction_payload_included(self):
        frame = AckFrame(src="C1", dst="AP", acked_seq=1,
                         hack_payload=b"\x01" * 10)
        assert frame.byte_length == ACK_BYTES + 10

    def test_empty_bytes_counts_as_absent(self):
        # b"" is falsy: historical behaviour (property re-sum) treated
        # it as no payload; the cached setter must agree.
        frame = AckFrame(src="C1", dst="AP", acked_seq=1,
                         hack_payload=b"")
        assert frame.byte_length == ACK_BYTES

    def test_bar_length_constant(self):
        frame = BarFrame(src="AP", dst="C1", win_start=7)
        assert frame.byte_length == BAR_BYTES


class TestAirtimeMemo:
    def test_matches_duration_arithmetic(self):
        frame = AmpduFrame(mpdus=[mpdu(seq=0), mpdu(seq=1)],
                           rate_mbps=150.0)
        assert PHY_11N.frame_airtime_ns(frame, 150.0) == \
            PHY_11N.frame_duration_ns(frame.byte_length, 150.0)

    def test_tracks_hack_payload_mutation(self):
        # The memo keys on the *current* cached length, so a control
        # frame whose payload was swapped after construction gets the
        # longer airtime, never the stale one.
        frame = BlockAckFrame(src="C1", dst="AP", win_start=0,
                              acked_seqs=frozenset({0}))
        rate = 24.0
        bare = PHY_11N.control_duration_ns(frame.byte_length, rate)
        frame.hack_payload = b"\xAB" * 40
        augmented = PHY_11N.control_duration_ns(frame.byte_length,
                                                rate)
        assert augmented > bare
        assert augmented == PHY_11N.control_duration_ns(
            BLOCK_ACK_BYTES + 40, rate)

    @given(size=st.integers(min_value=0, max_value=10_000),
           rate=st.sampled_from(PHY_11N.data_rates))
    def test_memoised_duration_equals_fresh_arithmetic(self, size,
                                                       rate):
        import math
        bits = PHY_11N.service_bits + PHY_11N.tail_bits + 8 * size
        per_symbol = rate * (PHY_11N.symbol_ns / 1_000.0)
        expected = PHY_11N.preamble_ns + \
            math.ceil(bits / per_symbol) * PHY_11N.symbol_ns
        assert PHY_11N.frame_duration_ns(size, rate) == expected
