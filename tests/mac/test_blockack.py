"""Block ACK originator/recipient logic (pure, no simulator)."""

from repro.mac.blockack import BLOCK_ACK_WINDOW, BlockAckOriginator, \
    BlockAckRecipient
from repro.mac.frames import Mpdu

from tests.helpers import FakePayload


def mpdus(origin, n):
    return [Mpdu(src="AP", dst="C1", seq=origin.allocate_seq(),
                 payload=FakePayload()) for _ in range(n)]


class TestOriginatorWindow:
    def test_initial_window(self):
        orig = BlockAckOriginator()
        assert orig.window_start == 0
        assert orig.window_limit == BLOCK_ACK_WINDOW

    def test_window_tracks_oldest_unresolved(self):
        orig = BlockAckOriginator()
        batch = mpdus(orig, 4)
        orig.mark_in_flight(batch)
        assert orig.window_start == 0
        orig.on_block_ack(frozenset({0, 1, 3}))  # 2 missed
        assert orig.window_start == 2
        assert orig.window_limit == 2 + BLOCK_ACK_WINDOW

    def test_window_advances_when_all_resolved(self):
        orig = BlockAckOriginator()
        batch = mpdus(orig, 3)
        orig.mark_in_flight(batch)
        orig.on_block_ack(frozenset({0, 1, 2}))
        assert orig.window_start == 3


class TestOriginatorResolution:
    def test_all_acked(self):
        orig = BlockAckOriginator()
        batch = mpdus(orig, 5)
        orig.mark_in_flight(batch)
        delivered, requeued, dropped = orig.on_block_ack(
            frozenset(range(5)))
        assert [m.seq for m in delivered] == [0, 1, 2, 3, 4]
        assert requeued == [] and dropped == []

    def test_missed_requeued_with_retry_count(self):
        orig = BlockAckOriginator()
        orig.mark_in_flight(mpdus(orig, 3))
        _, requeued, _ = orig.on_block_ack(frozenset({0, 2}))
        assert [m.seq for m in requeued] == [1]
        assert requeued[0].retry_count == 1
        assert orig.retry_queue == requeued

    def test_retry_limit_drops(self):
        orig = BlockAckOriginator(retry_limit=2)
        batch = mpdus(orig, 1)
        batch[0].retry_count = 2
        orig.mark_in_flight(batch)
        _, requeued, dropped = orig.on_block_ack(frozenset())
        assert requeued == []
        assert dropped == batch

    def test_cannot_double_mark(self):
        orig = BlockAckOriginator()
        orig.mark_in_flight(mpdus(orig, 1))
        try:
            orig.mark_in_flight([])
        except RuntimeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected RuntimeError")

    def test_retry_queue_stays_sorted(self):
        orig = BlockAckOriginator()
        orig.mark_in_flight(mpdus(orig, 4))
        orig.on_block_ack(frozenset({0, 2}))  # requeue 1, 3
        batch2 = mpdus(orig, 1)  # seq 4
        orig.mark_in_flight(batch2)
        orig.on_block_ack(frozenset())  # requeue 4
        assert [m.seq for m in orig.retry_queue] == [1, 3, 4]


class TestGiveUp:
    def test_give_up_requeues_everything(self):
        orig = BlockAckOriginator()
        batch = mpdus(orig, 3)
        orig.mark_in_flight(batch)
        requeued, dropped = orig.on_give_up()
        assert len(requeued) == 3
        assert dropped == []
        assert all(m.retry_count == 1 for m in requeued)

    def test_give_up_respects_retry_limit(self):
        orig = BlockAckOriginator(retry_limit=1)
        batch = mpdus(orig, 2)
        batch[0].retry_count = 1
        orig.mark_in_flight(batch)
        requeued, dropped = orig.on_give_up()
        assert [m.seq for m in dropped] == [0]
        assert [m.seq for m in requeued] == [1]


class TestRecipient:
    def record(self, rec, seq):
        return rec.record(Mpdu(src="AP", dst="C1", seq=seq,
                               payload=FakePayload()))

    def test_new_mpdu_is_new(self):
        rec = BlockAckRecipient()
        assert self.record(rec, 0)

    def test_duplicate_detected(self):
        rec = BlockAckRecipient()
        self.record(rec, 0)
        assert not self.record(rec, 0)

    def test_acked_set_window(self):
        rec = BlockAckRecipient()
        for seq in (0, 1, 3, 70):
            self.record(rec, seq)
        assert rec.acked_set(0) == frozenset({0, 1, 3})
        assert rec.acked_set(10) == frozenset({70})

    def test_acked_set_includes_duplicates(self):
        # A retransmitted MPDU whose first copy was already delivered
        # must still be reported as received.
        rec = BlockAckRecipient()
        self.record(rec, 5)
        self.record(rec, 5)
        assert 5 in rec.acked_set(0)

    def test_history_pruning_keeps_recent(self):
        rec = BlockAckRecipient(history=64)
        for seq in range(500):
            self.record(rec, seq)
        assert rec.has_seen(499)
        assert not self.record(rec, 499)
        # Very old state may be pruned, but recent window is intact.
        assert rec.acked_set(499 - 63)
