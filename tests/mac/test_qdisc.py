"""Queue disciplines: DropTail timestamps, CoDel head-drop state
machine, FQ-CoDel DRR, the shared stats block, and the shard merge."""

import pytest

from repro.mac.params import MacParams
from repro.mac.qdisc import CoDelQueue, DropTailQueue, FqCodelQueue, \
    QdiscStats, make_queue, merge_aqm_blocks
from repro.sim.units import MS

from tests.helpers import FakePayload


class FlowPayload(FakePayload):
    """Payload carrying a flow_id (stands in for a TcpSegment)."""

    def __init__(self, flow_id, byte_length=1000):
        super().__init__(byte_length=byte_length)
        self.flow_id = flow_id


class TestDropTailQueue:
    def test_fifo_order(self, sim):
        q = DropTailQueue(sim, QdiscStats())
        a, b = FakePayload(), FakePayload()
        q.append(a)
        q.append(b)
        assert q[0] is a
        assert q.popleft() is a and q.popleft() is b

    def test_sojourn_recorded_on_dequeue(self, sim):
        stats = QdiscStats()
        q = DropTailQueue(sim, stats)
        q.append(FakePayload())
        sim.run(until=3 * MS)
        q.popleft()
        assert stats.dequeued == 1
        assert stats.drops == 0
        assert stats.sojourn.percentile(0.5) == \
            pytest.approx(3.0, rel=0.02)

    def test_len_bool_iter(self, sim):
        q = DropTailQueue(sim, QdiscStats())
        assert not q and len(q) == 0
        payloads = [FakePayload() for _ in range(3)]
        for p in payloads:
            q.append(p)
        assert q and len(q) == 3
        assert list(q) == payloads

    def test_filter_out_preserves_order_and_timestamps(self, sim):
        stats = QdiscStats()
        q = DropTailQueue(sim, stats)
        keep, drop = FakePayload(kind="keep"), FakePayload(kind="drop")
        q.append(keep)
        sim.run(until=5 * MS)
        q.append(drop)
        removed = q.filter_out(lambda p: p.kind == "drop")
        assert removed == [drop]
        assert len(q) == 1
        sim.run(until=10 * MS)
        q.popleft()
        # keep's arrival stamp survived the filter: 10 ms sojourn.
        assert stats.sojourn.percentile(0.5) == \
            pytest.approx(10.0, rel=0.02)


class TestCoDelQueue:
    def fill(self, q, n, byte_length=1000):
        for _ in range(n):
            q.append(FakePayload(byte_length=byte_length))

    def test_below_target_never_drops(self, sim):
        stats = QdiscStats()
        q = CoDelQueue(sim, stats)
        for step in range(50):
            q.append(FakePayload())
            sim.run(until=sim.now + 2 * MS)     # sojourn 2 ms < 5 ms
            q.popleft()
        assert stats.drops == 0
        assert stats.dequeued == 50

    def test_standing_queue_drops_after_interval(self, sim):
        stats = QdiscStats()
        q = CoDelQueue(sim, stats)
        self.fill(q, 40)
        # Drain slowly: the head's sojourn exceeds target immediately
        # and stays there; drops begin one interval (100 ms) later.
        drained = 0
        while q and sim.now < 400 * MS:
            sim.run(until=sim.now + 10 * MS)
            if q:
                q.popleft()
                drained += 1
        assert stats.drops > 0
        assert stats.dequeued == drained
        assert stats.drops + stats.dequeued == 40

    def test_first_interval_grace_period(self, sim):
        stats = QdiscStats()
        q = CoDelQueue(sim, stats)
        self.fill(q, 10)
        sim.run(until=50 * MS)      # above target, within interval
        q.popleft()
        assert stats.drops == 0

    def test_never_drops_the_last_packet(self, sim):
        stats = QdiscStats()
        q = CoDelQueue(sim, stats)
        only = FakePayload()
        q.append(only)
        sim.run(until=2_000 * MS)   # ancient, but alone
        assert q[0] is only
        assert q.popleft() is only
        assert stats.drops == 0

    def test_drop_rate_accelerates(self, sim):
        stats = QdiscStats()
        q = CoDelQueue(sim, stats)
        self.fill(q, 200)
        while q and sim.now < 2_000 * MS:
            sim.run(until=sim.now + 5 * MS)
            if q:
                q.popleft()
        # The interval/sqrt(count) law: the dropping state escalated
        # well past a one-per-interval rate.
        assert q._count > 2
        assert stats.drops > 5

    def test_peek_pop_coherent_while_dropping(self, sim):
        q = CoDelQueue(sim, QdiscStats())
        self.fill(q, 40)
        sim.run(until=150 * MS)     # deep in the dropping regime
        head = q[0]
        assert q.popleft() is head


class TestFqCodelQueue:
    def test_flows_isolated_by_drr(self, sim):
        q = FqCodelQueue(sim, QdiscStats())
        fat = [FlowPayload(1) for _ in range(10)]
        mouse = FlowPayload(2)
        for p in fat:
            q.append(p)
        q.append(mouse)
        order = [q.popleft() for _ in range(11)]
        # The mouse does not wait behind the whole fat backlog.
        assert order.index(mouse) < 5
        assert sorted(id(p) for p in order) == \
            sorted(id(p) for p in fat + [mouse])

    def test_payloads_without_flow_id_share_a_bucket(self, sim):
        # Regression: UDP datagrams have no flow_id; the shared bucket
        # key must be a real sentinel, not None (None collides with
        # the scheduler's queue-empty result).
        q = FqCodelQueue(sim, QdiscStats())
        udp = [FakePayload() for _ in range(3)]
        tcp = FlowPayload(7)
        for p in udp:
            q.append(p)
        q.append(tcp)
        drained = []
        while q:
            assert q[0] is not None     # peek stays coherent
            drained.append(q.popleft())
        assert len(drained) == 4
        assert len(q) == 0 and not q

    def test_len_tracks_across_flows(self, sim):
        q = FqCodelQueue(sim, QdiscStats())
        for i in range(6):
            q.append(FlowPayload(i % 2))
        assert len(q) == 6
        for expected in range(5, -1, -1):
            q.popleft()
            assert len(q) == expected

    def test_filter_out_spans_flows(self, sim):
        q = FqCodelQueue(sim, QdiscStats())
        drop = FlowPayload(1, byte_length=99)
        keep_a, keep_b = FlowPayload(1), FlowPayload(2)
        for p in (drop, keep_a, keep_b):
            q.append(p)
        removed = q.filter_out(lambda p: p.byte_length == 99)
        assert removed == [drop]
        assert len(q) == 2
        assert {id(q.popleft()), id(q.popleft())} == \
            {id(keep_a), id(keep_b)}

    def test_iter_yields_all_queued(self, sim):
        q = FqCodelQueue(sim, QdiscStats())
        payloads = [FlowPayload(i) for i in range(4)]
        for p in payloads:
            q.append(p)
        assert sorted(id(p) for p in q) == \
            sorted(id(p) for p in payloads)

    def test_codel_applies_per_flow(self, sim):
        stats = QdiscStats()
        q = FqCodelQueue(sim, stats)
        for _ in range(40):
            q.append(FlowPayload(1))
        while q and sim.now < 400 * MS:
            sim.run(until=sim.now + 10 * MS)
            if q:
                q.popleft()
        assert stats.drops > 0

    def test_pop_from_empty_raises(self, sim):
        q = FqCodelQueue(sim, QdiscStats())
        with pytest.raises(IndexError):
            q.popleft()
        with pytest.raises(IndexError):
            q[0]


class TestMakeQueue:
    def test_dispatch(self, sim):
        stats = QdiscStats()
        assert type(make_queue(sim, MacParams(), stats)) \
            is DropTailQueue
        assert type(make_queue(
            sim, MacParams(queue_discipline="codel"), stats)) \
            is CoDelQueue
        assert type(make_queue(
            sim, MacParams(queue_discipline="fq_codel"), stats)) \
            is FqCodelQueue

    def test_unknown_discipline_rejected(self, sim):
        with pytest.raises(ValueError, match="unknown queue"):
            make_queue(sim, MacParams(queue_discipline="red"),
                       QdiscStats())

    def test_codel_knobs_forwarded(self, sim):
        params = MacParams(queue_discipline="codel",
                           codel_target_ns=2 * MS,
                           codel_interval_ns=50 * MS)
        q = make_queue(sim, params, QdiscStats())
        assert q.target_ns == 2 * MS
        assert q.interval_ns == 50 * MS


class TestStatsAndMerge:
    def drained_block(self, sim, discipline="droptail", n=5, gap=2 * MS):
        stats = QdiscStats()
        q = DropTailQueue(sim, stats)
        for _ in range(n):
            q.append(FakePayload())
            sim.run(until=sim.now + gap)
            q.popleft()
        return stats.block(discipline)

    def test_block_shape(self, sim):
        block = self.drained_block(sim)
        assert set(block) == {"discipline", "drops", "marks",
                              "dequeued", "sojourn_bins",
                              "sojourn_p50_ms", "sojourn_p99_ms"}
        assert block["dequeued"] == 5
        assert block["marks"] == 0
        assert block["sojourn_p50_ms"] <= block["sojourn_p99_ms"]
        assert all(isinstance(k, str) for k in block["sojourn_bins"])

    def test_empty_block_has_none_percentiles(self):
        block = QdiscStats().block("codel")
        assert block["sojourn_p50_ms"] is None
        assert block["sojourn_p99_ms"] is None

    def test_merge_sums_and_recomputes(self, sim):
        a = self.drained_block(sim, n=4, gap=1 * MS)
        b = self.drained_block(sim, n=4, gap=20 * MS)
        merged = merge_aqm_blocks([a, b])
        assert merged["dequeued"] == 8
        assert merged["drops"] == 0
        # The merged p99 reflects the slow half, not block a's alone.
        assert merged["sojourn_p99_ms"] > a["sojourn_p99_ms"]

    def test_merge_is_associative(self, sim):
        blocks = [self.drained_block(sim, n=3, gap=g)
                  for g in (1 * MS, 5 * MS, 25 * MS)]
        left = merge_aqm_blocks(
            [merge_aqm_blocks(blocks[:2]), blocks[2]])
        flat = merge_aqm_blocks(blocks)
        assert left == flat

    def test_merge_of_nothing_is_empty_droptail(self):
        merged = merge_aqm_blocks([])
        assert merged["discipline"] == "droptail"
        assert merged["dequeued"] == 0
        assert merged["sojourn_p99_ms"] is None
