"""DCF edge cases: multi-destination service, EIFS, backlog, timing."""

import pytest

from repro.mac.dcf import DcfMac, MacUpper
from repro.mac.frames import AckFrame, AmpduFrame, BlockAckFrame, \
    DataFrame
from repro.mac.params import MacParams
from repro.phy.params import PHY_11A, PHY_11N
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.sim.units import usec

from tests.helpers import FakePayload
from tests.mac.test_dcf import RecordingUpper, ScriptedRng, \
    TogglingLoss


def build_network(n_stations=3, aggregation=False, loss=None):
    phy = PHY_11N if aggregation else PHY_11A
    rate = 150.0 if aggregation else 54.0
    sim = Simulator()
    medium = Medium(sim, loss_model=loss)
    stations = []
    for i in range(n_stations):
        params = MacParams(data_rate_mbps=rate, aggregation=aggregation)
        upper = RecordingUpper()
        mac = DcfMac(sim, medium, phy, f"S{i}", params,
                     ScriptedRng([i * 2 + 1 for _ in range(40)]),
                     upper=upper, loss_model=loss)
        stations.append((mac, upper))
    return sim, medium, stations


class TestMultiDestination:
    def test_round_robin_service(self):
        sim, medium, stations = build_network(3, aggregation=True)
        (a, _), (b, ub), (c, uc) = stations
        for _ in range(4):
            a.enqueue(FakePayload(1000), "S1")
            a.enqueue(FakePayload(1000), "S2")
        sim.run()
        assert len(ub.delivered) == 4
        assert len(uc.delivered) == 4

    def test_backlog_accounting(self):
        sim, medium, stations = build_network(2, aggregation=True)
        (a, _), _ = stations
        for _ in range(5):
            a.enqueue(FakePayload(1000), "S1")
        assert a.queue_depth("S1") == 5
        assert a.backlog("S1") == 5
        sim.run()
        assert a.backlog("S1") == 0

    def test_separate_seq_spaces_per_destination(self):
        sim, medium, stations = build_network(3, aggregation=True)
        (a, _), (b, ub), (c, uc) = stations
        a.enqueue(FakePayload(1000), "S1")
        a.enqueue(FakePayload(1000), "S2")
        sim.run()
        assert ub.delivered[0][0].seq == 0
        assert uc.delivered[0][0].seq == 0


class TestEifs:
    def test_eifs_after_collision_delays_next_access(self):
        # After hearing a corrupted frame, a station's next defer uses
        # EIFS (longer than DIFS).
        sim, medium, stations = build_network(3)
        (a, _), (b, _), (c, uc) = stations
        # a and b collide at t=DIFS (both immediate access).
        a.enqueue(FakePayload(100), "S2")
        b.enqueue(FakePayload(100), "S2")
        starts = []
        medium.observers.append(
            lambda tx: starts.append((tx.frame, tx.start, tx.collided)))
        sim.run()
        # First two transmissions collide; retries are spaced by at
        # least EIFS from the collision end for the deferring parties.
        assert starts[0][2] and starts[1][2]
        collision_end = max(s[1] for s in starts[:2]) + 0
        retry_start = starts[2][1]
        assert retry_start - starts[0][1] >= PHY_11A.eifs_ns

    def test_all_frames_eventually_delivered(self):
        sim, medium, stations = build_network(3)
        (a, _), (b, _), (c, uc) = stations
        a.enqueue(FakePayload(100), "S2")
        b.enqueue(FakePayload(100), "S2")
        sim.run()
        assert len(uc.delivered) == 2


class TestResponseTimeoutPolling:
    def test_no_deadlock_when_own_response_blocks_timeout(self):
        # A station awaiting a Block ACK while itself transmitting a
        # (delayed) response must not deadlock: the timeout re-polls.
        loss = TogglingLoss()
        loss.ppdu_script = [True] * 3
        sim, medium, stations = build_network(2, loss=loss)
        (a, ua), (b, ub) = stations
        a.params.extra_response_delay_ns = usec(60)
        b.params.extra_response_delay_ns = usec(60)
        a.params.ack_timeout_extra_ns = usec(80)
        b.params.ack_timeout_extra_ns = usec(80)
        a.enqueue(FakePayload(100), "S1")
        b.enqueue(FakePayload(100), "S0")
        executed = sim.run(max_events=100_000)
        assert executed < 100_000  # simulation quiesced, no live-lock
        assert len(ua.delivered) + len(ub.delivered) >= 1


class TestSingletonMoreData:
    def test_more_data_recomputed_per_transmission(self):
        sim, medium, stations = build_network(2)
        (a, _), (b, ub) = stations
        a.enqueue(FakePayload(100), "S1")
        a.enqueue(FakePayload(100), "S1")
        sim.run()
        flags = [m.more_data for m, _ in ub.delivered]
        assert flags == [True, False]


class TestAmpduSizing:
    def test_batch_respects_byte_cap_end_to_end(self):
        sim, medium, stations = build_network(2, aggregation=True)
        (a, _), (b, ub) = stations
        frames = []
        medium.observers.append(lambda tx: frames.append(tx.frame))
        for _ in range(64):
            a.enqueue(FakePayload(1498), "S1")
        sim.run()
        ampdus = [f for f in frames if isinstance(f, AmpduFrame)]
        assert all(f.byte_length <= 65_535 for f in ampdus)
        assert len(ub.delivered) == 64

    def test_empty_then_refill(self):
        sim, medium, stations = build_network(2, aggregation=True)
        (a, _), (b, ub) = stations
        a.enqueue(FakePayload(1000), "S1")
        sim.run()
        assert len(ub.delivered) == 1
        a.enqueue(FakePayload(1000), "S1")
        sim.run()
        assert len(ub.delivered) == 2


class TestControlRateSelection:
    def test_block_ack_rate_follows_data_rate(self):
        sim, medium, stations = build_network(2, aggregation=True)
        (a, _), _ = stations
        frames = []
        medium.observers.append(lambda tx: frames.append(tx.frame))
        a.enqueue(FakePayload(1000), "S1")
        sim.run()
        block_acks = [f for f in frames
                      if isinstance(f, BlockAckFrame)]
        assert block_acks[0].rate_mbps == 24.0  # 150 Mbps -> 24 basic

    def test_low_data_rate_lowers_control_rate(self):
        sim, medium, stations = build_network(2, aggregation=True)
        (a, _), _ = stations
        a.params.data_rate_mbps = 15.0
        frames = []
        medium.observers.append(lambda tx: frames.append(tx.frame))
        a.enqueue(FakePayload(1000), "S1")
        sim.run()
        block_acks = [f for f in frames
                      if isinstance(f, BlockAckFrame)]
        assert block_acks[0].rate_mbps == 12.0  # 15 Mbps -> 12 basic
