"""A-MPDU batch construction limits."""

from collections import deque

from repro.mac.aggregation import build_batch, max_mpdus_for_txop
from repro.mac.blockack import BlockAckOriginator
from repro.mac.frames import Mpdu
from repro.mac.params import MacParams, mpdu_subframe_bytes
from repro.phy.params import PHY_11N
from repro.sim.units import msec

from tests.helpers import FakePayload


def make_mpdu_factory():
    def make(payload, seq):
        return Mpdu(src="AP", dst="C1", seq=seq, payload=payload)
    return make


def build(queue_sizes, params=None, rate=150.0, origin=None):
    origin = origin or BlockAckOriginator()
    params = params or MacParams(data_rate_mbps=rate, aggregation=True)
    queue = deque(FakePayload(s) for s in queue_sizes)
    batch = build_batch(origin, queue, make_mpdu_factory(), params,
                        PHY_11N, rate)
    return batch, queue, origin


class TestLimits:
    def test_mpdu_count_cap(self):
        batch, queue, _ = build([100] * 100)
        assert len(batch) == 64
        assert len(queue) == 36

    def test_byte_cap(self):
        # 1498-byte payloads -> 1536-byte MPDUs -> 1540-byte subframes;
        # 65535 // 1540 = 42 (the paper's 42-packet batches at 150 Mbps).
        batch, _, _ = build([1498] * 64)
        assert len(batch) == 42

    def test_txop_cap_at_low_rate(self):
        # At 15 Mbps the 4 ms TXOP holds far fewer MPDUs than 64 KiB.
        params = MacParams(data_rate_mbps=15.0, aggregation=True)
        batch, _, _ = build([1498] * 64, params=params, rate=15.0)
        sub = mpdu_subframe_bytes(1498 + 38)
        duration = PHY_11N.frame_duration_ns(len(batch) * sub, 15.0)
        assert duration <= msec(4)
        assert len(batch) < 42

    def test_no_txop_limit(self):
        params = MacParams(data_rate_mbps=15.0, aggregation=True,
                           txop_limit_ns=None)
        batch, _, _ = build([1498] * 64, params=params, rate=15.0)
        assert len(batch) == 42  # byte cap is the only bound

    def test_retries_first_and_in_seq_order(self):
        origin = BlockAckOriginator()
        origin.mark_in_flight([
            Mpdu(src="AP", dst="C1", seq=origin.allocate_seq(),
                 payload=FakePayload(1000)) for _ in range(3)])
        origin.on_block_ack(frozenset({1}))  # 0 and 2 requeued
        batch, _, _ = build([1000] * 2, origin=origin)
        assert [m.seq for m in batch] == [0, 2, 3, 4]

    def test_originator_window_blocks_new_seqs(self):
        origin = BlockAckOriginator()
        # Pin an unresolved retry at seq 0.
        origin.mark_in_flight([Mpdu(src="AP", dst="C1",
                                    seq=origin.allocate_seq(),
                                    payload=FakePayload(100))])
        origin.on_block_ack(frozenset())  # seq 0 requeued
        origin.next_seq = 63
        batch, queue, _ = build([100] * 5, origin=origin)
        # Window is [0, 64): seq 63 fits, 64+ must wait.
        assert [m.seq for m in batch] == [0, 63]
        assert len(queue) == 4


class TestMaxMpdusForTxop:
    def test_150mbps_42_packets(self):
        params = MacParams(data_rate_mbps=150.0, aggregation=True)
        assert max_mpdus_for_txop(1548, params, PHY_11N, 150.0) == 42

    def test_low_rate_txop_bound(self):
        params = MacParams(data_rate_mbps=15.0, aggregation=True)
        n = max_mpdus_for_txop(1548, params, PHY_11N, 15.0)
        assert 1 <= n < 42
        sub = mpdu_subframe_bytes(1548)
        assert PHY_11N.frame_duration_ns(n * sub, 15.0) <= msec(4)

    def test_at_least_one(self):
        params = MacParams(data_rate_mbps=15.0, aggregation=True,
                           txop_limit_ns=usec_1())
        assert max_mpdus_for_txop(1548, params, PHY_11N, 15.0) == 1


def usec_1():
    from repro.sim.units import usec
    return usec(1)
