"""Rate controllers: FixedRate and AARF dynamics."""

import pytest

from repro.mac.rate_control import Aarf, FixedRate, RateController

LADDER = (15.0, 30.0, 45.0, 60.0, 90.0, 120.0, 135.0, 150.0)


class TestFixedRate:
    def test_constant(self):
        ctrl = FixedRate(54.0)
        ctrl.on_success()
        ctrl.on_failure()
        assert ctrl.current_rate() == 54.0


class TestRatioMapping:
    class Probe(RateController):
        def __init__(self):
            self.events = []

        def current_rate(self):
            return 0.0

        def on_success(self):
            self.events.append("ok")

        def on_failure(self):
            self.events.append("fail")

    def test_high_ratio_is_success(self):
        probe = self.Probe()
        probe.on_ratio(40, 42)
        assert probe.events == ["ok"]

    def test_low_ratio_is_failure(self):
        probe = self.Probe()
        probe.on_ratio(10, 42)
        assert probe.events == ["fail"]

    def test_middle_band_neutral(self):
        probe = self.Probe()
        probe.on_ratio(30, 42)  # ~0.71
        assert probe.events == []

    def test_zero_total_ignored(self):
        probe = self.Probe()
        probe.on_ratio(0, 0)
        assert probe.events == []


class TestAarf:
    def test_starts_at_initial_rate(self):
        assert Aarf(LADDER, initial_rate=90.0).current_rate() == 90.0

    def test_defaults_to_top_rate(self):
        assert Aarf(LADDER).current_rate() == 150.0

    def test_invalid_initial_rate(self):
        with pytest.raises(ValueError):
            Aarf(LADDER, initial_rate=33.0)

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            Aarf(())

    def test_two_failures_step_down(self):
        ctrl = Aarf(LADDER, initial_rate=150.0)
        ctrl.on_failure()
        assert ctrl.current_rate() == 150.0
        ctrl.on_failure()
        assert ctrl.current_rate() == 135.0

    def test_success_run_steps_up(self):
        ctrl = Aarf(LADDER, initial_rate=90.0,
                    min_success_threshold=10)
        for _ in range(10):
            ctrl.on_success()
        assert ctrl.current_rate() == 120.0
        assert ctrl.upshifts == 1

    def test_failed_probe_doubles_threshold(self):
        ctrl = Aarf(LADDER, initial_rate=90.0,
                    min_success_threshold=10)
        for _ in range(10):
            ctrl.on_success()
        assert ctrl.current_rate() == 120.0
        ctrl.on_failure()  # probe failed immediately
        assert ctrl.current_rate() == 90.0
        assert ctrl._success_threshold == 20
        assert ctrl.probe_failures == 1
        # Now 10 successes are not enough to probe again...
        for _ in range(10):
            ctrl.on_success()
        assert ctrl.current_rate() == 90.0
        # ...but 20 are.
        for _ in range(10):
            ctrl.on_success()
        assert ctrl.current_rate() == 120.0

    def test_threshold_capped(self):
        ctrl = Aarf(LADDER, initial_rate=90.0,
                    min_success_threshold=10,
                    max_success_threshold=40)
        for _ in range(5):
            for _ in range(ctrl._success_threshold):
                ctrl.on_success()
            ctrl.on_failure()
        assert ctrl._success_threshold == 40

    def test_floor_and_ceiling(self):
        ctrl = Aarf(LADDER, initial_rate=15.0)
        for _ in range(10):
            ctrl.on_failure()
        assert ctrl.current_rate() == 15.0
        top = Aarf(LADDER, initial_rate=150.0)
        for _ in range(100):
            top.on_success()
        assert top.current_rate() == 150.0

    def test_success_resets_failure_streak(self):
        ctrl = Aarf(LADDER, initial_rate=150.0)
        ctrl.on_failure()
        ctrl.on_success()
        ctrl.on_failure()
        assert ctrl.current_rate() == 150.0

    def test_converges_on_synthetic_channel(self):
        """On a channel where rates <= 60 always succeed and rates
        above always fail, AARF settles at 60."""
        ctrl = Aarf(LADDER, initial_rate=150.0)
        for _ in range(600):
            if ctrl.current_rate() <= 60.0:
                ctrl.on_success()
            else:
                ctrl.on_failure()
        assert ctrl.current_rate() == 60.0


class TestScenarioIntegration:
    def test_aarf_beats_fixed_at_low_snr(self):
        from repro import HackPolicy, LossSpec, ScenarioConfig, \
            run_scenario
        from repro.sim.units import MS

        def goodput(adaptation):
            return run_scenario(ScenarioConfig(
                phy_mode="11n", data_rate_mbps=150.0,
                traffic="tcp_download", policy=HackPolicy.MORE_DATA,
                rate_adaptation=adaptation,
                loss=LossSpec(kind="snr", snr_db=14.0),
                duration_ns=1500 * MS, warmup_ns=700 * MS,
                stagger_ns=0)).aggregate_goodput_mbps

        assert goodput("aarf") > 5 * max(goodput(None), 0.1)

    def test_unknown_adaptation_rejected(self):
        from repro import ScenarioConfig, run_scenario
        with pytest.raises(ValueError):
            run_scenario(ScenarioConfig(rate_adaptation="minstrel"))
