"""The seed's per-slot DCF countdown, kept verbatim as a test oracle.

`repro.mac.dcf.DcfMac` now schedules one backoff-expiry event and
recomputes the remaining slot count on busy transitions (lazy backoff).
This class restores the original implementation — a self-rescheduling
per-slot timer — so equivalence tests can assert, frame for frame and
row for row, that the optimisation changed the event count but not the
simulated behaviour.

Do not "fix" or modernise this file: its value is being a faithful copy
of the slotted countdown the lazy implementation must match, including
the same-slot-collision rule (countdown events firing exactly at "now"
survive a busy transition and still transmit).
"""

from __future__ import annotations

from repro.mac.dcf import DcfMac


class SlottedDcfMac(DcfMac):
    """802.11 DCF MAC with the original one-event-per-slot backoff."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._slot_event = None

    def _maybe_start_contention(self) -> None:
        if self._transmitting or self._awaiting_response:
            return
        if self._current_job is None and self._has_work():
            self._build_job()
        if self._current_job is None and self._backoff_slots is None:
            return
        if self.medium.busy:
            return
        if self._defer_event is not None or self._slot_event is not None:
            return
        ifs = self.phy.eifs_ns if self._use_eifs else self.phy.difs_ns
        elapsed = self.sim.now - self._idle_since
        remaining = max(0, ifs - elapsed)
        self._defer_event = self.sim.schedule(remaining, self._defer_done)

    def _defer_done(self) -> None:
        self._defer_event = None
        if self._backoff_slots is None or self._backoff_slots == 0:
            # Committing to transmit at this instant is legitimate even
            # if another station commits at the same timestamp (neither
            # could have carrier-sensed the other yet) — that is the
            # same-slot collision case.
            self._backoff_slots = None
            if self._current_job is not None:
                self._transmit_job()
            return
        if self.medium.busy:
            # The medium became busy at this very instant; freeze the
            # countdown (it resumes after the next idle + IFS).
            return
        self._slot_event = self.sim.schedule(self.phy.slot_ns,
                                             self._slot_tick)

    def _slot_tick(self) -> None:
        self._slot_event = None
        assert self._backoff_slots is not None and self._backoff_slots > 0
        self._backoff_slots -= 1
        if self._backoff_slots == 0:
            self._backoff_slots = None
            if self._current_job is not None:
                self._transmit_job()
            return
        if self.medium.busy:
            # Busy began exactly at this slot boundary: freeze here.
            return
        self._slot_event = self.sim.schedule(self.phy.slot_ns,
                                             self._slot_tick)

    def _response_timeout(self) -> None:
        self._response_timeout_event = None
        if self.medium.busy:
            # A frame is in flight.  Usually its end event resolves the
            # exchange, but if it is a frame we ourselves are sending
            # (possible with device-delayed responses) no event will
            # reach us, so poll again rather than relying on delivery.
            self._response_timeout_event = self.sim.schedule(
                self.phy.slot_ns, self._response_timeout, priority=1)
            return
        self._attempt_failed()

    def _cancel_countdown(self, now: int) -> None:
        # Events firing exactly "now" are same-slot commitments: let
        # them run (this is what produces realistic same-slot
        # collisions between desynchronised-but-unlucky stations).
        if self._defer_event is not None:
            if self._defer_event.time > now:
                self._defer_event.cancel()
                self._defer_event = None
        if self._slot_event is not None:
            if self._slot_event.time > now:
                self._slot_event.cancel()
                self._slot_event = None
