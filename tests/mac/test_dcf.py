"""DCF/EDCA behaviour: timing, retries, Block ACK exchanges, MORE DATA.

These tests instantiate real DcfMac instances over a real medium and
verify frame-level behaviour against hand-computed 802.11 timings.
Backoff randomness is pinned via a scripted RNG.
"""

from typing import List, Optional

import pytest

from repro.mac.dcf import DcfMac, MacUpper
from repro.mac.frames import AckFrame, AmpduFrame, BarFrame, \
    BlockAckFrame, DataFrame
from repro.mac.params import MacParams
from repro.phy.params import PHY_11A, PHY_11N
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.sim.units import usec

from tests.helpers import FakePayload


class ScriptedRng:
    """randint() returns scripted values, then zeros."""

    def __init__(self, values=()):
        self.values = list(values)

    def randint(self, lo, hi):
        if self.values:
            return min(hi, max(lo, self.values.pop(0)))
        return 0


class RecordingUpper(MacUpper):
    def __init__(self):
        self.delivered = []
        self.ppdus = []
        self.ll_acks = []
        self.bars = []
        self.outcomes = []
        self.responses = []
        self.payload = None  # bytes to attach to responses

    def on_mpdu_delivered(self, mpdu, sender):
        self.delivered.append((mpdu, sender))

    def on_data_ppdu(self, frame, sender, readable):
        self.ppdus.append((frame, sender, list(readable)))

    def hack_payload_for(self, peer):
        return self.payload

    def on_ll_response_tx(self, peer, response, hack_payload):
        self.responses.append((peer, response, hack_payload))

    def on_ll_ack_rx(self, frame, sender):
        self.ll_acks.append((frame, sender))

    def on_bar_rx(self, bar, sender):
        self.bars.append((bar, sender))

    def on_mpdu_outcome(self, mpdu, delivered):
        self.outcomes.append((mpdu, delivered))


class TogglingLoss:
    """Loss model scripted per (frame-kind) call order."""

    def __init__(self):
        self.mpdu_script: List[bool] = []
        self.ppdu_script: List[bool] = []

    def is_lost(self, sender, receiver, frame):
        return self.ppdu_lost(sender, receiver, frame)

    def ppdu_lost(self, sender, receiver, frame):
        # The PPDU script applies only to control frames (ACKs, Block
        # ACKs, BARs); data frames fail via the per-MPDU script.
        if not getattr(frame, "is_control", False):
            return False
        if self.ppdu_script:
            return self.ppdu_script.pop(0)
        return False

    def mpdu_lost(self, sender, receiver, mpdu, rate):
        if self.mpdu_script:
            return self.mpdu_script.pop(0)
        return False


def build_pair(aggregation=False, phy=None, rate=None, loss=None,
               backoffs_a=(), backoffs_b=(), retry_limit=7,
               extra_response_delay=0, ack_timeout_extra=0):
    phy = phy or (PHY_11N if aggregation else PHY_11A)
    rate = rate or (150.0 if aggregation else 54.0)
    sim = Simulator()
    medium = Medium(sim, loss_model=loss)
    params = MacParams(data_rate_mbps=rate, aggregation=aggregation,
                       retry_limit=retry_limit,
                       extra_response_delay_ns=extra_response_delay,
                       ack_timeout_extra_ns=ack_timeout_extra)
    upper_a, upper_b = RecordingUpper(), RecordingUpper()
    mac_a = DcfMac(sim, medium, phy, "A", params, ScriptedRng(backoffs_a),
                   upper=upper_a, loss_model=loss)
    mac_b = DcfMac(sim, medium, phy, "B", params, ScriptedRng(backoffs_b),
                   upper=upper_b, loss_model=loss)
    return sim, medium, (mac_a, upper_a), (mac_b, upper_b)


class TestBasicExchange:
    def test_immediate_access_after_difs(self):
        sim, medium, (a, _), (b, ub) = build_pair()
        a.enqueue(FakePayload(1500), "B")
        sim.run()
        assert len(ub.delivered) == 1
        # First transmission starts exactly at DIFS (idle since t=0,
        # no backoff pending).
        data_tx_start = PHY_11A.difs_ns
        duration = PHY_11A.frame_duration_ns(1538, 54.0)
        assert ub.delivered[0][0].payload.byte_length == 1500
        assert sim.now >= data_tx_start + duration

    def test_ack_after_sifs(self):
        sim, medium, (a, ua), (b, _) = build_pair()
        times = []
        medium.observers.append(
            lambda tx: times.append((tx.frame, tx.start, tx.end)))
        a.enqueue(FakePayload(1500), "B")
        sim.run()
        assert len(times) == 2
        data, ack = times
        assert isinstance(ack[0], AckFrame)
        assert ack[1] - data[2] == PHY_11A.sifs_ns
        assert len(ua.ll_acks) == 1

    def test_sender_counts_delivery(self):
        sim, _, (a, ua), _ = build_pair()
        a.enqueue(FakePayload(100), "B")
        sim.run()
        assert a.mpdus_delivered == 1
        assert ua.outcomes == [(ua.outcomes[0][0], True)]

    def test_post_backoff_spaces_second_frame(self):
        sim, medium, (a, _), (b, ub) = build_pair(backoffs_a=(5,))
        starts = []
        medium.observers.append(
            lambda tx: starts.append((tx.frame, tx.start)))
        a.enqueue(FakePayload(100), "B")
        a.enqueue(FakePayload(100), "B")
        sim.run()
        data_starts = [s for f, s in starts if isinstance(f, DataFrame)]
        assert len(data_starts) == 2
        # Second data frame: ack end + DIFS + 5 slots.
        ack_end = [tx for tx in starts if isinstance(tx[0], AckFrame)][0]
        gap = data_starts[1] - data_starts[0]
        assert gap > PHY_11A.difs_ns + 5 * PHY_11A.slot_ns


class TestRetries:
    def test_retry_after_lost_data(self):
        loss = TogglingLoss()
        loss.mpdu_script = [True]  # first copy corrupted at receiver
        sim, _, (a, ua), (b, ub) = build_pair(loss=loss)
        a.enqueue(FakePayload(100), "B")
        sim.run()
        assert len(ub.delivered) == 1
        assert ub.delivered[0][0].retry_count == 1
        assert ua.outcomes[-1][1] is True

    def test_drop_after_retry_limit(self):
        loss = TogglingLoss()
        loss.mpdu_script = [True] * 10
        sim, _, (a, ua), (b, ub) = build_pair(loss=loss, retry_limit=3)
        a.enqueue(FakePayload(100), "B")
        sim.run()
        assert ub.delivered == []
        assert a.mpdus_dropped == 1
        assert ua.outcomes[-1][1] is False

    def test_duplicate_filtered_but_reacked(self):
        # Data arrives, but its LL ACK is lost: sender retries, receiver
        # must filter the duplicate yet still acknowledge it.
        loss = TogglingLoss()
        loss.ppdu_script = [True]  # first control frame (the ACK) lost
        sim, medium, (a, ua), (b, ub) = build_pair(loss=loss)
        acks = []
        medium.observers.append(
            lambda tx: acks.append(tx) if isinstance(tx.frame, AckFrame)
            else None)
        a.enqueue(FakePayload(100), "B")
        sim.run()
        assert len(ub.delivered) == 1  # delivered exactly once
        assert len(acks) == 2          # but acknowledged twice
        assert a.mpdus_delivered == 1

    def test_cw_doubles_then_resets(self):
        loss = TogglingLoss()
        loss.mpdu_script = [True, True]
        sim, _, (a, _), (b, _) = build_pair(loss=loss)
        a.enqueue(FakePayload(100), "B")
        sim.run()
        assert a._cw == PHY_11A.cw_min  # reset after success


class TestAggregation:
    def test_batch_and_block_ack(self):
        sim, medium, (a, ua), (b, ub) = build_pair(aggregation=True)
        frames = []
        medium.observers.append(lambda tx: frames.append(tx.frame))
        for _ in range(5):
            a.enqueue(FakePayload(1460), "B")
        sim.run()
        ampdus = [f for f in frames if isinstance(f, AmpduFrame)]
        block_acks = [f for f in frames if isinstance(f, BlockAckFrame)]
        assert len(ampdus) == 1
        assert len(ampdus[0].mpdus) == 5
        assert len(block_acks) == 1
        assert len(ub.delivered) == 5

    def test_partial_block_ack_retransmits_in_next_batch(self):
        loss = TogglingLoss()
        loss.mpdu_script = [False, True, False]  # middle MPDU lost
        sim, medium, (a, _), (b, ub) = build_pair(aggregation=True,
                                                  loss=loss)
        frames = []
        medium.observers.append(lambda tx: frames.append(tx.frame))
        for _ in range(3):
            a.enqueue(FakePayload(1460), "B")
        sim.run()
        ampdus = [f for f in frames if isinstance(f, AmpduFrame)]
        assert len(ampdus) == 2
        assert [m.seq for m in ampdus[1].mpdus] == [1]
        assert ampdus[1].mpdus[0].retry_count == 1
        assert len(ub.delivered) == 3

    def test_lost_block_ack_triggers_bar(self):
        loss = TogglingLoss()
        loss.ppdu_script = [True]  # the Block ACK is lost
        sim, medium, (a, ua), (b, ub) = build_pair(aggregation=True,
                                                   loss=loss)
        frames = []
        medium.observers.append(lambda tx: frames.append(tx.frame))
        for _ in range(3):
            a.enqueue(FakePayload(1460), "B")
        sim.run()
        bars = [f for f in frames if isinstance(f, BarFrame)]
        block_acks = [f for f in frames if isinstance(f, BlockAckFrame)]
        assert len(bars) == 1
        assert len(block_acks) == 2  # lost one + BAR response
        assert len(ub.bars) == 1
        assert a.mpdus_delivered == 3  # resolved via the BAR response

    def test_bar_give_up_sets_sync(self):
        loss = TogglingLoss()
        loss.ppdu_script = [True] * 20  # every control frame lost
        sim, medium, (a, _), (b, ub) = build_pair(aggregation=True,
                                                  loss=loss)
        frames = []
        medium.observers.append(lambda tx: frames.append(tx.frame))
        for _ in range(2):
            a.enqueue(FakePayload(1460), "B")
        # After BAR retries exhaust, next batch carries SYNC.
        a.enqueue(FakePayload(1460), "B")
        sim.run()
        ampdus = [f for f in frames if isinstance(f, AmpduFrame)]
        assert any(f.sync for f in ampdus[1:])

    def test_more_data_set_when_backlog_remains(self):
        sim, medium, (a, _), (b, ub) = build_pair(aggregation=True)
        frames = []
        medium.observers.append(lambda tx: frames.append(tx.frame))
        # 100 packets > 64-MPDU cap: first batch must flag MORE DATA.
        for _ in range(100):
            a.enqueue(FakePayload(100), "B")
        sim.run()
        ampdus = [f for f in frames if isinstance(f, AmpduFrame)]
        assert len(ampdus) == 2
        assert ampdus[0].more_data
        assert not ampdus[1].more_data

    def test_more_data_clear_when_all_fit(self):
        sim, medium, (a, _), (b, _) = build_pair(aggregation=True)
        frames = []
        medium.observers.append(lambda tx: frames.append(tx.frame))
        for _ in range(3):
            a.enqueue(FakePayload(100), "B")
        sim.run()
        ampdu = [f for f in frames if isinstance(f, AmpduFrame)][0]
        assert not ampdu.more_data


class TestHackPayloadPlumbing:
    def test_payload_attached_to_ack(self):
        sim, medium, (a, ua), (b, ub) = build_pair()
        ub.payload = b"\x01\x02\x03"
        a.enqueue(FakePayload(100), "B")
        sim.run()
        ack = ua.ll_acks[0][0]
        assert ack.hack_payload == b"\x01\x02\x03"
        assert ub.responses[0][2] == b"\x01\x02\x03"

    def test_payload_attached_to_block_ack(self):
        sim, medium, (a, ua), (b, ub) = build_pair(aggregation=True)
        ub.payload = b"\xAA" * 8
        a.enqueue(FakePayload(100), "B")
        sim.run()
        ba = ua.ll_acks[0][0]
        assert isinstance(ba, BlockAckFrame)
        assert ba.hack_payload == b"\xAA" * 8

    def test_no_payload_means_stock_ack(self):
        sim, medium, (a, ua), (b, ub) = build_pair()
        a.enqueue(FakePayload(100), "B")
        sim.run()
        assert ua.ll_acks[0][0].hack_payload is None


class TestContention:
    def test_two_senders_share_medium(self):
        # Both stations get a frame at t=0 with the medium idle: both
        # take the immediate-access path after DIFS and collide (they
        # cannot carrier-sense a same-instant commitment), then the
        # scripted backoffs (2 vs 7) resolve the retry.
        sim, medium, (a, ua), (b, ub) = build_pair(
            backoffs_a=(2, 4), backoffs_b=(7, 9))
        a.enqueue(FakePayload(100), "B")
        b.enqueue(FakePayload(100), "A")
        sim.run()
        assert len(ua.delivered) == 1  # B -> A
        assert len(ub.delivered) == 1  # A -> B
        assert medium.frames_collided == 2

    def test_same_slot_collision_and_recovery(self):
        # Both pick the same backoff: they collide, then differ.
        sim, medium, (a, ua), (b, ub) = build_pair(
            backoffs_a=(3, 1), backoffs_b=(3, 8))
        a.enqueue(FakePayload(100), "B")
        b.enqueue(FakePayload(100), "A")
        # Force both to defer (start busy period) so neither gets
        # immediate access.
        sim.run()
        assert len(ua.delivered) == 1
        assert len(ub.delivered) == 1

    def test_queue_limit_drops(self):
        sim, medium, (a, _), _ = build_pair()
        a.params.queue_limit = 2
        assert a.enqueue(FakePayload(100), "B")
        assert a.enqueue(FakePayload(100), "B")
        # Third may or may not fit depending on how fast the first
        # drains; enqueue before running the loop.
        results = [a.enqueue(FakePayload(100), "B") for _ in range(3)]
        assert not all(results)
        assert a.queue_drops >= 1


class TestDeviceQuirks:
    def test_extra_response_delay_shifts_ack(self):
        sim, medium, (a, _), (b, _) = build_pair(
            extra_response_delay=usec(37), ack_timeout_extra=usec(60))
        times = []
        medium.observers.append(
            lambda tx: times.append((tx.frame, tx.start, tx.end)))
        a.enqueue(FakePayload(100), "B")
        sim.run()
        data, ack = times[0], times[1]
        assert ack[1] - data[2] == PHY_11A.sifs_ns + usec(37)
        assert a.mpdus_delivered == 1  # extended timeout tolerates it

    def test_late_ack_without_timeout_extension_retries(self):
        # Without the extended ACK timeout, SoRa-style late ACKs cause
        # spurious retransmissions (the paper's observed quirk).
        sim, medium, (a, _), (b, ub) = build_pair(
            extra_response_delay=usec(37))
        a.enqueue(FakePayload(100), "B")
        sim.run()
        assert len(ub.delivered) == 1
        # Sender declared failure at least once despite delivery.
        assert a.mpdus_delivered + a.mpdus_dropped >= 1
