"""Backoff freeze/resume semantics: lazy expiry vs the slotted oracle.

The lazy backoff (one expiry event, busy transitions credit integral
elapsed slots) must reproduce the seed's per-slot countdown exactly:

* busy arriving mid-slot discards the partial slot;
* busy arriving exactly on a slot boundary credits that boundary's
  decrement (the per-slot timer ticked before noticing the carrier);
* busy arriving during the IFS defer credits nothing;
* a corrupted frame makes the resume defer use EIFS;
* an expiry landing exactly on another station's transmission start
  still transmits (same-slot collision).

Every test runs both implementations and asserts the frame-level
traces are identical, plus the hand-computed resume instant.
"""

import pytest

from repro.mac.dcf import DcfMac
from repro.mac.params import MacParams
from repro.phy.params import PHY_11A
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.sim.units import usec

from tests.helpers import FakeFrame, FakePayload
from tests.mac.slotted_reference import SlottedDcfMac
from tests.mac.test_dcf import RecordingUpper, ScriptedRng

SLOT = PHY_11A.slot_ns
DIFS = PHY_11A.difs_ns
EIFS = PHY_11A.eifs_ns

IMPLS = (DcfMac, SlottedDcfMac)
IDS = ("lazy", "slotted-oracle")

BACKOFF = 5  # post-transmission backoff drawn after the first exchange


def build(mac_cls, jams=()):
    """Two stations; A sends two frames to B.  ``jams`` is a list of
    (start_ns, duration_ns) raw transmissions from an unattached
    third-party jammer."""
    sim = Simulator()
    medium = Medium(sim)
    params = MacParams(data_rate_mbps=54.0, aggregation=False)
    a = mac_cls(sim, medium, PHY_11A, "A", params,
                ScriptedRng((BACKOFF,)), upper=RecordingUpper())
    mac_cls(sim, medium, PHY_11A, "B", params, ScriptedRng(()),
            upper=RecordingUpper())
    trace = []
    medium.observers.append(
        lambda tx: trace.append((type(tx.frame).__name__, tx.start,
                                 tx.end, tx.collided)))
    jammer = object()
    for start, duration in jams:
        sim.schedule(start, medium.transmit, jammer,
                     FakeFrame(dst="elsewhere"), duration)
    a.enqueue(FakePayload(100), "B")
    a.enqueue(FakePayload(100), "B")
    return sim, a, trace


def reference_times():
    """(ack_end, countdown_anchor) of the unjammed first exchange."""
    sim, _, trace = build(SlottedDcfMac)
    sim.run()
    ack_end = trace[1][2]
    return ack_end, ack_end + DIFS


def data_starts(trace):
    return [start for name, start, _, _ in trace if name == "DataFrame"]


def run_both(jams):
    traces = []
    executed = {}
    for mac_cls, impl_id in zip(IMPLS, IDS):
        sim, _, trace = build(mac_cls, jams)
        sim.run()
        traces.append(trace)
        executed[impl_id] = sim.stats.executed
    assert traces[0] == traces[1], "lazy diverged from slotted oracle"
    return traces[0], executed


class TestFreezeResume:
    def test_unjammed_countdown_runs_to_completion(self):
        ack_end, anchor = reference_times()
        trace, _ = run_both(jams=())
        assert data_starts(trace)[1] == anchor + BACKOFF * SLOT

    def test_busy_mid_slot_discards_partial_slot(self):
        _, anchor = reference_times()
        jam = (anchor + 2 * SLOT + 4_000, usec(30))  # mid third slot
        trace, _ = run_both(jams=(jam,))
        idle = jam[0] + jam[1]
        # Two full slots elapsed; the partial third is discarded.
        assert data_starts(trace)[1] == \
            idle + DIFS + (BACKOFF - 2) * SLOT

    def test_busy_exactly_on_slot_boundary_credits_the_tick(self):
        _, anchor = reference_times()
        jam = (anchor + 2 * SLOT, usec(30))  # exactly on a boundary
        trace, _ = run_both(jams=(jam,))
        idle = jam[0] + jam[1]
        # The boundary decrement happens before the carrier is seen.
        assert data_starts(trace)[1] == \
            idle + DIFS + (BACKOFF - 2) * SLOT

    def test_busy_during_ifs_defer_credits_nothing(self):
        ack_end, _ = reference_times()
        jam = (ack_end + DIFS // 2, usec(20))  # mid-defer, no countdown
        trace, _ = run_both(jams=(jam,))
        idle = jam[0] + jam[1]
        assert data_starts(trace)[1] == idle + DIFS + BACKOFF * SLOT

    def test_eifs_after_error_then_full_remainder(self):
        _, anchor = reference_times()
        # Two overlapping jams collide: the station hears garbage and
        # must stretch its resume defer to EIFS.
        jam1 = (anchor + 2 * SLOT + 4_000, usec(30))
        jam2 = (jam1[0] + usec(5), usec(10))
        trace, _ = run_both(jams=(jam1, jam2))
        idle = jam1[0] + jam1[1]
        assert data_starts(trace)[1] == \
            idle + EIFS + (BACKOFF - 2) * SLOT

    def test_expiry_on_jammer_start_is_same_slot_collision(self):
        _, anchor = reference_times()
        expiry = anchor + BACKOFF * SLOT
        trace, _ = run_both(jams=((expiry, usec(30)),))
        second = [entry for entry in trace
                  if entry[0] == "DataFrame"][1]
        # Both committed in the same slot: the retry transmits at the
        # expiry instant anyway and collides with the jammer.
        assert second[1] == expiry
        assert second[3] is True

    def test_lazy_executes_fewer_kernel_events(self):
        _, executed = run_both(jams=())
        assert executed["lazy"] < executed["slotted-oracle"]
