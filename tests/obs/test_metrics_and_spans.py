"""Unit oracles for the observability primitives.

The registry's merge laws are what the shard pipeline leans on:
disjointly-named metrics union exactly, same-named metrics combine the
way each kind promises (counters sum, gauges pool min/max/mean,
histograms sum buckets).  The kernel instrument's aggregation key must
be stable across processes (class + method name, never object ids).
"""

import json

from repro.obs import KernelInstrument, MetricsRegistry, \
    merge_span_blocks, owner_key
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_inc_and_merge_sum(self):
        a, b = Counter(), Counter()
        a.inc()
        a.inc(4)
        b.inc(10)
        a.merge(b)
        assert a.as_value() == 15

    def test_merge_empty_is_identity(self):
        a, b = Counter(), Counter()
        a.inc(3)
        a.merge(b)
        assert a.as_value() == 3


class TestGauge:
    def test_streaming_min_max_mean(self):
        g = Gauge()
        for value in (4.0, 1.0, 7.0):
            g.observe(value)
        summary = g.as_value()
        assert summary["min"] == 1.0
        assert summary["max"] == 7.0
        assert summary["mean"] == 4.0
        assert summary["last"] == 7.0
        assert summary["count"] == 3

    def test_empty_gauge(self):
        assert Gauge().as_value() == {
            "last": 0.0, "min": None, "max": None,
            "mean": 0.0, "count": 0}

    def test_merge_pools_extremes_and_mean(self):
        a, b = Gauge(), Gauge()
        for value in (2.0, 6.0):
            a.observe(value)
        for value in (1.0, 9.0):
            b.observe(value)
        a.merge(b)
        summary = a.as_value()
        assert summary == {"last": 9.0, "min": 1.0, "max": 9.0,
                           "mean": 4.5, "count": 4}

    def test_merge_with_empty_sides(self):
        a, b = Gauge(), Gauge()
        b.observe(5.0)
        a.merge(b)
        assert a.as_value()["count"] == 1
        assert a.as_value()["last"] == 5.0
        b.merge(Gauge())
        assert b.as_value()["count"] == 1


class TestHistogram:
    def test_power_of_two_buckets(self):
        h = Histogram()
        for value in (0, 1, 2, 3, 4, 100):
            h.observe(value)
        buckets = h.as_value()["buckets"]
        # 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 4 -> 3; 100 -> 7.
        assert buckets == {"0": 1, "1": 1, "2": 2, "3": 1, "7": 1}
        assert h.as_value()["count"] == 6

    def test_merge_sums_buckets(self):
        a, b = Histogram(), Histogram()
        a.observe(2)
        b.observe(3)
        b.observe(0)
        a.merge(b)
        assert a.as_value()["buckets"] == {"0": 1, "2": 2}
        assert a.as_value()["count"] == 3


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_as_dict_sorted_and_json_able(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").observe(1.5)
        payload = json.loads(json.dumps(registry.as_dict()))
        assert list(payload["counters"]) == ["a", "b"]
        assert payload["gauges"]["g"]["mean"] == 1.5

    def test_disjoint_merge_is_union(self):
        """The shard law: shard registries with disjoint names merge
        into exactly the union, independent of merge order."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("channel0.utilisation").observe(0.5)
        b.gauge("channel1.utilisation").observe(0.25)
        a.counter("samples").inc(3)
        b.counter("samples").inc(2)
        merged = MetricsRegistry()
        merged.merge(b)
        merged.merge(a)
        payload = merged.as_dict()
        assert payload["counters"]["samples"] == 5
        assert payload["gauges"]["channel0.utilisation"]["last"] == 0.5
        assert payload["gauges"]["channel1.utilisation"]["max"] == 0.25


class _Probe:
    def tick(self):
        pass


def _free_function():
    pass


class TestOwnerKey:
    def test_bound_method(self):
        assert owner_key(_Probe().tick) == "_Probe.tick"

    def test_plain_function(self):
        assert owner_key(_free_function).endswith("_free_function")

    def test_closure(self):
        def outer():
            def inner():
                pass
            return inner
        assert "inner" in owner_key(outer())


class TestKernelInstrument:
    def test_aggregates_by_owner(self):
        instrument = KernelInstrument()
        probe = _Probe()
        instrument.record(probe.tick, 100, 50)
        instrument.record(probe.tick, 200, 70)
        instrument.record(_free_function, 300, 10)
        assert instrument.events == 3
        assert instrument.total_wall_ns == 130
        table = instrument.owner_table()
        assert table[0]["owner"] == "_Probe.tick"
        assert table[0]["count"] == 2
        assert table[0]["wall_ns"] == 120
        assert table[0]["max_ns"] == 70

    def test_span_retention_cap(self):
        instrument = KernelInstrument(max_spans=2)
        probe = _Probe()
        for t in range(5):
            instrument.record(probe.tick, t, 1)
        assert len(instrument.spans) == 2
        assert instrument.dropped_spans == 3
        block = instrument.as_dict()
        assert block["recorded_spans"] == 2
        assert block["dropped_spans"] == 3

    def test_zero_max_spans_keeps_aggregates_only(self):
        instrument = KernelInstrument(max_spans=0)
        instrument.record(_free_function, 0, 5)
        assert instrument.spans == []
        assert instrument.dropped_spans == 0
        assert instrument.events == 1


class TestMergeSpanBlocks:
    def test_sums_owners_across_shards(self):
        a = KernelInstrument()
        b = KernelInstrument()
        probe = _Probe()
        a.record(probe.tick, 0, 100)
        b.record(probe.tick, 0, 50)
        b.record(_free_function, 0, 25)
        merged = merge_span_blocks([a.as_dict(), b.as_dict()])
        assert merged["events"] == 3
        assert merged["total_wall_ns"] == 175
        rows = {row["owner"]: row for row in merged["owners"]}
        assert rows["_Probe.tick"]["count"] == 2
        assert rows["_Probe.tick"]["wall_ns"] == 150
        assert rows["_Probe.tick"]["max_ns"] == 100

    def test_empty_blocks_are_skipped(self):
        merged = merge_span_blocks([{}, None])
        assert merged["events"] == 0
        assert merged["owners"] == []
