"""Telemetry integration oracles: the observability layer must watch
without touching.

The headline determinism oracle: a telemetry-enabled run's scenario
metrics are bit-identical to the telemetry-off run's — for static,
churn and sharded workloads alike.  The only permitted differences are
``kernel_stats`` (the sampler's own events run through the shared
kernel) and the additional ``"telemetry"`` block itself, whose
``"spans"`` sub-block is the one nondeterministic (host wall time)
part.

The shard oracle: sampler JSONL output and the telemetry metrics block
are identical across unsharded / serial-shard / pool-shard execution —
the merge reassembles the unsharded stream line for line.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.experiments.batch import SweepPoint, execute_point, \
    point_signature
from repro.obs import TelemetryConfig, format_report, load_telemetry, \
    TelemetryArtifactError
from repro.sim.units import MS
from repro.workloads.scenarios import run_scenario
from repro.traffic.arrivals import ArrivalSpec, SizeSpec

from tests.workloads.test_multi_cell import base_config, normalised

INTERVAL = 50 * MS

CHURN = dict(traffic="dynamic",
             arrivals=ArrivalSpec(
                 kind="poisson", rate_per_s=30.0,
                 size=SizeSpec(kind="lognormal",
                               median_bytes=40_000, sigma=1.0)))


def telemetry_config(**overrides) -> TelemetryConfig:
    return TelemetryConfig(sample_interval_ns=INTERVAL, **overrides)


def comparable(result):
    """metrics_dict minus the telemetry-perturbed parts (kernel event
    counts include the sampler's own events) and minus the telemetry
    block itself."""
    metrics = normalised(result.metrics_dict())
    metrics.pop("kernel_stats")
    metrics.pop("telemetry", None)
    for block in metrics.get("shards", ()):
        block.pop("kernel_stats")
        block.pop("telemetry")
    return metrics


def deterministic_block(block):
    """A telemetry block minus its host-wall-time spans."""
    block = dict(block)
    block.pop("spans")
    return block


class TestDeterminism:
    def test_static_metrics_bit_identical(self):
        cfg = base_config(n_clients=2, seed=3)
        off = run_scenario(cfg)
        on = run_scenario(cfg, telemetry=telemetry_config())
        assert comparable(off) == comparable(on)
        assert off.telemetry is None
        assert "telemetry" not in off.metrics_dict()
        assert on.telemetry is not None

    def test_churn_metrics_bit_identical(self):
        cfg = base_config(n_clients=1, seed=7, **CHURN)
        off = run_scenario(cfg)
        on = run_scenario(cfg, telemetry=telemetry_config())
        assert comparable(off) == comparable(on)

    def test_sharded_metrics_bit_identical(self):
        cfg = base_config(cells=4, channels=2, n_clients=1, seed=3)
        off = run_scenario(cfg, shard_jobs=1)
        on = run_scenario(cfg, shard_jobs=1,
                          telemetry=telemetry_config())
        assert comparable(off) == comparable(on)

    def test_telemetry_runs_are_repeatable(self):
        cfg = base_config(n_clients=1, seed=5)
        first = run_scenario(cfg, telemetry=telemetry_config())
        second = run_scenario(cfg, telemetry=telemetry_config())
        assert deterministic_block(first.telemetry) == \
            deterministic_block(second.telemetry)


class TestShardEquivalence:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("telemetry-shards")
        cfg = base_config(cells=4, channels=2, n_clients=1, seed=3)
        paths = {mode: tmp / f"{mode}.jsonl"
                 for mode in ("unsharded", "serial", "pool")}
        results = {
            "unsharded": run_scenario(cfg, telemetry=telemetry_config(
                telemetry_path=str(paths["unsharded"]))),
            "serial": run_scenario(cfg, shard_jobs=1,
                                   telemetry=telemetry_config(
                telemetry_path=str(paths["serial"]))),
            "pool": run_scenario(cfg, shard_jobs=2,
                                 telemetry=telemetry_config(
                telemetry_path=str(paths["pool"]))),
        }
        return results, paths

    def test_jsonl_streams_line_identical(self, runs):
        _, paths = runs
        def deterministic_lines(path):
            return [line for line in path.read_text().splitlines()
                    if json.loads(line)["type"] != "spans"]
        unsharded = deterministic_lines(paths["unsharded"])
        assert unsharded == deterministic_lines(paths["serial"])
        assert unsharded == deterministic_lines(paths["pool"])

    def test_telemetry_blocks_identical(self, runs):
        results, _ = runs
        blocks = {mode: deterministic_block(result.telemetry)
                  for mode, result in results.items()}
        assert blocks["unsharded"] == blocks["serial"]
        assert blocks["unsharded"] == blocks["pool"]

    def test_shard_blocks_expose_per_shard_telemetry(self, runs):
        results, _ = runs
        blocks = results["serial"].metrics_dict()["shards"]
        assert [b["channel"] for b in blocks] == [0, 1]
        for block in blocks:
            assert block["telemetry"]["enabled"] is True
            assert block["telemetry"]["samples"] > 0
            assert block["kernel_stats"]["events_executed"] > 0
        # Per-shard sample counts partition the merged count.
        merged = results["serial"].telemetry
        assert sum(b["telemetry"]["samples"] for b in blocks) == \
            merged["samples"]

    def test_trace_export_refuses_to_shard(self, tmp_path):
        cfg = base_config(cells=2, channels=2, n_clients=1)
        with pytest.raises(ValueError, match="trace_export"):
            run_scenario(cfg, shard_jobs=1,
                         telemetry=telemetry_config(
                             trace_export_path=str(
                                 tmp_path / "x.json")))


class TestArtifacts:
    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("telemetry-artifact")
        jsonl = tmp / "run.jsonl"
        trace = tmp / "run.trace.json"
        cfg = base_config(cells=2, channels=2, n_clients=1, seed=2)
        result = run_scenario(cfg, telemetry=telemetry_config(
            telemetry_path=str(jsonl), trace_export_path=str(trace)))
        return result, jsonl, trace

    def test_jsonl_round_trip(self, artifact):
        result, jsonl, _ = artifact
        parsed = load_telemetry(str(jsonl))
        meta = parsed["meta"]
        assert meta["format"] == "repro-telemetry"
        assert meta["channels"] == [0, 1]
        assert meta["cells"] == [0, 1]
        assert meta["sample_interval_ns"] == INTERVAL
        # duration 900 ms, interval 50 ms -> 19 ticks x 2 channels.
        assert len(parsed["samples"]) == 38
        assert parsed["summary"]["samples"] == 38
        assert parsed["summary"]["samples"] == \
            result.telemetry["samples"]
        assert parsed["spans"]["events"] > 0

    def test_sample_records_carry_cell_probes(self, artifact):
        _, jsonl, _ = artifact
        sample = load_telemetry(str(jsonl))["samples"][-1]
        assert set(sample) >= {"t_ns", "channel", "utilisation",
                               "busy", "frames_sent", "cells"}
        cell = sample["cells"][0]
        assert set(cell) >= {"cell", "label", "ap_queue",
                             "wired_down_queue", "wired_up_queue",
                             "live_flows", "hack_buffer", "rohc_cids"}

    def test_chrome_trace_parses_and_spans_channels(self, artifact):
        _, _, trace = artifact
        with open(trace) as handle:
            document = json.load(handle)
        events = document["traceEvents"]
        assert events, "empty trace"
        frame_pids = {event["pid"] for event in events
                      if event["cat"] == "frame"}
        assert frame_pids == {"channel0", "channel1"}
        categories = {event["cat"] for event in events}
        assert categories >= {"frame", "kernel", "telemetry"}
        assert document["otherData"]["format"] == "repro-telemetry"

    def test_report_formats_highlights(self, artifact):
        _, jsonl, _ = artifact
        text = format_report(load_telemetry(str(jsonl)))
        assert "telemetry report: 2 cell(s) on 2 channel(s)" in text
        assert "top kernel time consumers" in text
        assert "airtime" in text
        assert "queue highlights" in text

    def test_loader_rejects_non_artifacts(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"type": "meta", "format": "nope"}\n')
        with pytest.raises(TelemetryArtifactError, match="format"):
            load_telemetry(str(bogus))
        garbled = tmp_path / "garbled.jsonl"
        garbled.write_text("not json\n")
        with pytest.raises(TelemetryArtifactError, match="not JSON"):
            load_telemetry(str(garbled))

    def test_truncated_artifact_still_reads_samples(self, artifact,
                                                    tmp_path):
        _, jsonl, _ = artifact
        lines = jsonl.read_text().splitlines()
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text("\n".join(lines[:3]) + "\n")
        parsed = load_telemetry(str(truncated))
        assert parsed["summary"] is None
        assert len(parsed["samples"]) == 2
        assert "truncated" in format_report(parsed)


class TestSweepTelemetry:
    def test_execute_point_writes_artifact_and_strips_block(
            self, tmp_path):
        cfg = base_config(n_clients=1, seed=2)
        point = SweepPoint(key=("t",), config=cfg)
        plain = execute_point(point)
        telemetered = execute_point(point,
                                    telemetry_dir=str(tmp_path))
        assert "telemetry" not in telemetered
        stripped = dict(plain)
        stripped.pop("kernel_stats")
        comparable_tele = dict(telemetered)
        comparable_tele.pop("kernel_stats")
        assert normalised(stripped) == normalised(comparable_tele)
        artifact = tmp_path / (point_signature(point) + ".jsonl")
        assert artifact.exists()
        parsed = load_telemetry(str(artifact))
        assert parsed["summary"] is not None


class TestCli:
    def test_simulate_with_telemetry_and_report(self, tmp_path,
                                                capsys):
        jsonl = tmp_path / "cli.jsonl"
        trace = tmp_path / "cli.trace.json"
        code = cli_main([
            "simulate", "--clients", "1", "--duration", "0.4",
            "--warmup", "0.15", "--telemetry", str(jsonl),
            "--trace-export", str(trace),
            "--sample-interval", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry artifact" in out
        assert "chrome trace" in out
        assert "kernel spans" in out
        json.load(open(trace))
        assert cli_main(["report", str(jsonl)]) == 0
        report_out = capsys.readouterr().out
        assert "telemetry report" in report_out

    def test_report_rejects_non_artifact(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text("nope\n")
        assert cli_main(["report", str(bogus)]) == 2
        assert "error" in capsys.readouterr().err

    def test_sharded_kernel_stats_prints_per_shard(self, capsys):
        code = cli_main([
            "simulate", "--clients", "1", "--cells", "2",
            "--channels", "2", "--shard-jobs", "1",
            "--duration", "0.4", "--warmup", "0.15",
            "--kernel-stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "shard ch0" in out
        assert "shard ch1" in out
