"""Node layer: server routing, AP bridging, client stack delay."""

import pytest

from repro.core.driver import HackDriver
from repro.core.policies import HackConfig, HackPolicy
from repro.nodes.ap import ApNode
from repro.nodes.client import ClientNode
from repro.nodes.server import ServerNode, UdpSource
from repro.sim.engine import Simulator
from repro.sim.units import MS, SEC, usec
from repro.sim.wired import WiredLink
from repro.tcp.receiver import TcpReceiver
from repro.tcp.segment import TcpSegment, UdpDatagram
from repro.tcp.sender import TcpSender


class FakeMac:
    def __init__(self):
        self.upper = None
        self.sent = []

    def enqueue(self, payload, dst):
        self.sent.append((payload, dst))
        return True

    def remove_from_queue(self, dst, predicate):
        return []


def vanilla_driver(sim):
    return HackDriver(sim, FakeMac(),
                      HackConfig.for_policy(HackPolicy.VANILLA))


def data_segment(flow_id=1, seq=0, dst="C1"):
    return TcpSegment(flow_id=flow_id, src="SRV", dst=dst, seq=seq,
                      payload_bytes=1460, ack=0, rwnd=0, ts_val=1)


def ack_segment(flow_id=1, ack=1460):
    return TcpSegment(flow_id=flow_id, src="C1", dst="SRV", seq=0,
                      payload_bytes=0, ack=ack, rwnd=65535)


class TestServer:
    def test_routes_acks_to_flow_sender(self, sim):
        server = ServerNode(sim)
        sent = []
        sender = TcpSender(sim, 1, "SRV", "C1", output=sent.append)
        server.add_sender(sender)
        sender.start()
        server.receive_wired(ack_segment(ack=1460))
        assert sender.snd_una == 1460

    def test_unknown_flow_ignored(self, sim):
        server = ServerNode(sim)
        server.receive_wired(ack_segment(flow_id=99))  # no crash

    def test_routes_upload_data_to_receiver(self, sim):
        server = ServerNode(sim)
        acks = []
        receiver = TcpReceiver(sim, 1, "SRV", "C1", output=acks.append,
                               delayed_ack=False)
        server.add_receiver(receiver)
        upload = TcpSegment(flow_id=1, src="C1", dst="SRV", seq=0,
                            payload_bytes=1000, ack=0, rwnd=0)
        server.receive_wired(upload)
        assert receiver.bytes_delivered == 1000
        assert len(acks) == 1


class TestUdpSource:
    def test_cbr_pacing(self, sim):
        server = ServerNode(sim)
        sent_times = []

        class Link:
            def send_from(self, endpoint, packet):
                sent_times.append(sim.now)
                return True

        server.attach_link(Link())
        source = UdpSource(sim, server, "C1", rate_mbps=12.0,
                           payload_bytes=1472)
        source.start()
        sim.run(until=10 * MS)
        # 12 Mbps / 12000 bits per datagram = 1000 pkts/s = 10 in 10ms.
        assert len(sent_times) == pytest.approx(10, abs=1)
        gaps = {b - a for a, b in zip(sent_times, sent_times[1:])}
        assert len(gaps) == 1  # constant bit rate

    def test_stop(self, sim):
        server = ServerNode(sim)

        class Link:
            def __init__(self):
                self.count = 0

            def send_from(self, endpoint, packet):
                self.count += 1

        link = Link()
        server.attach_link(link)
        source = UdpSource(sim, server, "C1", rate_mbps=100.0)
        source.start()
        sim.schedule(1 * MS, source.stop)
        sim.run(until=10 * MS)
        assert link.count < 15


class TestApBridge:
    def test_wired_to_wifi(self, sim):
        driver = vanilla_driver(sim)
        ap = ApNode(sim, driver)
        segment = data_segment(dst="C2")
        ap.receive_wired(segment)
        assert driver.mac.sent == [(segment, "C2")]

    def test_wifi_to_wired(self, sim):
        driver = vanilla_driver(sim)
        ap = ApNode(sim, driver)
        server = ServerNode(sim)
        link = WiredLink(sim, server, ap, 500.0, usec(10))
        ap.attach_link(link)
        sent = []
        sender = TcpSender(sim, 1, "SRV", "C1", output=sent.append)
        server.add_sender(sender)
        sender.start()
        ap.on_packet_received(ack_segment(ack=1460), "C1")
        sim.run()
        assert sender.snd_una == 1460

    def test_drop_counted(self, sim):
        driver = vanilla_driver(sim)

        def reject(payload, dst):
            return False

        driver.mac.enqueue = reject
        ap = ApNode(sim, driver)
        ap.receive_wired(data_segment())
        assert ap.wifi_tx_drops == 1


class TestClient:
    def make(self, sim, stack_delay=usec(100)):
        driver = vanilla_driver(sim)
        client = ClientNode(sim, driver, "C1",
                            stack_delay_ns=stack_delay)
        return client, driver

    def test_stack_delay_applied(self, sim):
        client, _ = self.make(sim, stack_delay=usec(150))
        acks = []
        receiver = TcpReceiver(sim, 1, "C1", "SRV", output=acks.append,
                               delayed_ack=False)
        client.add_receiver(receiver)
        client.on_packet_received(data_segment(), "AP")
        sim.run(until=usec(149))
        assert receiver.bytes_delivered == 0
        sim.run(until=usec(200))
        assert receiver.bytes_delivered == 1460
        assert len(acks) == 1

    def test_burst_staggering(self, sim):
        client, _ = self.make(sim)
        times = []
        receiver = TcpReceiver(
            sim, 1, "C1", "SRV", output=lambda a: None,
            on_deliver=lambda n: times.append(sim.now))
        client.add_receiver(receiver)
        for i in range(3):
            client.on_packet_received(data_segment(seq=i * 1460), "AP")
        sim.run()
        assert len(set(times)) == 3  # per-packet processing cost

    def test_udp_sink(self, sim):
        client, _ = self.make(sim)
        client.on_packet_received(
            UdpDatagram(src="SRV", dst="C1", payload_bytes=1472), "AP")
        sim.run()
        assert client.udp_bytes == 1472
        assert client.udp_packets == 1

    def test_upload_ack_routing(self, sim):
        client, _ = self.make(sim)
        sent = []
        sender = TcpSender(sim, 1, "C1", "SRV", output=sent.append)
        client.add_sender(sender)
        sender.start()
        ack = TcpSegment(flow_id=1, src="SRV", dst="C1", seq=0,
                         payload_bytes=0, ack=1460, rwnd=65535)
        client.on_packet_received(ack, "AP")
        sim.run()
        assert sender.snd_una == 1460

    def test_transmit_goes_to_driver(self, sim):
        client, driver = self.make(sim)
        client.transmit(ack_segment())
        assert driver.mac.sent[0][1] == "AP"
