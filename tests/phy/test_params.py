"""PHY timing: every number here is hand-computed from the standard."""

import pytest

from repro.phy.params import HT40_SGI_RATES_1SS, PHY_11A, PHY_11N, \
    ht_rates_for_streams, phy_11n_with_rates
from repro.sim.units import usec


class Test11aTimings:
    def test_difs(self):
        # DIFS = SIFS + 2*slot = 16 + 18 = 34 us.
        assert PHY_11A.difs_ns == usec(34)

    def test_mean_backoff(self):
        # CWmin/2 * slot = 7.5 * 9 = 67.5 us.
        assert PHY_11A.mean_backoff_ns() == usec(67.5)

    def test_ack_duration_at_24(self):
        # 14 bytes: 22 + 112 = 134 bits; 96 bits/sym -> 2 syms = 8 us;
        # plus 20 us preamble = 28 us.
        assert PHY_11A.control_duration_ns(14, 24.0) == usec(28)

    def test_data_frame_1500_at_54(self):
        # (22 + 12000) bits / 216 = 55.66 -> 56 syms = 224 us + 20.
        assert PHY_11A.frame_duration_ns(1500, 54.0) == usec(244)

    def test_data_frame_at_6(self):
        # 6 Mbps: 24 bits/sym; 1 byte: 30 bits -> 2 syms.
        assert PHY_11A.frame_duration_ns(1, 6.0) == usec(28)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            PHY_11A.frame_duration_ns(100, 11.0)

    def test_ack_timeout(self):
        assert PHY_11A.ack_timeout_ns() == usec(16 + 9 + 20)

    def test_eifs_exceeds_difs(self):
        assert PHY_11A.eifs_ns > PHY_11A.difs_ns

    def test_control_rate_selection(self):
        assert PHY_11A.control_rate_for(54.0) == 24.0
        assert PHY_11A.control_rate_for(24.0) == 24.0
        assert PHY_11A.control_rate_for(18.0) == 12.0
        assert PHY_11A.control_rate_for(9.0) == 6.0
        assert PHY_11A.control_rate_for(6.0) == 6.0


class Test11nTimings:
    def test_aifs_be(self):
        # Paper: AIFS = 16 + 3*9 = 43 us; mean idle 110.5 us total.
        assert PHY_11N.difs_ns == usec(43)
        assert PHY_11N.difs_ns + PHY_11N.mean_backoff_ns() == usec(110.5)

    def test_rates_are_mcs0_to_7(self):
        assert PHY_11N.data_rates == (15.0, 30.0, 45.0, 60.0, 90.0,
                                      120.0, 135.0, 150.0)

    def test_symbol_time_sgi(self):
        assert PHY_11N.symbol_ns == usec(3.6)

    def test_ht_preamble(self):
        assert PHY_11N.preamble_ns == usec(36)

    def test_frame_duration_150(self):
        # 150 Mbps, 3.6us symbols -> 540 bits/symbol.
        # 1550 bytes: 22 + 12400 = 12422 bits -> 24 syms? no: 12422/540
        # = 23.004 -> 24 symbols = 86.4 us + 36 = 122.4 us.
        assert PHY_11N.frame_duration_ns(1550, 150.0) == usec(36 + 24 * 3.6)

    def test_control_frames_use_legacy_format(self):
        # Block ACK (32 B) at 24 Mbps: 22+256=278 bits / 96 -> 3 syms
        # = 12 us + 20 us legacy preamble = 32 us.
        assert PHY_11N.control_duration_ns(32, 24.0) == usec(32)


class TestExtendedRates:
    def test_streams_scale_rates(self):
        assert ht_rates_for_streams(2) == tuple(
            2 * r for r in HT40_SGI_RATES_1SS)

    def test_four_streams_reach_600(self):
        assert max(ht_rates_for_streams(4)) == 600.0

    def test_invalid_streams(self):
        with pytest.raises(ValueError):
            ht_rates_for_streams(5)

    def test_custom_rate_table(self):
        phy = phy_11n_with_rates((300.0,))
        assert phy.frame_duration_ns(1500, 300.0) > 0
        with pytest.raises(ValueError):
            phy.frame_duration_ns(1500, 150.0)
