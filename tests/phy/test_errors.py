"""Loss models: uniform, SNR waterfall, path loss."""

import random

import pytest

from repro.phy.errors import HT40_SNR_MIDPOINT_DB, NoLoss, SnrLossModel, \
    UniformLossModel, per_from_snr, snr_from_distance

from tests.helpers import FakeFrame


class Receiver:
    def __init__(self, address):
        self.address = address


class TestNoLoss:
    def test_never_loses(self):
        model = NoLoss()
        assert not model.is_lost(None, None, FakeFrame())
        assert not model.mpdu_lost(None, None, FakeFrame(), 54.0)


class TestUniform:
    def test_mpdu_loss_rate(self, rng):
        model = UniformLossModel(rng, data_loss=0.25)
        n = 20_000
        lost = sum(model.mpdu_lost(None, Receiver("C1"), FakeFrame(), 54.0)
                   for _ in range(n))
        assert lost / n == pytest.approx(0.25, abs=0.02)

    def test_per_receiver_override(self, rng):
        model = UniformLossModel(rng, data_loss=0.0,
                                 per_receiver={"C1": 1.0})
        assert model.mpdu_lost(None, Receiver("C1"), FakeFrame(), 54.0)
        assert not model.mpdu_lost(None, Receiver("C2"), FakeFrame(), 54.0)

    def test_control_loss_defaults_to_quarter(self, rng):
        model = UniformLossModel(rng, data_loss=0.2)
        assert model.control_loss == pytest.approx(0.05)

    def test_control_loss_only_for_control_frames(self, rng):
        model = UniformLossModel(rng, data_loss=0.0, control_loss=1.0)
        ctrl = FakeFrame(is_control=True)
        data = FakeFrame(is_control=False)
        assert model.ppdu_lost(None, Receiver("C1"), ctrl)
        assert not model.ppdu_lost(None, Receiver("C1"), data)

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            UniformLossModel(rng, data_loss=1.5)


class TestPerFromSnr:
    def test_waterfall_monotone_in_snr(self):
        pers = [per_from_snr(snr, 150.0, 1500)
                for snr in (10, 15, 20, 24, 28, 32)]
        assert all(a >= b for a, b in zip(pers, pers[1:]))

    def test_midpoint_gives_ten_percent(self):
        mid = HT40_SNR_MIDPOINT_DB[150.0]
        assert per_from_snr(mid, 150.0, 1500) == pytest.approx(0.1,
                                                               rel=0.05)

    def test_high_snr_lossless(self):
        assert per_from_snr(40.0, 150.0, 1500) < 1e-4

    def test_low_snr_hopeless(self):
        assert per_from_snr(0.0, 150.0, 1500) > 0.99

    def test_shorter_frames_more_robust(self):
        mid = HT40_SNR_MIDPOINT_DB[150.0]
        assert per_from_snr(mid, 150.0, 100) < \
            per_from_snr(mid, 150.0, 1500)

    def test_lower_rates_more_robust(self):
        snr = 10.0
        assert per_from_snr(snr, 15.0, 1500) < \
            per_from_snr(snr, 150.0, 1500)

    def test_unknown_rate_rejected(self):
        with pytest.raises(ValueError):
            per_from_snr(20.0, 33.0, 1500)


class TestPathLoss:
    def test_reference_point(self):
        assert snr_from_distance(1.0) == 40.0

    def test_log_distance(self):
        assert snr_from_distance(10.0, 40.0, 3.0) == pytest.approx(10.0)

    def test_monotone_decreasing(self):
        snrs = [snr_from_distance(d) for d in (1, 2, 5, 10, 20)]
        assert all(a > b for a, b in zip(snrs, snrs[1:]))

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            snr_from_distance(0.0)


class TestSnrLossModel:
    def test_high_snr_reliable(self, rng):
        model = SnrLossModel(rng, snr_db=35.0)
        lost = sum(model.mpdu_lost(None, Receiver("C1"),
                                   FakeFrame(byte_length=1500), 150.0)
                   for _ in range(1000))
        assert lost == 0

    def test_low_snr_lossy(self, rng):
        model = SnrLossModel(rng, snr_db=10.0)
        lost = sum(model.mpdu_lost(None, Receiver("C1"),
                                   FakeFrame(byte_length=1500), 150.0)
                   for _ in range(1000))
        assert lost > 900

    def test_per_receiver_snr(self, rng):
        model = SnrLossModel(rng, snr_db=35.0,
                             per_receiver_snr={"C2": 0.0})
        assert model.mpdu_lost(None, Receiver("C2"),
                               FakeFrame(byte_length=1500), 150.0)

    def test_control_frames_use_basic_rate_robustness(self, rng):
        # At 12 dB a 150 Mbps data MPDU is hopeless but a 24 Mbps
        # control frame is fine.
        model = SnrLossModel(rng, snr_db=12.0)
        ctrl = FakeFrame(byte_length=32, is_control=True)
        ctrl.rate_mbps = 24.0
        lost = sum(model.ppdu_lost(None, Receiver("C1"), ctrl)
                   for _ in range(1000))
        assert lost < 50
