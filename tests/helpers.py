"""Shared test doubles, importable from any test module.

Kept separate from ``conftest.py`` (which holds fixtures) so test
modules can do ``from tests.helpers import FakeFrame`` — plain
absolute imports that work under pytest's rootdir-based collection
without making the test tree a package.
"""

from __future__ import annotations

from repro.experiments.batch import SweepRecord, SweepResult, SweepSpec
from repro.sim.engine import Simulator
from repro.sim.medium import MediumListener


class RecordingListener(MediumListener):
    """Test double that logs every medium event with its timestamp."""

    def __init__(self, sim: Simulator, name: str = "node"):
        self.sim = sim
        self.name = name
        self.events = []

    def on_channel_busy(self, now: int) -> None:
        self.events.append(("busy", now))

    def on_channel_idle(self, now: int) -> None:
        self.events.append(("idle", now))

    def on_frame_received(self, frame, sender) -> None:
        self.events.append(("rx", self.sim.now, frame, sender))

    def on_frame_error(self, frame, sender) -> None:
        self.events.append(("err", self.sim.now, frame, sender))

    def of_kind(self, kind: str):
        return [e for e in self.events if e[0] == kind]


class FakeFrame:
    """Minimal frame object for medium/MAC plumbing tests."""

    def __init__(self, name: str = "f", byte_length: int = 100,
                 dst=None, src=None, is_control: bool = False):
        self.name = name
        self.byte_length = byte_length
        self.dst = dst
        self.src = src
        self.is_control = is_control

    def __repr__(self) -> str:
        return f"<FakeFrame {self.name}>"


class FakePayload:
    """Minimal higher-layer payload (stands in for a TcpSegment)."""

    def __init__(self, byte_length: int = 1500, kind: str = "data"):
        self.byte_length = byte_length
        self.kind = kind


def constant_metrics(**kwargs):
    """Analytic-point target used by the sweep-engine tests."""
    return dict(kwargs)


def not_a_metrics_fn(**_kwargs):
    """Analytic-point target that (wrongly) returns a scalar."""
    return 42


def raising_metrics_fn(message="boom", **_kwargs):
    """Analytic-point target that always fails (a poisoned point)."""
    raise RuntimeError(message)


def slow_metrics_fn(delay_s=0.2, **kwargs):
    """Analytic-point target that takes a while (interrupt tests)."""
    import time

    time.sleep(delay_s)
    return dict(kwargs)


def _bump_counter(counter_path):
    """File-based call counter shared across worker processes."""
    from pathlib import Path

    path = Path(counter_path)
    count = int(path.read_text()) + 1 if path.exists() else 1
    path.write_text(str(count))
    return count


def flaky_metrics_fn(counter_path, fail_times, **kwargs):
    """Raises on the first ``fail_times`` calls, then succeeds."""
    count = _bump_counter(counter_path)
    if count <= fail_times:
        raise RuntimeError(f"transient failure #{count}")
    return dict(kwargs, calls=count)


def dying_worker_fn(counter_path=None, die_times=None, delay_s=0.0,
                    **kwargs):
    """Kills its own process (``os._exit``) — breaks a worker pool.

    With ``counter_path``/``die_times`` it only dies the first
    ``die_times`` calls, succeeding afterwards (the transient-worker-
    death retry scenario); without them it always dies.
    """
    import os
    import time

    if delay_s:
        time.sleep(delay_s)
    if counter_path is None:
        os._exit(3)
    count = _bump_counter(counter_path)
    if count <= die_times:
        os._exit(3)
    return dict(kwargs, calls=count)


class StubSweepRunner:
    """Sweep runner double: constant metrics per point, zero sims.

    Lets experiment ``run(..., runner=...)`` paths be exercised
    instantly; ``metrics`` is copied into every record.
    """

    def __init__(self, **metrics):
        self.metrics = metrics or {"aggregate_goodput_mbps": 100.0}
        self.specs = []

    def run(self, spec: SweepSpec) -> SweepResult:
        self.specs.append(spec)
        return SweepResult(
            spec_name=spec.name,
            executed=len(spec.points),
            records=[SweepRecord(key=p.key, seed=p.seed, signature="",
                                 metrics=dict(self.metrics))
                     for p in spec.points])
