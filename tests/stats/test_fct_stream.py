"""Streaming FCT aggregation: equivalence with exact mode, bounded
memory, documented percentile resolution.

The :class:`FctAggregator` must be a drop-in for
:class:`FctCollector` everywhere the FlowManager touches it, agree
*exactly* on everything that is not a percentile (counts, mean,
min/max, offered/carried load, size-bin tallies) and agree on
percentiles within its documented resolution
(``10 ** (1 / BINS_PER_DECADE) - 1``, about 2.33%).  Its memory must
scale with flow *concurrency* and histogram occupancy, never with
total flow count.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.units import MS
from repro.stats.fct import FctAggregator, FctCollector, \
    has_completions, percentile
from repro.workloads import registry
from repro.workloads.scenarios import run_scenario

RESOLUTION = 10.0 ** (1.0 / FctAggregator.BINS_PER_DECADE) - 1.0


def _feed(collector, flows):
    """Replay (size_bytes, fct_ms or None, delivered) flow lives."""
    for index, (size, fct_ms, delivered) in enumerate(flows):
        record = collector.open(index + 1, "C1", "download", size,
                                now=0)
        if fct_ms is not None:
            record.end_ns = int(fct_ms * MS)
        record.bytes_delivered = delivered
        collector.close(record)


FLOW = st.tuples(
    st.integers(min_value=1, max_value=5_000_000),      # size
    st.one_of(st.none(),                                # censored
              st.floats(min_value=0.05, max_value=50_000.0,
                        allow_nan=False)),              # fct_ms
    st.integers(min_value=0, max_value=1_000_000))      # delivered


class TestSyntheticEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(flows=st.lists(FLOW, min_size=1, max_size=120))
    def test_exact_fields_agree(self, flows):
        exact, stream = FctCollector(), FctAggregator()
        _feed(exact, flows)
        _feed(stream, flows)
        e = exact.summary(duration_ns=10**9, include_flows=False)
        s = stream.summary(duration_ns=10**9)
        for key in ("flows_spawned", "flows_completed",
                    "flows_censored", "offered_load_mbps",
                    "carried_load_mbps"):
            assert s[key] == e[key], key
        if not has_completions(e["fct_ms"]):
            assert s["fct_ms"] == e["fct_ms"]   # same zero-count block
            return
        assert s["fct_ms"]["mean"] == pytest.approx(
            e["fct_ms"]["mean"])
        assert s["fct_ms"]["min"] == e["fct_ms"]["min"]
        assert s["fct_ms"]["max"] == e["fct_ms"]["max"]
        assert set(s["fct_by_size_ms"]) == set(e["fct_by_size_ms"])
        for label, bins in e["fct_by_size_ms"].items():
            assert s["fct_by_size_ms"][label]["flows"] == \
                bins["flows"]

    @settings(max_examples=60, deadline=None)
    @given(fcts=st.lists(
        st.floats(min_value=0.05, max_value=50_000.0,
                  allow_nan=False),
        min_size=1, max_size=200))
    def test_percentiles_within_documented_resolution(self, fcts):
        stream = FctAggregator()
        _feed(stream, [(10_000, f, 10_000) for f in fcts])
        dist = stream.summary(duration_ns=10**9)["fct_ms"]
        for key, fraction in (("p50", 0.50), ("p95", 0.95),
                              ("p99", 0.99)):
            exact = percentile(fcts, fraction)
            assert dist[key] == pytest.approx(exact,
                                              rel=RESOLUTION + 1e-9)


class TestBoundedMemory:
    def test_no_per_flow_retention(self):
        stream = FctAggregator()
        _feed(stream, [(10_000, 1.0 + (i % 37) * 0.5, 10_000)
                       for i in range(10_000)])
        assert not hasattr(stream, "records")
        assert stream.live_open == 0
        # 10k flows, but the distinct log-bin count is tiny and the
        # peak concurrent record count was 1 (sequential replay).
        assert stream.occupied_bins() < 200
        assert stream.max_live == 1

    def test_occupancy_independent_of_flow_count(self):
        small, large = FctAggregator(), FctAggregator()
        _feed(small, [(10_000, 1.0 + (i % 50) * 0.8, 10_000)
                      for i in range(100)])
        _feed(large, [(10_000, 1.0 + (i % 50) * 0.8, 10_000)
                      for i in range(100_000)])
        # 1000x the flows, identical FCT support: identical bins.
        assert large.occupied_bins() == small.occupied_bins()

    def test_max_live_tracks_concurrency(self):
        stream = FctAggregator()
        open_records = [stream.open(i, "C1", "download", 1000, 0)
                        for i in range(7)]
        assert stream.max_live == 7
        for record in open_records:
            record.end_ns = MS
            stream.close(record)
        assert stream.live_open == 0
        assert stream.max_live == 7


class TestScenarioEquivalence:
    """stream_stats=True must not perturb the simulation, only the
    collection; checked on a real quick churn run."""

    @pytest.fixture(scope="class")
    def pair(self):
        def run(stream):
            cfg = registry.build("churn-web", seed=2,
                                 duration_ns=600_000_000,
                                 warmup_ns=100_000_000,
                                 stream_stats=stream)
            return run_scenario(cfg)
        return run(False), run(True)

    def test_simulation_identical(self, pair):
        exact, stream = pair
        assert exact.aggregate_goodput_mbps == \
            stream.aggregate_goodput_mbps
        assert exact.medium_frames_sent == stream.medium_frames_sent
        assert exact.kernel_stats == stream.kernel_stats

    def test_flow_accounting_identical(self, pair):
        exact, stream = pair
        for key in ("flows_spawned", "flows_completed",
                    "flows_censored", "offered_load_mbps",
                    "carried_load_mbps"):
            assert exact.fct[key] == stream.fct[key], key

    def test_percentiles_within_resolution(self, pair):
        exact, stream = pair
        assert exact.fct["fct_ms"] is not None
        for key in ("p50", "p95", "p99"):
            assert stream.fct["fct_ms"][key] == pytest.approx(
                exact.fct["fct_ms"][key], rel=RESOLUTION + 1e-9)

    def test_streaming_summary_has_no_flow_list(self, pair):
        exact, stream = pair
        assert "flows" in exact.fct
        assert "flows" not in stream.fct
        block = stream.fct["streaming"]
        assert block["bins_per_decade"] == \
            FctAggregator.BINS_PER_DECADE
        assert block["relative_resolution"] == \
            pytest.approx(RESOLUTION)
        assert block["max_live_records"] >= 1
