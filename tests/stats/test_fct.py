"""FCT statistics layer: percentiles, records, summaries."""

import pytest

from repro.sim.units import MS, SEC
from repro.stats.fct import FctCollector, FctRecord, \
    has_completions, percentile, size_bin_label


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5)

    def test_out_of_range_fraction(self):
        with pytest.raises(ValueError, match="outside"):
            percentile([1.0], 1.5)

    def test_single_value(self):
        assert percentile([42.0], 0.0) == 42.0
        assert percentile([42.0], 0.5) == 42.0
        assert percentile([42.0], 1.0) == 42.0

    def test_bounds(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_linear_interpolation(self):
        assert percentile([0.0, 10.0], 0.25) == 2.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 0.95) == \
            percentile([1.0, 2.0, 3.0], 0.95)


class TestSizeBins:
    def test_labels_cover_all_sizes(self):
        assert size_bin_label(1) == "<=30KB"
        assert size_bin_label(30_000) == "<=30KB"
        assert size_bin_label(30_001) == "30KB-300KB"
        assert size_bin_label(300_001) == ">300KB"
        assert size_bin_label(10**9) == ">300KB"


class TestRecord:
    def test_completed_fct(self):
        record = FctRecord(1, "C1", "download", 1000,
                           start_ns=2 * MS, end_ns=5 * MS)
        assert record.completed
        assert record.fct_ns == 3 * MS
        assert record.as_dict()["fct_ms"] == 3.0

    def test_censored(self):
        record = FctRecord(1, "C1", "download", 1000, start_ns=0)
        assert not record.completed
        assert record.fct_ns is None
        assert record.as_dict()["fct_ms"] is None


class TestCollector:
    def make(self):
        collector = FctCollector()
        a = collector.open(1, "C1", "download", 10_000, now=0)
        a.end_ns = 10 * MS
        a.bytes_delivered = 10_000
        b = collector.open(2, "C2", "download", 500_000, now=5 * MS)
        b.end_ns = 105 * MS
        b.bytes_delivered = 500_000
        c = collector.open(3, "C1", "download", 1_000_000, now=8 * MS)
        c.bytes_delivered = 400_000       # censored
        return collector

    def test_counts(self):
        summary = self.make().summary(1 * SEC)
        assert summary["flows_spawned"] == 3
        assert summary["flows_completed"] == 2
        assert summary["flows_censored"] == 1

    def test_distribution_over_completed_only(self):
        summary = self.make().summary(1 * SEC)
        dist = summary["fct_ms"]
        assert dist["min"] == 10.0
        assert dist["max"] == 100.0
        assert dist["p50"] == 55.0
        assert dist["mean"] == 55.0

    def test_size_bins(self):
        bins = self.make().summary(1 * SEC)["fct_by_size_ms"]
        assert bins["<=30KB"]["flows"] == 1
        assert bins[">300KB"]["flows"] == 1
        assert "30KB-300KB" not in bins   # no completed flows there

    def test_offered_vs_carried(self):
        summary = self.make().summary(1 * SEC)
        offered = (10_000 + 500_000 + 1_000_000) * 8 / 1e6   # Mbit/s
        carried = (10_000 + 500_000 + 400_000) * 8 / 1e6
        assert summary["offered_load_mbps"] == pytest.approx(offered)
        assert summary["carried_load_mbps"] == pytest.approx(carried)
        assert summary["carried_load_mbps"] < \
            summary["offered_load_mbps"]

    def test_empty_collector(self):
        summary = FctCollector().summary(1 * SEC)
        assert summary["flows_spawned"] == 0
        # Zero completions yield the explicit zero-count block, never
        # a silently missing distribution.
        assert summary["fct_ms"]["flows"] == 0
        assert summary["fct_ms"]["p50"] is None
        assert not has_completions(summary["fct_ms"])
        assert summary["fct_by_size_ms"] == {}
        assert summary["offered_load_mbps"] == 0.0

    def test_zero_duration_guard(self):
        summary = self.make().summary(0)
        assert summary["offered_load_mbps"] == 0.0
        assert summary["carried_load_mbps"] == 0.0

    def test_flows_list_optional(self):
        assert "flows" not in self.make().summary(
            1 * SEC, include_flows=False)
        assert len(self.make().summary(1 * SEC)["flows"]) == 3
