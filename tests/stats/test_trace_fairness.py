"""MediumTracer and fairness metrics."""

import pytest

from repro.mac.frames import AckFrame, AmpduFrame, BlockAckFrame, \
    DataFrame, Mpdu
from repro.sim.medium import Medium
from repro.sim.units import usec
from repro.stats.fairness import airtime_shares, goodput_fairness, \
    jain_index
from repro.stats.trace import MediumTracer

from tests.helpers import FakePayload, RecordingListener


def data_frame(src="AP", dst="C1", more=False):
    mpdu = Mpdu(src=src, dst=dst, seq=0, payload=FakePayload(1500),
                more_data=more)
    return DataFrame(mpdu=mpdu, rate_mbps=54.0)


class TestTracer:
    def build(self, sim):
        medium = Medium(sim)
        a = RecordingListener(sim, "a")
        b = RecordingListener(sim, "b")
        a.address, b.address = "AP", "C1"
        medium.attach(a)
        medium.attach(b)
        return medium, a, b

    def test_records_transmissions(self, sim):
        medium, a, b = self.build(sim)
        tracer = MediumTracer(medium)
        medium.transmit(a, data_frame(), usec(100))
        sim.run()
        assert len(tracer.records) == 1
        record = tracer.records[0]
        assert record.frame_type == "data"
        assert record.src == "AP" and record.dst == "C1"
        assert record.duration_ns == usec(100)
        assert not record.collided

    def test_classification(self, sim):
        medium, a, b = self.build(sim)
        tracer = MediumTracer(medium)
        frames = [
            data_frame(),
            AmpduFrame(mpdus=[Mpdu(src="AP", dst="C1", seq=1,
                                   payload=FakePayload(100))],
                       rate_mbps=150.0),
            AckFrame(src="C1", dst="AP", acked_seq=0),
            BlockAckFrame(src="C1", dst="AP", win_start=0,
                          acked_seqs=frozenset(), hack_payload=b"xyz"),
        ]
        start = 0
        for frame in frames:
            sim.schedule_at(start,
                            lambda f=frame: medium.transmit(a, f,
                                                            usec(10)))
            start += usec(20)
        sim.run()
        types = [r.frame_type for r in tracer.records]
        assert types == ["data", "ampdu", "ack", "block_ack"]
        assert tracer.records[3].hack_payload_bytes == 3
        assert tracer.summary()["hack_frames"] == 1

    def test_collision_flag(self, sim):
        medium, a, b = self.build(sim)
        tracer = MediumTracer(medium)
        medium.transmit(a, data_frame(), usec(100))
        medium.transmit(b, data_frame(src="C1", dst="AP"), usec(50))
        sim.run()
        assert all(r.collided for r in tracer.records)
        assert tracer.summary()["collided"] == 2

    def test_filtering(self, sim):
        medium, a, b = self.build(sim)
        tracer = MediumTracer(medium)
        medium.transmit(a, data_frame(more=True), usec(10))
        sim.schedule(usec(20), lambda: medium.transmit(
            b, AckFrame(src="C1", dst="AP", acked_seq=0), usec(5)))
        sim.run()
        assert len(tracer.filter(frame_type="data")) == 1
        assert len(tracer.filter(src="C1")) == 1
        assert len(tracer.filter(
            predicate=lambda r: r.more_data)) == 1

    def test_response_gap_measurement(self, sim):
        medium, a, b = self.build(sim)
        tracer = MediumTracer(medium)
        medium.transmit(a, data_frame(), usec(100))
        sim.schedule(usec(116), lambda: medium.transmit(
            b, AckFrame(src="C1", dst="AP", acked_seq=0), usec(28)))
        sim.run()
        assert tracer.response_gaps_ns() == [usec(16)]

    def test_airtime_by_station(self, sim):
        medium, a, b = self.build(sim)
        tracer = MediumTracer(medium)
        medium.transmit(a, data_frame(), usec(100))
        sim.schedule(usec(200), lambda: medium.transmit(
            b, AckFrame(src="C1", dst="AP", acked_seq=0), usec(30)))
        sim.run()
        airtime = tracer.airtime_by_station()
        assert airtime == {"AP": usec(100), "C1": usec(30)}

    def test_record_cap(self, sim):
        medium, a, b = self.build(sim)
        tracer = MediumTracer(medium, max_records=2)
        for i in range(4):
            sim.schedule_at(i * usec(20),
                            lambda: medium.transmit(a, data_frame(),
                                                    usec(10)))
        sim.run()
        assert len(tracer.records) == 2
        assert tracer.dropped == 2


class TestJain:
    def test_perfectly_fair(self):
        assert jain_index([10.0, 10.0, 10.0]) == pytest.approx(1.0)

    def test_one_hog(self):
        assert jain_index([30.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_goodput_fairness_skips_udp_pseudoflows(self):
        # Negative ids are UDP sinks in ScenarioResult.
        assert goodput_fairness({1: 10.0, 2: 10.0, -1: 99.0}) == \
            pytest.approx(1.0)


class TestAirtimeShares:
    def test_normalisation(self):
        shares = airtime_shares({"AP": 750, "C1": 250})
        assert shares == {"AP": 0.75, "C1": 0.25}

    def test_exclude(self):
        shares = airtime_shares({"AP": 800, "C1": 100, "C2": 100},
                                exclude=("AP",))
        assert shares == {"C1": 0.5, "C2": 0.5}

    def test_zero_total(self):
        assert airtime_shares({"AP": 0}) == {"AP": 0.0}


class TestScenarioFairness:
    def test_multi_client_fairness(self):
        from repro import HackPolicy, ScenarioConfig, run_scenario
        from repro.sim.units import MS, SEC
        res = run_scenario(ScenarioConfig(
            phy_mode="11n", data_rate_mbps=150.0, n_clients=3,
            policy=HackPolicy.MORE_DATA, duration_ns=2 * SEC,
            warmup_ns=1 * SEC, stagger_ns=50 * MS))
        assert res.fairness_index > 0.9


class TestTimelineRendering:
    def test_render_contains_flags_and_types(self, sim):
        from repro import HackPolicy, ScenarioConfig, run_scenario
        from repro.sim.units import MS
        res = run_scenario(ScenarioConfig(
            duration_ns=400 * MS, warmup_ns=200 * MS,
            policy=HackPolicy.MORE_DATA, trace=True, stagger_ns=0))
        text = res.trace.render_timeline(limit=100_000)
        assert "ampdu" in text
        assert "block_ack" in text
        # MORE DATA and HACK-payload flags appear once the queue builds.
        assert "M]" in text or "M," in text
        assert "[H" in text or ",H" in text

    def test_limit_respected(self, sim):
        from repro import HackPolicy, ScenarioConfig, run_scenario
        from repro.sim.units import MS
        res = run_scenario(ScenarioConfig(
            duration_ns=400 * MS, warmup_ns=200 * MS, trace=True,
            stagger_ns=0))
        text = res.trace.render_timeline(limit=5)
        assert len(text.splitlines()) <= 6

    def test_window_selection(self, sim):
        from repro import ScenarioConfig, run_scenario
        from repro.sim.units import MS
        res = run_scenario(ScenarioConfig(
            duration_ns=400 * MS, warmup_ns=200 * MS, trace=True,
            stagger_ns=0))
        early = res.trace.render_timeline(end_ns=50 * MS, limit=1000)
        late = res.trace.render_timeline(start_ns=300 * MS, limit=1000)
        assert early and late and early != late
