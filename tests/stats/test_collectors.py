"""MacStats accounting."""

import pytest

from repro.phy.params import PHY_11A
from repro.stats.collectors import MacStats

from tests.helpers import FakePayload


class Job:
    def __init__(self, kind="data", stat_kind="tcp_ack"):
        self.kind = kind
        self.stat_kind = stat_kind


class Mpdu:
    def __init__(self, dst="C1", retry_count=0, kind="tcp_data"):
        self.dst = dst
        self.retry_count = retry_count
        self.payload = FakePayload(kind=kind)


class Response:
    def __init__(self, payload=None):
        self.hack_payload = payload


class Frame:
    def __init__(self, kind="tcp_data"):
        self.mpdus = [Mpdu(kind=kind)]


class TestAirtimeAccounting:
    def test_tx_start_accumulates(self):
        stats = MacStats()
        stats.on_tx_start("C1", Job(), None, duration=1000, wait_ns=500)
        stats.on_tx_start("C1", Job(), None, duration=2000, wait_ns=700)
        assert stats.airtime_ns["tcp_ack"] == 3000
        assert stats.acquisition_wait_ns["tcp_ack"] == 1200
        assert stats.tx_attempts["tcp_ack"] == 2

    def test_bar_jobs_keyed_separately(self):
        stats = MacStats()
        stats.on_tx_start("AP", Job(kind="bar"), None, 100, 0)
        assert stats.airtime_ns["bar"] == 100


class TestRetryTable:
    def test_fractions(self):
        stats = MacStats()
        for _ in range(9):
            stats.on_mpdu_delivered("AP", Mpdu())
        stats.on_mpdu_delivered("AP", Mpdu(retry_count=2))
        table = stats.retry_table()
        assert table["C1"]["no_retries"] == pytest.approx(0.9)
        assert table["C1"]["one_or_more"] == pytest.approx(0.1)
        assert table["C1"]["total"] == 10

    def test_per_destination(self):
        stats = MacStats()
        stats.on_mpdu_delivered("AP", Mpdu(dst="C1"))
        stats.on_mpdu_delivered("AP", Mpdu(dst="C2", retry_count=1))
        table = stats.retry_table()
        assert table["C1"]["no_retries"] == 1.0
        assert table["C2"]["no_retries"] == 0.0

    def test_empty(self):
        assert MacStats().retry_table() == {}


class TestLlResponseAccounting:
    def test_overhead_includes_sifs_and_delay(self):
        stats = MacStats()
        stats.on_ll_response("C1", Response(), duration=28_000,
                             stock_duration=28_000,
                             elicited_by=Frame("tcp_ack"), phy=PHY_11A,
                             extra_delay=37_000)
        expected = PHY_11A.sifs_ns + 37_000 + 28_000
        assert stats.ll_response_overhead_ns["tcp_ack"] == expected

    def test_hack_extra_airtime(self):
        stats = MacStats()
        stats.on_ll_response("C1", Response(b"x" * 8), duration=40_000,
                             stock_duration=28_000,
                             elicited_by=Frame(), phy=PHY_11A,
                             extra_delay=0)
        assert stats.hack_extra_airtime_ns == 12_000
        assert stats.hack_responses == 1
        assert stats.hack_payload_bytes == 8

    def test_fit_fraction(self):
        stats = MacStats()
        # Extra airtime within AIFS: fits.
        stats.on_ll_response("C1", Response(b"x"), 30_000, 28_000,
                             Frame(), PHY_11A, 0)
        # Extra airtime way beyond AIFS: does not fit.
        stats.on_ll_response("C1", Response(b"x" * 200), 100_000,
                             28_000, Frame(), PHY_11A, 0)
        assert stats.hack_fit_fraction() == pytest.approx(0.5)

    def test_fit_fraction_empty(self):
        assert MacStats().hack_fit_fraction() == 1.0


class TestTimeBreakdown:
    def test_table3_rows(self):
        stats = MacStats()
        stats.on_tx_start("C1", Job(stat_kind="tcp_ack"), None,
                          duration=2_000_000, wait_ns=5_000_000)
        stats.on_ll_response("AP", Response(b"xx"), 32_000, 28_000,
                             Frame("tcp_ack"), PHY_11A, 0)
        breakdown = stats.time_breakdown_ms()
        assert breakdown["tcp_ack_airtime"] == pytest.approx(2.0)
        assert breakdown["channel_acquisition"] == pytest.approx(5.0)
        assert breakdown["rohc_airtime"] == pytest.approx(0.004)
        assert breakdown["ll_ack_overhead"] > 0
