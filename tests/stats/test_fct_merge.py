"""FctCollector / FctAggregator merge across cells.

Multi-AP runs keep one collector per cell and merge them into the
combined ``fct`` block; these tests pin the contract: merged exact
collectors summarise exactly like one collector fed everything, and
merged streaming aggregators agree with the exact merge on every
exact field while percentiles stay within the documented one-bin
resolution — including the empty-cell and single-flow edge cases.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.units import MS
from repro.stats.fct import FctAggregator, FctCollector, \
    has_completions

RESOLUTION = 10 ** (1 / FctAggregator.BINS_PER_DECADE) - 1

#: (size_bytes, fct_ms or None for censored, delivered_bytes)
FLOW = st.tuples(
    st.integers(1_000, 2_000_000),
    st.one_of(st.none(),
              st.floats(0.05, 50_000.0, allow_nan=False)),
    st.integers(0, 2_000_000))

#: A "cell" is a list of flow lives; cells may be empty.
CELLS = st.lists(st.lists(FLOW, max_size=40), min_size=1, max_size=4)


def feed(collector, flows, base_id=0):
    for index, (size, fct_ms, delivered) in enumerate(flows):
        record = collector.open(base_id + index, f"C{index % 3}",
                                "download", size, now=0)
        if fct_ms is not None:
            record.end_ns = int(fct_ms * MS)
            record.bytes_delivered = size
        else:
            record.bytes_delivered = min(delivered, size)
        collector.close(record)


def merged(cls, cells):
    """Per-cell collectors of ``cls``, merged into a fresh one."""
    combined = cls()
    for index, flows in enumerate(cells):
        per_cell = cls()
        feed(per_cell, flows, base_id=1000 * index)
        combined.merge(per_cell)
    return combined


class TestExactMerge:
    @settings(max_examples=80, deadline=None)
    @given(cells=CELLS)
    def test_merged_collectors_equal_single_collector(self, cells):
        everything = FctCollector()
        for index, flows in enumerate(cells):
            feed(everything, flows, base_id=1000 * index)
        assert merged(FctCollector, cells).summary(10 ** 9) == \
            everything.summary(10 ** 9)

    def test_merge_leaves_source_untouched(self):
        source = FctCollector()
        feed(source, [(10_000, 5.0, 10_000)])
        target = FctCollector()
        target.merge(source)
        assert len(source.records) == 1
        assert target.records == source.records

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError, match="modes must match"):
            FctCollector().merge(FctAggregator())
        with pytest.raises(TypeError, match="modes must match"):
            FctAggregator().merge(FctCollector())


class TestStreamingMerge:
    @settings(max_examples=80, deadline=None)
    @given(cells=CELLS)
    def test_merged_streams_match_exact_merge(self, cells):
        exact = merged(FctCollector, cells).summary(
            10 ** 9, include_flows=False)
        stream = merged(FctAggregator, cells).summary(10 ** 9)
        for key in ("flows_spawned", "flows_completed",
                    "flows_censored", "offered_load_mbps",
                    "carried_load_mbps"):
            assert stream[key] == exact[key], key
        if not has_completions(exact["fct_ms"]):
            assert stream["fct_ms"] == exact["fct_ms"]
            return
        assert stream["fct_ms"]["mean"] == pytest.approx(
            exact["fct_ms"]["mean"])
        assert stream["fct_ms"]["min"] == exact["fct_ms"]["min"]
        assert stream["fct_ms"]["max"] == exact["fct_ms"]["max"]
        for pct in ("p50", "p95", "p99"):
            assert stream["fct_ms"][pct] == pytest.approx(
                exact["fct_ms"][pct], rel=RESOLUTION + 1e-9)
        assert set(stream["fct_by_size_ms"]) == \
            set(exact["fct_by_size_ms"])
        for label, bins in exact["fct_by_size_ms"].items():
            assert stream["fct_by_size_ms"][label]["flows"] == \
                bins["flows"]

    @settings(max_examples=60, deadline=None)
    @given(cells=CELLS)
    def test_merge_order_is_irrelevant(self, cells):
        forward = merged(FctAggregator, cells).summary(10 ** 9)
        backward = merged(FctAggregator, cells[::-1]).summary(10 ** 9)
        for key in ("flows_spawned", "flows_completed",
                    "offered_load_mbps", "carried_load_mbps"):
            assert forward[key] == backward[key]
        f, b = forward["fct_ms"], backward["fct_ms"]
        assert set(f) == set(b)
        for key in f:
            if f[key] is None:
                assert b[key] is None
            else:
                # ``mean`` folds floats in merge order; everything
                # else (histogram counts, min/max, the percentile
                # interpolation they drive) is order-exact.
                assert b[key] == pytest.approx(f[key], rel=1e-12)

    def test_empty_cell_merge_is_identity(self):
        flows = [(10_000, 3.0, 10_000), (600_000, 80.0, 600_000)]
        alone = FctAggregator()
        feed(alone, flows)
        with_empty = merged(FctAggregator, [flows, []])
        a, b = alone.summary(10 ** 9), with_empty.summary(10 ** 9)
        a["streaming"].pop("max_live_records")
        b["streaming"].pop("max_live_records")
        assert a == b

    def test_all_cells_empty(self):
        summary = merged(FctAggregator, [[], [], []]).summary(10 ** 9)
        assert summary["flows_spawned"] == 0
        assert summary["fct_ms"]["flows"] == 0
        assert not has_completions(summary["fct_ms"])

    def test_single_flow_in_one_cell(self):
        stream = merged(FctAggregator, [[], [(40_000, 12.5, 40_000)]])
        summary = stream.summary(10 ** 9)
        assert summary["flows_completed"] == 1
        dist = summary["fct_ms"]
        # One flow: every percentile is that flow, and the min/max
        # clamp makes the quantised value exact.
        assert dist["p50"] == dist["p95"] == dist["p99"] == 12.5
        assert dist["min"] == dist["max"] == 12.5

    def test_max_live_sums_as_upper_bound(self):
        a, b = FctAggregator(), FctAggregator()
        feed(a, [(10_000, 1.0, 10_000)] * 3)
        feed(b, [(10_000, 1.0, 10_000)] * 2)
        combined = FctAggregator()
        combined.merge(a)
        combined.merge(b)
        assert combined.max_live == a.max_live + b.max_live
