"""Jain-index bounds and goodput-fairness edge cases (satellite)."""

import random

import pytest

from repro.stats.fairness import airtime_shares, goodput_fairness, \
    jain_index


class TestJainBounds:
    def test_single_flow_is_one(self):
        assert jain_index([37.5]) == 1.0

    def test_equal_shares_are_one(self):
        assert jain_index([4.0] * 10) == pytest.approx(1.0)

    def test_one_hog_is_one_over_n(self):
        for n in (2, 5, 50):
            values = [0.0] * (n - 1) + [10.0]
            assert jain_index(values) == pytest.approx(1.0 / n)

    def test_bounds_hold_for_random_inputs(self):
        rng = random.Random(123)
        for _ in range(200):
            n = rng.randint(1, 20)
            values = [rng.uniform(0.0, 100.0) for _ in range(n)]
            index = jain_index(values)
            assert 1.0 / n - 1e-12 <= index <= 1.0 + 1e-12

    def test_empty_and_all_zero_default_to_one(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_scale_invariant(self):
        values = [1.0, 2.0, 3.0]
        assert jain_index(values) == pytest.approx(
            jain_index([v * 1000 for v in values]))


class TestGoodputFairness:
    def test_excludes_udp_pseudo_flows(self):
        per_flow = {1: 10.0, 2: 10.0, -1: 500.0}
        assert goodput_fairness(per_flow) == pytest.approx(1.0)

    def test_only_udp_flows_defaults_to_one(self):
        assert goodput_fairness({-1: 5.0, -2: 9.0}) == 1.0


class TestAirtimeShares:
    def test_normalises_and_excludes(self):
        shares = airtime_shares({"AP": 60, "C1": 30, "C2": 10},
                                exclude=("AP",))
        assert shares == {"C1": 0.75, "C2": 0.25}

    def test_zero_total(self):
        assert airtime_shares({"C1": 0}) == {"C1": 0.0}
