"""Analytical capacity model vs the paper's quoted numbers."""

import pytest

from repro.analysis.capacity import figure_1a, figure_1b, \
    hack_goodput_11a, hack_goodput_11n, tcp_goodput_11a, tcp_goodput_11n


class TestFig1a:
    def test_hack_always_wins(self):
        for point in figure_1a():
            assert point.hack_goodput_mbps > point.tcp_goodput_mbps

    def test_improvement_grows_with_rate(self):
        points = figure_1a()
        imps = [p.improvement for p in points]
        assert imps == sorted(imps)

    def test_54mbps_magnitudes(self):
        # Fig 1a at 54 Mbps: TCP ~24, HACK ~29 (paper's curves read
        # ~23 and ~27; same ballpark).
        tcp = tcp_goodput_11a(54.0)
        hack = hack_goodput_11a(54.0)
        assert 20 < tcp < 27
        assert 26 < hack < 31
        assert 0.15 < hack / tcp - 1 < 0.30

    def test_goodput_below_phy_rate(self):
        for point in figure_1a():
            assert point.tcp_goodput_mbps < point.rate_mbps


class TestFig1b:
    def test_150mbps_improvement_about_7pct(self):
        # Paper §4.3: "14%, vs. the 7% improvement predicted
        # analytically" at 150 Mbps.
        tcp = tcp_goodput_11n(150.0)
        hack = hack_goodput_11n(150.0)
        assert hack / tcp - 1 == pytest.approx(0.07, abs=0.02)

    def test_sub_100mbps_improvement_about_8pct(self):
        # Fig 1b caption: ~8% improvement on average below 100 Mbps.
        points = [p for p in figure_1b() if p.rate_mbps < 100]
        mean = sum(p.improvement for p in points) / len(points)
        assert mean == pytest.approx(0.08, abs=0.02)

    def test_600mbps_improvement_about_20pct(self):
        # Paper §3.2: "a 20% improvement seen at 600 Mbps".
        points = {p.rate_mbps: p for p in figure_1b()}
        assert points[600.0].improvement == pytest.approx(0.20, abs=0.04)

    def test_aggregation_beats_11a_efficiency(self):
        # At a comparable rate, 802.11n aggregation wastes far less.
        assert tcp_goodput_11n(60.0) / 60.0 > tcp_goodput_11a(54.0) / 54.0

    def test_monotone_in_rate(self):
        points = figure_1b()
        goodputs = [p.tcp_goodput_mbps for p in points]
        assert goodputs == sorted(goodputs)

    def test_batch_size_42_at_150(self):
        # The 64 KiB A-MPDU bound yields the paper's 42-packet batches.
        from repro.analysis.capacity import _batch_size
        from repro.mac.params import MacParams
        from repro.phy.params import PHY_11N
        params = MacParams(data_rate_mbps=150.0, aggregation=True)
        assert _batch_size(150.0, 1460, PHY_11N, params) == 42

    def test_txop_limits_batch_at_low_rates(self):
        from repro.analysis.capacity import _batch_size
        from repro.mac.params import MacParams
        from repro.phy.params import PHY_11N
        params = MacParams(data_rate_mbps=15.0, aggregation=True)
        assert _batch_size(15.0, 1460, PHY_11N, params) < 42


class TestEdgeCases:
    def test_mean_acquisition_is_110_5us(self):
        # The introduction's EDCA number.
        from repro.analysis.capacity import _acquisition_ns
        from repro.phy.params import PHY_11N
        assert _acquisition_ns(PHY_11N) == 110_500

    def test_custom_mss(self):
        assert tcp_goodput_11a(54.0, mss=500) < tcp_goodput_11a(54.0)
