"""FlowManager lifecycle: creation, teardown, state reclamation."""

import pytest

from repro import HackPolicy, ScenarioConfig, run_scenario
from repro.sim.units import MS, SEC
from repro.tcp.segment import FiveTuple, TcpSegment
from repro.rohc.compressor import Compressor
from repro.rohc.decompressor import Decompressor
from repro.rohc.context import cid_for_flow
from repro.traffic import ArrivalSpec, SizeSpec


def churn_config(**overrides):
    base = dict(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=2,
        traffic="dynamic", policy=HackPolicy.MORE_DATA,
        arrivals=ArrivalSpec(
            kind="trace",
            trace=((0.0, 0, 200_000), (20.0, 1, 100_000),
                   (50.0, 0, 50_000))),
        duration_ns=800 * MS, warmup_ns=400 * MS, stagger_ns=0)
    base.update(overrides)
    return ScenarioConfig(**base)


class TestLifecycle:
    def test_flows_complete_and_are_torn_down(self):
        res = run_scenario(churn_config())
        manager = res.traffic_manager
        assert manager.flows_spawned == 3
        assert manager.flows_completed == 3
        assert manager.live == {}
        # Endpoint maps are empty again: state was reclaimed.
        assert res.clients["C1"].receivers == {}
        assert res.clients["C2"].receivers == {}
        assert res.fct["flows_completed"] == 3
        assert res.fct["flows_censored"] == 0
        for record in res.fct["flows"]:
            assert record["completed"]
            assert record["bytes_delivered"] == record["size_bytes"]
            assert record["fct_ms"] > 0

    def test_censored_flow_keeps_partial_bytes(self):
        res = run_scenario(churn_config(
            arrivals=ArrivalSpec(
                kind="trace", trace=((0.0, 0, 50_000_000),)),
            duration_ns=300 * MS, warmup_ns=100 * MS))
        assert res.fct["flows_completed"] == 0
        assert res.fct["flows_censored"] == 1
        record = res.fct["flows"][0]
        assert not record["completed"]
        assert 0 < record["bytes_delivered"] < 50_000_000
        assert res.fct["fct_ms"]["flows"] == 0   # zero-count block
        # Still live at run end, so nothing was reclaimed yet.
        assert len(res.traffic_manager.live) == 1
        assert res.fct["carried_load_mbps"] < \
            res.fct["offered_load_mbps"]

    def test_upload_direction(self):
        res = run_scenario(churn_config(
            arrivals=ArrivalSpec(
                kind="trace", direction="upload",
                trace=((0.0, 0, 100_000), (10.0, 1, 100_000)))))
        assert res.fct["flows_completed"] == 2
        assert res.clients["C1"].senders == {}
        # The server-side receiver map was reclaimed too.
        assert res.traffic_manager.server.receivers == {}

    def test_hack_contexts_released_after_churn(self):
        res = run_scenario(churn_config(
            arrivals=ArrivalSpec(
                kind="poisson", rate_per_s=60.0,
                size=SizeSpec(kind="fixed", bytes=30_000)),
            duration_ns=1 * SEC))
        assert res.fct["flows_completed"] > 20
        live = len(res.traffic_manager.live)
        for driver in res.drivers.values():
            for ps in driver._peers.values():
                assert len(ps.compressor.contexts) <= live
                assert len(ps.decompressor.contexts) <= live

    def test_spawn_rejects_bad_size(self):
        res = run_scenario(churn_config())
        with pytest.raises(ValueError, match="size must be positive"):
            res.traffic_manager.spawn(0, "C1")

    def test_dynamic_requires_arrivals(self):
        with pytest.raises(ValueError, match="requires an ArrivalSpec"):
            run_scenario(churn_config(arrivals=None))

    def test_unknown_traffic_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic"):
            run_scenario(churn_config(traffic="carrier-pigeon"))


def _ack(five_tuple, ack=1000, flow_id=1):
    return TcpSegment(flow_id=flow_id, src="C1", dst="SRV", seq=0,
                      payload_bytes=0, ack=ack, rwnd=65535,
                      ts_val=1, ts_ecr=1, five_tuple=five_tuple)


class TestRohcRelease:
    def test_release_frees_cid_for_reuse(self):
        comp = Compressor(init_threshold=1)
        tup = FiveTuple("10.0.0.1", "10.0.1.1", 5001, 80)
        comp.note_vanilla_ack(_ack(tup))
        assert comp.can_compress(_ack(tup, ack=2000))
        assert comp.release_flow(tup)
        assert not comp.can_compress(_ack(tup, ack=3000))
        assert cid_for_flow(tup) not in comp.contexts

    def test_release_unblocks_collided_flow(self):
        comp = Compressor(init_threshold=1)
        base = FiveTuple("10.0.0.1", "10.0.1.1", 5001, 80)
        collider = None
        for port in range(5002, 20_000):
            candidate = FiveTuple("10.0.0.1", "10.0.1.1", port, 80)
            if cid_for_flow(candidate) == cid_for_flow(base):
                collider = candidate
                break
        assert collider is not None, "no CID collision in port range"
        comp.note_vanilla_ack(_ack(base))
        # The collider hashes onto base's CID: blocked.
        comp.note_vanilla_ack(_ack(collider, flow_id=2))
        assert not comp.can_compress(_ack(collider, ack=9000,
                                          flow_id=2))
        # Releasing only the *owner* (what FlowManager does when base
        # completes while the collider is still alive) must lift the
        # collider's block: its next vanilla ACK claims the CID.
        assert comp.release_flow(base)
        comp.note_vanilla_ack(_ack(collider, flow_id=2))
        assert comp.can_compress(_ack(collider, ack=9000, flow_id=2))

    def test_release_missing_flow_is_noop(self):
        comp = Compressor()
        tup = FiveTuple("10.0.0.1", "10.0.1.1", 5001, 80)
        assert comp.release_flow(tup) is False
        decomp = Decompressor()
        assert decomp.release_flow(tup) is False

    def test_decompressor_release_only_drops_owner(self):
        decomp = Decompressor()
        tup = FiveTuple("10.0.0.1", "10.0.1.1", 5001, 80)
        other = FiveTuple("10.0.0.1", "10.0.1.2", 5002, 80)
        decomp.note_vanilla_ack(_ack(tup))
        assert decomp.release_flow(other) is False or \
            cid_for_flow(other) != cid_for_flow(tup)
        assert decomp.release_flow(tup) is True
        assert decomp.contexts == {}
