"""Arrival processes: shapes, determinism, and spec validation."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.units import MS, SEC
from repro.traffic.arrivals import ArrivalSpec, OnOffSource, \
    PoissonArrivals, SizeSpec, TraceArrivals, WebWorkload, \
    build_processes


class SpawnLog:
    """Records (time, size, client) and optionally completes flows."""

    def __init__(self, sim, complete_after_ns=None):
        self.sim = sim
        self.complete_after_ns = complete_after_ns
        self.calls = []

    def __call__(self, size, client, on_done=None):
        self.calls.append((self.sim.now, size, client))
        if on_done is not None and self.complete_after_ns is not None:
            self.sim.schedule(self.complete_after_ns, on_done)
        return object()


class TestSizeSpec:
    def test_fixed(self):
        spec = SizeSpec(kind="fixed", bytes=5000)
        assert spec.sample(random.Random(1)) == 5000

    def test_lognormal_clamped(self):
        spec = SizeSpec(kind="lognormal", median_bytes=50_000,
                        sigma=2.0, min_bytes=1460, max_bytes=100_000)
        rng = random.Random(7)
        samples = [spec.sample(rng) for _ in range(500)]
        assert all(1460 <= s <= 100_000 for s in samples)
        assert len(set(samples)) > 100  # actually random

    def test_bimodal_mixes(self):
        spec = SizeSpec(kind="bimodal", small_bytes=10_000,
                        large_bytes=1_000_000, p_small=0.8)
        rng = random.Random(3)
        samples = [spec.sample(rng) for _ in range(200)]
        assert set(samples) == {10_000, 1_000_000}
        small = samples.count(10_000)
        assert 120 < small < 200

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown size kind"):
            SizeSpec(kind="zipf").sample(random.Random(1))


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            ArrivalSpec(kind="fractal").validate(1)

    def test_unknown_direction(self):
        with pytest.raises(ValueError, match="direction"):
            ArrivalSpec(direction="sideways").validate(1)

    def test_nonpositive_rate(self):
        with pytest.raises(ValueError, match="rate_per_s"):
            ArrivalSpec(kind="poisson", rate_per_s=0).validate(1)

    def test_web_nonpositive_think_time(self):
        with pytest.raises(ValueError, match="think_time_ms"):
            ArrivalSpec(kind="web", think_time_ms=0.0).validate(1)

    def test_onoff_nonpositive_durations(self):
        with pytest.raises(ValueError, match="mean_on_ms"):
            ArrivalSpec(kind="onoff", mean_on_ms=0.0).validate(1)
        with pytest.raises(ValueError, match="mean_off_ms"):
            ArrivalSpec(kind="onoff", mean_off_ms=-1.0).validate(1)

    def test_trace_client_out_of_range(self):
        spec = ArrivalSpec(kind="trace", trace=((0.0, 5, 1000),))
        with pytest.raises(ValueError, match="client index"):
            spec.validate(2)

    def test_trace_bad_size(self):
        spec = ArrivalSpec(kind="trace", trace=((0.0, 0, 0),))
        with pytest.raises(ValueError, match="sizes must be positive"):
            spec.validate(1)


class TestPoisson:
    def test_rate_roughly_respected(self):
        sim = Simulator()
        log = SpawnLog(sim)
        spec = ArrivalSpec(kind="poisson", rate_per_s=100.0,
                           size=SizeSpec(kind="fixed", bytes=1000))
        proc = PoissonArrivals(sim, spec, log, ["C1", "C2"],
                               random.Random(11))
        proc.start()
        sim.run(until=2 * SEC)
        assert 140 < len(log.calls) < 260      # ~200 expected
        assert {c for _, _, c in log.calls} == {"C1", "C2"}

    def test_stop_ns_halts_arrivals(self):
        sim = Simulator()
        log = SpawnLog(sim)
        spec = ArrivalSpec(kind="poisson", rate_per_s=200.0,
                           stop_ns=500 * MS,
                           size=SizeSpec(kind="fixed", bytes=1000))
        proc = PoissonArrivals(sim, spec, log, ["C1"],
                               random.Random(5))
        proc.start()
        sim.run(until=2 * SEC)
        assert log.calls
        assert all(t < 500 * MS for t, _, _ in log.calls)

    def test_stop_method_halts_arrivals(self):
        sim = Simulator()
        log = SpawnLog(sim)
        spec = ArrivalSpec(kind="poisson", rate_per_s=200.0,
                           size=SizeSpec(kind="fixed", bytes=1000))
        proc = PoissonArrivals(sim, spec, log, ["C1"],
                               random.Random(5))
        proc.start()
        sim.schedule(200 * MS, proc.stop)
        sim.run(until=1 * SEC)
        assert all(t <= 200 * MS for t, _, _ in log.calls)


class TestOnOff:
    def test_bursty_gaps(self):
        sim = Simulator()
        log = SpawnLog(sim)
        spec = ArrivalSpec(kind="onoff", rate_per_s=500.0,
                           mean_on_ms=50.0, mean_off_ms=200.0,
                           size=SizeSpec(kind="fixed", bytes=1000))
        proc = OnOffSource(sim, spec, log, "C1", random.Random(9))
        proc.start()
        sim.run(until=3 * SEC)
        assert proc.bursts >= 2
        assert log.calls
        # Bursty: at least one inter-arrival gap far exceeds the
        # in-burst spacing (1/500 s = 2 ms).
        times = [t for t, _, _ in log.calls]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert max(gaps) > 50 * MS


class TestWeb:
    def test_closed_loop_waits_for_completion(self):
        sim = Simulator()
        # Completion takes 300 ms; think time is tiny, so the request
        # rate is completion-bound: ~1 per 300 ms per user.
        log = SpawnLog(sim, complete_after_ns=300 * MS)
        spec = ArrivalSpec(kind="web", users_per_client=1,
                           think_time_ms=1.0,
                           size=SizeSpec(kind="fixed", bytes=1000))
        proc = WebWorkload(sim, spec, log, "C1", [random.Random(2)])
        proc.start()
        sim.run(until=3 * SEC)
        assert 5 <= len(log.calls) <= 11
        assert proc.requests_completed >= 5

    def test_users_are_independent_streams(self):
        # Two users with identical seeds would collide; the registry
        # derives distinct streams per user name.
        sim = Simulator()
        log = SpawnLog(sim, complete_after_ns=10 * MS)
        rngs = RngRegistry(1)
        spec = ArrivalSpec(kind="web", users_per_client=2,
                           think_time_ms=50.0)
        procs = build_processes(sim, spec, log, ["C1"], rngs)
        assert len(procs) == 1
        u0, u1 = procs[0].user_rngs
        assert u0.random() != u1.random()


class TestTrace:
    def test_exact_times_and_sizes(self):
        sim = Simulator()
        log = SpawnLog(sim)
        spec = ArrivalSpec(
            kind="trace",
            trace=((0.0, 0, 1000), (10.5, 1, 2000), (300.0, 0, 3000)))
        proc = TraceArrivals(sim, spec, log, ["C1", "C2"])
        proc.start()
        sim.run(until=1 * SEC)
        assert log.calls == [
            (0, 1000, "C1"),
            (int(10.5 * MS), 2000, "C2"),
            (300 * MS, 3000, "C1"),
        ]


class TestFactory:
    def test_one_process_per_client_kinds(self):
        sim = Simulator()
        rngs = RngRegistry(1)
        clients = ["C1", "C2", "C3"]
        spawn = SpawnLog(sim)
        assert len(build_processes(
            sim, ArrivalSpec(kind="poisson"), spawn, clients,
            rngs)) == 1
        assert len(build_processes(
            sim, ArrivalSpec(kind="onoff"), spawn, clients,
            rngs)) == 3
        assert len(build_processes(
            sim, ArrivalSpec(kind="web"), spawn, clients, rngs)) == 3
        assert len(build_processes(
            sim, ArrivalSpec(kind="trace"), spawn, clients,
            rngs)) == 1

    def test_streams_do_not_depend_on_creation_order(self):
        sim = Simulator()
        spawn = SpawnLog(sim)
        a = build_processes(sim, ArrivalSpec(kind="onoff"), spawn,
                            ["C1", "C2"], RngRegistry(4))
        b = build_processes(sim, ArrivalSpec(kind="onoff"), spawn,
                            ["C2", "C1"], RngRegistry(4))
        by_client_a = {p.client: p.rng.random() for p in a}
        by_client_b = {p.client: p.rng.random() for p in b}
        assert by_client_a == by_client_b
