"""Runtime flow lifecycle: create, start and tear down TCP flows.

``run_scenario`` historically wired a fixed set of flows at t=0 and let
them run forever; the :class:`FlowManager` makes flows first-class
runtime objects instead.  An arrival process hands it a (size, client)
pair; the manager builds the sender/receiver pair against the existing
:class:`~repro.nodes.server.ServerNode` /
:class:`~repro.nodes.client.ClientNode` endpoints, starts the transfer
immediately (the arrival instant *is* the flow start), and — when the
sender sees its last byte cumulatively ACKed — tears the flow down
again:

* endpoint maps (``server.senders``, ``client.receivers``, …) drop the
  flow, so later stray segments are ignored instead of reviving it;
* pending TCP timers (RTO, delayed ACK) are cancelled;
* ROHC compressor/decompressor contexts for the flow's five-tuple are
  released on both the client's and the AP's HACK drivers, and any
  still-buffered compressed ACKs of the flow are purged.  CIDs are a
  single hash byte (256 values), so under churn this reclamation is
  what keeps context tables bounded and CID collisions transient
  instead of permanent.

Every spawned flow is recorded in a
:class:`~repro.stats.fct.FctCollector` (or, with
``stream_stats=True``, folded into a bounded-memory
:class:`~repro.stats.fct.FctAggregator` on completion); flows still in
flight when the run ends are finalised as *censored* with their
partial byte count.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim.engine import Simulator
from ..stats.fct import FctAggregator, FctCollector, FctRecord
from ..tcp.flow import TcpFlow, wire_flow
from ..tcp.segment import FiveTuple

#: Dynamic flows get ids above every statically wired flow's.
DYNAMIC_FLOW_ID_BASE = 1000

#: Gap between consecutive cells' dynamic-flow id ranges.  A cell
#: would have to spawn ten million flows before touching its
#: neighbour's range — comfortably past what even the million-flow
#: streaming-stats regime produces in one run.
CELL_FLOW_ID_STRIDE = 10_000_000


class FlowManager:
    """Creates, tracks and reclaims dynamically arriving TCP flows."""

    def __init__(self, sim: Simulator, server, clients: Dict[str, Any],
                 client_names: List[str], drivers: Dict[str, Any],
                 collector: "FctCollector | FctAggregator",
                 direction: str = "download",
                 mss: int = 1460,
                 initial_cwnd_segments: int = 2,
                 initial_ssthresh_bytes: int = 65_535,
                 delayed_ack: bool = True,
                 generate_sack: bool = False,
                 sack_recovery: bool = False,
                 cc: str = "reno",
                 pacing: bool = False,
                 ap_name: str = "AP",
                 flow_id_base: int = DYNAMIC_FLOW_ID_BASE,
                 ip_prefix: str = "10.0"):
        if direction not in ("download", "upload"):
            raise ValueError(f"unknown direction {direction!r}")
        if flow_id_base <= 0:
            raise ValueError("flow_id_base must be positive")
        self.sim = sim
        self.server = server
        self.clients = clients
        self.client_index = {name: i for i, name
                             in enumerate(client_names)}
        self.drivers = drivers
        self.collector = collector
        self.direction = direction
        self.mss = mss
        self.initial_cwnd_segments = initial_cwnd_segments
        self.initial_ssthresh_bytes = initial_ssthresh_bytes
        self.delayed_ack = delayed_ack
        self.generate_sack = generate_sack
        self.sack_recovery = sack_recovery
        self.cc = cc
        self.pacing = pacing
        self.ap_name = ap_name
        #: Per-cell managers use disjoint id ranges (cell i starts at
        #: ``DYNAMIC_FLOW_ID_BASE + i * CELL_FLOW_ID_STRIDE``) so flow
        #: ids stay unique across a whole multi-AP run.
        self.flow_id_base = flow_id_base
        #: First two octets of this BSS's wired subnet ("10.<cell>").
        self.ip_prefix = ip_prefix

        self._next_flow_id = flow_id_base + 1
        #: flow_id -> (flow, record, on_done)
        self.live: Dict[int, Tuple[TcpFlow, FctRecord,
                                   Optional[Callable[[], None]]]] = {}
        self.flows_spawned = 0
        self.flows_completed = 0

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------
    def spawn(self, size_bytes: int, client_name: str,
              on_done: Optional[Callable[[], None]] = None) -> TcpFlow:
        """Create and immediately start one finite transfer."""
        if size_bytes <= 0:
            raise ValueError(f"flow size must be positive, "
                             f"got {size_bytes}")
        client = self.clients[client_name]
        index = self.client_index[client_name]
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        # Ports cycle through a large range so five-tuples of *live*
        # flows never collide (ids are unique per run).
        port = 10_000 + (flow_id - self.flow_id_base) % 50_000
        tuple_down = FiveTuple(f"{self.ip_prefix}.0.1",
                               f"{self.ip_prefix}.1.{index + 1}",
                               port, 80)
        flow = wire_flow(
            self.sim, flow_id, tuple_down, self.direction,
            self.server, client, client_name,
            total_bytes=size_bytes, mss=self.mss,
            initial_cwnd_segments=self.initial_cwnd_segments,
            initial_ssthresh_bytes=self.initial_ssthresh_bytes,
            delayed_ack=self.delayed_ack,
            generate_sack=self.generate_sack,
            sack_recovery=self.sack_recovery,
            cc=self.cc, pacing=self.pacing)
        record = self.collector.open(flow_id, client_name,
                                     self.direction, size_bytes,
                                     self.sim.now)
        self.live[flow_id] = (flow, record, on_done)
        self.flows_spawned += 1
        flow.started_at = self.sim.now
        flow.sender.on_complete = \
            lambda fid=flow_id: self._complete(fid)
        flow.sender.start()
        return flow

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _complete(self, flow_id: int) -> None:
        flow, record, on_done = self.live.pop(flow_id)
        now = self.sim.now
        flow.completed_at = now
        record.end_ns = now
        record.bytes_delivered = flow.receiver.bytes_delivered
        self.collector.close(record)
        self.flows_completed += 1
        self._reclaim(flow, record.client)
        if on_done is not None:
            on_done()

    def _reclaim(self, flow: TcpFlow, client_name: str) -> None:
        """Release every per-flow resource the stack accumulated."""
        client = self.clients[client_name]
        flow_id = flow.flow_id
        if self.direction == "download":
            self.server.remove_sender(flow_id)
            client.remove_receiver(flow_id)
        else:
            client.remove_sender(flow_id)
            self.server.remove_receiver(flow_id)
        flow.sender.close()
        flow.receiver.close()
        five_tuple = flow.sender.five_tuple
        for driver_name in (client_name, self.ap_name):
            driver = self.drivers.get(driver_name)
            if driver is not None:
                driver.release_flow_state(five_tuple, flow_id=flow_id)

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """End of run: snapshot still-live (censored) flows' partial
        deliveries.  Censoring itself is ``end_ns`` staying None."""
        for flow, record, _ in self.live.values():
            record.bytes_delivered = flow.receiver.bytes_delivered
            self.collector.close(record)
