"""Dynamic traffic: arrival processes and runtime flow lifecycle.

This package turns the static, wired-at-t=0 workloads of
``repro.workloads`` into living ones: flows arrive (Poisson, on/off
bursts, closed-loop web users, or scripted traces), transfer a finite
object, and are torn down again with their per-flow state reclaimed.
Flow-completion-time statistics live in :mod:`repro.stats.fct`.
"""

from .arrivals import ArrivalProcess, ArrivalSpec, OnOffSource, \
    PoissonArrivals, SizeSpec, TraceArrivals, WebWorkload, \
    build_processes
from .manager import DYNAMIC_FLOW_ID_BASE, FlowManager

__all__ = ["ArrivalSpec", "SizeSpec", "ArrivalProcess",
           "PoissonArrivals", "OnOffSource", "WebWorkload",
           "TraceArrivals", "build_processes", "FlowManager",
           "DYNAMIC_FLOW_ID_BASE"]
