"""Arrival processes and flow-size distributions.

The paper evaluates long-lived bulk transfers; this module supplies the
other half of the workload space — *churn*: flows that arrive, transfer
a finite object, and leave.  Four arrival shapes are provided:

* :class:`PoissonArrivals` — open-loop memoryless flow arrivals at a
  fixed rate, spread across clients (the classic FCT-benchmark load).
* :class:`OnOffSource` — per-client bursts: exponentially distributed
  ON periods during which flows arrive at the peak rate, separated by
  silent OFF periods (bursty/heavy-tailed aggregate load).
* :class:`WebWorkload` — closed-loop request/response users: each user
  thinks for an exponential time, requests one object (log-normal
  size), waits for it to complete, and thinks again.
* :class:`TraceArrivals` — a deterministic, declarative list of
  (time, client, size) arrivals for exactly reproducible micro-tests.

Determinism contract: every process draws from its **own** named RNG
stream (per client, and per user for the closed-loop workload), so the
sequence of sizes/interarrivals a process sees depends only on the
master seed — never on how flow completions from *other* processes
interleave with its events.  This is what makes churn rows bit-identical
across repeated runs and across serial vs. multi-process sweeps.

Everything a scenario needs is described declaratively by
:class:`ArrivalSpec` / :class:`SizeSpec` (plain dataclasses, so
:class:`~repro.workloads.scenarios.ScenarioConfig` stays picklable and
content-hashable for the sweep cache); :func:`build_processes` turns a
spec into live processes wired to a
:class:`~repro.traffic.manager.FlowManager`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..sim.engine import Simulator
from ..sim.units import MS, SEC

#: Spawn callback signature: (size_bytes, client_name, on_done) ->
#: an opaque flow handle.  ``on_done`` (may be None) is invoked after
#: the flow completes and its state has been reclaimed.
SpawnFn = Callable[[int, str, Optional[Callable[[], None]]], object]


# ----------------------------------------------------------------------
# Declarative descriptions (picklable, asdict-able, JSON-canonical)
# ----------------------------------------------------------------------
@dataclass
class SizeSpec:
    """Flow/object size distribution.

    ``kind``:
      * ``fixed`` — every flow transfers ``bytes``.
      * ``lognormal`` — log-normal around ``median_bytes`` with shape
        ``sigma`` (the paper-adjacent web-object model).
      * ``bimodal`` — mice/elephants: ``p_small`` of flows transfer
        ``small_bytes``, the rest ``large_bytes``.

    Samples are clamped to ``[min_bytes, max_bytes]`` so a heavy tail
    cannot produce a flow that outlives any plausible run.
    """

    kind: str = "lognormal"        # fixed | lognormal | bimodal
    bytes: int = 100_000
    median_bytes: int = 50_000
    sigma: float = 1.0
    small_bytes: int = 15_000
    large_bytes: int = 1_000_000
    p_small: float = 0.9
    min_bytes: int = 1_460
    max_bytes: int = 20_000_000

    def sample(self, rng) -> int:
        if self.kind == "fixed":
            size = self.bytes
        elif self.kind == "lognormal":
            size = int(rng.lognormvariate(
                math.log(self.median_bytes), self.sigma))
        elif self.kind == "bimodal":
            size = self.small_bytes if rng.random() < self.p_small \
                else self.large_bytes
        else:
            raise ValueError(f"unknown size kind {self.kind!r}")
        return max(self.min_bytes, min(size, self.max_bytes))


@dataclass
class ArrivalSpec:
    """Declarative description of one scenario's flow-churn workload."""

    kind: str = "poisson"          # poisson | onoff | web | trace
    direction: str = "download"    # download | upload
    #: poisson: aggregate flow arrivals/s; onoff: arrivals/s while ON.
    rate_per_s: float = 40.0
    size: SizeSpec = field(default_factory=SizeSpec)
    #: onoff: mean burst / silence durations.
    mean_on_ms: float = 200.0
    mean_off_ms: float = 300.0
    #: web: closed-loop users per client and mean think time.
    users_per_client: int = 2
    think_time_ms: float = 150.0
    #: trace: ((start_ms, client_index, size_bytes), ...).
    trace: Tuple[Tuple[float, int, int], ...] = ()
    #: Arrivals begin here (flows already in flight keep running).
    start_ns: int = 0
    #: Stop generating new arrivals (None = the whole run).
    stop_ns: Optional[int] = None

    def validate(self, n_clients: int) -> None:
        if self.kind not in ("poisson", "onoff", "web", "trace"):
            raise ValueError(f"unknown arrival kind {self.kind!r}")
        if self.direction not in ("download", "upload"):
            raise ValueError(
                f"unknown arrival direction {self.direction!r}")
        if self.kind in ("poisson", "onoff") and self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.kind == "onoff" and (self.mean_on_ms <= 0
                                     or self.mean_off_ms <= 0):
            raise ValueError("mean_on_ms/mean_off_ms must be positive")
        if self.kind == "web":
            if self.users_per_client < 1:
                raise ValueError("users_per_client must be >= 1")
            if self.think_time_ms <= 0:
                raise ValueError("think_time_ms must be positive")
        if self.kind == "trace":
            for entry in self.trace:
                _, client_index, size = entry
                if not 0 <= client_index < n_clients:
                    raise ValueError(
                        f"trace client index {client_index} out of "
                        f"range for {n_clients} clients")
                if size <= 0:
                    raise ValueError("trace sizes must be positive")


# ----------------------------------------------------------------------
# Processes
# ----------------------------------------------------------------------
class ArrivalProcess:
    """Base: a source of flow arrivals driven by simulator events."""

    def __init__(self, sim: Simulator, spec: ArrivalSpec,
                 spawn: SpawnFn):
        self.sim = sim
        self.spec = spec
        self.spawn = spawn
        self.flows_spawned = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        self._begin()

    def stop(self) -> None:
        self._running = False

    # -- subclass hooks ------------------------------------------------
    def _begin(self) -> None:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------
    def _past_stop(self) -> bool:
        stop = self.spec.stop_ns
        return stop is not None and self.sim.now >= stop

    def _emit(self, size: int, client: str,
              on_done: Optional[Callable[[], None]] = None) -> object:
        self.flows_spawned += 1
        return self.spawn(size, client, on_done)


class PoissonArrivals(ArrivalProcess):
    """Open-loop Poisson flow arrivals, spread uniformly over clients."""

    def __init__(self, sim: Simulator, spec: ArrivalSpec,
                 spawn: SpawnFn, clients: Sequence[str], rng):
        super().__init__(sim, spec, spawn)
        self.clients = list(clients)
        self.rng = rng

    def _begin(self) -> None:
        self._schedule_next()

    def _interarrival_ns(self) -> int:
        return max(1, int(self.rng.expovariate(self.spec.rate_per_s)
                          * SEC))

    def _schedule_next(self) -> None:
        self.sim.schedule(self._interarrival_ns(), self._arrive)

    def _arrive(self) -> None:
        if not self._running or self._past_stop():
            return
        client = self.clients[self.rng.randrange(len(self.clients))]
        size = self.spec.size.sample(self.rng)
        self._emit(size, client)
        self._schedule_next()


class OnOffSource(ArrivalProcess):
    """One client's bursty source: Poisson arrivals during ON periods.

    ON/OFF durations are exponential; the aggregate over clients
    approximates the heavy-tailed burstiness real access links show.
    """

    def __init__(self, sim: Simulator, spec: ArrivalSpec,
                 spawn: SpawnFn, client: str, rng):
        super().__init__(sim, spec, spawn)
        self.client = client
        self.rng = rng
        self._on = False
        self.bursts = 0

    def _begin(self) -> None:
        # Desynchronise clients: start with an OFF tail.
        self.sim.schedule(self._duration_ns(self.spec.mean_off_ms),
                          self._turn_on)

    def _duration_ns(self, mean_ms: float) -> int:
        return max(1, int(self.rng.expovariate(1.0 / mean_ms) * MS))

    def _turn_on(self) -> None:
        if not self._running or self._past_stop():
            return
        self._on = True
        self.bursts += 1
        self.sim.schedule(self._duration_ns(self.spec.mean_on_ms),
                          self._turn_off)
        self._schedule_arrival(self.bursts)

    def _turn_off(self) -> None:
        self._on = False
        if not self._running or self._past_stop():
            return
        self.sim.schedule(self._duration_ns(self.spec.mean_off_ms),
                          self._turn_on)

    def _schedule_arrival(self, burst: int) -> None:
        gap = max(1, int(self.rng.expovariate(self.spec.rate_per_s)
                         * SEC))
        self.sim.schedule(gap, self._arrive, burst)

    def _arrive(self, burst: int) -> None:
        # The burst tag kills stale chains: an arrival scheduled in
        # burst N that lands after burst N+1 began must not spawn a
        # second concurrent arrival chain (rate creep).
        if not self._running or not self._on \
                or burst != self.bursts or self._past_stop():
            return
        self._emit(self.spec.size.sample(self.rng), self.client)
        self._schedule_arrival(burst)


class WebWorkload(ArrivalProcess):
    """Closed-loop request/response users with log-normal objects.

    Each user is pinned to one client and loops think → request →
    wait-for-completion → think.  Users draw from their own RNG
    streams, so one user's completion timing cannot perturb another
    user's (or run-to-run) randomness.
    """

    def __init__(self, sim: Simulator, spec: ArrivalSpec,
                 spawn: SpawnFn, client: str, user_rngs: Sequence):
        super().__init__(sim, spec, spawn)
        self.client = client
        self.user_rngs = list(user_rngs)
        self.requests_completed = 0

    def _begin(self) -> None:
        for index in range(len(self.user_rngs)):
            self._think(index)

    def _think_ns(self, rng) -> int:
        return max(1, int(rng.expovariate(
            1.0 / self.spec.think_time_ms) * MS))

    def _think(self, user: int) -> None:
        self.sim.schedule(self._think_ns(self.user_rngs[user]),
                          self._request, user)

    def _request(self, user: int) -> None:
        if not self._running or self._past_stop():
            return
        size = self.spec.size.sample(self.user_rngs[user])
        self._emit(size, self.client, lambda u=user: self._done(u))

    def _done(self, user: int) -> None:
        self.requests_completed += 1
        if not self._running or self._past_stop():
            return
        self._think(user)


class TraceArrivals(ArrivalProcess):
    """Deterministic scripted arrivals: ((start_ms, client, size), ...)."""

    def __init__(self, sim: Simulator, spec: ArrivalSpec,
                 spawn: SpawnFn, clients: Sequence[str]):
        super().__init__(sim, spec, spawn)
        self.clients = list(clients)

    def _begin(self) -> None:
        for start_ms, client_index, size in self.spec.trace:
            at = self.spec.start_ns + int(start_ms * MS)
            delay = max(0, at - self.sim.now)
            self.sim.schedule(delay, self._arrive, client_index, size)

    def _arrive(self, client_index: int, size: int) -> None:
        if not self._running or self._past_stop():
            return
        self._emit(size, self.clients[client_index])


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
def build_processes(sim: Simulator, spec: ArrivalSpec,
                    spawn: SpawnFn, clients: Sequence[str],
                    rngs) -> List[ArrivalProcess]:
    """Instantiate the processes an :class:`ArrivalSpec` describes.

    ``rngs`` is the scenario's :class:`~repro.sim.rng.RngRegistry`;
    every process receives dedicated streams named after its identity
    inside the ``traffic`` namespace, so no arrival process can
    perturb (or be perturbed by) MAC/PHY randomness or other
    processes' draws.
    """
    spec.validate(len(clients))
    ns = rngs.namespace("traffic")
    if spec.kind == "poisson":
        return [PoissonArrivals(sim, spec, spawn, clients,
                                ns.stream("poisson"))]
    if spec.kind == "onoff":
        return [OnOffSource(sim, spec, spawn, client,
                            ns.stream(f"onoff-{client}"))
                for client in clients]
    if spec.kind == "web":
        return [WebWorkload(
            sim, spec, spawn, client,
            [ns.stream(f"web-{client}-u{user}")
             for user in range(spec.users_per_client)])
            for client in clients]
    if spec.kind == "trace":
        return [TraceArrivals(sim, spec, spawn, clients)]
    raise ValueError(f"unknown arrival kind {spec.kind!r}")
