"""TCP/HACK core: the driver state machines and deferral policies."""

from .driver import DriverStats, HackDriver
from .policies import HackConfig, HackPolicy

__all__ = ["HackDriver", "DriverStats", "HackConfig", "HackPolicy"]
