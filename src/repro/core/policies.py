"""TCP/HACK ACK-deferral policies (paper §3.2).

The paper considers three designs for deciding when the client may
withhold vanilla TCP ACKs in the hope of piggybacking them on a
link-layer ACK:

* **Explicit Timer** — buffer and compress every ACK, flush to vanilla
  after a fixed delay.  The strawman: "there is no good delay value".
* **Opportunistic** — never delay ACKs: they queue for normal
  transmission, but if a data frame's LL ACK departs first, the still-
  queued ACKs are yanked from the transmit queue and ride compressed.
* **MORE DATA** — the design the paper adopts: the AP sets the 802.11
  MORE DATA bit whenever more packets for the client remain queued
  after forming a batch; the client latches the bit and withholds ACKs
  (compressed) exactly while it is safe to expect another LL ACK
  opportunity.

``VANILLA`` disables HACK entirely (the stock-802.11 baselines).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..sim.units import msec


class HackPolicy(enum.Enum):
    """Which ACK-deferral scheme a driver runs.

    ``TS_ECHO`` is the paper's §5 future-work design: instead of the
    MORE DATA bit, the client defers TCP ACKs while a timestamp echo
    is outstanding (the sender reflects the last ACK's ts_val in its
    data segments; no echo yet => the pipe still has data the sender
    queued before seeing our ACK, so another LL ACK opportunity is
    coming).  It needs no AP cooperation, but it is a heuristic — the
    driver pairs it with a stall-guard timer because a window-limited
    sender may be waiting for exactly the ACKs being withheld.
    """

    VANILLA = "vanilla"
    EXPLICIT_TIMER = "explicit_timer"
    OPPORTUNISTIC = "opportunistic"
    MORE_DATA = "more_data"
    TS_ECHO = "ts_echo"


@dataclass
class HackConfig:
    """Driver configuration derived from a policy choice."""

    policy: HackPolicy = HackPolicy.MORE_DATA
    #: Vanilla ACKs required before a flow's ACKs may be compressed
    #: (context establishment; paper §3.3.2 item 1).
    init_vanilla_acks: int = 1
    #: EXPLICIT_TIMER: flush buffered ACKs to vanilla after this delay.
    flush_after_ns: Optional[int] = None
    #: Defensive stall guard for MORE_DATA (None = trust the bit, as
    #: the paper does).  When set, buffered ACKs older than this are
    #: flushed vanilla; flushes are counted so fidelity is checkable.
    stall_guard_ns: Optional[int] = None
    #: Hard cap on buffered compressed ACK entries (a HACK frame also
    #: cannot exceed 255 entries); overflow flushes vanilla.
    max_buffered: int = 120
    #: §3.3.2 footnote: when True, the payload appended to one LL ACK
    #: is limited so its extra airtime fits within AIFS (full
    #: protection against hidden terminals); the remainder of the
    #: buffer rides later LL ACKs.  When False (the paper's simulator
    #: default), everything goes on a single LL ACK.
    split_to_aifs: bool = False

    @property
    def enabled(self) -> bool:
        return self.policy is not HackPolicy.VANILLA

    @classmethod
    def for_policy(cls, policy: HackPolicy) -> "HackConfig":
        if policy is HackPolicy.EXPLICIT_TIMER:
            return cls(policy=policy, flush_after_ns=msec(5))
        if policy is HackPolicy.TS_ECHO:
            # The echo heuristic can deadlock a window-limited sender;
            # the stall guard is its mandatory safety net (§5).
            return cls(policy=policy, stall_guard_ns=msec(50))
        return cls(policy=policy)
