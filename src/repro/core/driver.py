"""The TCP/HACK driver — the paper's core contribution (§3).

One :class:`HackDriver` sits between a node's network stack and its
:class:`~repro.mac.dcf.DcfMac`, at clients and APs alike (the design is
symmetric).  Responsibilities:

* route outgoing segments: TCP data and non-compressible ACKs go to the
  normal transmit queue; pure ACKs are compressed and buffered when the
  active policy says a piggyback opportunity is coming;
* latch the **MORE DATA** bit from arriving data frames (§3.2);
* supply serialised compressed-ACK frames to the MAC when it builds an
  LL ACK / Block ACK (``hack_payload_for``), re-attaching retained
  entries on *every* response until implicitly confirmed (§3.4);
* implicit confirmation: a subsequent A-MPDU (batch mode) or a higher
  MAC sequence number (single-MPDU mode) confirms the previous LL ACK
  unless the batch carries the **SYNC** bit (Figs 5-8);
* flush-to-vanilla transitions: when a batch arrives without MORE
  DATA, retained compressed ACKs get one last ride on that batch's
  Block ACK and are then discarded — later cumulative ACKs cover them
  (Fig 7) — with the compressor rebased so a lost last ride cannot
  desynchronise contexts;
* decompress HACK payloads arriving on LL ACKs and hand the
  reconstituted TCP ACKs upstream.

All TCP awareness lives here, never in the MAC — mirroring the paper's
driver/NIC split (the NIC treats the payload as opaque bytes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..mac.dcf import DcfMac, MacUpper
from ..mac.frames import AmpduFrame, BarFrame, Mpdu
from ..rohc.compressor import Compressor
from ..rohc.decompressor import Decompressor
from ..rohc.packets import CompressedAck, build_frame
from ..sim.engine import Simulator
from ..tcp.segment import TcpSegment
from .policies import HackConfig, HackPolicy


@dataclass
class DriverStats:
    """Driver-level counters (Table 2 inputs live here)."""

    vanilla_acks_sent: int = 0
    vanilla_ack_bytes: int = 0
    hack_frames_attached: int = 0
    hack_frame_bytes: int = 0
    entries_confirmed: int = 0
    sync_events: int = 0
    unlatch_flushes: int = 0
    timer_flushes: int = 0
    stall_guard_flushes: int = 0
    overflow_flushes: int = 0
    echo_flushes: int = 0
    acks_reinjected: int = 0
    #: Buffered-ACK chains found broken (non-consecutive MSNs) and
    #: repaired by flushing the survivors to vanilla instead of letting
    #: ``build_frame`` raise into the event loop.  Zero cooperatively.
    chain_repairs: int = 0


class _PeerState:
    """Per-peer HACK state (a client has one peer: its AP)."""

    __slots__ = ("more_data_latched", "buffer", "last_seen_seq",
                 "compressor", "decompressor", "flush_event",
                 "flush_after_response", "ack_ts_sent", "echo_seen")

    def __init__(self, init_vanilla_acks: int, clock=None):
        self.more_data_latched = False
        self.buffer: List[CompressedAck] = []
        self.last_seen_seq = -1
        self.compressor = Compressor(init_threshold=init_vanilla_acks)
        self.decompressor = Decompressor(clock=clock)
        self.flush_event = None
        self.flush_after_response = False
        # TS_ECHO state: per flow, the ts_val of the newest ACK we sent
        # and the newest ts_ecr observed on arriving data (§5).
        self.ack_ts_sent: Dict[int, int] = {}
        self.echo_seen: Dict[int, int] = {}


class HackDriver(MacUpper):
    """Device driver implementing TCP/HACK over a DcfMac."""

    def __init__(self, sim: Simulator, mac: DcfMac, config: HackConfig,
                 node: Any = None):
        self.sim = sim
        self.mac = mac
        self.config = config
        self.node = node
        self.stats = DriverStats()
        self._peers: Dict[str, _PeerState] = {}
        self._attached_count = 0
        # Decompressors time their context-recovery latency off the
        # simulator clock (only read while a context is desynced, so
        # cooperative runs never touch it).
        self._clock = lambda: sim.now
        mac.upper = self

    def peer(self, name: str) -> _PeerState:
        if name not in self._peers:
            self._peers[name] = _PeerState(self.config.init_vanilla_acks,
                                           clock=self._clock)
        return self._peers[name]

    def buffered_acks(self) -> int:
        """Compressed ACKs held back awaiting a ride, across all peers
        (the telemetry sampler's HACK buffer-depth probe)."""
        return sum(len(ps.buffer) for ps in self._peers.values())

    def rohc_context_count(self) -> int:
        """Active ROHC compressor contexts (CIDs) across all peers
        (the telemetry sampler's CID-occupancy probe)."""
        return sum(len(ps.compressor.contexts)
                   for ps in self._peers.values())

    # ==================================================================
    # Outgoing path (from the node's network stack)
    # ==================================================================
    def send_packet(self, packet: Any, peer_name: str) -> bool:
        """Send any packet; pure TCP ACKs take the HACK path."""
        if isinstance(packet, TcpSegment) and packet.is_pure_ack:
            if self.config.enabled:
                return self._send_ack(packet, peer_name)
            # Stock operation: still account the ACK stream (Table 2).
            self.stats.vanilla_acks_sent += 1
            self.stats.vanilla_ack_bytes += packet.byte_length
        return self.mac.enqueue(packet, peer_name)

    def _send_ack(self, ack: TcpSegment, peer_name: str) -> bool:
        ps = self.peer(peer_name)
        policy = self.config.policy
        if policy is HackPolicy.MORE_DATA:
            if ps.more_data_latched and ps.compressor.can_compress(ack):
                self._buffer_compressed(ps, ack, peer_name)
                return True
            return self._send_vanilla(ps, ack, peer_name)
        if policy is HackPolicy.TS_ECHO:
            defer = (self._echo_outstanding(ps, ack.flow_id)
                     and ps.compressor.can_compress(ack))
            ps.ack_ts_sent[ack.flow_id] = max(
                ps.ack_ts_sent.get(ack.flow_id, 0), ack.ts_val)
            if defer:
                self._buffer_compressed(ps, ack, peer_name)
                return True
            return self._send_vanilla(ps, ack, peer_name)
        if policy is HackPolicy.EXPLICIT_TIMER:
            if ps.compressor.can_compress(ack):
                self._buffer_compressed(ps, ack, peer_name)
                self._arm_flush(ps, peer_name,
                                self.config.flush_after_ns, "timer")
                return True
            return self._send_vanilla(ps, ack, peer_name)
        # OPPORTUNISTIC: queue normally; compression happens when the
        # MAC asks for a response payload and the ACK is still queued.
        return self._send_vanilla(ps, ack, peer_name)

    def _send_vanilla(self, ps: _PeerState, ack: TcpSegment,
                      peer_name: str) -> bool:
        ps.compressor.note_vanilla_ack(ack)
        # Tag the ACK with its per-flow vanilla ordinal so the
        # opportunistic pull can leave context-establishing ACKs in the
        # queue (the peer's decompressor needs them on the air).
        context = ps.compressor._context_for(ack, create=False)
        if context is not None:
            ack._hack_init_ordinal = context.vanilla_seen
        self.stats.vanilla_acks_sent += 1
        self.stats.vanilla_ack_bytes += ack.byte_length
        return self.mac.enqueue(ack, peer_name)

    def _buffer_compressed(self, ps: _PeerState, ack: TcpSegment,
                           peer_name: str) -> None:
        if len(ps.buffer) >= self.config.max_buffered:
            self.stats.overflow_flushes += 1
            self._flush_buffer(ps, peer_name)
        ps.buffer.append(ps.compressor.compress(ack))
        if self.config.stall_guard_ns is not None:
            self._arm_flush(ps, peer_name, self.config.stall_guard_ns,
                            "stall_guard")

    # ------------------------------------------------------------------
    # Flush-to-vanilla machinery (explicit timer / stall guard / caps)
    # ------------------------------------------------------------------
    def _arm_flush(self, ps: _PeerState, peer_name: str,
                   delay_ns: Optional[int], reason: str) -> None:
        if delay_ns is None or ps.flush_event is not None:
            return
        ps.flush_event = self.sim.schedule(
            delay_ns, self._flush_fires, ps, peer_name, reason)

    def _flush_fires(self, ps: _PeerState, peer_name: str,
                     reason: str) -> None:
        ps.flush_event = None
        if not ps.buffer:
            return
        if reason == "timer":
            self.stats.timer_flushes += 1
        else:
            self.stats.stall_guard_flushes += 1
        self._flush_buffer(ps, peer_name)

    def _flush_buffer(self, ps: _PeerState, peer_name: str) -> None:
        """Fall back: resend all buffered ACKs as vanilla TCP ACKs.

        Duplicates at the TCP sender are harmless (cumulative ACKs);
        the compressor is rebased because the decompressor may have
        never seen the discarded deltas."""
        entries, ps.buffer = ps.buffer, []
        if ps.flush_event is not None:
            ps.flush_event.cancel()
            ps.flush_event = None
        ps.compressor.rebase_all()
        for entry in entries:
            if entry.segment is not None:
                self._send_vanilla(ps, entry.segment, peer_name)

    # ==================================================================
    # MacUpper: incoming data path
    # ==================================================================
    def on_mpdu_delivered(self, mpdu: Mpdu, sender: str) -> None:
        payload = mpdu.payload
        if (isinstance(payload, TcpSegment) and payload.is_pure_ack
                and self.config.enabled):
            # Snoop vanilla ACKs to establish/refresh decompressor
            # contexts (the paper's IR-less context initialisation).
            self.peer(sender).decompressor.note_vanilla_ack(payload)
        if (self.config.policy is HackPolicy.TS_ECHO
                and isinstance(payload, TcpSegment)
                and not payload.is_pure_ack):
            self._note_echo(self.peer(sender), sender, payload)
        if self.node is not None:
            self.node.on_packet_received(payload, sender)

    # ------------------------------------------------------------------
    # TS_ECHO mechanics (§5)
    # ------------------------------------------------------------------
    def _echo_outstanding(self, ps: _PeerState, flow_id: int) -> bool:
        if flow_id not in ps.ack_ts_sent:
            return False
        return ps.echo_seen.get(flow_id, -1) < ps.ack_ts_sent[flow_id]

    def _note_echo(self, ps: _PeerState, peer_name: str,
                   data: TcpSegment) -> None:
        flow = data.flow_id
        if data.ts_ecr > ps.echo_seen.get(flow, -1):
            ps.echo_seen[flow] = data.ts_ecr
        if not ps.buffer:
            return
        caught_up = all(not self._echo_outstanding(ps, fid)
                        for fid in ps.ack_ts_sent)
        if caught_up:
            # The sender has seen our newest ACK and may go silent:
            # fall back to vanilla for whatever is still buffered.
            self.stats.echo_flushes += 1
            self._flush_buffer(ps, peer_name)

    def on_data_ppdu(self, frame: Any, sender: str,
                     readable_mpdus: List[Mpdu]) -> None:
        if not self.config.enabled:
            return
        ps = self.peer(sender)
        is_batch = isinstance(frame, AmpduFrame)
        sync = any(m.sync for m in readable_mpdus)
        more = any(m.more_data for m in readable_mpdus)
        max_seq = max(m.seq for m in readable_mpdus)

        # --- Implicit confirmation of our previous LL ACK (§3.4) ---
        if is_batch:
            new_arrival = True  # any A-MPDU implies our Block ACK landed
        else:
            new_arrival = max_seq > ps.last_seen_seq
        ps.last_seen_seq = max(ps.last_seen_seq, max_seq)
        if sync:
            # AP gave up soliciting our Block ACK and moved on: retain
            # everything and re-attach on the next response (Fig 8).
            self.stats.sync_events += 1
        elif new_arrival:
            confirmed = [e for e in ps.buffer if e.sent_once]
            if confirmed:
                ps.buffer = [e for e in ps.buffer if not e.sent_once]
                self.stats.entries_confirmed += len(confirmed)
                # Confirmation normally strips a prefix, leaving a
                # consecutive-MSN suffix; if anything (corruption,
                # partial sends) left holes instead, repair now rather
                # than stall the chain at the next build_frame.
                self._repair_chain(ps, sender)

        # --- MORE DATA latch (§3.2) ---
        # TS_ECHO deliberately ignores the bit: it is the AP-free
        # alternative (§5); its lifecycle is driven by echoes.
        if self.config.policy is not HackPolicy.TS_ECHO:
            ps.more_data_latched = more
            if not more:
                # Retained ACKs get one last ride on this batch's
                # response, then we transition to vanilla ACKs
                # (Figs 2 and 7).
                ps.flush_after_response = True

    # ==================================================================
    # MacUpper: LL ACK augmentation / reception
    # ==================================================================
    def hack_payload_for(self, peer_name: str) -> Optional[bytes]:
        if not self.config.enabled:
            return None
        ps = self.peer(peer_name)
        if self.config.policy is HackPolicy.OPPORTUNISTIC:
            self._pull_queued_acks(ps, peer_name)
        if not ps.buffer:
            return None
        entries = ps.buffer
        if self.config.split_to_aifs:
            entries = entries[:self._aifs_prefix_len(ps)]
        self._attached_count = len(entries)
        try:
            return build_frame(entries)
        except ValueError:
            # A broken MSN chain must never abort the MAC's response
            # transmission: count it, fall back to vanilla for the
            # whole buffer (mirroring release_flow_state), and send
            # this response bare.
            self.stats.chain_repairs += 1
            self._attached_count = 0
            self._flush_buffer(ps, peer_name)
            return None

    def _aifs_prefix_len(self, ps: _PeerState) -> int:
        """Longest buffer prefix whose appended airtime fits in AIFS.

        At least one entry is always included (an entry cannot be
        split; the paper's fallback is to risk the long LL ACK)."""
        phy = getattr(self.mac, "phy", None)
        params = getattr(self.mac, "params", None)
        if phy is None or params is None:
            return len(ps.buffer)
        from ..mac.params import ACK_BYTES, BLOCK_ACK_BYTES
        rate = phy.control_rate_for(params.data_rate_mbps)
        stock = BLOCK_ACK_BYTES if params.aggregation else ACK_BYTES
        base = phy.control_duration_ns(stock, rate)
        size = 2  # frame header (count + first MSN)
        best = 0
        for index, entry in enumerate(ps.buffer):
            size += len(entry.data)
            extra = phy.control_duration_ns(stock + size, rate) - base
            if extra <= phy.difs_ns:
                best = index + 1
            else:
                break
        return max(best, 1)

    def _pull_queued_acks(self, ps: _PeerState, peer_name: str) -> None:
        """Opportunistic HACK: yank still-queued compressible pure ACKs
        out of the MAC transmit queue and compress them now."""
        threshold = self.config.init_vanilla_acks
        pulled = self.mac.remove_from_queue(
            peer_name,
            lambda p: (isinstance(p, TcpSegment) and p.is_pure_ack
                       and ps.compressor.can_compress(p)
                       and getattr(p, "_hack_init_ordinal", 0)
                       > threshold))
        for ack in pulled:
            # They were counted as vanilla at enqueue; undo.
            self.stats.vanilla_acks_sent -= 1
            self.stats.vanilla_ack_bytes -= ack.byte_length
            if len(ps.buffer) >= self.config.max_buffered:
                self.stats.overflow_flushes += 1
                self._flush_buffer(ps, peer_name)
            ps.buffer.append(ps.compressor.compress(ack))

    def on_ll_response_tx(self, peer_name: str, response: Any,
                          hack_payload: Optional[bytes]) -> None:
        if not self.config.enabled:
            return
        ps = self.peer(peer_name)
        if hack_payload:
            self.stats.hack_frames_attached += 1
            self.stats.hack_frame_bytes += len(hack_payload)
            attached = self._attached_count or len(ps.buffer)
            for entry in ps.buffer[:attached]:
                entry.sent_once = True
        if ps.flush_after_response:
            ps.flush_after_response = False
            if ps.buffer:
                # Fire-and-forget: the entries rode this response; if
                # it is lost, later (higher) cumulative vanilla ACKs
                # cover the gap (Fig 7).  Rebase so delta references
                # cannot dangle.
                self.stats.unlatch_flushes += 1
                ps.buffer = []
                ps.compressor.rebase_all()

    def _repair_chain(self, ps: _PeerState, peer_name: str) -> None:
        """Flush the buffer to vanilla if its MSNs are not consecutive
        (``build_frame`` would refuse to serialise it).  A consecutive
        buffer — the invariable cooperative case — costs one cheap
        scan and is left untouched."""
        buffer = ps.buffer
        if not buffer:
            return
        first = buffer[0].msn
        if all(entry.msn == first + index
               for index, entry in enumerate(buffer)):
            return
        self.stats.chain_repairs += 1
        self._flush_buffer(ps, peer_name)

    def on_ll_ack_rx(self, frame: Any, sender: str) -> None:
        payload = getattr(frame, "hack_payload", None)
        if not payload or not self.config.enabled:
            return
        ps = self.peer(sender)
        segments = ps.decompressor.decompress_frame(payload)
        self.stats.acks_reinjected += len(segments)
        if self.node is not None:
            for segment in segments:
                self.node.on_packet_received(segment, sender)

    def on_bar_rx(self, bar: BarFrame, sender: str) -> None:
        # A BAR means the peer lacks our Block ACK: retention already
        # guarantees the compressed ACKs ride the re-sent Block ACK.
        return

    def on_mpdu_outcome(self, mpdu: Mpdu, delivered: bool) -> None:
        if self.node is not None:
            handler = getattr(self.node, "on_mpdu_outcome", None)
            if handler is not None:
                handler(mpdu, delivered)

    # ==================================================================
    # Flow lifecycle (dynamic traffic)
    # ==================================================================
    def release_flow_state(self, five_tuple,
                           flow_id: Optional[int] = None) -> None:
        """Reclaim all per-flow HACK state after a flow completes.

        Called by the :class:`~repro.traffic.manager.FlowManager` on
        teardown.  Both directions of the connection are released (the
        compressor keys contexts by the ACK stream's five-tuple, which
        is the reverse of the data direction), and any still-buffered
        compressed ACKs of the flow are purged so a retained entry can
        never be re-attached after the flow's CID has been reused.
        """
        tuples = (five_tuple, five_tuple.reversed())
        keys = {t.key() for t in tuples}
        for peer_name, ps in self._peers.items():
            if any(entry.segment is not None
                   and entry.segment.five_tuple.key() in keys
                   for entry in ps.buffer):
                # Dropping entries mid-buffer would break the
                # consecutive-MSN / CID-chain encoding of the entries
                # after them, so: discard the dead flow's entries (its
                # cumulative ACKs are moot) and route the remaining
                # live-flow entries through the standard
                # flush-to-vanilla path, which also rebases the
                # compressor so no later delta references dangle.
                ps.buffer = [
                    entry for entry in ps.buffer
                    if entry.segment is None
                    or entry.segment.five_tuple.key() not in keys]
                self._flush_buffer(ps, peer_name)
            for flow_tuple in tuples:
                ps.compressor.release_flow(flow_tuple)
                ps.decompressor.release_flow(flow_tuple)
            if flow_id is not None:
                ps.ack_ts_sent.pop(flow_id, None)
                ps.echo_seen.pop(flow_id, None)

    # ------------------------------------------------------------------
    @property
    def compressed_acks(self) -> int:
        return sum(p.compressor.compressed_count
                   for p in self._peers.values())

    @property
    def compressed_bytes(self) -> int:
        return sum(p.compressor.compressed_bytes
                   for p in self._peers.values())

    def decompressor_counters(self) -> Dict[str, int]:
        totals = {"acks_reconstructed": 0, "crc_failures": 0,
                  "unknown_cid": 0, "duplicates_skipped": 0,
                  "damaged_skips": 0, "parse_errors": 0}
        for ps in self._peers.values():
            d = ps.decompressor
            totals["acks_reconstructed"] += d.acks_reconstructed
            totals["crc_failures"] += d.crc_failures
            totals["unknown_cid"] += d.unknown_cid
            totals["duplicates_skipped"] += d.duplicates_skipped
            totals["damaged_skips"] += d.damaged_skips
            totals["parse_errors"] += d.parse_errors
        return totals

    #: Shape of ``rohc_robustness_counters`` even with zero peers —
    #: metrics consumers and shard merges rely on a stable key set.
    ROHC_ROBUSTNESS_KEYS = (
        "mid_frame_aborts", "desync_events", "recoveries",
        "open_desyncs", "recovery_ns_total", "recovery_frames_total",
        "internal_errors", "chain_repairs")

    def rohc_robustness_counters(self) -> Dict[str, int]:
        """Attack-facing containment counters: every decompressor's
        robustness block plus this driver's chain repairs.  All zero
        in cooperative runs (the adversarial oracle pins this)."""
        totals = dict.fromkeys(self.ROHC_ROBUSTNESS_KEYS, 0)
        totals["chain_repairs"] = self.stats.chain_repairs
        for ps in self._peers.values():
            for key, value in \
                    ps.decompressor.robustness_counters().items():
                totals[key] += value
        return totals

    def rohc_failure_count(self) -> int:
        """Cumulative contained decode failures, across peers (the
        telemetry sampler's corruption probe)."""
        total = self.stats.chain_repairs
        for ps in self._peers.values():
            d = ps.decompressor
            total += (d.crc_failures + d.parse_errors
                      + d.mid_frame_aborts + d.internal_errors)
        return total
