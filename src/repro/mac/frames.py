"""MAC frame types.

MPDU sequence numbers are monotonically increasing integers rather than
mod-4096 counters: wraparound is a wire-representation detail that has
no timing consequence, and monotone sequence numbers make window logic
and duplicate detection transparent.  (DESIGN.md records this
deviation.)

``hack_payload`` on ACK / Block ACK frames is the serialised compressed
TCP ACK frame (bytes) that TCP/HACK appends; its length lengthens the
control frame's airtime exactly as in the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from .params import ACK_BYTES, BAR_BYTES, BLOCK_ACK_BYTES, \
    MAC_DATA_OVERHEAD, mpdu_subframe_bytes

_frame_ids = itertools.count(1)


@dataclass
class Mpdu:
    """One MAC data frame (carrying an IP packet or probe payload)."""

    src: Any
    dst: Any
    seq: int
    payload: Any  # object with .byte_length; e.g. TcpSegment, UdpDatagram
    more_data: bool = False
    sync: bool = False
    retry_count: int = 0
    enqueued_at: int = 0
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    @property
    def byte_length(self) -> int:
        return MAC_DATA_OVERHEAD + self.payload.byte_length

    @property
    def is_retransmission(self) -> bool:
        return self.retry_count > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(c for c, on in (("M", self.more_data),
                                        ("S", self.sync),
                                        ("R", self.retry_count > 0)) if on)
        return f"<Mpdu #{self.seq} {self.src}->{self.dst} {flags}>"


@dataclass
class DataFrame:
    """A PPDU carrying a single MPDU (802.11a-style operation)."""

    mpdu: Mpdu
    rate_mbps: float
    is_control: bool = False

    @property
    def byte_length(self) -> int:
        return self.mpdu.byte_length

    @property
    def src(self) -> Any:
        return self.mpdu.src

    @property
    def dst(self) -> Any:
        return self.mpdu.dst

    @property
    def mpdus(self) -> List[Mpdu]:
        return [self.mpdu]

    @property
    def more_data(self) -> bool:
        return self.mpdu.more_data

    @property
    def sync(self) -> bool:
        return self.mpdu.sync


@dataclass
class AmpduFrame:
    """A PPDU aggregating several MPDUs to one receiver (802.11n)."""

    mpdus: List[Mpdu]
    rate_mbps: float
    is_control: bool = False

    def __post_init__(self) -> None:
        if not self.mpdus:
            raise ValueError("A-MPDU must contain at least one MPDU")
        dsts = {m.dst for m in self.mpdus}
        if len(dsts) != 1:
            raise ValueError("all MPDUs in an A-MPDU share one receiver")

    @property
    def byte_length(self) -> int:
        return sum(mpdu_subframe_bytes(m.byte_length) for m in self.mpdus)

    @property
    def src(self) -> Any:
        return self.mpdus[0].src

    @property
    def dst(self) -> Any:
        return self.mpdus[0].dst

    @property
    def more_data(self) -> bool:
        return any(m.more_data for m in self.mpdus)

    @property
    def sync(self) -> bool:
        return any(m.sync for m in self.mpdus)

    @property
    def seq_range(self) -> Tuple[int, int]:
        seqs = [m.seq for m in self.mpdus]
        return min(seqs), max(seqs)


@dataclass
class AckFrame:
    """Single link-layer ACK; may carry a HACK compressed-ACK payload."""

    src: Any
    dst: Any
    acked_seq: int
    hack_payload: Optional[bytes] = None
    rate_mbps: float = 24.0
    is_control: bool = True

    @property
    def byte_length(self) -> int:
        extra = len(self.hack_payload) if self.hack_payload else 0
        return ACK_BYTES + extra


@dataclass
class BlockAckFrame:
    """Block ACK reporting per-MPDU reception; may carry HACK payload."""

    src: Any
    dst: Any
    win_start: int
    acked_seqs: frozenset
    hack_payload: Optional[bytes] = None
    rate_mbps: float = 24.0
    is_control: bool = True

    @property
    def byte_length(self) -> int:
        extra = len(self.hack_payload) if self.hack_payload else 0
        return BLOCK_ACK_BYTES + extra


@dataclass
class BarFrame:
    """Block ACK Request: solicits a Block ACK after one was lost."""

    src: Any
    dst: Any
    win_start: int
    rate_mbps: float = 24.0
    is_control: bool = True

    @property
    def byte_length(self) -> int:
        return BAR_BYTES
