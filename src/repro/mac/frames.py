"""MAC frame types.

MPDU sequence numbers are monotonically increasing integers rather than
mod-4096 counters: wraparound is a wire-representation detail that has
no timing consequence, and monotone sequence numbers make window logic
and duplicate detection transparent.  (DESIGN.md records this
deviation.)

``hack_payload`` on ACK / Block ACK frames is the serialised compressed
TCP ACK frame (bytes) that TCP/HACK appends; its length lengthens the
control frame's airtime exactly as in the paper.

Performance notes (these classes are the per-event hot path):

* Everything here is a ``__slots__`` class, not a dataclass — frames
  are created at MPDU/transmission rate and attribute storage is the
  dominant cost.
* **Geometry is cached at construction.**  ``byte_length`` used to be
  a property re-summing subframe bytes on every access, and it is
  queried by aggregation, the medium, the tracer and DCF duration
  arithmetic; it is now computed exactly once.  The invariants that
  make this sound: an ``Mpdu``'s payload is immutable once wrapped, an
  ``AmpduFrame``'s MPDU tuple is fixed at construction, and the only
  late-bound length contributor — ``hack_payload`` on ACK/Block ACK —
  is a managed property whose setter re-derives the cached length
  (mutation *invalidates correctly* instead of being silently stale).
* Frame ids are allocated by the caller (``DcfMac`` draws them from
  its Simulator's counter, so ids are per-run deterministic —
  identical runs produce identical ids regardless of what else the
  process executed).  Constructing an ``Mpdu`` without an explicit id
  falls back to a module counter, which only direct unit-test
  construction uses.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional, Tuple

from .params import ACK_BYTES, BAR_BYTES, BLOCK_ACK_BYTES, \
    MAC_DATA_OVERHEAD, mpdu_subframe_bytes

#: Fallback allocator for Mpdus constructed without an explicit
#: frame_id (unit tests); simulation paths pass per-Simulator ids.
_frame_ids = itertools.count(1)


class Mpdu:
    """One MAC data frame (carrying an IP packet or probe payload)."""

    __slots__ = ("src", "dst", "seq", "payload", "more_data", "sync",
                 "retry_count", "enqueued_at", "frame_id",
                 "byte_length")

    def __init__(self, src: Any, dst: Any, seq: int, payload: Any,
                 more_data: bool = False, sync: bool = False,
                 retry_count: int = 0, enqueued_at: int = 0,
                 frame_id: Optional[int] = None):
        self.src = src
        self.dst = dst
        self.seq = seq
        self.payload = payload
        self.more_data = more_data
        self.sync = sync
        self.retry_count = retry_count
        self.enqueued_at = enqueued_at
        self.frame_id = next(_frame_ids) if frame_id is None else \
            frame_id
        #: Cached: payloads are immutable once wrapped (retry_count /
        #: flag mutations never change the frame's length).
        self.byte_length = MAC_DATA_OVERHEAD + payload.byte_length

    @property
    def is_retransmission(self) -> bool:
        return self.retry_count > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(c for c, on in (("M", self.more_data),
                                        ("S", self.sync),
                                        ("R", self.retry_count > 0)) if on)
        return f"<Mpdu #{self.seq} {self.src}->{self.dst} {flags}>"


def mpdu_byte_length(payload: Any) -> int:
    """Length an :class:`Mpdu` wrapping ``payload`` would have.

    Lets batch construction size prospective MPDUs without building
    (and discarding) real frame objects.
    """
    return MAC_DATA_OVERHEAD + payload.byte_length


class DataFrame:
    """A PPDU carrying a single MPDU (802.11a-style operation)."""

    __slots__ = ("mpdu", "rate_mbps", "is_control", "byte_length")

    def __init__(self, mpdu: Mpdu, rate_mbps: float,
                 is_control: bool = False):
        self.mpdu = mpdu
        self.rate_mbps = rate_mbps
        self.is_control = is_control
        self.byte_length = mpdu.byte_length

    @property
    def src(self) -> Any:
        return self.mpdu.src

    @property
    def dst(self) -> Any:
        return self.mpdu.dst

    @property
    def mpdus(self) -> List[Mpdu]:
        return [self.mpdu]

    @property
    def more_data(self) -> bool:
        return self.mpdu.more_data

    @property
    def sync(self) -> bool:
        return self.mpdu.sync


class AmpduFrame:
    """A PPDU aggregating several MPDUs to one receiver (802.11n)."""

    __slots__ = ("mpdus", "rate_mbps", "is_control", "byte_length",
                 "src", "dst")

    def __init__(self, mpdus, rate_mbps: float,
                 is_control: bool = False):
        mpdus = tuple(mpdus)
        if not mpdus:
            raise ValueError("A-MPDU must contain at least one MPDU")
        first_dst = mpdus[0].dst
        for m in mpdus:
            if m.dst != first_dst:
                raise ValueError(
                    "all MPDUs in an A-MPDU share one receiver")
        #: Immutable after construction (a tuple): the cached aggregate
        #: length below can never go stale.
        self.mpdus = mpdus
        self.rate_mbps = rate_mbps
        self.is_control = is_control
        self.byte_length = sum(
            mpdu_subframe_bytes(m.byte_length) for m in mpdus)
        self.src = mpdus[0].src
        self.dst = first_dst

    @property
    def more_data(self) -> bool:
        return any(m.more_data for m in self.mpdus)

    @property
    def sync(self) -> bool:
        return any(m.sync for m in self.mpdus)

    @property
    def seq_range(self) -> Tuple[int, int]:
        seqs = [m.seq for m in self.mpdus]
        return min(seqs), max(seqs)


class _HackCarrier:
    """Shared machinery for control frames that may carry a HACK
    payload: ``hack_payload`` is a managed property so assigning a new
    payload after construction re-derives the cached ``byte_length``
    instead of leaving it stale."""

    __slots__ = ()
    _STOCK_BYTES = 0

    @property
    def hack_payload(self) -> Optional[bytes]:
        return self._hack_payload

    @hack_payload.setter
    def hack_payload(self, payload: Optional[bytes]) -> None:
        self._hack_payload = payload
        self.byte_length = self._STOCK_BYTES + \
            (len(payload) if payload else 0)


class AckFrame(_HackCarrier):
    """Single link-layer ACK; may carry a HACK compressed-ACK payload."""

    __slots__ = ("src", "dst", "acked_seq", "_hack_payload",
                 "rate_mbps", "is_control", "byte_length")
    _STOCK_BYTES = ACK_BYTES

    def __init__(self, src: Any, dst: Any, acked_seq: int,
                 hack_payload: Optional[bytes] = None,
                 rate_mbps: float = 24.0, is_control: bool = True):
        self.src = src
        self.dst = dst
        self.acked_seq = acked_seq
        self.rate_mbps = rate_mbps
        self.is_control = is_control
        self.hack_payload = hack_payload   # setter caches byte_length


class BlockAckFrame(_HackCarrier):
    """Block ACK reporting per-MPDU reception; may carry HACK payload."""

    __slots__ = ("src", "dst", "win_start", "acked_seqs",
                 "_hack_payload", "rate_mbps", "is_control",
                 "byte_length")
    _STOCK_BYTES = BLOCK_ACK_BYTES

    def __init__(self, src: Any, dst: Any, win_start: int,
                 acked_seqs: frozenset,
                 hack_payload: Optional[bytes] = None,
                 rate_mbps: float = 24.0, is_control: bool = True):
        self.src = src
        self.dst = dst
        self.win_start = win_start
        self.acked_seqs = acked_seqs
        self.rate_mbps = rate_mbps
        self.is_control = is_control
        self.hack_payload = hack_payload   # setter caches byte_length


class BarFrame:
    """Block ACK Request: solicits a Block ACK after one was lost."""

    __slots__ = ("src", "dst", "win_start", "rate_mbps", "is_control",
                 "byte_length")

    def __init__(self, src: Any, dst: Any, win_start: int,
                 rate_mbps: float = 24.0, is_control: bool = True):
        self.src = src
        self.dst = dst
        self.win_start = win_start
        self.rate_mbps = rate_mbps
        self.is_control = is_control
        self.byte_length = BAR_BYTES
