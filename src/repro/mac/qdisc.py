"""Queue disciplines for the per-destination MAC transmit queues.

Three disciplines share one deque-shaped contract (``append``,
``popleft``, ``[0]`` peek, ``len``, truthiness, ``filter_out``), so
``DcfMac`` and the A-MPDU batcher stay agnostic:

* ``DropTailQueue`` — FIFO, byte-for-byte the behaviour of the plain
  ``deque`` it replaces (tail drops stay in ``DcfMac.enqueue``), but
  it timestamps arrivals so sojourn percentiles exist for every
  discipline.
* ``CoDelQueue`` — CoDel (RFC 8289): head drops at dequeue when the
  head packet's sojourn time has exceeded ``target`` for at least one
  ``interval``, with the ``interval/sqrt(count)`` control law and
  count decay on re-entry.  Driven entirely by simulated time.
* ``FqCodelQueue`` — FQ-CoDel (RFC 8290): flows hashed by the
  payload's ``flow_id`` into per-flow CoDel sub-queues served by
  deficit round-robin with new-flow priority.

Peek-then-pop coherence: the A-MPDU batcher peeks ``queue[0]`` and
then pops at the same simulated timestamp, so AQM head-dropping is
performed by an idempotent ``_advance(now)`` pass that CoDel runs
before both — the packet returned by a peek is the packet a same-time
pop yields.  Drop-tail (the default on every historical scenario) has
no AQM pass at all: its pop/peek path is kept to the minimum over the
plain ``deque`` it replaced, because these run once per MPDU on the
MAC hot path (the kernel benchmark gate is the regression net).

CoDel never drops the last remaining packet (RFC 8289 §4.1), which
also keeps queue truthiness coherent for the MAC's has-work checks.

Sojourn times are recorded on *successful dequeue* (delivered to the
MAC) into a log-spaced histogram mirroring ``repro.stats.fct`` so the
blocks merge exactly across channel shards.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..sim.units import MS

#: Log-histogram resolution (matches repro.stats.fct.FctAggregator so
#: percentile semantics are familiar and shard merges are exact).
BINS_PER_DECADE = 100
MIN_SOJOURN_MS = 1e-6

#: CoDel defaults (RFC 8289 §4.2-4.3).
CODEL_TARGET_NS = 5 * MS
CODEL_INTERVAL_NS = 100 * MS
#: FQ-CoDel DRR quantum: one full-size Ethernet frame (RFC 8290 §5.2).
FQ_QUANTUM_BYTES = 1514

DISCIPLINES = ("droptail", "codel", "fq_codel")


_floor = math.floor
_log10 = math.log10


def _bin_index(ms: float) -> int:
    return _floor(_log10(max(ms, MIN_SOJOURN_MS)) * BINS_PER_DECADE)


def _bin_value(index: int) -> float:
    return 10.0 ** ((index + 0.5) / BINS_PER_DECADE)


def _histogram_percentile(bins: Dict[int, int], count: int,
                          fraction: float) -> Optional[float]:
    """Rank-interpolated percentile over a sparse {bin: count} dict."""
    if count <= 0:
        return None
    rank = fraction * (count - 1)
    seen = 0
    for index in sorted(bins):
        seen += bins[index]
        if seen > rank:
            return _bin_value(index)
    return _bin_value(max(bins))


class SojournHistogram:
    """Sparse log-histogram of queue sojourn times (milliseconds)."""

    __slots__ = ("bins", "count")

    def __init__(self) -> None:
        self.bins: Dict[int, int] = {}
        self.count = 0

    def record_ns(self, sojourn_ns: int) -> None:
        index = _bin_index(sojourn_ns / MS)
        self.bins[index] = self.bins.get(index, 0) + 1
        self.count += 1

    def percentile(self, fraction: float) -> Optional[float]:
        return _histogram_percentile(self.bins, self.count, fraction)

    def as_dict(self) -> Dict[str, int]:
        return {str(i): self.bins[i] for i in sorted(self.bins)}


class QdiscStats:
    """Counters shared by every per-destination queue of one MAC."""

    __slots__ = ("drops", "marks", "dequeued", "sojourn")

    def __init__(self) -> None:
        self.drops = 0          # AQM (head) drops; tail drops are MAC's
        self.marks = 0          # reserved for ECN
        self.dequeued = 0
        self.sojourn = SojournHistogram()

    def on_dequeue(self, sojourn_ns: int) -> None:
        # Hot path (once per delivered MPDU): the histogram update is
        # inlined rather than delegated through record_ns/_bin_index.
        self.dequeued += 1
        ms = sojourn_ns / MS
        if ms < MIN_SOJOURN_MS:
            ms = MIN_SOJOURN_MS
        index = _floor(_log10(ms) * BINS_PER_DECADE)
        hist = self.sojourn
        bins = hist.bins
        bins[index] = bins.get(index, 0) + 1
        hist.count += 1

    def block(self, discipline: str) -> Dict[str, Any]:
        return {
            "discipline": discipline,
            "drops": self.drops,
            "marks": self.marks,
            "dequeued": self.dequeued,
            "sojourn_bins": self.sojourn.as_dict(),
            "sojourn_p50_ms": self.sojourn.percentile(0.50),
            "sojourn_p99_ms": self.sojourn.percentile(0.99),
        }


class DropTailQueue:
    """FIFO with arrival timestamps; drop policy stays at the tail
    (enforced by ``DcfMac.enqueue`` via ``queue_limit``)."""

    __slots__ = ("sim", "stats", "_items")

    def __init__(self, sim, stats: QdiscStats) -> None:
        self.sim = sim
        self.stats = stats
        self._items: deque = deque()   # (payload, enqueued_ns)

    # -- deque contract -------------------------------------------------
    def append(self, payload: Any) -> None:
        self._items.append((payload, self.sim.now))

    def popleft(self) -> Any:
        payload, enqueued_ns = self._items.popleft()
        self.stats.on_dequeue(self.sim.now - enqueued_ns)
        return payload

    def __getitem__(self, index: int) -> Any:
        if index != 0:
            raise IndexError("qdisc queues only expose the head")
        return self._items[0][0]

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self):
        return (payload for payload, _ in self._items)

    def filter_out(self, predicate: Callable[[Any], bool]) -> List[Any]:
        """Withdraw payloads matching ``predicate`` (order preserved)."""
        kept, removed = deque(), []
        for payload, enqueued_ns in self._items:
            if predicate(payload):
                removed.append(payload)
            else:
                kept.append((payload, enqueued_ns))
        self._items = kept
        return removed


class CoDelQueue(DropTailQueue):
    """CoDel head-drop AQM over the timestamped FIFO."""

    __slots__ = ("target_ns", "interval_ns", "_first_above", "_dropping",
                 "_count", "_drop_next")

    def __init__(self, sim, stats: QdiscStats,
                 target_ns: int = CODEL_TARGET_NS,
                 interval_ns: int = CODEL_INTERVAL_NS) -> None:
        super().__init__(sim, stats)
        self.target_ns = target_ns
        self.interval_ns = interval_ns
        self._first_above = 0     # when sojourn first crossed target
        self._dropping = False
        self._count = 0           # drops in the current dropping state
        self._drop_next = 0       # absolute time of the next drop

    def popleft(self) -> Any:
        self._advance(self.sim.now)
        return super().popleft()

    def __getitem__(self, index: int) -> Any:
        if index != 0:
            raise IndexError("qdisc queues only expose the head")
        self._advance(self.sim.now)
        return self._items[0][0]

    def _control_gap_ns(self) -> int:
        return max(1, int(self.interval_ns / math.sqrt(self._count)))

    def _drop_head(self) -> None:
        self._items.popleft()
        self.stats.drops += 1

    def _advance(self, now: int) -> None:
        while self._items:
            _, enqueued_ns = self._items[0]
            sojourn = now - enqueued_ns
            if sojourn < self.target_ns or len(self._items) <= 1:
                # Below target (or a single packet — never drop the
                # last one): leave the dropping state.
                self._first_above = 0
                self._dropping = False
                return
            if self._first_above == 0:
                self._first_above = now + self.interval_ns
                return
            if now < self._first_above:
                return
            # Sojourn has stayed above target for a full interval.
            if not self._dropping:
                self._dropping = True
                if (now - self._drop_next < self.interval_ns
                        and self._count > 2):
                    # Re-entered soon after leaving: resume the drop
                    # rate rather than restarting from one.
                    self._count -= 2
                else:
                    self._count = 1
                self._drop_head()
                self._drop_next = now + self._control_gap_ns()
            elif now >= self._drop_next:
                self._count += 1
                self._drop_head()
                self._drop_next = self._drop_next + self._control_gap_ns()
            else:
                return


#: Bucket key for payloads without a ``flow_id`` (e.g. UDP background
#: datagrams).  A real sentinel, not ``None`` — ``None`` would collide
#: with the scheduler's "no flow eligible" result.
_NO_FLOW = "__no_flow__"


class _FqFlow:
    __slots__ = ("queue", "deficit")

    def __init__(self, queue: CoDelQueue, deficit: int) -> None:
        self.queue = queue
        self.deficit = deficit


class FqCodelQueue:
    """FQ-CoDel: per-flow CoDel sub-queues under DRR with new-flow
    priority.  Flow key is the payload's ``flow_id`` (payloads without
    one share a single bucket).

    Simplification vs RFC 8290: a flow whose sub-queue empties is
    forgotten immediately (it re-enters as a new flow on its next
    packet) instead of lingering on the old-flow list for one round.
    """

    __slots__ = ("sim", "stats", "target_ns", "interval_ns",
                 "quantum_bytes", "_flows", "_new", "_old", "_len")

    def __init__(self, sim, stats: QdiscStats,
                 target_ns: int = CODEL_TARGET_NS,
                 interval_ns: int = CODEL_INTERVAL_NS,
                 quantum_bytes: int = FQ_QUANTUM_BYTES) -> None:
        self.sim = sim
        self.stats = stats
        self.target_ns = target_ns
        self.interval_ns = interval_ns
        self.quantum_bytes = quantum_bytes
        self._flows: Dict[Any, _FqFlow] = {}
        self._new: deque = deque()
        self._old: deque = deque()
        self._len = 0

    # -- deque contract -------------------------------------------------
    def append(self, payload: Any) -> None:
        key = getattr(payload, "flow_id", _NO_FLOW)
        flow = self._flows.get(key)
        if flow is None:
            flow = _FqFlow(
                CoDelQueue(self.sim, self.stats,
                           self.target_ns, self.interval_ns),
                self.quantum_bytes)
            self._flows[key] = flow
            self._new.append(key)
        before = len(flow.queue)
        flow.queue.append(payload)
        self._len += len(flow.queue) - before

    def popleft(self) -> Any:
        key = self._schedule()
        if key is None:
            raise IndexError("pop from an empty FQ-CoDel queue")
        flow = self._flows[key]
        before = len(flow.queue)
        payload = flow.queue.popleft()
        self._len -= before - len(flow.queue)
        flow.deficit -= getattr(payload, "byte_length", None) \
            or self.quantum_bytes
        if not flow.queue:
            self._forget(key)
        return payload

    def __getitem__(self, index: int) -> Any:
        if index != 0:
            raise IndexError("qdisc queues only expose the head")
        key = self._schedule()
        if key is None:
            raise IndexError("peek into an empty FQ-CoDel queue")
        return self._flows[key].queue[0]

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __iter__(self):
        for lst in (self._new, self._old):
            for key in lst:
                yield from self._flows[key].queue

    def filter_out(self, predicate: Callable[[Any], bool]) -> List[Any]:
        removed: List[Any] = []
        for key in list(self._new) + list(self._old):
            flow = self._flows[key]
            before = len(flow.queue)
            removed.extend(flow.queue.filter_out(predicate))
            self._len -= before - len(flow.queue)
            if not flow.queue:
                self._forget(key)
        return removed

    # -- DRR scheduler --------------------------------------------------
    def _forget(self, key: Any) -> None:
        del self._flows[key]
        try:
            self._new.remove(key)
        except ValueError:
            self._old.remove(key)

    def _schedule(self) -> Optional[Any]:
        """Pick the flow whose head is next to go.

        Idempotent at a fixed simulated time: state only changes when a
        head flow is empty (forgotten) or out of deficit (refilled and
        rotated), so peek-then-pop resolves to the same packet.
        """
        while True:
            if self._new:
                lst, key = self._new, self._new[0]
            elif self._old:
                lst, key = self._old, self._old[0]
            else:
                return None
            flow = self._flows[key]
            before = len(flow.queue)
            flow.queue._advance(self.sim.now)
            self._len -= before - len(flow.queue)
            if not flow.queue:
                self._forget(key)
                continue
            if flow.deficit <= 0:
                flow.deficit += self.quantum_bytes
                lst.popleft()
                self._old.append(key)
                continue
            return key


def make_queue(sim, params, stats: QdiscStats):
    """Build one per-destination queue per ``MacParams``."""
    discipline = params.queue_discipline
    if discipline == "droptail":
        return DropTailQueue(sim, stats)
    if discipline == "codel":
        return CoDelQueue(sim, stats, params.codel_target_ns,
                          params.codel_interval_ns)
    if discipline == "fq_codel":
        return FqCodelQueue(sim, stats, params.codel_target_ns,
                            params.codel_interval_ns,
                            params.fq_quantum_bytes)
    raise ValueError(f"unknown queue discipline {discipline!r}")


# ----------------------------------------------------------------------
# Aggregation helpers (scenario metrics + shard merge)
# ----------------------------------------------------------------------
def merge_aqm_blocks(blocks: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-MAC (or per-shard) AQM blocks into one.

    Pure function of the inputs — merged-then-summarised percentiles
    are bit-identical whether the blocks come from one simulator or
    from per-channel shards.
    """
    blocks = list(blocks)
    discipline = blocks[0]["discipline"] if blocks else "droptail"
    merged: Dict[str, Any] = {
        "discipline": discipline,
        "drops": 0, "marks": 0, "dequeued": 0,
    }
    bins: Dict[int, int] = {}
    for block in blocks:
        merged["drops"] += block["drops"]
        merged["marks"] += block["marks"]
        merged["dequeued"] += block["dequeued"]
        for index, count in block["sojourn_bins"].items():
            index = int(index)
            bins[index] = bins.get(index, 0) + count
    count = sum(bins.values())
    merged["sojourn_bins"] = {str(i): bins[i] for i in sorted(bins)}
    merged["sojourn_p50_ms"] = _histogram_percentile(bins, count, 0.50)
    merged["sojourn_p99_ms"] = _histogram_percentile(bins, count, 0.99)
    return merged
