"""Transmit rate adaptation.

The paper sidesteps rate adaptation ("In lieu of simulating bit rate
adaptation explicitly, at each particular distance we simulate a
download at a rate selected from a range...") and reports the envelope
an *ideal* algorithm would achieve.  This module provides real
adapters so the envelope can be compared against something achievable:

* :class:`FixedRate` — the paper's per-run fixed rate.
* :class:`Aarf` — Adaptive ARF (Lacage et al.): step the rate up after
  a run of consecutive successes, step down after two consecutive
  failures; a failed probe doubles the success threshold required
  before the next probe (up to a cap), which stops ARF's pathological
  up/down oscillation on stable channels.

For aggregate exchanges, the MAC reports a per-batch delivery ratio;
ratios above :data:`SUCCESS_RATIO` count as success, below
:data:`FAILURE_RATIO` as failure, and the band in between is neutral
(one lost MPDU out of 40 should not trigger a downshift).
"""

from __future__ import annotations

from typing import Sequence

SUCCESS_RATIO = 0.9
FAILURE_RATIO = 0.5


class RateController:
    """Interface: per-(station, destination) transmit rate policy."""

    def current_rate(self) -> float:
        raise NotImplementedError

    def on_success(self) -> None:
        """One exchange delivered cleanly."""

    def on_failure(self) -> None:
        """One exchange failed (no response / most MPDUs lost)."""

    def on_ratio(self, delivered: int, total: int) -> None:
        """Aggregate exchange outcome as a delivery ratio."""
        if total <= 0:
            return
        ratio = delivered / total
        if ratio >= SUCCESS_RATIO:
            self.on_success()
        elif ratio < FAILURE_RATIO:
            self.on_failure()


class FixedRate(RateController):
    """No adaptation: always the configured rate."""

    def __init__(self, rate_mbps: float):
        self.rate_mbps = rate_mbps

    def current_rate(self) -> float:
        return self.rate_mbps


class Aarf(RateController):
    """Adaptive Auto Rate Fallback."""

    def __init__(self, rates: Sequence[float],
                 initial_rate: float = None,
                 min_success_threshold: int = 10,
                 max_success_threshold: int = 160):
        if not rates:
            raise ValueError("rate ladder must not be empty")
        self.rates = sorted(rates)
        if initial_rate is None:
            self._index = len(self.rates) - 1
        else:
            if initial_rate not in self.rates:
                raise ValueError(f"{initial_rate} not in ladder")
            self._index = self.rates.index(initial_rate)
        self.min_success_threshold = min_success_threshold
        self.max_success_threshold = max_success_threshold
        self._success_threshold = min_success_threshold
        self._successes = 0
        self._failures = 0
        self._just_probed = False
        # Counters for analysis.
        self.upshifts = 0
        self.downshifts = 0
        self.probe_failures = 0

    def current_rate(self) -> float:
        return self.rates[self._index]

    def on_success(self) -> None:
        self._failures = 0
        self._successes += 1
        self._just_probed = False
        if (self._successes >= self._success_threshold
                and self._index < len(self.rates) - 1):
            self._index += 1
            self.upshifts += 1
            self._successes = 0
            self._just_probed = True

    def on_failure(self) -> None:
        self._successes = 0
        self._failures += 1
        if self._just_probed:
            # The probe rate failed immediately: back off and demand a
            # longer success run before probing again (the "adaptive"
            # part of AARF).
            self._success_threshold = min(
                2 * self._success_threshold, self.max_success_threshold)
            self.probe_failures += 1
            self._index -= 1
            self.downshifts += 1
            self._failures = 0
            self._just_probed = False
            return
        if self._failures >= 2 and self._index > 0:
            self._index -= 1
            self.downshifts += 1
            self._failures = 0
            self._success_threshold = self.min_success_threshold
