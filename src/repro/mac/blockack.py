"""Block ACK agreement state (802.11n).

Split into two pure-logic classes with no simulator dependencies so the
window/dedup rules are directly unit-testable:

* :class:`BlockAckOriginator` — transmit side: tracks the in-flight
  batch, the retry queue, and the 64-MPDU originator window; resolves a
  received Block ACK bitmap into delivered / requeued / dropped MPDUs,
  and handles the give-up path (BAR retries exhausted) that triggers
  the paper's SYNC bit.
* :class:`BlockAckRecipient` — receive side: duplicate filter plus the
  scoreboard from which Block ACK bitmaps are generated.

Sequence numbers are monotone integers (see ``frames.py``).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Tuple

from .frames import Mpdu

#: Block ACK window size (MPDUs) per 802.11n.
BLOCK_ACK_WINDOW = 64


class BlockAckOriginator:
    """Transmit-side Block ACK bookkeeping for one (sender, receiver) pair."""

    def __init__(self, retry_limit: int = 7,
                 window: int = BLOCK_ACK_WINDOW):
        self.retry_limit = retry_limit
        self.window = window
        #: MPDUs from the last transmitted batch awaiting a Block ACK.
        self.in_flight: List[Mpdu] = []
        #: Failed MPDUs waiting to ride in the next batch (seq order).
        self.retry_queue: List[Mpdu] = []
        self.next_seq = 0

    # ------------------------------------------------------------------
    def allocate_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    @property
    def window_start(self) -> int:
        """Oldest unresolved sequence number (the originator window base)."""
        seqs = [m.seq for m in self.retry_queue] + \
               [m.seq for m in self.in_flight]
        return min(seqs) if seqs else self.next_seq

    @property
    def window_limit(self) -> int:
        """First sequence number NOT transmittable yet."""
        return self.window_start + self.window

    def mark_in_flight(self, mpdus: Iterable[Mpdu]) -> None:
        """Record the batch just transmitted (call at TX start)."""
        if self.in_flight:
            raise RuntimeError("previous batch not yet resolved")
        self.in_flight = list(mpdus)

    # ------------------------------------------------------------------
    def on_block_ack(self, acked_seqs: FrozenSet[int]
                     ) -> Tuple[List[Mpdu], List[Mpdu], List[Mpdu]]:
        """Resolve the in-flight batch against a Block ACK bitmap.

        Returns ``(delivered, requeued, dropped)``.
        """
        delivered: List[Mpdu] = []
        requeued: List[Mpdu] = []
        dropped: List[Mpdu] = []
        for mpdu in self.in_flight:
            if mpdu.seq in acked_seqs:
                delivered.append(mpdu)
            else:
                mpdu.retry_count += 1
                if mpdu.retry_count > self.retry_limit:
                    dropped.append(mpdu)
                else:
                    requeued.append(mpdu)
        self.in_flight = []
        self._merge_retries(requeued)
        return delivered, requeued, dropped

    def on_give_up(self) -> Tuple[List[Mpdu], List[Mpdu]]:
        """BAR retries exhausted: the Block ACK will never arrive.

        All unresolved MPDUs are retried (the receiver may or may not
        have them; its duplicate filter disambiguates), subject to the
        per-MPDU retry limit.  Returns ``(requeued, dropped)``.
        """
        requeued: List[Mpdu] = []
        dropped: List[Mpdu] = []
        for mpdu in self.in_flight:
            mpdu.retry_count += 1
            if mpdu.retry_count > self.retry_limit:
                dropped.append(mpdu)
            else:
                requeued.append(mpdu)
        self.in_flight = []
        self._merge_retries(requeued)
        return requeued, dropped

    def _merge_retries(self, mpdus: List[Mpdu]) -> None:
        self.retry_queue.extend(mpdus)
        self.retry_queue.sort(key=lambda m: m.seq)

    def has_backlog(self) -> bool:
        return bool(self.retry_queue)


class BlockAckRecipient:
    """Receive-side scoreboard, duplicate filter, and reorder buffer.

    802.11n recipients deliver MSDUs **in order**: an MPDU received
    ahead of a hole waits in the reorder buffer until the hole fills
    (the originator retries it in the next A-MPDU) or the originator's
    window moves past it (the MPDU hit its retry limit and was
    dropped).  Without this, every link-layer loss would surface as
    TCP-visible reordering and trigger spurious fast retransmits.
    """

    def __init__(self, window: int = BLOCK_ACK_WINDOW,
                 history: int = 1024):
        self.window = window
        self.history = history
        self._seen = set()
        self.max_seq = -1
        self.next_expected = 0
        self._reorder: dict = {}

    def record(self, mpdu: Mpdu) -> bool:
        """Note an FCS-passing MPDU.  True if new (not seen before),
        False if a duplicate (silently discarded, still Block-ACKed)."""
        is_new = mpdu.seq not in self._seen
        self._seen.add(mpdu.seq)
        if mpdu.seq > self.max_seq:
            self.max_seq = mpdu.seq
        self._prune()
        return is_new

    def insert(self, mpdu: Mpdu) -> List[Mpdu]:
        """Place a *new* MPDU into the reorder buffer; returns the
        MPDUs now deliverable to the upper layer, in sequence order."""
        if mpdu.seq < self.next_expected:
            # Behind an abandoned gap: deliver immediately (late but
            # better than never; upper layers tolerate it).
            return [mpdu]
        self._reorder[mpdu.seq] = mpdu
        out: List[Mpdu] = []
        while self.next_expected in self._reorder:
            out.append(self._reorder.pop(self.next_expected))
            self.next_expected += 1
        # Window rule: a hole the originator has moved its 64-frame
        # window past will never fill — skip it.
        while (self._reorder
               and self.max_seq - self.next_expected >= self.window):
            self.next_expected = min(self._reorder)
            while self.next_expected in self._reorder:
                out.append(self._reorder.pop(self.next_expected))
                self.next_expected += 1
        return out

    @property
    def reorder_depth(self) -> int:
        return len(self._reorder)

    def _prune(self) -> None:
        if len(self._seen) > 2 * self.history:
            floor = self.max_seq - self.history
            self._seen = {s for s in self._seen if s >= floor}

    def acked_set(self, start: int) -> FrozenSet[int]:
        """Scoreboard bitmap covering [start, start + window)."""
        end = start + self.window
        return frozenset(s for s in self._seen if start <= s < end)

    def has_seen(self, seq: int) -> bool:
        return seq in self._seen
