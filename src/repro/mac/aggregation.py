"""A-MPDU batch construction.

A batch is bounded by four limits, all from 802.11n / the paper:

* 65 535-byte maximum A-MPDU length (the "64 KByte A-MPDU bound"),
* 64 MPDUs (the Block ACK window),
* the EDCA TXOP airtime limit (4 ms in the paper's experiments, which
  caps batch size at the lower PHY rates — Fig 11's observation), and
* the originator window: no MPDU with seq >= window_start + 64 may be
  sent while older MPDUs are unresolved.

Retried MPDUs (lowest sequence numbers) are always placed first.
"""

from __future__ import annotations

from typing import Callable, Deque, List

from ..phy.params import PhyParams
from .blockack import BlockAckOriginator
from .frames import Mpdu, mpdu_byte_length
from .params import MacParams, mpdu_subframe_bytes


def build_batch(originator: BlockAckOriginator,
                new_queue: Deque,
                make_mpdu: Callable[[object, int], Mpdu],
                params: MacParams,
                phy: PhyParams,
                rate_mbps: float) -> List[Mpdu]:
    """Drain retries + fresh payloads into one A-MPDU worth of MPDUs.

    ``new_queue`` holds higher-layer payloads not yet assigned MPDUs;
    ``make_mpdu(payload, seq)`` wraps one into an MPDU.  The queue is
    consumed only for payloads that fit this batch.
    """
    batch: List[Mpdu] = []
    total_bytes = 0
    window_limit = originator.window_limit

    def airtime_ok(extra_bytes: int) -> bool:
        if params.txop_limit_ns is None:
            return True
        duration = phy.frame_duration_ns(total_bytes + extra_bytes,
                                         rate_mbps)
        return duration <= params.txop_limit_ns

    # Retries first (they carry the oldest sequence numbers).
    while originator.retry_queue:
        mpdu = originator.retry_queue[0]
        sub = mpdu_subframe_bytes(mpdu.byte_length)
        if len(batch) >= params.ampdu_max_mpdus:
            break
        if total_bytes + sub > params.ampdu_max_bytes:
            break
        if not airtime_ok(sub):
            break
        originator.retry_queue.pop(0)
        batch.append(mpdu)
        total_bytes += sub

    # Then fresh payloads, respecting the originator window.
    while new_queue:
        payload = new_queue[0]
        if originator.next_seq >= window_limit:
            break
        if len(batch) >= params.ampdu_max_mpdus:
            break
        sub = mpdu_subframe_bytes(mpdu_byte_length(payload))
        if total_bytes + sub > params.ampdu_max_bytes:
            break
        if not airtime_ok(sub):
            break
        new_queue.popleft()
        mpdu = make_mpdu(payload, originator.allocate_seq())
        batch.append(mpdu)
        total_bytes += sub

    return batch


def max_mpdus_for_txop(mpdu_bytes: int, params: MacParams,
                       phy: PhyParams, rate_mbps: float) -> int:
    """How many equal-size MPDUs fit one A-MPDU under all bounds.

    Used by the analytical capacity model (Fig 1) and tests.
    """
    sub = mpdu_subframe_bytes(mpdu_bytes)
    by_bytes = params.ampdu_max_bytes // sub
    best = min(params.ampdu_max_mpdus, by_bytes)
    if params.txop_limit_ns is None:
        return max(1, best)
    n = best
    while n > 1:
        duration = phy.frame_duration_ns(n * sub, rate_mbps)
        if duration <= params.txop_limit_ns:
            break
        n -= 1
    return max(1, n)
