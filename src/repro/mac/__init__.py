"""802.11 MAC: DCF/EDCA, frames, aggregation, Block ACK protocol."""

from .aggregation import build_batch, max_mpdus_for_txop
from .blockack import BLOCK_ACK_WINDOW, BlockAckOriginator, \
    BlockAckRecipient
from .dcf import DcfMac, MacUpper
from .frames import AckFrame, AmpduFrame, BarFrame, BlockAckFrame, \
    DataFrame, Mpdu
from .params import ACK_BYTES, AMPDU_MAX_BYTES, AMPDU_MAX_MPDUS, \
    BAR_BYTES, BLOCK_ACK_BYTES, MAC_DATA_OVERHEAD, MacParams, \
    mpdu_subframe_bytes

__all__ = [
    "DcfMac", "MacUpper", "MacParams", "Mpdu", "DataFrame", "AmpduFrame",
    "AckFrame", "BlockAckFrame", "BarFrame", "BlockAckOriginator",
    "BlockAckRecipient", "BLOCK_ACK_WINDOW", "build_batch",
    "max_mpdus_for_txop", "MAC_DATA_OVERHEAD", "ACK_BYTES",
    "BLOCK_ACK_BYTES", "BAR_BYTES", "AMPDU_MAX_BYTES", "AMPDU_MAX_MPDUS",
    "mpdu_subframe_bytes",
]
