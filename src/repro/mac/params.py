"""MAC-layer constants and per-station configuration.

Sizes follow 802.11-2012:

* Data MPDU overhead: 24-byte MAC header + 2-byte QoS control + 4-byte
  FCS = 30 bytes, plus the 8-byte LLC/SNAP encapsulation for IP
  payloads (38 bytes total over the IP datagram).
* ACK control frame: 14 bytes.  Compressed-bitmap Block ACK: 32 bytes.
  Block ACK Request (BAR): 24 bytes.
* A-MPDU subframes: 4-byte delimiter, MPDU padded to a 4-byte boundary;
  aggregate bounded by 65 535 bytes, 64 MPDUs (the Block ACK window)
  and the EDCA TXOP airtime limit (4 ms in the paper's experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.units import msec

#: MAC header + QoS + FCS over an IP datagram, plus LLC/SNAP.
MAC_DATA_OVERHEAD = 38
#: Control frame sizes (bytes).
ACK_BYTES = 14
BLOCK_ACK_BYTES = 32
BAR_BYTES = 24
#: A-MPDU framing.
AMPDU_DELIMITER_BYTES = 4
AMPDU_MAX_BYTES = 65_535
AMPDU_MAX_MPDUS = 64


@dataclass
class MacParams:
    """Per-station MAC configuration."""

    #: PHY data rate for this station's transmissions (Mbit/s).
    data_rate_mbps: float = 54.0
    #: Enable A-MPDU aggregation + Block ACKs (802.11n mode).
    aggregation: bool = False
    #: Retry limit per MPDU (802.11 dot11LongRetryLimit-style).
    retry_limit: int = 7
    #: Retry limit for BARs before giving up and setting SYNC.
    bar_retry_limit: int = 7
    #: EDCA TXOP limit bounding one A-MPDU's airtime; None = unlimited.
    txop_limit_ns: Optional[int] = msec(4)
    #: Cap on A-MPDU aggregate size in bytes.
    ampdu_max_bytes: int = AMPDU_MAX_BYTES
    #: Cap on MPDUs per A-MPDU (Block ACK window).
    ampdu_max_mpdus: int = AMPDU_MAX_MPDUS
    #: Per-destination transmit queue bound (packets); None = unbounded.
    queue_limit: Optional[int] = None
    #: Queue discipline for the per-destination transmit queues:
    #: "droptail" (classic FIFO), "codel", or "fq_codel".
    queue_discipline: str = "droptail"
    #: CoDel acceptable standing-queue sojourn target (RFC 8289).
    codel_target_ns: int = msec(5)
    #: CoDel sliding observation window.
    codel_interval_ns: int = msec(100)
    #: FQ-CoDel DRR byte quantum (one full Ethernet frame).
    fq_quantum_bytes: int = 1514
    #: Extra delay a (buggy/slow) device adds before its LL ACK response,
    #: beyond SIFS.  SoRa showed ~37 us; commercial NICs 10.4-13.4 us.
    extra_response_delay_ns: int = 0
    #: Extra allowance added to the ACK timeout so that a peer's late LL
    #: ACKs are not treated as losses (the paper "increased the 802.11
    #: ACK timeout" for SoRa).
    ack_timeout_extra_ns: int = 0


def mpdu_subframe_bytes(mpdu_bytes: int) -> int:
    """Bytes one MPDU occupies inside an A-MPDU (delimiter + padding)."""
    padded = (mpdu_bytes + 3) // 4 * 4
    return AMPDU_DELIMITER_BYTES + padded
