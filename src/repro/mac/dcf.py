"""DCF / EDCA medium-access state machine.

One :class:`DcfMac` instance per station.  Responsibilities:

* carrier sense + DIFS/AIFS deference + slotted binary-exponential
  backoff (CW doubling on failed exchanges, post-transmission backoff);
* per-destination transmit queues, round-robin service, drop-tail
  bounds;
* 802.11a operation: single MPDUs, ACK after SIFS, per-frame retries;
* 802.11n operation: A-MPDU batches, Block ACK / BAR exchanges with the
  originator window, per-MPDU retries, SYNC flag after BAR give-up;
* the MORE DATA bit, set exactly when more packets for the same
  destination remain queued after a batch is formed (paper §3.2);
* response generation (ACK / Block ACK) after SIFS plus an optional
  device-specific extra delay (the SoRa late-ACK quirk), with HACK
  payloads obtained from the upper layer at response-build time.

The upper layer (a HACK driver or a plain node) implements
:class:`MacUpper`; all TCP-awareness lives up there, never here — the
MAC treats HACK payloads as opaque bytes, matching the paper's design
goal of NIC simplicity.

Event-ordering subtlety: a station whose backoff expires in the same
slot as another station's transmission start must still transmit (both
committed before carrier could be sensed), so busy notifications only
cancel countdown events scheduled strictly later than "now".

The backoff countdown is *lazy*: instead of one simulator event per
slot, a single expiry event is scheduled ``slots * slot_ns`` ahead when
the medium has stayed idle through the IFS.  A busy transition freezes
the countdown by cancelling that event and crediting the integral
number of fully elapsed slots (a boundary landing exactly on "now"
counts, exactly as the per-slot timer would have decremented before
noticing the busy medium); the remainder resumes after the next
idle + IFS.  This produces bit-identical behaviour to the historical
slotted countdown (kept verbatim in ``tests/mac/slotted_reference.py``
as an oracle) at a fraction of the event cost.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..phy.params import PhyParams
from ..sim.engine import Simulator
from ..sim.medium import DEFAULT_CELL, Medium, MediumListener
from .aggregation import build_batch
from .blockack import BlockAckOriginator, BlockAckRecipient
from .frames import AckFrame, AmpduFrame, BarFrame, BlockAckFrame, \
    DataFrame, Mpdu
from .params import MacParams
from .qdisc import QdiscStats, make_queue


class MacUpper:
    """Upper-layer interface; all methods optional (default no-ops)."""

    def on_mpdu_delivered(self, mpdu: Mpdu, sender: str) -> None:
        """A new (non-duplicate) data MPDU arrived for this station."""

    def on_data_ppdu(self, frame: Any, sender: str,
                     readable_mpdus: List[Mpdu]) -> None:
        """A data PPDU from ``sender`` arrived; ``readable_mpdus`` are
        the FCS-passing MPDUs (duplicates included).  HACK drivers use
        this for MORE DATA latching and implicit-confirmation logic."""

    def hack_payload_for(self, peer: str) -> Optional[bytes]:
        """Compressed TCP ACK bytes to append to an outgoing LL ACK/
        Block ACK towards ``peer`` (None = stock response)."""

    def on_ll_response_tx(self, peer: str, response: Any,
                          hack_payload: Optional[bytes]) -> None:
        """This station just sent ``response`` (possibly augmented)."""

    def on_ll_ack_rx(self, frame: Any, sender: str) -> None:
        """An LL ACK / Block ACK arrived (AP extracts HACK payloads)."""

    def on_bar_rx(self, bar: BarFrame, sender: str) -> None:
        """A Block ACK Request arrived from ``sender``."""

    def on_mpdu_outcome(self, mpdu: Mpdu, delivered: bool) -> None:
        """Sender-side: final fate of a transmitted MPDU."""


class _Job:
    """The MAC's single head-of-line transmission exchange.

    Data jobs are *materialised lazily*: the destination is chosen when
    the job becomes head-of-line, but the batch contents (and therefore
    the MORE DATA bit) are drawn from the queue only when the station
    actually wins the medium — exactly when the paper's AP "forms the
    batch"."""

    __slots__ = ("kind", "dst", "mpdus", "is_batch", "attempts",
                 "bar_retries", "ready_at", "stat_kind", "materialized")

    def __init__(self, kind: str, dst: str, is_batch: bool,
                 ready_at: int):
        self.kind = kind          # "data" or "bar"
        self.dst = dst
        self.mpdus: List[Mpdu] = []
        self.is_batch = is_batch
        self.attempts = 0
        self.bar_retries = 0
        self.ready_at = ready_at
        self.stat_kind = "control"
        self.materialized = kind == "bar"


def _payload_kind(mpdu: Mpdu) -> str:
    return getattr(mpdu.payload, "kind", "data")


class DcfMac(MediumListener):
    """802.11 DCF/EDCA MAC for one station."""

    def __init__(self, sim: Simulator, medium: Medium, phy: PhyParams,
                 address: str, params: MacParams, rng,
                 upper: Optional[MacUpper] = None, stats=None,
                 loss_model=None, rate_control_factory=None,
                 cell: Any = DEFAULT_CELL):
        self.sim = sim
        self.medium = medium
        self.phy = phy
        self.address = address
        self.params = params
        self.rng = rng
        self.upper = upper if upper is not None else MacUpper()
        self.stats = stats
        self.loss_model = loss_model
        #: Co-channel dispatch group (BSS) this station decodes frames
        #: in; stations of other cells only share carrier sense and
        #: collisions with it (see repro.sim.medium).
        self.cell = cell
        #: Per-destination transmit-rate policy (FixedRate by default).
        self.rate_control_factory = rate_control_factory
        self._rate_controllers: Dict[str, Any] = {}
        medium.attach(self, cell=cell)

        # Transmit-side state.  Per-destination queues are built by the
        # configured queue discipline (drop-tail / CoDel / FQ-CoDel);
        # all of one station's queues share a single stats block.
        self._queues: Dict[str, Any] = {}
        self.qdisc_stats = QdiscStats()
        self._dest_order: List[str] = []
        self._rr_index = 0
        self._originators: Dict[str, BlockAckOriginator] = {}
        self._recipients: Dict[str, BlockAckRecipient] = {}
        self._sync_pending: Dict[str, bool] = {}
        self._pending_bars: Deque[str] = deque()

        # Contention state
        self._cw = phy.cw_min
        self._backoff_slots: Optional[int] = None
        self._defer_event = None
        self._backoff_event = None   # the single lazy expiry event
        self._backoff_anchor = 0     # when the running countdown started
        self._idle_since = 0
        self._use_eifs = False

        # Exchange state
        self._current_job: Optional[_Job] = None
        self._transmitting = False
        self._awaiting_response = False
        self._response_timeout_event = None

        # Counters (always kept; richer accounting lives in stats)
        self.enqueued = 0
        self.queue_drops = 0
        self.mpdus_delivered = 0
        self.mpdus_dropped = 0

    # ==================================================================
    # Upper-layer API
    # ==================================================================
    def enqueue(self, payload: Any, dst: str) -> bool:
        """Queue a higher-layer packet for ``dst``.  False on tail drop."""
        queue = self._queue_for(dst)
        if (self.params.queue_limit is not None
                and len(queue) >= self.params.queue_limit):
            self.queue_drops += 1
            return False
        queue.append(payload)
        self.enqueued += 1
        self._maybe_start_contention()
        return True

    def queue_depth(self, dst: str) -> int:
        """Fresh packets queued for ``dst`` (excluding MAC retries)."""
        return len(self._queues.get(dst, ()))

    def backlog(self, dst: str) -> int:
        """Fresh + retry packets pending for ``dst``."""
        extra = 0
        if dst in self._originators:
            orig = self._originators[dst]
            extra = len(orig.retry_queue) + len(orig.in_flight)
        return self.queue_depth(dst) + extra

    def total_backlog(self) -> int:
        """Backlog summed over every destination (telemetry probe:
        the station's whole MAC-level queue occupancy)."""
        destinations = set(self._queues)
        destinations.update(self._originators)
        return sum(self.backlog(dst) for dst in destinations)

    def remove_from_queue(self, dst: str, predicate) -> List[Any]:
        """Withdraw queued (not yet MPDU-wrapped) payloads matching
        ``predicate``.  Used by the opportunistic HACK policy to yank
        vanilla TCP ACKs that can ride a Block ACK instead."""
        queue = self._queues.get(dst)
        if not queue:
            return []
        # Filtering in place (rather than rebuilding the container)
        # preserves the discipline's AQM state and arrival timestamps.
        return queue.filter_out(predicate)

    def _queue_for(self, dst: str):
        if dst not in self._queues:
            self._queues[dst] = make_queue(
                self.sim, self.params, self.qdisc_stats)
            self._dest_order.append(dst)
        return self._queues[dst]

    def aqm_stats(self) -> Dict[str, Any]:
        """This station's queue-discipline counters as a JSON block."""
        return self.qdisc_stats.block(self.params.queue_discipline)

    def _originator_for(self, dst: str) -> BlockAckOriginator:
        if dst not in self._originators:
            self._originators[dst] = BlockAckOriginator(
                retry_limit=self.params.retry_limit)
        return self._originators[dst]

    def _recipient_for(self, src: str) -> BlockAckRecipient:
        if src not in self._recipients:
            self._recipients[src] = BlockAckRecipient()
        return self._recipients[src]

    def rate_controller_for(self, dst: str):
        if dst not in self._rate_controllers:
            if self.rate_control_factory is not None:
                self._rate_controllers[dst] = self.rate_control_factory()
            else:
                from .rate_control import FixedRate
                self._rate_controllers[dst] = FixedRate(
                    self.params.data_rate_mbps)
        return self._rate_controllers[dst]

    def _rate_for(self, dst: str) -> float:
        return self.rate_controller_for(dst).current_rate()

    # ==================================================================
    # Contention
    # ==================================================================
    def _has_work(self) -> bool:
        if self._pending_bars:
            return True
        for dst in self._dest_order:
            if self._queues[dst]:
                return True
            orig = self._originators.get(dst)
            if orig is not None and orig.retry_queue:
                return True
        return False

    def _maybe_start_contention(self) -> None:
        if self._transmitting or self._awaiting_response:
            return
        if self._current_job is None and self._has_work():
            self._build_job()
        if self._current_job is None and self._backoff_slots is None:
            return
        if self.medium.busy:
            return
        if self._defer_event is not None or self._backoff_event is not None:
            return
        ifs = self.phy.eifs_ns if self._use_eifs else self.phy.difs_ns
        elapsed = self.sim.now - self._idle_since
        remaining = max(0, ifs - elapsed)
        self._defer_event = self.sim.schedule(remaining, self._defer_done)

    def _defer_done(self) -> None:
        self._defer_event = None
        if self._backoff_slots is None or self._backoff_slots == 0:
            # Committing to transmit at this instant is legitimate even
            # if another station commits at the same timestamp (neither
            # could have carrier-sensed the other yet) — that is the
            # same-slot collision case.
            self._backoff_slots = None
            if self._current_job is not None:
                self._transmit_job()
            return
        if self.medium.busy:
            # The medium became busy at this very instant; freeze the
            # countdown (it resumes after the next idle + IFS).
            return
        self._backoff_anchor = self.sim.now
        self._backoff_event = self.sim.schedule(
            self._backoff_slots * self.phy.slot_ns, self._backoff_expired)

    def _backoff_expired(self) -> None:
        # The medium stayed idle for the whole countdown (any busy
        # transition would have frozen it), or went busy at this very
        # instant — in which case transmitting anyway is the same-slot
        # collision case, exactly as the slotted countdown behaved.
        self._backoff_event = None
        self._backoff_slots = None
        if self._current_job is not None:
            self._transmit_job()

    def _current_cw(self) -> int:
        """The window backoff is drawn from.  A hook: adversarial
        subclasses (repro.adversary.greedy) cheat by shrinking the
        returned bound while the nominal ``_cw`` ladder — doubling on
        loss, resetting on success — runs unchanged."""
        return self._cw

    def _draw_backoff(self) -> None:
        self._backoff_slots = self.rng.randint(0, self._current_cw())

    def _double_cw(self) -> None:
        self._cw = min(2 * (self._cw + 1) - 1, self.phy.cw_max)

    def _reset_cw(self) -> None:
        self._cw = self.phy.cw_min

    def _cancel_countdown(self, now: int) -> None:
        # Events firing exactly "now" are same-slot commitments: let
        # them run (this is what produces realistic same-slot
        # collisions between desynchronised-but-unlucky stations).
        if self._defer_event is not None:
            if self._defer_event.time > now:
                self._defer_event.cancel()
                self._defer_event = None
        event = self._backoff_event
        if event is not None and event.time > now:
            event.cancel()
            self._backoff_event = None
            # Credit the fully elapsed slots.  A slot boundary landing
            # exactly on "now" counts: the per-slot timer would have
            # decremented at that boundary before seeing the busy
            # medium and freezing.  The expiry event firing at "now"
            # itself is the (kept) same-slot commitment above.
            elapsed = (now - self._backoff_anchor) // self.phy.slot_ns
            if elapsed:
                self._backoff_slots -= elapsed

    # ==================================================================
    # Job construction
    # ==================================================================
    def _build_job(self) -> None:
        now = self.sim.now
        if self._pending_bars:
            dst = self._pending_bars.popleft()
            self._current_job = _Job("bar", dst, is_batch=True,
                                     ready_at=now)
            return
        n = len(self._dest_order)
        for offset in range(n):
            dst = self._dest_order[(self._rr_index + offset) % n]
            queue = self._queues[dst]
            orig = self._originators.get(dst)
            has_retry = orig is not None and bool(orig.retry_queue)
            if not queue and not has_retry:
                continue
            self._rr_index = (self._rr_index + offset + 1) % n
            self._current_job = _Job(
                "data", dst, is_batch=self.params.aggregation,
                ready_at=now)
            return

    def _materialize_job(self, job: _Job) -> bool:
        """Draw the batch from the queue at transmission-grant time.

        Returns False if the queue was drained in the meantime (e.g.
        the opportunistic HACK policy withdrew the packets)."""
        now = self.sim.now
        dst = job.dst
        orig = self._originator_for(dst)
        queue = self._queue_for(dst)
        if job.is_batch:
            def make_mpdu(payload: Any, seq: int) -> Mpdu:
                return Mpdu(src=self.address, dst=dst, seq=seq,
                            payload=payload, enqueued_at=now,
                            frame_id=self.sim.new_frame_id())

            batch = build_batch(orig, queue, make_mpdu, self.params,
                                self.phy, self._rate_for(dst))
            if not batch:
                return False
            more = bool(queue) or bool(orig.retry_queue)
            sync = self._sync_pending.pop(dst, False)
            for mpdu in batch:
                mpdu.more_data = more
                mpdu.sync = sync
            orig.mark_in_flight(batch)
            job.mpdus = batch
        else:
            if orig.retry_queue:
                mpdu = orig.retry_queue.pop(0)
            elif queue:
                payload = queue.popleft()
                mpdu = Mpdu(src=self.address, dst=dst,
                            seq=orig.allocate_seq(), payload=payload,
                            enqueued_at=now,
                            frame_id=self.sim.new_frame_id())
            else:
                return False
            mpdu.more_data = bool(queue) or bool(orig.retry_queue)
            mpdu.sync = self._sync_pending.pop(dst, False)
            job.mpdus = [mpdu]
        job.stat_kind = _payload_kind(job.mpdus[0])
        job.materialized = True
        return True

    # ==================================================================
    # Transmission
    # ==================================================================
    def _transmit_job(self) -> None:
        job = self._current_job
        assert job is not None
        if not job.materialized and not self._materialize_job(job):
            # The queued work vanished (withdrawn by the driver); drop
            # the job without consuming the backoff-completed state.
            self._current_job = None
            self._maybe_start_contention()
            return
        rate = self._rate_for(job.dst)
        if job.kind == "bar":
            orig = self._originator_for(job.dst)
            frame: Any = BarFrame(
                src=self.address, dst=job.dst,
                win_start=orig.window_start,
                rate_mbps=self.phy.control_rate_for(rate))
            duration = self.phy.control_duration_ns(frame.byte_length,
                                                    frame.rate_mbps)
        elif job.is_batch:
            frame = AmpduFrame(mpdus=job.mpdus, rate_mbps=rate)
            duration = self.phy.frame_airtime_ns(frame, rate)
        else:
            frame = DataFrame(mpdu=job.mpdus[0], rate_mbps=rate)
            duration = self.phy.frame_airtime_ns(frame, rate)
        job.attempts += 1
        if self.stats is not None:
            self.stats.on_tx_start(self.address, job, frame, duration,
                                   wait_ns=self.sim.now - job.ready_at)
        self._transmitting = True
        self.medium.transmit(self, frame, duration)
        self.sim.schedule(duration, self._tx_done, job)

    def _tx_done(self, job: _Job) -> None:
        self._transmitting = False
        self._awaiting_response = True
        timeout = (self.phy.ack_timeout_ns()
                   + self.params.ack_timeout_extra_ns)
        self._response_timeout_event = self.sim.schedule(
            timeout, self._response_timeout, priority=1)

    def _response_timeout(self) -> None:
        self._response_timeout_event = None
        busy_until = self.medium.busy_until
        if busy_until is not None:
            # A frame is in flight.  Usually its end event resolves the
            # exchange, but if it is a frame we ourselves are sending
            # (possible with device-delayed responses) no event will
            # reach us, so poll again rather than relying on delivery.
            # The historical poll re-checked every slot; the medium is
            # guaranteed busy until ``busy_until``, so jump straight to
            # the first slot-grid instant that can possibly be idle —
            # the same instant the per-slot poll would have declared
            # failure at, minus the guaranteed-busy wakeups.
            slot = self.phy.slot_ns
            ahead = max(1, -((busy_until - self.sim.now) // -slot))
            self._response_timeout_event = self.sim.schedule(
                ahead * slot, self._response_timeout, priority=1)
            return
        self._attempt_failed()

    # ------------------------------------------------------------------
    def _cancel_response_timeout(self) -> None:
        if self._response_timeout_event is not None:
            self._response_timeout_event.cancel()
            self._response_timeout_event = None

    def _attempt_failed(self) -> None:
        job = self._current_job
        assert job is not None
        self._awaiting_response = False
        self._cancel_response_timeout()
        if self.stats is not None:
            self.stats.on_exchange_failed(self.address, job)
        if job.kind == "bar":
            job.bar_retries += 1
            if job.bar_retries > self.params.bar_retry_limit:
                self._give_up_bar(job)
                return
            self._double_cw()
            self._draw_backoff()
            job.ready_at = self.sim.now
            self._maybe_start_contention()
            return
        if job.is_batch:
            # Block ACK missing: solicit it with a BAR (same dest).
            self.rate_controller_for(job.dst).on_failure()
            job.kind = "bar"
            job.bar_retries = 0
            self._double_cw()
            self._draw_backoff()
            job.ready_at = self.sim.now
            self._maybe_start_contention()
            return
        # Single MPDU: classic retry with CW doubling.
        self.rate_controller_for(job.dst).on_failure()
        mpdu = job.mpdus[0]
        mpdu.retry_count += 1
        if mpdu.retry_count > self.params.retry_limit:
            self.mpdus_dropped += 1
            self.upper.on_mpdu_outcome(mpdu, delivered=False)
            if self.stats is not None:
                self.stats.on_mpdu_dropped(self.address, mpdu)
            self._finish_job(success=False)
            return
        self._double_cw()
        self._draw_backoff()
        job.ready_at = self.sim.now
        self._maybe_start_contention()

    def _give_up_bar(self, job: _Job) -> None:
        """BAR retries exhausted: paper Fig 8 — move on, set SYNC."""
        orig = self._originator_for(job.dst)
        requeued, dropped = orig.on_give_up()
        for mpdu in dropped:
            self.mpdus_dropped += 1
            self.upper.on_mpdu_outcome(mpdu, delivered=False)
            if self.stats is not None:
                self.stats.on_mpdu_dropped(self.address, mpdu)
        self._sync_pending[job.dst] = True
        if self.stats is not None:
            self.stats.on_bar_give_up(self.address, job.dst)
        self._finish_job(success=False)

    def _finish_job(self, success: bool) -> None:
        self._current_job = None
        self._awaiting_response = False
        self._cancel_response_timeout()
        self._reset_cw()
        self._draw_backoff()  # post-transmission backoff
        self._maybe_start_contention()

    # ==================================================================
    # Reception
    # ==================================================================
    def on_channel_busy(self, now: int) -> None:
        self._cancel_countdown(now)

    def on_channel_idle(self, now: int) -> None:
        self._idle_since = now
        self._maybe_start_contention()

    def on_frame_error(self, frame: Any, sender: Any) -> None:
        if self._transmitting:
            return
        self._use_eifs = True
        # A defer already scheduled with DIFS must be stretched to EIFS.
        if self._defer_event is not None:
            self._defer_event.cancel()
            self._defer_event = None
            self._maybe_start_contention()
        if self._awaiting_response:
            self._resolve_awaited(None, None)

    def on_frame_overheard(self, frame: Any, sender: Any) -> None:
        # A frame addressed to another station: all that matters here
        # is carrier-level state (EIFS shrink-back) and the fact that
        # an awaited response did not arrive in this frame.
        if self._transmitting:
            return  # half-duplex: cannot decode while transmitting
        if self._use_eifs:
            # The previous frame was bad but this one is fine: a defer
            # scheduled with EIFS shrinks back to DIFS.
            self._use_eifs = False
            if self._defer_event is not None:
                self._defer_event.cancel()
                self._defer_event = None
                self._maybe_start_contention()
        if self._awaiting_response:
            self._resolve_awaited(None, getattr(sender, "address", sender))

    def on_frame_received(self, frame: Any, sender: Any) -> None:
        # The medium dispatches here only for frames addressed to this
        # station (anything else arrives via on_frame_overheard).
        if self._transmitting:
            return  # half-duplex: cannot decode while transmitting
        if self._use_eifs:
            # The previous frame was bad but this one is fine: a defer
            # scheduled with EIFS shrinks back to DIFS.
            self._use_eifs = False
            if self._defer_event is not None:
                self._defer_event.cancel()
                self._defer_event = None
                self._maybe_start_contention()
        sender_addr = getattr(sender, "address", sender)

        if self._awaiting_response:
            expected = (isinstance(frame, (AckFrame, BlockAckFrame))
                        and frame.src == self._current_job.dst)
            self._resolve_awaited(frame if expected else None, sender_addr)
            if expected:
                return
            # Fall through: an unexpected frame may still need handling
            # (e.g. the peer sent data because our frame was lost).

        if isinstance(frame, (DataFrame, AmpduFrame)):
            self._receive_data(frame, sender, sender_addr)
        elif isinstance(frame, BarFrame):
            self._receive_bar(frame, sender_addr)
        # Stray ACK/Block ACK frames (response to a withdrawn exchange)
        # are ignored.

    # ------------------------------------------------------------------
    def _resolve_awaited(self, response: Optional[Any],
                         sender_addr: Optional[str]) -> None:
        """Called once per frame event while awaiting a response."""
        if response is None:
            self._attempt_failed()
            return
        job = self._current_job
        self._awaiting_response = False
        self._cancel_response_timeout()
        self.upper.on_ll_ack_rx(response, sender_addr)
        if isinstance(response, BlockAckFrame):
            orig = self._originator_for(job.dst)
            delivered, requeued, dropped = orig.on_block_ack(
                response.acked_seqs)
            self.rate_controller_for(job.dst).on_ratio(
                len(delivered),
                len(delivered) + len(requeued) + len(dropped))
            for mpdu in delivered:
                self.mpdus_delivered += 1
                self.upper.on_mpdu_outcome(mpdu, delivered=True)
                if self.stats is not None:
                    self.stats.on_mpdu_delivered(self.address, mpdu)
            for mpdu in dropped:
                self.mpdus_dropped += 1
                self.upper.on_mpdu_outcome(mpdu, delivered=False)
                if self.stats is not None:
                    self.stats.on_mpdu_dropped(self.address, mpdu)
            if self.stats is not None and job.kind == "data":
                self.stats.on_exchange_succeeded(self.address, job)
        else:
            mpdu = job.mpdus[0]
            self.rate_controller_for(job.dst).on_success()
            self.mpdus_delivered += 1
            self.upper.on_mpdu_outcome(mpdu, delivered=True)
            if self.stats is not None:
                self.stats.on_mpdu_delivered(self.address, mpdu)
                self.stats.on_exchange_succeeded(self.address, job)
        self._finish_job(success=True)

    # ------------------------------------------------------------------
    def _receive_data(self, frame: Any, sender: Any,
                      sender_addr: str) -> None:
        recipient = self._recipient_for(sender_addr)
        is_batch = isinstance(frame, AmpduFrame)
        readable: List[Mpdu] = []
        deliverable: List[Mpdu] = []
        for mpdu in frame.mpdus:
            if (self.loss_model is not None
                    and self.loss_model.mpdu_lost(
                        sender, self, mpdu,
                        getattr(frame, "rate_mbps", 0.0))):
                if self.stats is not None:
                    self.stats.on_mpdu_corrupted(self.address, mpdu)
                continue
            readable.append(mpdu)
            if recipient.record(mpdu):
                if is_batch:
                    # A-MPDU path: in-order delivery via the reorder
                    # buffer (holes wait for link-layer retries).
                    deliverable.extend(recipient.insert(mpdu))
                else:
                    deliverable.append(mpdu)
        if not readable:
            # Nothing decodable: behave as if the PPDU were lost
            # (no response; the sender's timeout handles it).
            return
        # HACK drivers learn MORE DATA / SYNC / seq state here, before
        # responses are built.
        self.upper.on_data_ppdu(frame, sender_addr, readable)
        for mpdu in deliverable:
            self.upper.on_mpdu_delivered(mpdu, sender_addr)
        if isinstance(frame, AmpduFrame):
            start = min(m.seq for m in readable)
            self._schedule_response(
                sender_addr, kind="block_ack",
                acked=recipient.acked_set(start),
                win_start=start, elicited_by=frame)
        else:
            self._schedule_response(
                sender_addr, kind="ack",
                acked_seq=readable[0].seq, elicited_by=frame)

    def _receive_bar(self, bar: BarFrame, sender_addr: str) -> None:
        recipient = self._recipient_for(sender_addr)
        self.upper.on_bar_rx(bar, sender_addr)
        self._schedule_response(
            sender_addr, kind="block_ack",
            acked=recipient.acked_set(bar.win_start),
            win_start=bar.win_start, elicited_by=bar)

    # ------------------------------------------------------------------
    # Responses (sent after SIFS, no contention)
    # ------------------------------------------------------------------
    def _schedule_response(self, peer: str, kind: str,
                           elicited_by: Any, acked=None,
                           win_start: int = 0,
                           acked_seq: int = 0) -> None:
        delay = self.phy.sifs_ns + self.params.extra_response_delay_ns
        self.sim.schedule(delay, self._send_response, peer, kind,
                          elicited_by, acked, win_start, acked_seq,
                          priority=-2)

    def _send_response(self, peer: str, kind: str, elicited_by: Any,
                       acked, win_start: int, acked_seq: int) -> None:
        rate = self.phy.control_rate_for(
            getattr(elicited_by, "rate_mbps",
                    self.params.data_rate_mbps))
        payload = self.upper.hack_payload_for(peer)
        if kind == "block_ack":
            response: Any = BlockAckFrame(
                src=self.address, dst=peer, win_start=win_start,
                acked_seqs=acked, hack_payload=payload, rate_mbps=rate)
        else:
            response = AckFrame(
                src=self.address, dst=peer, acked_seq=acked_seq,
                hack_payload=payload, rate_mbps=rate)
        duration = self.phy.control_duration_ns(response.byte_length,
                                                rate)
        if self.stats is not None:
            stock_bytes = response.byte_length - (
                len(payload) if payload else 0)
            stock = self.phy.control_duration_ns(stock_bytes, rate)
            self.stats.on_ll_response(
                self.address, response, duration, stock,
                elicited_by, self.phy,
                extra_delay=self.params.extra_response_delay_ns)
        self.medium.transmit(self, response, duration)
        self.upper.on_ll_response_tx(peer, response, payload)
