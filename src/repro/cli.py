"""Top-level command-line interface.

Two subcommands::

    python -m repro.cli simulate --phy 11n --rate 150 --clients 4 \\
        --policy more_data --duration 4 --seed 2
    python -m repro.cli experiments fig10 fig11 --quick

``simulate`` runs one scenario and prints a human-readable report;
``experiments`` forwards to :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.policies import HackPolicy
from .experiments import runner as experiments_runner
from .sim.units import MS, SEC, usec
from .workloads.scenarios import LossSpec, ScenarioConfig, run_scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TCP/HACK reproduction (USENIX ATC 2014)")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one scenario")
    sim.add_argument("--phy", choices=("11a", "11n"), default="11n")
    sim.add_argument("--rate", type=float, default=150.0,
                     help="PHY data rate in Mbps")
    sim.add_argument("--clients", type=int, default=1)
    sim.add_argument("--flows-per-client", type=int, default=1)
    sim.add_argument("--policy",
                     choices=[p.value for p in HackPolicy],
                     default="more_data")
    sim.add_argument("--traffic",
                     choices=("tcp_download", "tcp_upload",
                              "udp_download"),
                     default="tcp_download")
    sim.add_argument("--duration", type=float, default=4.0,
                     help="simulated seconds")
    sim.add_argument("--warmup", type=float, default=None,
                     help="warm-up seconds (default: duration/2)")
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--loss", type=float, default=0.0,
                     help="uniform per-MPDU loss probability")
    sim.add_argument("--snr", type=float, default=None,
                     help="SNR in dB (overrides --loss)")
    sim.add_argument("--aarf", action="store_true",
                     help="enable AARF rate adaptation")
    sim.add_argument("--sora", action="store_true",
                     help="emulate SoRa's late LL ACKs")

    exp = sub.add_parser("experiments",
                         help="reproduce paper tables/figures")
    exp.add_argument("names", nargs="+",
                     choices=sorted(experiments_runner.EXPERIMENTS)
                     + ["all"])
    exp.add_argument("--quick", action="store_true")
    return parser


def _simulate(args: argparse.Namespace) -> int:
    duration = int(args.duration * SEC)
    warmup = int(args.warmup * SEC) if args.warmup is not None \
        else duration // 2
    if args.snr is not None:
        loss = LossSpec(kind="snr", snr_db=args.snr)
    elif args.loss > 0:
        loss = LossSpec(kind="uniform", data_loss=args.loss)
    else:
        loss = LossSpec()
    config = ScenarioConfig(
        phy_mode=args.phy, data_rate_mbps=args.rate,
        n_clients=args.clients,
        flows_per_client=args.flows_per_client,
        policy=HackPolicy(args.policy), traffic=args.traffic,
        duration_ns=duration, warmup_ns=warmup, seed=args.seed,
        loss=loss,
        rate_adaptation="aarf" if args.aarf else None,
        extra_response_delay_ns=usec(37) if args.sora else 0,
        ack_timeout_extra_ns=usec(60) if args.sora else 0,
        stagger_ns=50 * MS)
    result = run_scenario(config)
    print(f"aggregate goodput : "
          f"{result.aggregate_goodput_mbps:8.2f} Mbps")
    for flow_id, goodput in sorted(
            result.per_flow_goodput_mbps.items()):
        label = f"flow {flow_id}" if flow_id > 0 else \
            f"udp sink {-flow_id}"
        print(f"  {label:<14}: {goodput:8.2f} Mbps")
    print(f"fairness (Jain)   : {result.fairness_index:8.4f}")
    print(f"frames / collided : {result.medium_frames_sent} / "
          f"{result.medium_frames_collided}")
    print(f"medium utilisation: {result.medium_utilisation:8.2%}")
    counters = result.decomp_counters
    if counters["acks_reconstructed"]:
        print(f"HACK ACKs         : "
              f"{counters['acks_reconstructed']} reconstructed, "
              f"{counters['crc_failures']} CRC failures, "
              f"{counters['duplicates_skipped']} duplicates skipped")
    timeouts = sum(c["timeouts"]
                   for c in result.sender_counters.values())
    print(f"TCP timeouts      : {timeouts}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        return _simulate(args)
    forwarded = list(args.names)
    if args.quick:
        forwarded.append("--quick")
    return experiments_runner.main(forwarded)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
