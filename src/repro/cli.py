"""Top-level command-line interface.

Five subcommands::

    python -m repro.cli simulate --phy 11n --rate 150 --clients 4 \\
        --policy more_data --duration 4 --seed 2
    python -m repro.cli simulate --scenario wireless-backup
    python -m repro.cli simulate --scenario churn-web --seed 3
    python -m repro.cli simulate --cells 4 --channels 2 \\
        --telemetry run.jsonl --trace-export run.trace.json
    python -m repro.cli scenarios
    python -m repro.cli experiments fig10 fig11 --quick
    python -m repro.cli sweep all --quick --jobs 4 --out results.json
    python -m repro.cli sweep fct_churn --quick --jobs 2
    python -m repro.cli sweep scenario:multi-client --seeds 5 --jobs 2
    python -m repro.cli report run.jsonl

``simulate`` runs one scenario (ad-hoc flags or a registry name) and
prints a human-readable report — ``--telemetry`` / ``--trace-export``
/ ``--sample-interval`` add the observability layer (time-series JSONL
plus a Chrome-trace JSON loadable in chrome://tracing or Perfetto);
``scenarios`` lists the registry; ``experiments`` forwards to
:mod:`repro.experiments.runner`; ``sweep`` executes experiment grids
or registered scenarios through the parallel sweep engine, with
per-cell caching, JSON artifacts and per-point telemetry
(``--telemetry-dir``); ``report`` summarises a telemetry JSONL
artifact (kernel hot spots, airtime, queue peaks).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import List, Optional

from .adversary import AdversaryConfig
from .core.policies import HackPolicy
from .experiments import runner as experiments_runner
from .experiments.batch import SweepCache, SweepInterrupted, \
    SweepResult
from .experiments.common import format_table
from .experiments.progress import format_status, sweep_status
from .sim.units import MS, SEC, usec
from .stats.fct import has_completions
from .workloads import registry
from .workloads.registry import UnknownScenarioError
from .workloads.scenarios import LossSpec, ScenarioConfig, run_scenario

SCENARIO_PREFIX = "scenario:"


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TCP/HACK reproduction (USENIX ATC 2014)")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one scenario")
    sim.add_argument("--scenario", default=None,
                     help="start from a registered scenario "
                          "(see `repro scenarios`); other flags "
                          "except --seed are ignored")
    sim.add_argument("--phy", choices=("11a", "11n"), default="11n")
    sim.add_argument("--rate", type=float, default=150.0,
                     help="PHY data rate in Mbps")
    sim.add_argument("--clients", type=int, default=1,
                     help="clients per cell")
    sim.add_argument("--cells", type=_positive_int, default=1,
                     help="co-channel overlapping cells (each a full "
                          "AP + clients BSS on the one medium)")
    sim.add_argument("--channels", type=_positive_int, default=1,
                     help="non-overlapping channels; cells are "
                          "assigned round-robin (cell i -> channel "
                          "i %% channels), and cells on different "
                          "channels never contend")
    sim.add_argument("--shard-jobs", type=_positive_int, default=None,
                     metavar="N",
                     help="execute a multi-channel run as one shard "
                          "per channel: 1 = serial shards, N > 1 = "
                          "process pool (metrics identical either "
                          "way); prints per-channel shard summaries")
    sim.add_argument("--flows-per-client", type=int, default=1)
    sim.add_argument("--policy",
                     choices=[p.value for p in HackPolicy],
                     default="more_data")
    sim.add_argument("--traffic",
                     choices=("tcp_download", "tcp_upload",
                              "udp_download"),
                     default="tcp_download")
    sim.add_argument("--duration", type=float, default=4.0,
                     help="simulated seconds")
    sim.add_argument("--warmup", type=float, default=None,
                     help="warm-up seconds (default: duration/2)")
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--loss", type=float, default=0.0,
                     help="uniform per-MPDU loss probability")
    sim.add_argument("--snr", type=float, default=None,
                     help="SNR in dB (overrides --loss)")
    sim.add_argument("--aarf", action="store_true",
                     help="enable AARF rate adaptation")
    sim.add_argument("--sora", action="store_true",
                     help="emulate SoRa's late LL ACKs")
    sim.add_argument("--kernel-stats", action="store_true",
                     help="print event-kernel counters (events "
                          "executed/cancelled, heap compactions, "
                          "events per wall-second)")
    sim.add_argument("--adversary", default=None,
                     choices=("greedy", "jammer", "mutator"),
                     help="inject a misbehaving actor (greedy "
                          "CW-cheating station, energy jammer, or "
                          "compressed-ACK payload mutator)")
    sim.add_argument("--adversary-intensity", type=float, default=0.5,
                     metavar="X",
                     help="attack severity in [0, 1] (default 0.5); "
                          "0 installs nothing and is bit-identical "
                          "to the cooperative run")
    sim.add_argument("--adversary-mode", default=None,
                     help="discipline variant: periodic|reactive for "
                          "the jammer, flip|cid|storm for the mutator "
                          "(defaults: periodic / flip)")
    sim.add_argument("--cc", choices=("reno", "cubic"),
                     default="reno",
                     help="TCP congestion control (default reno; "
                          "cubic = RFC 8312 window growth)")
    sim.add_argument("--pacing", action="store_true",
                     help="pace TCP senders at ~2*cwnd/SRTT instead "
                          "of bursting the whole window")
    sim.add_argument("--qdisc",
                     choices=("droptail", "codel", "fq_codel"),
                     default="droptail",
                     help="per-station MAC queue discipline "
                          "(default droptail; codel = RFC 8289 "
                          "sojourn AQM, fq_codel = RFC 8290 per-flow "
                          "DRR + CoDel)")
    sim.add_argument("--stream-stats", action="store_true",
                     help="bounded-memory streaming FCT aggregation "
                          "for churn scenarios (percentiles "
                          "histogram-quantised at ~2.3%% resolution)")
    sim.add_argument("--telemetry", default=None, metavar="PATH",
                     help="stream time-series telemetry (per-channel "
                          "utilisation, AP/wired queue depths, live "
                          "flows, HACK buffer, ROHC CIDs) as JSONL "
                          "to PATH; summarise with `repro report`")
    sim.add_argument("--trace-export", default=None, metavar="PATH",
                     help="write a Chrome trace-event JSON (frames + "
                          "kernel spans + counter tracks) loadable in "
                          "chrome://tracing or Perfetto; refused for "
                          "sharded runs")
    sim.add_argument("--sample-interval", type=float, default=10.0,
                     metavar="MS",
                     help="telemetry sampling interval in simulated "
                          "milliseconds (default 10)")

    sub.add_parser("scenarios", help="list registered scenarios")

    exp = sub.add_parser("experiments",
                         help="reproduce paper tables/figures")
    exp.add_argument("names", nargs="+",
                     choices=sorted(experiments_runner.EXPERIMENTS)
                     + ["all"])
    exp.add_argument("--quick", action="store_true")

    sweep = sub.add_parser(
        "sweep",
        help="run experiment grids / scenario seed-sweeps in parallel")
    sweep.add_argument(
        "names", nargs="+",
        help="experiment names, 'all', or "
             f"'{SCENARIO_PREFIX}<registered-scenario>'")
    experiments_runner.add_sweep_arguments(sweep)
    sweep.add_argument("--seeds", type=int, default=5, metavar="N",
                       help="seeds per scenario sweep (default 5, "
                            "--quick forces 1; experiments use their "
                            "own seed policy)")
    sweep.add_argument("--status", action="store_true",
                       help="run nothing: audit --cache-dir against "
                            "the named sweeps and report which cells "
                            "are complete/missing/failed/corrupt "
                            "(exit 0 when complete, 3 otherwise)")

    report = sub.add_parser(
        "report",
        help="summarise a telemetry JSONL artifact")
    report.add_argument("path", help="telemetry JSONL file "
                                     "(simulate --telemetry / sweep "
                                     "--telemetry-dir output)")
    report.add_argument("--top", type=int, default=10, metavar="N",
                        help="kernel span owners / queue gauges shown "
                             "(default 10)")
    return parser


def _simulate(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        # Transport/queue flags override the registry entry only when
        # set away from their defaults, so e.g. `--scenario
        # churn-cubic-codel` keeps its registered cc/qdisc.
        transport_overrides = {}
        if args.cc != "reno":
            transport_overrides["cc"] = args.cc
        if args.pacing:
            transport_overrides["pacing"] = True
        if args.qdisc != "droptail":
            transport_overrides["queue_discipline"] = args.qdisc
        try:
            config = registry.build(args.scenario, seed=args.seed,
                                    stream_stats=args.stream_stats,
                                    **transport_overrides)
        except UnknownScenarioError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
    else:
        duration = int(args.duration * SEC)
        warmup = int(args.warmup * SEC) if args.warmup is not None \
            else duration // 2
        if args.snr is not None:
            loss = LossSpec(kind="snr", snr_db=args.snr)
        elif args.loss > 0:
            loss = LossSpec(kind="uniform", data_loss=args.loss)
        else:
            loss = LossSpec()
        config = ScenarioConfig(
            phy_mode=args.phy, data_rate_mbps=args.rate,
            n_clients=args.clients, cells=args.cells,
            channels=args.channels,
            flows_per_client=args.flows_per_client,
            policy=HackPolicy(args.policy), traffic=args.traffic,
            duration_ns=duration, warmup_ns=warmup, seed=args.seed,
            loss=loss,
            rate_adaptation="aarf" if args.aarf else None,
            extra_response_delay_ns=usec(37) if args.sora else 0,
            ack_timeout_extra_ns=usec(60) if args.sora else 0,
            stagger_ns=50 * MS, stream_stats=args.stream_stats,
            cc=args.cc, pacing=args.pacing,
            queue_discipline=args.qdisc)
    if args.adversary is not None:
        adv_kwargs = {"kind": args.adversary,
                      "intensity": args.adversary_intensity}
        if args.adversary_mode:
            mode_field = {"jammer": "jam_mode",
                          "mutator": "mutate_mode"}.get(args.adversary)
            if mode_field is None:
                print("error: --adversary-mode only applies to "
                      "jammer/mutator", file=sys.stderr)
                return 2
            adv_kwargs[mode_field] = args.adversary_mode
        adversary = AdversaryConfig(**adv_kwargs)
        try:
            adversary.validate()
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        config = dataclasses.replace(config, adversary=adversary)
    telemetry = None
    if args.telemetry or args.trace_export:
        from .obs import TelemetryConfig
        if args.sample_interval <= 0:
            print("error: --sample-interval must be positive",
                  file=sys.stderr)
            return 2
        telemetry = TelemetryConfig(
            sample_interval_ns=int(args.sample_interval * MS),
            telemetry_path=args.telemetry,
            trace_export_path=args.trace_export)
    started = time.perf_counter()
    result = run_scenario(config, shard_jobs=args.shard_jobs,
                          telemetry=telemetry)
    wall_s = time.perf_counter() - started
    print(f"aggregate goodput : "
          f"{result.aggregate_goodput_mbps:8.2f} Mbps")
    for flow_id, goodput in sorted(
            result.per_flow_goodput_mbps.items()):
        label = f"flow {flow_id}" if flow_id > 0 else \
            f"udp sink {-flow_id}"
        print(f"  {label:<14}: {goodput:8.2f} Mbps")
    for name, mbps in sorted(
            result.udp_background_goodput_mbps.items()):
        print(f"  udp noise @{name:<4}: {mbps:8.2f} Mbps")
    print(f"fairness (Jain)   : {result.fairness_index:8.4f}")
    print(f"frames / collided : {result.medium_frames_sent} / "
          f"{result.medium_frames_collided}")
    print(f"medium utilisation: {result.medium_utilisation:8.2%}")
    if len(result.channel_blocks) > 1:
        shard_walls = (result.shard_info or {}).get("shard_wall_s", {})
        for block in result.channel_blocks:
            parts = [f"utilisation {block['utilisation']:6.2%}",
                     f"airtime sum {block['airtime_share_sum']:.3f}",
                     f"frames {block['frames_sent']}/"
                     f"{block['frames_collided']} collided"]
            wall = shard_walls.get(str(block["channel"]))
            if wall is not None:
                parts.append(f"shard {wall:.2f}s")
            print(f"  channel {block['channel']}: " + ", ".join(parts))
        if result.shard_info is not None:
            info = result.shard_info
            print(f"shard execution   : {info['plan']['shards']} "
                  f"shards, {info['mode']} (jobs {info['jobs']}), "
                  f"{info['wall_s']:.2f}s")
    if len(result.cell_blocks) > 1:
        for block in result.cell_blocks:
            parts = [f"carried {block['carried_mbps']:7.2f} Mbps",
                     f"airtime {block['airtime_share']:6.2%}",
                     f"frames {block['frames_sent']}/"
                     f"{block['frames_collided']} collided"]
            cell_fct = block["fct"]
            if cell_fct is not None:
                parts.append(f"flows {cell_fct['flows_completed']}")
                if has_completions(cell_fct["fct_ms"]):
                    parts.append(
                        f"p50 {cell_fct['fct_ms']['p50']:.1f} ms")
            print(f"  {block['label']} ({block['ap']:<4}): "
                  + ", ".join(parts))
        print(f"cell fairness     : "
              f"{result.cell_fairness_index:8.4f}")
    counters = result.decomp_counters
    if counters["acks_reconstructed"]:
        print(f"HACK ACKs         : "
              f"{counters['acks_reconstructed']} reconstructed, "
              f"{counters['crc_failures']} CRC failures, "
              f"{counters['duplicates_skipped']} duplicates skipped")
    rohc = result.rohc_counters
    if any(rohc.values()):
        print(f"ROHC robustness   : "
              f"{rohc['mid_frame_aborts']} frame aborts, "
              f"{rohc['desync_events']} desyncs "
              f"({rohc['recoveries']} recovered, "
              f"{rohc['open_desyncs']} open), "
              f"{rohc['chain_repairs']} chain repairs, "
              f"{rohc['internal_errors']} internal errors")
        if rohc["recoveries"]:
            mean_ms = rohc["recovery_ns_total"] \
                / rohc["recoveries"] / 1e6
            print(f"  context recovery: {mean_ms:8.2f} ms mean, "
                  f"{rohc['recovery_frames_total']} HACK frames "
                  f"spent desynced")
    aqm = result.aqm_counters
    if aqm and (aqm["discipline"] != "droptail" or aqm["drops"]):
        parts = [f"{aqm['drops']} drops",
                 f"{aqm['dequeued']} dequeued"]
        if aqm["sojourn_p99_ms"] is not None:
            parts.append(f"sojourn p50 {aqm['sojourn_p50_ms']:.2f} / "
                         f"p99 {aqm['sojourn_p99_ms']:.2f} ms")
        print(f"AQM ({aqm['discipline']:<9}): " + ", ".join(parts))
    adv = result.adversary_counters
    if adv is not None:
        print(f"adversary         : {adv['kind']} @ intensity "
              f"{adv['intensity']:g}")
        activity = {key: value for key, value in adv.items()
                    if key not in ("kind", "intensity") and value}
        if activity:
            print("  " + ", ".join(f"{key} {value}"
                                   for key, value
                                   in sorted(activity.items())))
    timeouts = sum(c["timeouts"]
                   for c in result.sender_counters.values())
    print(f"TCP timeouts      : {timeouts}")
    if result.fct is not None:
        fct = result.fct
        print(f"flows             : {fct['flows_spawned']} spawned, "
              f"{fct['flows_completed']} completed, "
              f"{fct['flows_censored']} censored")
        if has_completions(fct["fct_ms"]):
            dist = fct["fct_ms"]
            streaming = fct.get("streaming")
            suffix = ""
            if streaming:
                suffix = (f"  [streaming, ±"
                          f"{streaming['relative_resolution']:.1%}]")
            print(f"FCT (ms)          : p50 {dist['p50']:.1f}, "
                  f"p95 {dist['p95']:.1f}, p99 {dist['p99']:.1f}"
                  f"{suffix}")
        print(f"offered / carried : {fct['offered_load_mbps']:.2f} / "
              f"{fct['carried_load_mbps']:.2f} Mbps")
    if args.kernel_stats:
        kernel = result.kernel_stats
        if kernel:
            rate = kernel["events_executed"] / wall_s \
                if wall_s > 0 else 0.0
            print(f"kernel events     : "
                  f"{kernel['events_executed']} executed "
                  f"({rate:,.0f}/s wall), "
                  f"{kernel['events_cancelled']} cancelled, "
                  f"{kernel['events_scheduled']} scheduled")
            print(f"heap compactions  : {kernel['heap_compactions']}")
        if result.shard_blocks:
            # Sharded runs: each shard ran its own kernel, so the
            # counters are per shard, never summed.
            for block in result.shard_blocks:
                shard_kernel = block["kernel_stats"]
                print(f"  shard ch{block['channel']} "
                      f"(cells {block['cells']}): "
                      f"{shard_kernel['events_executed']} executed, "
                      f"{shard_kernel['events_cancelled']} cancelled, "
                      f"{shard_kernel['events_scheduled']} scheduled, "
                      f"{shard_kernel['heap_compactions']} "
                      f"compactions")
    if result.telemetry is not None:
        tele = result.telemetry
        print(f"telemetry         : {tele['samples']} samples @ "
              f"{tele['sample_interval_ns'] / MS:g} ms")
        spans = tele.get("spans")
        if spans is not None:
            print(f"kernel spans      : {spans['events']} events, "
                  f"{spans['total_wall_ns'] / 1e6:.1f} ms wall")
        if args.telemetry:
            print(f"telemetry artifact: {args.telemetry}")
        if args.trace_export:
            print(f"chrome trace      : {args.trace_export} "
                  f"(load in chrome://tracing or ui.perfetto.dev)")
    return 0


def _scenarios(_args: argparse.Namespace) -> int:
    for entry in registry.describe_all():
        print(f"{entry['name']:<16} {entry['description']}")
    return 0


def _print_scenario_sweep(name: str, result: SweepResult) -> None:
    cell = result.cell((name,), "aggregate_goodput_mbps")
    fairness = result.cell((name,), "fairness_index")
    headers = ["scenario", "runs", "goodput (Mbps)", "stdev",
               "fairness"]
    row = [name, str(cell["runs"]), f"{cell['mean']:.2f}",
           f"{cell['stdev']:.2f}", f"{fairness['mean']:.4f}"]
    metrics = result.metrics_for((name,))
    if metrics and all(m.get("fct") for m in metrics) \
            and all(has_completions(m["fct"]["fct_ms"])
                    for m in metrics):
        flows = result.cell(
            (name,), lambda m: m["fct"]["flows_completed"])
        p50 = result.cell((name,), lambda m: m["fct"]["fct_ms"]["p50"])
        carried = result.cell(
            (name,), lambda m: m["fct"]["carried_load_mbps"])
        headers += ["flows", "FCT p50 (ms)", "carried (Mbps)"]
        row += [f"{flows['mean']:.0f}", f"{p50['mean']:.1f}",
                f"{carried['mean']:.2f}"]
    print(format_table(headers, [row], title=f"Sweep: {name}"))


def _sweep(args: argparse.Namespace) -> int:
    if args.seeds < 1:
        print("error: --seeds must be >= 1", file=sys.stderr)
        return 2
    experiment_names: List[str] = []
    scenario_names: List[str] = []
    for name in args.names:
        if name.startswith(SCENARIO_PREFIX):
            scenario = name[len(SCENARIO_PREFIX):]
            try:
                registry.get(scenario)
            except UnknownScenarioError as error:
                print(f"error: {error.args[0]}", file=sys.stderr)
                return 2
            scenario_names.append(scenario)
        elif name == "all":
            experiment_names.extend(
                sorted(experiments_runner.EXPERIMENTS))
        elif name in experiments_runner.EXPERIMENTS:
            experiment_names.append(name)
        elif name in registry.names():
            scenario_names.append(name)
        else:
            print(f"unknown sweep target {name!r}: expected an "
                  f"experiment "
                  f"({', '.join(sorted(experiments_runner.EXPERIMENTS))}"
                  f", all) or a registered scenario "
                  f"({', '.join(registry.names())})", file=sys.stderr)
            return 2

    experiment_names = list(dict.fromkeys(experiment_names))
    scenario_names = list(dict.fromkeys(scenario_names))

    def scenario_seeds() -> tuple:
        # --quick keeps its runner meaning for scenarios: one seed
        # (scenario durations come from the registry, not --quick).
        return (1,) if args.quick else tuple(range(1, args.seeds + 1))

    def build_spec(name: str, scenario: bool = False):
        if scenario:
            spec = registry.sweep_spec(name, scenario_seeds())
        else:
            spec = experiments_runner.EXPERIMENTS[name].sweep_spec(
                quick=args.quick)
        return experiments_runner.apply_stream_stats(spec, args)

    if args.status:
        return _sweep_status(args, experiment_names, scenario_names,
                             build_spec)

    sweep_runner = experiments_runner.make_runner(args)
    artifacts = {}
    exit_code = 0
    for name in experiment_names:
        module = experiments_runner.EXPERIMENTS[name]
        started = time.time()
        try:
            result = sweep_runner.run(build_spec(name))
        except SweepInterrupted as stop:
            return experiments_runner.handle_interrupt(
                name, stop, artifacts, args.out)
        elapsed = time.time() - started
        experiments_runner.print_rows_or_failure_note(
            name, module, result)
        print(f"[{name}: {len(result.records)} cells in {elapsed:.1f}s "
              f"({result.executed} run, {result.cache_hits} cached, "
              f"{result.failed} failed)]\n")
        if result.failed:
            experiments_runner.report_failures(name, result)
            exit_code = 1
        artifacts[name] = result.to_json_dict()
    for name in scenario_names:
        started = time.time()
        try:
            result = sweep_runner.run(build_spec(name, scenario=True))
        except SweepInterrupted as stop:
            return experiments_runner.handle_interrupt(
                f"{SCENARIO_PREFIX}{name}", stop, artifacts, args.out)
        elapsed = time.time() - started
        if result.failed:
            experiments_runner.report_failures(name, result)
            exit_code = 1
        else:
            _print_scenario_sweep(name, result)
        print(f"[{name}: {len(result.records)} cells in {elapsed:.1f}s "
              f"({result.executed} run, {result.cache_hits} cached, "
              f"{result.failed} failed)]\n")
        artifacts[f"{SCENARIO_PREFIX}{name}"] = result.to_json_dict()
    if args.out:
        experiments_runner.write_artifacts(args.out, artifacts)
        print(f"wrote sweep records to {args.out}")
    return exit_code


def _sweep_status(args: argparse.Namespace,
                  experiment_names: List[str],
                  scenario_names: List[str], build_spec) -> int:
    """``repro sweep --status``: audit the cache, simulate nothing."""
    if args.no_cache:
        print("error: --status needs a cache directory "
              "(drop --no-cache)", file=sys.stderr)
        return 2
    cache = SweepCache(args.cache_dir)
    all_complete = True
    for name in experiment_names:
        status = sweep_status(build_spec(name), cache)
        print(format_status(status) + "\n")
        all_complete = all_complete and status.complete
    for name in scenario_names:
        status = sweep_status(build_spec(name, scenario=True), cache)
        print(format_status(status) + "\n")
        all_complete = all_complete and status.complete
    return 0 if all_complete else 3


def _report(args: argparse.Namespace) -> int:
    from .obs import TelemetryArtifactError, print_report
    try:
        print_report(args.path, top=args.top)
    except OSError as error:
        print(f"error: cannot read {args.path}: {error}",
              file=sys.stderr)
        return 2
    except TelemetryArtifactError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        return _simulate(args)
    if args.command == "scenarios":
        return _scenarios(args)
    if args.command == "sweep":
        return _sweep(args)
    if args.command == "report":
        return _report(args)
    forwarded = list(args.names)
    if args.quick:
        forwarded.append("--quick")
    return experiments_runner.main(forwarded)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
