"""The access point: a bridge between the wired LAN and the WLAN.

Downstream packets from the server are queued per-client at the MAC
(whose batch builder sets the MORE DATA bit exactly when more packets
for that client remain).  Upstream packets — vanilla TCP ACKs, upload
data, and TCP ACKs reconstituted from HACK payloads on LL ACKs — are
forwarded over the wired link to the server.

The AP runs the same :class:`~repro.core.driver.HackDriver` as clients
(the design is symmetric; for uploads it is the AP that compresses the
server's TCP ACKs into its own LL ACKs).
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.driver import HackDriver
from ..sim.engine import Simulator
from ..sim.wired import WiredLink


class ApNode:
    """Wired/wireless bridge."""

    def __init__(self, sim: Simulator, driver: HackDriver,
                 name: str = "AP"):
        self.sim = sim
        self.name = name
        self.driver = driver
        driver.node = self
        self.link: Optional[WiredLink] = None
        self.wifi_tx_drops = 0
        self.packets_bridged_down = 0
        self.packets_bridged_up = 0

    def attach_link(self, link: WiredLink) -> None:
        self.link = link

    def queue_depth(self) -> int:
        """Total downstream MAC backlog across all clients (fresh,
        retry and in-flight packets) — the telemetry sampler's AP
        queue probe."""
        return self.driver.mac.total_backlog()

    # ------------------------------------------------------------------
    def receive_wired(self, packet: Any) -> None:
        """Server -> client packets: queue on the WLAN for packet.dst."""
        self.packets_bridged_down += 1
        if not self.driver.send_packet(packet, packet.dst):
            self.wifi_tx_drops += 1

    def on_packet_received(self, packet: Any, sender: str) -> None:
        """Client -> server packets (including decompressed TCP ACKs)."""
        self.packets_bridged_up += 1
        assert self.link is not None, "AP wired link not attached"
        self.link.send_from(self, packet)
