"""The wired TCP server (and UDP source) behind the AP.

Matches the paper's simulated topology: "several clients connect via
802.11n WiFi to a server located nearby on a high-speed LAN" — the
server reaches the AP over a 500 Mbit/s, 1 ms wired link.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..sim.engine import Simulator
from ..sim.wired import WiredLink
from ..tcp.receiver import TcpReceiver
from ..tcp.segment import TcpSegment, UdpDatagram
from ..tcp.sender import TcpSender


class ServerNode:
    """Hosts TCP senders (downloads), receivers (uploads), UDP sources."""

    def __init__(self, sim: Simulator, name: str = "SRV"):
        self.sim = sim
        self.name = name
        self.link: Optional[WiredLink] = None
        self.senders: Dict[int, TcpSender] = {}
        self.receivers: Dict[int, TcpReceiver] = {}

    def attach_link(self, link: WiredLink) -> None:
        self.link = link

    # ------------------------------------------------------------------
    def add_sender(self, sender: TcpSender) -> TcpSender:
        self.senders[sender.flow_id] = sender
        return sender

    def add_receiver(self, receiver: TcpReceiver) -> TcpReceiver:
        self.receivers[receiver.flow_id] = receiver
        return receiver

    def remove_sender(self, flow_id: int) -> Optional[TcpSender]:
        """Detach a completed flow's sender (late ACKs are ignored)."""
        return self.senders.pop(flow_id, None)

    def remove_receiver(self, flow_id: int) -> Optional[TcpReceiver]:
        """Detach a completed flow's receiver."""
        return self.receivers.pop(flow_id, None)

    def send(self, packet: Any) -> None:
        """Transmit a packet toward the AP over the wired link."""
        assert self.link is not None, "server link not attached"
        self.link.send_from(self, packet)

    # ------------------------------------------------------------------
    def receive_wired(self, packet: Any) -> None:
        """Packets arriving from the AP (TCP ACKs, upload data)."""
        if isinstance(packet, TcpSegment):
            if packet.is_pure_ack:
                sender = self.senders.get(packet.flow_id)
                if sender is not None:
                    sender.on_ack(packet)
            else:
                receiver = self.receivers.get(packet.flow_id)
                if receiver is not None:
                    receiver.on_segment(packet)
        # UDP arriving at the server is not used by any experiment.


class UdpSource:
    """Constant-bit-rate UDP generator (the paper's UDP baseline)."""

    def __init__(self, sim: Simulator, server: ServerNode, dst: str,
                 rate_mbps: float, payload_bytes: int = 1472):
        self.sim = sim
        self.server = server
        self.dst = dst
        self.rate_mbps = rate_mbps
        self.payload_bytes = payload_bytes
        self.packets_sent = 0
        self._running = False
        datagram_bits = (payload_bytes + 28) * 8
        self.interval_ns = int(datagram_bits * 1000 / rate_mbps)

    def start(self) -> None:
        self._running = True
        self._emit()

    def stop(self) -> None:
        self._running = False

    def _emit(self) -> None:
        if not self._running:
            return
        self.server.send(UdpDatagram(
            src=self.server.name, dst=self.dst,
            payload_bytes=self.payload_bytes, seq=self.packets_sent))
        self.packets_sent += 1
        self.sim.schedule(self.interval_ns, self._emit)
