"""A WiFi client (station).

Models the host side of the paper's client: a protocol stack whose
processing delay is why TCP ACKs can never ride the Block ACK of the
A-MPDU that elicited them (§3.2) — received segments are handed to TCP
only after ``stack_delay_ns``, far longer than SIFS.

Holds TCP receivers (downloads), TCP senders (uploads), and a UDP sink.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..core.driver import HackDriver
from ..sim.engine import Simulator
from ..sim.units import usec
from ..tcp.receiver import TcpReceiver
from ..tcp.segment import TcpSegment, UdpDatagram
from ..tcp.sender import TcpSender


class ClientNode:
    """A wireless station attached to one AP."""

    def __init__(self, sim: Simulator, driver: HackDriver,
                 name: str, ap_name: str = "AP",
                 stack_delay_ns: int = usec(100),
                 per_packet_cost_ns: int = usec(1)):
        self.sim = sim
        self.name = name
        self.ap_name = ap_name
        self.driver = driver
        driver.node = self
        self.stack_delay_ns = stack_delay_ns
        self.per_packet_cost_ns = per_packet_cost_ns
        self.receivers: Dict[int, TcpReceiver] = {}
        self.senders: Dict[int, TcpSender] = {}
        # UDP sink accounting: cumulative bytes plus snapshots.
        self.udp_bytes = 0
        self.udp_packets = 0
        self.udp_snapshots: List[Tuple[int, int]] = []
        self._burst_index = 0
        self._last_burst_time = -1

    # ------------------------------------------------------------------
    def add_receiver(self, receiver: TcpReceiver) -> TcpReceiver:
        self.receivers[receiver.flow_id] = receiver
        return receiver

    def add_sender(self, sender: TcpSender) -> TcpSender:
        self.senders[sender.flow_id] = sender
        return sender

    def remove_receiver(self, flow_id: int) -> None:
        """Detach a completed flow's receiver (stray segments dropped)."""
        self.receivers.pop(flow_id, None)

    def remove_sender(self, flow_id: int) -> None:
        """Detach a completed flow's sender (stray ACKs dropped)."""
        self.senders.pop(flow_id, None)

    # ------------------------------------------------------------------
    # Driver callbacks
    # ------------------------------------------------------------------
    def on_packet_received(self, packet: Any, sender: str) -> None:
        """Hand a received packet to the host stack after its delay."""
        if self.sim.now != self._last_burst_time:
            self._last_burst_time = self.sim.now
            self._burst_index = 0
        delay = self.stack_delay_ns + \
            self._burst_index * self.per_packet_cost_ns
        self._burst_index += 1
        self.sim.schedule(delay, self._stack_process, packet)

    def _stack_process(self, packet: Any) -> None:
        if isinstance(packet, UdpDatagram):
            self.udp_bytes += packet.payload_bytes
            self.udp_packets += 1
            return
        if isinstance(packet, TcpSegment):
            if packet.is_pure_ack:
                sender = self.senders.get(packet.flow_id)
                if sender is not None:
                    sender.on_ack(packet)
            else:
                receiver = self.receivers.get(packet.flow_id)
                if receiver is not None:
                    receiver.on_segment(packet)

    # ------------------------------------------------------------------
    # Stack output (ACKs from receivers, data from senders)
    # ------------------------------------------------------------------
    def transmit(self, segment: TcpSegment) -> None:
        self.driver.send_packet(segment, self.ap_name)

    def snapshot_udp(self) -> None:
        self.udp_snapshots.append((self.sim.now, self.udp_bytes))
