"""Network nodes: wired server, AP bridge, WiFi clients."""

from .ap import ApNode
from .client import ClientNode
from .server import ServerNode

__all__ = ["ApNode", "ClientNode", "ServerNode"]
