"""Transmit-side ROHC compressor for TCP ACKs.

One compressor serves one link direction (e.g. client -> AP) and holds
one context per flow CID.  It assigns the link-wide master sequence
number (MSN) that the retention/duplicate-discard machinery of §3.4 is
built on.

Contexts are established by *vanilla* ACKs (no IR packets): the caller
must report every uncompressed ACK it transmits via
:meth:`note_vanilla_ack`, which both creates contexts and keeps the
delta references in sync with what the decompressor (which snoops the
same vanilla ACKs) believes.  Whenever synchronisation cannot be
assumed — a flow's first compressed ACK after vanilla ones, or after
the driver discarded unconfirmed compressed ACKs — the next entry is
encoded in absolute (rebase) form.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..tcp.segment import TcpSegment
from .context import CompressorContext, cid_for_flow, cid_for_key
from .packets import CompressedAck, encode_entry


class Compressor:
    """Per-link-direction TCP ACK compressor."""

    def __init__(self, init_threshold: int = 1):
        #: Vanilla ACKs that must precede compression of a new flow
        #: (gives the decompressor its context; >=1 mirrors the paper).
        self.init_threshold = init_threshold
        self.contexts: Dict[int, CompressorContext] = {}
        self._flow_of_cid: Dict[int, Tuple] = {}
        self._blocked_flows = set()
        self._last_cid: Optional[int] = None
        self.next_msn = 0
        # Counters.
        self.compressed_count = 0
        self.compressed_bytes = 0
        self.collisions = 0

    # ------------------------------------------------------------------
    def _context_for(self, segment: TcpSegment,
                     create: bool) -> Optional[CompressorContext]:
        key = segment.five_tuple.key()
        if key in self._blocked_flows:
            return None
        cid = cid_for_flow(segment.five_tuple)
        owner = self._flow_of_cid.get(cid)
        if owner is None:
            if not create:
                return None
            context = CompressorContext(
                cid=cid, five_tuple=segment.five_tuple,
                flow_id=segment.flow_id, src=segment.src,
                dst=segment.dst)
            self.contexts[cid] = context
            self._flow_of_cid[cid] = key
            return context
        if owner != key:
            # CID collision: the newer flow falls back to vanilla ACKs.
            self.collisions += 1
            self._blocked_flows.add(key)
            return None
        return self.contexts[cid]

    # ------------------------------------------------------------------
    def note_vanilla_ack(self, segment: TcpSegment) -> None:
        """Record an ACK that is being sent uncompressed."""
        if not segment.is_pure_ack:
            return
        context = self._context_for(segment, create=True)
        if context is not None:
            context.note_vanilla(segment)

    def can_compress(self, segment: TcpSegment) -> bool:
        """True if this ACK's flow has an established context."""
        if not segment.is_pure_ack:
            return False
        context = self._context_for(segment, create=False)
        return (context is not None
                and context.vanilla_seen >= self.init_threshold)

    def compress(self, segment: TcpSegment) -> CompressedAck:
        """Compress one ACK, advancing the context and the MSN."""
        context = self._context_for(segment, create=False)
        if context is None or context.vanilla_seen < self.init_threshold:
            raise ValueError("flow context not established; send the "
                             "ACK vanilla first (use can_compress)")
        same_cid = self._last_cid == context.cid
        msn = self.next_msn
        data, new_state = encode_entry(
            context.state, segment, context.cid, same_cid, msn,
            force_absolute=context.rebase_needed)
        context.state = new_state
        context.rebase_needed = False
        self._last_cid = context.cid
        self.next_msn += 1
        self.compressed_count += 1
        self.compressed_bytes += len(data)
        return CompressedAck(msn=msn, cid=context.cid, data=data,
                             segment=segment)

    def release_flow(self, five_tuple) -> bool:
        """Free the context (and CID) of a finished flow.

        CIDs are one hash byte, so a long-lived link with flow churn
        would otherwise exhaust them: stale contexts would turn every
        later hash collision into a permanently uncompressible flow.
        Releasing makes the CID reusable — the next flow that maps to
        it re-establishes context via its initial vanilla ACKs.  Flows
        that were *blocked* by a collision with this CID become
        compressible again too.
        """
        key = five_tuple.key()
        cid = cid_for_flow(five_tuple)
        released = False
        if self._flow_of_cid.get(cid) == key:
            del self._flow_of_cid[cid]
            self.contexts.pop(cid, None)
            if self._last_cid == cid:
                # The next entry must carry an explicit CID: "same as
                # previous" must never point at a released context.
                self._last_cid = None
            # Flows that lost the CID race against this one were
            # marked permanently uncompressible; with the CID free
            # they may claim it (their next vanilla ACKs rebuild
            # context at both ends).
            self._blocked_flows = {
                k for k in self._blocked_flows
                if cid_for_key(k) != cid}
            released = True
        self._blocked_flows.discard(key)
        return released

    def rebase_all(self) -> None:
        """Force the next compressed ACK of every flow to be absolute
        and to carry an explicit CID.

        Called after compressed ACKs were discarded unconfirmed: the
        decompressor may have missed both the delta state and the CID
        chain, so the next entry must be self-contained."""
        for context in self.contexts.values():
            context.rebase_needed = True
        self._last_cid = None
