"""ROHC contexts and CID derivation.

A context caches the static TCP/IP fields of one flow (the 5-tuple and
friends) plus the reference values of the dynamic fields from which
deltas are encoded.  Per the paper's TCP/HACK-specific optimisations
(§3.3.2):

* No Initialize-Refresh packets: contexts are created at both endpoints
  by observing *uncompressed* (vanilla) TCP ACKs for the flow.
* CIDs are computed independently at each endpoint as the lowest byte
  of the MD5 hash over the flow's 5-tuple — no CID negotiation.

CID collisions (two flows hashing to the same byte) are possible by
construction; the compressor detects them and simply declines to
compress the newer flow, which degrades gracefully to vanilla ACKs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Tuple

from ..tcp.segment import FiveTuple, TcpSegment


def cid_for_key(key: Tuple[str, str, int, int]) -> int:
    """CID from a raw 5-tuple key (see :func:`cid_for_flow`)."""
    text = "tcp|%s|%s|%d|%d" % key
    digest = hashlib.md5(text.encode("ascii")).digest()
    return digest[0]


def cid_for_flow(five_tuple: FiveTuple) -> int:
    """Lowest byte of MD5 over the 5-tuple (paper §3.3.2, item 2)."""
    return cid_for_key(five_tuple.key())


@dataclass
class DynamicState:
    """Reference values for delta encoding (shared shape at both ends)."""

    ack: int = 0
    ack_delta: int = 0   # previous inter-ACK stride (delta-of-delta ref)
    ts_val: int = 0
    ts_ecr: int = 0
    rwnd: int = 0
    seq: int = 0

    def crc_input(self) -> bytes:
        """Canonical serialisation of the reconstructed dynamic header
        fields, over which the per-packet CRC-3 is computed."""
        return b"".join(v.to_bytes(8, "big", signed=False) for v in (
            self.ack & (2**64 - 1), self.ts_val & (2**64 - 1),
            self.ts_ecr & (2**64 - 1), self.rwnd & (2**64 - 1),
            self.seq & (2**64 - 1)))


@dataclass
class CompressorContext:
    """Transmit-side per-flow state."""

    cid: int
    five_tuple: FiveTuple
    flow_id: int
    src: str
    dst: str
    state: DynamicState = field(default_factory=DynamicState)
    #: Vanilla ACKs observed so far (context considered established
    #: after ``init_threshold`` of them have been sent normally).
    vanilla_seen: int = 0
    #: Set when delta references may not match the decompressor (after
    #: an unconfirmed flush, or after vanilla ACKs advanced the state):
    #: forces the next compressed ACK to carry absolute values.
    rebase_needed: bool = True

    def note_vanilla(self, segment: TcpSegment) -> None:
        self.vanilla_seen += 1
        self.state.ack = segment.ack
        self.state.ack_delta = 0
        self.state.ts_val = segment.ts_val
        self.state.ts_ecr = segment.ts_ecr
        self.state.rwnd = segment.rwnd
        self.state.seq = segment.seq
        self.rebase_needed = True


@dataclass
class DecompressorContext:
    """Receive-side per-CID state."""

    cid: int
    five_tuple: FiveTuple
    flow_id: int
    src: str
    dst: str
    state: DynamicState = field(default_factory=DynamicState)
    #: Set after a CRC failure: deltas are untrusted until an absolute
    #: (rebase) entry repairs the context.
    damaged: bool = False

    def note_vanilla(self, segment: TcpSegment) -> None:
        # Monotone guard: link-layer retries can reorder vanilla ACKs
        # behind newer compressed ones; a stale ACK must not regress
        # the reference state the compressor has already moved past.
        # Duplicate ACKs share the cumulative ACK number, so the tie
        # is broken by the (monotone per-host) timestamp.
        if (segment.ack, segment.ts_val) < (self.state.ack,
                                            self.state.ts_val):
            return
        self.state.ack = segment.ack
        self.state.ack_delta = 0
        self.state.ts_val = segment.ts_val
        self.state.ts_ecr = segment.ts_ecr
        self.state.rwnd = segment.rwnd
        self.state.seq = segment.seq
        self.damaged = False


def context_pair_for(segment: TcpSegment
                     ) -> Tuple[int, FiveTuple]:
    """(CID, five-tuple) for the flow a pure ACK belongs to."""
    return cid_for_flow(segment.five_tuple), segment.five_tuple
