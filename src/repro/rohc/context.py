"""ROHC contexts and CID derivation.

A context caches the static TCP/IP fields of one flow (the 5-tuple and
friends) plus the reference values of the dynamic fields from which
deltas are encoded.  Per the paper's TCP/HACK-specific optimisations
(§3.3.2):

* No Initialize-Refresh packets: contexts are created at both endpoints
  by observing *uncompressed* (vanilla) TCP ACKs for the flow.
* CIDs are computed independently at each endpoint as the lowest byte
  of the MD5 hash over the flow's 5-tuple — no CID negotiation.

CID collisions (two flows hashing to the same byte) are possible by
construction; the compressor detects them and simply declines to
compress the newer flow, which degrades gracefully to vanilla ACKs.

Hot-path notes: CID derivation runs per ACK (the compressor looks its
context up by CID on every send), so the MD5 is memoised per 5-tuple
key; :class:`DynamicState` is a ``__slots__`` class because one is
allocated per encoded/decoded entry, and its CRC input is serialised
with one ``struct.pack`` call (byte-identical to the historical
``b"".join`` of five 8-byte big-endian fields).
"""

from __future__ import annotations

import hashlib
import struct
from functools import lru_cache
from typing import Tuple

from ..tcp.segment import FiveTuple, TcpSegment

_U64 = 2**64 - 1
_CRC_PACK = struct.Struct(">QQQQQ").pack


@lru_cache(maxsize=65_536)
def cid_for_key(key: Tuple[str, str, int, int]) -> int:
    """CID from a raw 5-tuple key (see :func:`cid_for_flow`)."""
    text = "tcp|%s|%s|%d|%d" % key
    digest = hashlib.md5(text.encode("ascii")).digest()
    return digest[0]


def cid_for_flow(five_tuple: FiveTuple) -> int:
    """Lowest byte of MD5 over the 5-tuple (paper §3.3.2, item 2)."""
    return cid_for_key(five_tuple.key())


class DynamicState:
    """Reference values for delta encoding (shared shape at both ends)."""

    __slots__ = ("ack", "ack_delta", "ts_val", "ts_ecr", "rwnd", "seq")

    def __init__(self, ack: int = 0, ack_delta: int = 0,
                 ts_val: int = 0, ts_ecr: int = 0, rwnd: int = 0,
                 seq: int = 0):
        self.ack = ack
        #: Previous inter-ACK stride (delta-of-delta reference).
        self.ack_delta = ack_delta
        self.ts_val = ts_val
        self.ts_ecr = ts_ecr
        self.rwnd = rwnd
        self.seq = seq

    def crc_input(self) -> bytes:
        """Canonical serialisation of the reconstructed dynamic header
        fields, over which the per-packet CRC-3 is computed."""
        return _CRC_PACK(self.ack & _U64, self.ts_val & _U64,
                         self.ts_ecr & _U64, self.rwnd & _U64,
                         self.seq & _U64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DynamicState(ack={self.ack}, "
                f"ack_delta={self.ack_delta}, ts_val={self.ts_val}, "
                f"ts_ecr={self.ts_ecr}, rwnd={self.rwnd}, "
                f"seq={self.seq})")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DynamicState) and (
            self.ack == other.ack
            and self.ack_delta == other.ack_delta
            and self.ts_val == other.ts_val
            and self.ts_ecr == other.ts_ecr
            and self.rwnd == other.rwnd
            and self.seq == other.seq)


class CompressorContext:
    """Transmit-side per-flow state."""

    __slots__ = ("cid", "five_tuple", "flow_id", "src", "dst", "state",
                 "vanilla_seen", "rebase_needed")

    def __init__(self, cid: int, five_tuple: FiveTuple, flow_id: int,
                 src: str, dst: str):
        self.cid = cid
        self.five_tuple = five_tuple
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.state = DynamicState()
        #: Vanilla ACKs observed so far (context considered established
        #: after ``init_threshold`` of them have been sent normally).
        self.vanilla_seen = 0
        #: Set when delta references may not match the decompressor
        #: (after an unconfirmed flush, or after vanilla ACKs advanced
        #: the state): forces the next compressed ACK to be absolute.
        self.rebase_needed = True

    def note_vanilla(self, segment: TcpSegment) -> None:
        self.vanilla_seen += 1
        state = self.state
        state.ack = segment.ack
        state.ack_delta = 0
        state.ts_val = segment.ts_val
        state.ts_ecr = segment.ts_ecr
        state.rwnd = segment.rwnd
        state.seq = segment.seq
        self.rebase_needed = True


class DecompressorContext:
    """Receive-side per-CID state."""

    __slots__ = ("cid", "five_tuple", "flow_id", "src", "dst", "state",
                 "damaged")

    def __init__(self, cid: int, five_tuple: FiveTuple, flow_id: int,
                 src: str, dst: str):
        self.cid = cid
        self.five_tuple = five_tuple
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.state = DynamicState()
        #: Set after a CRC failure: deltas are untrusted until an
        #: absolute (rebase) entry repairs the context.
        self.damaged = False

    def note_vanilla(self, segment: TcpSegment) -> None:
        # Monotone guard: link-layer retries can reorder vanilla ACKs
        # behind newer compressed ones; a stale ACK must not regress
        # the reference state the compressor has already moved past.
        # Duplicate ACKs share the cumulative ACK number, so the tie
        # is broken by the (monotone per-host) timestamp.
        state = self.state
        if (segment.ack, segment.ts_val) < (state.ack, state.ts_val):
            return
        state.ack = segment.ack
        state.ack_delta = 0
        state.ts_val = segment.ts_val
        state.ts_ecr = segment.ts_ecr
        state.rwnd = segment.rwnd
        state.seq = segment.seq
        self.damaged = False


def context_pair_for(segment: TcpSegment
                     ) -> Tuple[int, FiveTuple]:
    """(CID, five-tuple) for the flow a pure ACK belongs to."""
    return cid_for_flow(segment.five_tuple), segment.five_tuple
