"""Receive-side ROHC decompressor for TCP ACKs.

Applies HACK-frame entries strictly in master-sequence order and
discards duplicates — the §3.4 mechanism that lets the client blindly
re-send the same compressed ACKs on every LL ACK until confirmed.

Failure containment (hardened for the adversarial scenario family):
every way a frame can be wrong — truncated, trailing garbage, broken
MSN chain, unknown CID, CRC-3 mismatch, or an outright crash in the
entry machinery — is absorbed here as a *typed, counted drop*; nothing
ever propagates into the event loop.  The CRC path is two-staged:

* a **first** mismatch on a context aborts the rest of the frame
  *without consuming the entry's MSN* (``mid_frame_aborts``).  §3.4
  retention means the peer re-offers the same bytes on the next LL
  ACK, so a transient on-air flip gets a free retry before any state
  is condemned;
* a **second consecutive** mismatch on the same context declares a
  desynchronization (``desync_events``): the context is marked
  damaged, delta entries are skipped (``damaged_skips``) until an
  absolute entry or a snooped vanilla ACK repairs it, and the repair
  latency is measured (``recovery_ns_total`` over ``recoveries``,
  plus ``recovery_frames_total`` HACK frames spent damaged).

The paper's cooperative claim (Fig. 11: zero decompression CRC
failures in practice) means none of this machinery runs outside an
attack — cooperative runs stay bit-identical.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..tcp.segment import TcpSegment
from .context import DecompressorContext, cid_for_flow
from .crc import crc3
from .packets import ACK_ABSOLUTE, ParseError, apply_entry, parse_frame
from .wlsb import lsb_decode


class Decompressor:
    """Per-link-direction TCP ACK decompressor."""

    #: Interpretation window offset for the 8-bit first-entry MSN:
    #: retained (retransmitted) entries may reach this far behind.
    MSN_P = 128

    #: Consecutive CRC mismatches on one context before it is declared
    #: desynchronized (the first one is treated as transient damage and
    #: left for §3.4 retention to retry).
    DESYNC_AFTER = 2

    #: Sentinel ``_apply`` returns for a first (retryable) CRC miss.
    _RETRY = object()

    def __init__(self, clock: Optional[Callable[[], int]] = None) -> None:
        self.contexts: Dict[int, DecompressorContext] = {}
        self.last_msn = -1
        #: CID of the last entry in MSN order (the ``same_cid`` chain is
        #: global across frames, mirroring the compressor's state).
        self._last_cid: Optional[int] = None
        #: Time source for recovery-latency measurement (the driver
        #: passes the simulator clock); None reads as 0.
        self.clock = clock
        # Counters.
        self.acks_reconstructed = 0
        self.duplicates_skipped = 0
        self.crc_failures = 0
        self.unknown_cid = 0
        self.damaged_skips = 0
        self.parse_errors = 0
        self.frames_processed = 0
        # Robustness counters (all zero in cooperative runs).
        self.mid_frame_aborts = 0
        self.desync_events = 0
        self.recoveries = 0
        self.recovery_ns_total = 0
        self.recovery_frames_total = 0
        self.internal_errors = 0
        #: cid -> consecutive CRC-mismatch count (reset by any success).
        self._crc_streaks: Dict[int, int] = {}
        #: cid -> (declared-at ns, frames_processed then) while desynced.
        self._damage_marks: Dict[int, Tuple[int, int]] = {}

    def _now(self) -> int:
        return self.clock() if self.clock is not None else 0

    # ------------------------------------------------------------------
    def note_vanilla_ack(self, segment: TcpSegment) -> None:
        """Snoop an uncompressed ACK to create/refresh its context."""
        if not segment.is_pure_ack:
            return
        cid = cid_for_flow(segment.five_tuple)
        context = self.contexts.get(cid)
        if context is None:
            context = DecompressorContext(
                cid=cid, five_tuple=segment.five_tuple,
                flow_id=segment.flow_id, src=segment.src,
                dst=segment.dst)
            self.contexts[cid] = context
        was_damaged = context.damaged
        context.note_vanilla(segment)
        if was_damaged and not context.damaged:
            # A vanilla ACK re-established the context out-of-band —
            # the second of the two §3.3.2 repair paths.
            self._mark_recovered(cid)

    def release_flow(self, five_tuple) -> bool:
        """Drop the context of a finished flow (mirror of the
        compressor-side release): the CID becomes reusable and the
        next flow hashing to it re-initialises via vanilla ACKs
        instead of mis-decoding against stale state."""
        cid = cid_for_flow(five_tuple)
        context = self.contexts.get(cid)
        if context is None or \
                context.five_tuple.key() != five_tuple.key():
            return False
        del self.contexts[cid]
        self._crc_streaks.pop(cid, None)
        self._damage_marks.pop(cid, None)  # died desynced: no recovery
        if self._last_cid == cid:
            self._last_cid = None
        return True

    # ------------------------------------------------------------------
    def decompress_frame(self, data: bytes) -> List[TcpSegment]:
        """Reconstruct the new (non-duplicate) TCP ACKs in a frame.

        Never raises: corruption of any shape lands in a counter."""
        self.frames_processed += 1
        try:
            first_msn8, entries = parse_frame(data)
        except ParseError:
            self.parse_errors += 1
            return []
        except Exception:
            self.internal_errors += 1
            return []
        first_msn = lsb_decode(first_msn8, 8, self.last_msn + 1,
                               p=self.MSN_P)
        output: List[TcpSegment] = []
        for index, entry in enumerate(entries):
            msn = first_msn + index
            if entry.msn_nibble != (msn & 0xF):
                # MSN chain broken: do not trust the rest of the frame.
                self.parse_errors += 1
                break
            if msn > self.last_msn + 1 and entry.same_cid:
                # An MSN gap (the peer discarded unconfirmed entries)
                # invalidates the CID chain; the compressor emits an
                # explicit CID after such discards, so a same_cid entry
                # here is undecodable.
                self.parse_errors += 1
                self._last_cid = None
                self.last_msn = max(self.last_msn, msn)
                continue
            if not entry.same_cid:
                self._last_cid = entry.cid
            cid = self._last_cid
            if msn <= self.last_msn:
                self.duplicates_skipped += 1
                continue
            prev_msn = self.last_msn
            self.last_msn = msn
            if cid is None:
                self.parse_errors += 1
                continue
            try:
                segment = self._apply(cid, entry)
            except Exception:
                # Nothing the wire can carry may crash the receive
                # path; a blow-up in the entry machinery becomes a
                # counted drop of the rest of the frame.
                self.internal_errors += 1
                break
            if segment is self._RETRY:
                # First CRC miss on this context: leave the entry
                # unconsumed and stop trusting the rest of the frame.
                # §3.4 retention re-offers the same bytes, so transient
                # corruption gets a free retry before the context is
                # condemned (DESYNC_AFTER).
                self.last_msn = prev_msn
                self.mid_frame_aborts += 1
                break
            if segment is not None:
                output.append(segment)
        return output

    def _apply(self, cid: int, entry) -> Optional[TcpSegment]:
        context = self.contexts.get(cid)
        if context is None:
            self.unknown_cid += 1
            return None
        if context.damaged and entry.ack_mode != ACK_ABSOLUTE:
            self.damaged_skips += 1
            return None
        new_state = apply_entry(entry, context.state)
        if crc3(new_state.crc_input()) != entry.crc:
            self.crc_failures += 1
            streak = self._crc_streaks.get(cid, 0) + 1
            self._crc_streaks[cid] = streak
            if streak < self.DESYNC_AFTER:
                return self._RETRY
            # Repeated mismatch: the context itself no longer agrees
            # with the compressor.  Declare desync; delta entries are
            # dead weight until an absolute entry or a vanilla ACK
            # re-anchors the state.
            self._crc_streaks.pop(cid, None)
            if not context.damaged:
                context.damaged = True
                self.desync_events += 1
                self._damage_marks[cid] = (self._now(),
                                           self.frames_processed)
            return None
        was_damaged = context.damaged
        context.state = new_state
        context.damaged = False
        if self._crc_streaks:
            self._crc_streaks.pop(cid, None)
        if was_damaged:
            # An absolute (rebase) entry repaired the context in-band.
            self._mark_recovered(cid)
        self.acks_reconstructed += 1
        return TcpSegment(
            flow_id=context.flow_id, src=context.src, dst=context.dst,
            seq=new_state.seq, payload_bytes=0, ack=new_state.ack,
            rwnd=new_state.rwnd, ts_val=new_state.ts_val,
            ts_ecr=new_state.ts_ecr, sack_blocks=entry.sack_blocks,
            five_tuple=context.five_tuple)

    # ------------------------------------------------------------------
    def _mark_recovered(self, cid: int) -> None:
        mark = self._damage_marks.pop(cid, None)
        self.recoveries += 1
        if mark is not None:
            declared_ns, declared_frames = mark
            self.recovery_ns_total += self._now() - declared_ns
            self.recovery_frames_total += (self.frames_processed
                                           - declared_frames)

    @property
    def open_desyncs(self) -> int:
        """Contexts currently declared desynchronized."""
        return len(self._damage_marks)

    def robustness_counters(self) -> Dict[str, int]:
        """The attack-facing counters (all zero cooperatively)."""
        return {
            "mid_frame_aborts": self.mid_frame_aborts,
            "desync_events": self.desync_events,
            "recoveries": self.recoveries,
            "open_desyncs": self.open_desyncs,
            "recovery_ns_total": self.recovery_ns_total,
            "recovery_frames_total": self.recovery_frames_total,
            "internal_errors": self.internal_errors,
        }
