"""Receive-side ROHC decompressor for TCP ACKs.

Applies HACK-frame entries strictly in master-sequence order and
discards duplicates — the §3.4 mechanism that lets the client blindly
re-send the same compressed ACKs on every LL ACK until confirmed.

Failure containment: a CRC-3 mismatch marks the flow's context damaged
and suppresses further delta entries until an absolute (rebase) entry
repairs it; unknown CIDs (context-establishing vanilla ACK lost) are
skipped.  Both are counted — the paper's claim is that in practice
these counters stay at zero CRC failures.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..tcp.segment import TcpSegment
from .context import DecompressorContext, cid_for_flow
from .crc import crc3
from .packets import ACK_ABSOLUTE, ParseError, apply_entry, parse_frame
from .wlsb import lsb_decode


class Decompressor:
    """Per-link-direction TCP ACK decompressor."""

    #: Interpretation window offset for the 8-bit first-entry MSN:
    #: retained (retransmitted) entries may reach this far behind.
    MSN_P = 128

    def __init__(self) -> None:
        self.contexts: Dict[int, DecompressorContext] = {}
        self.last_msn = -1
        #: CID of the last entry in MSN order (the ``same_cid`` chain is
        #: global across frames, mirroring the compressor's state).
        self._last_cid: Optional[int] = None
        # Counters.
        self.acks_reconstructed = 0
        self.duplicates_skipped = 0
        self.crc_failures = 0
        self.unknown_cid = 0
        self.damaged_skips = 0
        self.parse_errors = 0
        self.frames_processed = 0

    # ------------------------------------------------------------------
    def note_vanilla_ack(self, segment: TcpSegment) -> None:
        """Snoop an uncompressed ACK to create/refresh its context."""
        if not segment.is_pure_ack:
            return
        cid = cid_for_flow(segment.five_tuple)
        context = self.contexts.get(cid)
        if context is None:
            context = DecompressorContext(
                cid=cid, five_tuple=segment.five_tuple,
                flow_id=segment.flow_id, src=segment.src,
                dst=segment.dst)
            self.contexts[cid] = context
        context.note_vanilla(segment)

    def release_flow(self, five_tuple) -> bool:
        """Drop the context of a finished flow (mirror of the
        compressor-side release): the CID becomes reusable and the
        next flow hashing to it re-initialises via vanilla ACKs
        instead of mis-decoding against stale state."""
        cid = cid_for_flow(five_tuple)
        context = self.contexts.get(cid)
        if context is None or \
                context.five_tuple.key() != five_tuple.key():
            return False
        del self.contexts[cid]
        if self._last_cid == cid:
            self._last_cid = None
        return True

    # ------------------------------------------------------------------
    def decompress_frame(self, data: bytes) -> List[TcpSegment]:
        """Reconstruct the new (non-duplicate) TCP ACKs in a frame."""
        self.frames_processed += 1
        try:
            first_msn8, entries = parse_frame(data)
        except ParseError:
            self.parse_errors += 1
            return []
        first_msn = lsb_decode(first_msn8, 8, self.last_msn + 1,
                               p=self.MSN_P)
        output: List[TcpSegment] = []
        for index, entry in enumerate(entries):
            msn = first_msn + index
            if entry.msn_nibble != (msn & 0xF):
                # MSN chain broken: do not trust the rest of the frame.
                self.parse_errors += 1
                break
            if msn > self.last_msn + 1 and entry.same_cid:
                # An MSN gap (the peer discarded unconfirmed entries)
                # invalidates the CID chain; the compressor emits an
                # explicit CID after such discards, so a same_cid entry
                # here is undecodable.
                self.parse_errors += 1
                self._last_cid = None
                self.last_msn = max(self.last_msn, msn)
                continue
            if not entry.same_cid:
                self._last_cid = entry.cid
            cid = self._last_cid
            if msn <= self.last_msn:
                self.duplicates_skipped += 1
                continue
            self.last_msn = msn
            if cid is None:
                self.parse_errors += 1
                continue
            segment = self._apply(cid, entry)
            if segment is not None:
                output.append(segment)
        return output

    def _apply(self, cid: int, entry) -> Optional[TcpSegment]:
        context = self.contexts.get(cid)
        if context is None:
            self.unknown_cid += 1
            return None
        if context.damaged and entry.ack_mode != ACK_ABSOLUTE:
            self.damaged_skips += 1
            return None
        new_state = apply_entry(entry, context.state)
        if crc3(new_state.crc_input()) != entry.crc:
            self.crc_failures += 1
            context.damaged = True
            return None
        context.state = new_state
        context.damaged = False
        self.acks_reconstructed += 1
        return TcpSegment(
            flow_id=context.flow_id, src=context.src, dst=context.dst,
            seq=new_state.seq, payload_bytes=0, ack=new_state.ack,
            rwnd=new_state.rwnd, ts_val=new_state.ts_val,
            ts_ecr=new_state.ts_ecr, sack_blocks=entry.sack_blocks,
            five_tuple=context.five_tuple)
