"""CRC functions used by the ROHC profile (RFC 5795 §5.3.1.1).

ROHC defines 3-, 7- and 8-bit CRCs over the uncompressed header to
detect decompressor context damage.  TCP/HACK uses the 3-bit CRC in
each compressed ACK's control byte (it is what lets the paper claim
"no decompression CRC failures" under loss); the 7/8-bit variants are
provided for completeness and used in tests.
"""

from __future__ import annotations

#: Polynomials from RFC 5795: C(x) listed LSB-first as used there.
CRC3_POLY = 0x6   # x^3 + x + 1
CRC7_POLY = 0x79  # x^7 + x^6 + x^5 + x^4 + x^3 + x + 1 (bit-reversed)
CRC8_POLY = 0xE0  # x^8 + x^2 + x + 1 (bit-reversed)


def _crc_bitwise(data: bytes, width: int, poly: int, init: int) -> int:
    """Reflected (LSB-first) CRC as specified for ROHC.

    Every input bit is folded in LSB-first; ``poly`` is the
    bit-reversed generator polynomial."""
    crc = init
    mask = (1 << width) - 1
    for byte in data:
        for i in range(8):
            bit = (byte >> i) & 1
            if (crc ^ bit) & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
    return crc & mask


def crc3(data: bytes) -> int:
    """ROHC CRC-3 (returns 0..7)."""
    return _crc_bitwise(data, 3, CRC3_POLY, 0x7)


def crc7(data: bytes) -> int:
    """ROHC CRC-7 (returns 0..127)."""
    return _crc_bitwise(data, 7, CRC7_POLY, 0x7F)


def crc8(data: bytes) -> int:
    """ROHC CRC-8 (returns 0..255)."""
    return _crc_bitwise(data, 8, CRC8_POLY, 0xFF)
