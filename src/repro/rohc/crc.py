"""CRC functions used by the ROHC profile (RFC 5795 §5.3.1.1).

ROHC defines 3-, 7- and 8-bit CRCs over the uncompressed header to
detect decompressor context damage.  TCP/HACK uses the 3-bit CRC in
each compressed ACK's control byte (it is what lets the paper claim
"no decompression CRC failures" under loss); the 7/8-bit variants are
provided for completeness and used in tests.

The public functions are **table-driven** (one 256-entry table per
width, folded bytewise): CRC-3 runs once per compressed ACK on both
ends of the link, and the historical bit-by-bit fold was the single
hottest function in the HACK data plane (~18% of a 4-client cell's
wall time).  For a reflected CRC of width <= 8 the bytewise recurrence
collapses to ``crc = table[crc ^ byte]``, which is bit-identical to
the bitwise fold — ``_crc_bitwise`` is retained as the executable
reference the equivalence tests check the tables against.
"""

from __future__ import annotations

from typing import List

#: Polynomials from RFC 5795: C(x) listed LSB-first as used there.
CRC3_POLY = 0x6   # x^3 + x + 1
CRC7_POLY = 0x79  # x^7 + x^6 + x^5 + x^4 + x^3 + x + 1 (bit-reversed)
CRC8_POLY = 0xE0  # x^8 + x^2 + x + 1 (bit-reversed)


def _crc_bitwise(data: bytes, width: int, poly: int, init: int) -> int:
    """Reflected (LSB-first) CRC as specified for ROHC.

    Every input bit is folded in LSB-first; ``poly`` is the
    bit-reversed generator polynomial.  Reference implementation — the
    tables below must (and are tested to) agree with it exactly.
    """
    crc = init
    mask = (1 << width) - 1
    for byte in data:
        for i in range(8):
            bit = (byte >> i) & 1
            if (crc ^ bit) & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
    return crc & mask


def _make_table(width: int, poly: int) -> List[int]:
    """256-entry bytewise table: entry b is the CRC state after folding
    byte ``b`` into a zero state (for width <= 8 the previous state is
    XORed into the index)."""
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ poly if crc & 1 else crc >> 1
        table.append(crc & ((1 << width) - 1))
    return table


_CRC3_TABLE = _make_table(3, CRC3_POLY)
_CRC7_TABLE = _make_table(7, CRC7_POLY)
_CRC8_TABLE = _make_table(8, CRC8_POLY)


def crc3(data: bytes) -> int:
    """ROHC CRC-3 (returns 0..7)."""
    crc = 0x7
    table = _CRC3_TABLE
    for byte in data:
        crc = table[crc ^ byte]
    return crc


def crc7(data: bytes) -> int:
    """ROHC CRC-7 (returns 0..127)."""
    crc = 0x7F
    table = _CRC7_TABLE
    for byte in data:
        crc = table[crc ^ byte]
    return crc


def crc8(data: bytes) -> int:
    """ROHC CRC-8 (returns 0..255)."""
    crc = 0xFF
    table = _CRC8_TABLE
    for byte in data:
        crc = table[crc ^ byte]
    return crc
