"""Window-based Least Significant Bits (W-LSB) encoding (RFC 5795 §4.5.2).

Only the low ``k`` bits of a changing field are transmitted; the
decompressor reconstructs the full value as the unique candidate whose
low bits match, inside an *interpretation interval* anchored at its
reference value:  ``[v_ref - p, v_ref - p + 2^k - 1]``.

TCP/HACK uses this for the master sequence number: 8 bits for the
first compressed ACK in a frame (the paper's §3.4 extension, needed
because an A-MPDU can carry 64 packets' worth of retained ACKs) and
implicit/short encodings afterwards.
"""

from __future__ import annotations


def lsb_encode(value: int, k: int) -> int:
    """Transmit the low ``k`` bits of ``value``."""
    if k <= 0:
        raise ValueError("k must be positive")
    return value & ((1 << k) - 1)


def lsb_decode(lsbs: int, k: int, v_ref: int, p: int = 0) -> int:
    """Reconstruct the full value from its low bits.

    Returns the unique ``v`` in ``[v_ref - p, v_ref - p + 2^k - 1]``
    with ``v & (2^k - 1) == lsbs``.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    window = 1 << k
    if not 0 <= lsbs < window:
        raise ValueError(f"lsbs {lsbs} out of range for k={k}")
    low = v_ref - p
    candidate = low + ((lsbs - low) % window)
    return candidate


def interpretation_interval(k: int, v_ref: int, p: int = 0):
    """The (inclusive) range of values decodable against ``v_ref``."""
    low = v_ref - p
    return low, low + (1 << k) - 1
