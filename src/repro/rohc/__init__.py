"""ROHC-style TCP ACK compression (RFC 6846 profile, HACK-specialised)."""

from .compressor import Compressor
from .context import CompressorContext, DecompressorContext, \
    DynamicState, cid_for_flow
from .crc import crc3, crc7, crc8
from .decompressor import Decompressor
from .packets import CompressedAck, EncodingError, ParseError, \
    apply_entry, build_frame, encode_entry, parse_entry, parse_frame, \
    unzigzag, zigzag
from .wlsb import interpretation_interval, lsb_decode, lsb_encode

__all__ = [
    "Compressor", "Decompressor", "CompressedAck", "cid_for_flow",
    "CompressorContext", "DecompressorContext", "DynamicState",
    "crc3", "crc7", "crc8", "encode_entry", "parse_entry", "apply_entry",
    "build_frame", "parse_frame", "zigzag", "unzigzag",
    "EncodingError", "ParseError",
    "lsb_encode", "lsb_decode", "interpretation_interval",
]
