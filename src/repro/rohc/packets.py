"""Wire format of compressed TCP ACKs (the bytes HACK appends to LL ACKs).

A **HACK frame** is what rides on one LL ACK / Block ACK::

    [count u8][first_msn u8][entry 0][entry 1]...[entry count-1]

The first entry's master sequence number (MSN) is carried as a full
8-bit LSB field (the paper's §3.4 widening, because an A-MPDU can carry
64 packets' worth of retained ACKs); subsequent entries carry a 4-bit
MSN residue that must match the implicit ``first + i`` progression.

Each **entry** compresses one pure TCP ACK:

    byte0 (ctrl):  bits 7-6 ack_mode   0 = stride repeat (ack += previous
                                           inter-ACK delta; the paper's
                                           "constant payload" 3-byte case)
                                       1 = new u8 delta
                                       2 = new u16 delta
                                       3 = absolute rebase entry
                   bits 5-4 ts_mode    0 = both timestamps unchanged
                                       1 = zigzag u8 deltas
                                       2 = zigzag u16 deltas
                                       3 = (with ack_mode 3) absolutes
                   bit 3    same_cid   previous compressed ACK's CID applies
                   bits 2-0 crc3       ROHC CRC-3 over the reconstructed
                                       dynamic fields
    byte1:         bits 7-4 msn residue (low nibble of this entry's MSN)
                   bit 3    wnd_present (zigzag u16 rwnd delta follows)
                   bit 2    sack_present
                   bits 1-0 reserved (0)
    [cid u8]                     if not same_cid
    [ack bytes]                  per ack_mode (mode 3: ack u32, seq u32,
                                 wnd u16)
    [ts bytes]                   per ts_mode (mode 3 with ack_mode 3:
                                 ts_val u32, ts_ecr u32)
    [wnd zigzag u16]             if wnd_present and ack_mode != 3
    [sack: u8 n, then n x (u32 start, u32 end)]   if sack_present

A typical steady-state ACK (constant stride, unchanged ms-granularity
timestamps, same flow) costs 2 bytes, a changing one 3-5 — bracketing
the paper's "about 4 bytes, or even 3" (§3.3.2).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .context import DynamicState
from .crc import crc3

ACK_STRIDE, ACK_D8, ACK_D16, ACK_ABSOLUTE = 0, 1, 2, 3
TS_UNCHANGED, TS_D8, TS_D16, TS_ABSOLUTE = 0, 1, 2, 3


def zigzag(n: int) -> int:
    """Map a signed int to an unsigned one (0, -1, 1, -2, ... order)."""
    return (n << 1) if n >= 0 else ((-n) << 1) - 1


def unzigzag(z: int) -> int:
    return (z >> 1) if z % 2 == 0 else -((z + 1) >> 1)


class CompressedAck:
    """One compressed ACK, serialised once at compression time."""

    __slots__ = ("msn", "cid", "data", "segment", "sent_once")

    def __init__(self, msn: int, cid: int, data: bytes,
                 segment: object = None, sent_once: bool = False):
        self.msn = msn
        self.cid = cid
        self.data = data
        #: The original segment (kept so vanilla fallback can resend it).
        self.segment = segment
        self.sent_once = sent_once


class EncodingError(ValueError):
    """The segment cannot be expressed in the requested mode."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_entry(state: DynamicState, segment, cid: int, same_cid: bool,
                 msn: int, force_absolute: bool = False
                 ) -> Tuple[bytes, DynamicState]:
    """Serialise one pure ACK against ``state``; returns (bytes,
    new_state).  ``state`` is not mutated."""
    if segment.payload_bytes != 0:
        raise EncodingError("only pure ACKs are compressible")
    d_ack = segment.ack - state.ack
    d_tv = segment.ts_val - state.ts_val
    d_te = segment.ts_ecr - state.ts_ecr
    d_wnd = segment.rwnd - state.rwnd

    # A backwards cumulative ACK (duplicate of an older ACK after a
    # vanilla/compressed interleaving) cannot be delta-encoded.
    absolute = (force_absolute or d_ack < 0 or d_ack > 0xFFFF
                or segment.seq != state.seq
                or not -0x4000 <= d_wnd <= 0x3FFF
                or not -0x4000 <= d_tv <= 0x3FFF
                or not -0x4000 <= d_te <= 0x3FFF
                or segment.ack >= 1 << 32
                or segment.ts_val >= 1 << 32
                or segment.ts_ecr >= 1 << 32)

    new_state = DynamicState(
        ack=segment.ack, ack_delta=0 if absolute else d_ack,
        ts_val=segment.ts_val, ts_ecr=segment.ts_ecr,
        rwnd=segment.rwnd, seq=segment.seq)
    crc = crc3(new_state.crc_input())

    # The entry is assembled into one bytearray: two header bytes are
    # reserved up front and patched once the modes are known, avoiding
    # the historical body-then-concatenate copy per ACK.
    sack = segment.sack_blocks
    out = bytearray(2)
    if not same_cid:
        out.append(cid & 0xFF)
    if absolute:
        ack_mode, ts_mode = ACK_ABSOLUTE, TS_ABSOLUTE
        wnd_present = False
        out += segment.ack.to_bytes(4, "big")
        out += segment.seq.to_bytes(4, "big")
        out += segment.rwnd.to_bytes(4, "big")
        out += segment.ts_val.to_bytes(4, "big")
        out += segment.ts_ecr.to_bytes(4, "big")
    else:
        if d_ack == state.ack_delta:
            ack_mode = ACK_STRIDE
            new_state.ack_delta = state.ack_delta
        elif d_ack <= 0xFF:
            ack_mode = ACK_D8
            out.append(d_ack)
            new_state.ack_delta = d_ack
        else:
            ack_mode = ACK_D16
            out.append(d_ack >> 8)
            out.append(d_ack & 0xFF)
            new_state.ack_delta = d_ack
        if d_tv == 0 and d_te == 0:
            ts_mode = TS_UNCHANGED
        else:
            z_tv, z_te = zigzag(d_tv), zigzag(d_te)
            if z_tv <= 0xFF and z_te <= 0xFF:
                ts_mode = TS_D8
                out.append(z_tv)
                out.append(z_te)
            else:
                ts_mode = TS_D16
                out += z_tv.to_bytes(2, "big")
                out += z_te.to_bytes(2, "big")
        wnd_present = d_wnd != 0
        if wnd_present:
            out += zigzag(d_wnd).to_bytes(2, "big")

    if sack:
        out.append(len(sack))
        for start, end in sack:
            out += start.to_bytes(4, "big")
            out += end.to_bytes(4, "big")

    out[0] = (ack_mode << 6) | (ts_mode << 4) | \
        ((1 if same_cid else 0) << 3) | crc
    out[1] = ((msn & 0xF) << 4) | ((1 if wnd_present else 0) << 3) | \
        ((1 if sack else 0) << 2)
    return bytes(out), new_state


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
class DecodedEntry:
    """Parsed wire entry, not yet applied to a context."""

    __slots__ = ("ack_mode", "ts_mode", "same_cid", "crc",
                 "msn_nibble", "wnd_present", "cid", "d_ack",
                 "abs_ack", "abs_seq", "abs_wnd", "abs_ts_val",
                 "abs_ts_ecr", "d_tv", "d_te", "d_wnd", "sack_blocks",
                 "size")

    def __init__(self, ack_mode: int, ts_mode: int, same_cid: bool,
                 crc: int, msn_nibble: int, wnd_present: bool,
                 cid: Optional[int], d_ack: int = 0, abs_ack: int = 0,
                 abs_seq: int = 0, abs_wnd: int = 0,
                 abs_ts_val: int = 0, abs_ts_ecr: int = 0,
                 d_tv: int = 0, d_te: int = 0, d_wnd: int = 0,
                 sack_blocks: Tuple[Tuple[int, int], ...] = (),
                 size: int = 0):
        self.ack_mode = ack_mode
        self.ts_mode = ts_mode
        self.same_cid = same_cid
        self.crc = crc
        self.msn_nibble = msn_nibble
        self.wnd_present = wnd_present
        self.cid = cid
        self.d_ack = d_ack
        self.abs_ack = abs_ack
        self.abs_seq = abs_seq
        self.abs_wnd = abs_wnd
        self.abs_ts_val = abs_ts_val
        self.abs_ts_ecr = abs_ts_ecr
        self.d_tv = d_tv
        self.d_te = d_te
        self.d_wnd = d_wnd
        self.sack_blocks = sack_blocks
        self.size = size


class ParseError(ValueError):
    """Malformed HACK frame bytes."""


def parse_entry(data: bytes, offset: int) -> DecodedEntry:
    """Parse one entry starting at ``offset`` (structure only)."""
    end = len(data)
    try:
        ctrl = data[offset]
        byte1 = data[offset + 1]
    except IndexError:
        raise ParseError("truncated entry header")
    pos = offset + 2
    entry = DecodedEntry(
        ack_mode=(ctrl >> 6) & 0x3, ts_mode=(ctrl >> 4) & 0x3,
        same_cid=bool(ctrl & 0x08), crc=ctrl & 0x07,
        msn_nibble=(byte1 >> 4) & 0xF,
        wnd_present=bool(byte1 & 0x08), cid=None)
    sack_present = bool(byte1 & 0x04)

    if not entry.same_cid:
        if pos + 1 > end:
            raise ParseError("truncated entry body")
        entry.cid = data[pos]
        pos += 1
    if entry.ack_mode == ACK_ABSOLUTE:
        if pos + 20 > end:
            raise ParseError("truncated entry body")
        entry.abs_ack = int.from_bytes(data[pos:pos + 4], "big")
        entry.abs_seq = int.from_bytes(data[pos + 4:pos + 8], "big")
        entry.abs_wnd = int.from_bytes(data[pos + 8:pos + 12], "big")
        entry.abs_ts_val = int.from_bytes(data[pos + 12:pos + 16],
                                          "big")
        entry.abs_ts_ecr = int.from_bytes(data[pos + 16:pos + 20],
                                          "big")
        pos += 20
    else:
        if entry.ack_mode == ACK_D8:
            if pos + 1 > end:
                raise ParseError("truncated entry body")
            entry.d_ack = data[pos]
            pos += 1
        elif entry.ack_mode == ACK_D16:
            if pos + 2 > end:
                raise ParseError("truncated entry body")
            entry.d_ack = (data[pos] << 8) | data[pos + 1]
            pos += 2
        if entry.ts_mode == TS_D8:
            if pos + 2 > end:
                raise ParseError("truncated entry body")
            entry.d_tv = unzigzag(data[pos])
            entry.d_te = unzigzag(data[pos + 1])
            pos += 2
        elif entry.ts_mode == TS_D16:
            if pos + 4 > end:
                raise ParseError("truncated entry body")
            entry.d_tv = unzigzag((data[pos] << 8) | data[pos + 1])
            entry.d_te = unzigzag((data[pos + 2] << 8) | data[pos + 3])
            pos += 4
        elif entry.ts_mode == TS_ABSOLUTE:
            raise ParseError("absolute timestamps require ack_mode 3")
        if entry.wnd_present:
            if pos + 2 > end:
                raise ParseError("truncated entry body")
            entry.d_wnd = unzigzag((data[pos] << 8) | data[pos + 1])
            pos += 2
    if sack_present:
        if pos + 1 > end:
            raise ParseError("truncated entry body")
        count = data[pos]
        pos += 1
        if pos + 8 * count > end:
            raise ParseError("truncated entry body")
        blocks: List[Tuple[int, int]] = []
        for _ in range(count):
            blocks.append((int.from_bytes(data[pos:pos + 4], "big"),
                           int.from_bytes(data[pos + 4:pos + 8],
                                          "big")))
            pos += 8
        entry.sack_blocks = tuple(blocks)
    entry.size = pos - offset
    return entry


def apply_entry(entry: DecodedEntry, state: DynamicState
                ) -> DynamicState:
    """Apply a parsed entry to a context's dynamic state (pure)."""
    if entry.ack_mode == ACK_ABSOLUTE:
        return DynamicState(
            ack=entry.abs_ack, ack_delta=0, ts_val=entry.abs_ts_val,
            ts_ecr=entry.abs_ts_ecr, rwnd=entry.abs_wnd,
            seq=entry.abs_seq)
    if entry.ack_mode == ACK_STRIDE:
        d_ack, new_stride = state.ack_delta, state.ack_delta
    else:
        d_ack, new_stride = entry.d_ack, entry.d_ack
    return DynamicState(
        ack=state.ack + d_ack, ack_delta=new_stride,
        ts_val=state.ts_val + entry.d_tv,
        ts_ecr=state.ts_ecr + entry.d_te,
        rwnd=state.rwnd + entry.d_wnd, seq=state.seq)


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def build_frame(entries: List[CompressedAck]) -> bytes:
    """Concatenate compressed ACKs into one HACK frame."""
    if not entries:
        raise ValueError("empty HACK frame")
    if len(entries) > 255:
        raise ValueError("HACK frame limited to 255 entries")
    first = entries[0].msn
    for i, entry in enumerate(entries):
        if entry.msn != first + i:
            raise ValueError("HACK frame entries must have consecutive "
                             f"MSNs (got {entry.msn}, expected "
                             f"{first + i})")
    out = bytearray([len(entries), first & 0xFF])
    for entry in entries:
        out += entry.data
    return bytes(out)


def parse_frame(data: bytes) -> Tuple[int, List[DecodedEntry]]:
    """Parse a HACK frame into (first_msn_lsb8, entries)."""
    if len(data) < 2:
        raise ParseError("frame too short")
    count = data[0]
    first_msn8 = data[1]
    entries: List[DecodedEntry] = []
    pos = 2
    for _ in range(count):
        entry = parse_entry(data, pos)
        entries.append(entry)
        pos += entry.size
    if pos != len(data):
        raise ParseError("trailing bytes after last entry")
    return first_msn8, entries
