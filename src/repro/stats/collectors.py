"""Measurement collectors.

:class:`MacStats` receives fine-grained callbacks from every
:class:`~repro.mac.dcf.DcfMac` that shares it, and accumulates exactly
the quantities the paper's tables report:

* **Table 1** — per-destination counts of data MPDUs delivered on the
  first attempt vs. after one or more link-layer retries.
* **Table 3** — a time breakdown attributable to TCP ACKs: airtime of
  vanilla TCP ACK frames, extra LL-ACK airtime due to appended ROHC
  payloads, channel-acquisition waiting time, and the LL ACK + SIFS
  overhead elicited by TCP ACK frames.
* **§3.3.2 footnote** — the fraction of HACK-augmented LL ACKs whose
  appended payload airtime fits within AIFS.

Packet kinds are taken from payload ``kind`` attributes
(``tcp_data`` / ``tcp_ack`` / ``udp``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict


class MacStats:
    """Shared accumulator for MAC-level events (one per simulation)."""

    def __init__(self) -> None:
        # Airtime + acquisition accounting, keyed by payload kind.
        self.airtime_ns: Dict[str, int] = defaultdict(int)
        self.acquisition_wait_ns: Dict[str, int] = defaultdict(int)
        self.tx_attempts: Dict[str, int] = defaultdict(int)
        self.exchange_failures: Dict[str, int] = defaultdict(int)
        self.exchange_successes: Dict[str, int] = defaultdict(int)

        # Per-destination delivery outcomes (Table 1).
        self.delivered_first_attempt: Dict[str, int] = defaultdict(int)
        self.delivered_after_retry: Dict[str, int] = defaultdict(int)
        self.mpdus_dropped: Dict[str, int] = defaultdict(int)
        self.mpdus_corrupted: Dict[str, int] = defaultdict(int)

        # LL ACK / response accounting (Table 3).
        self.ll_response_airtime_ns: Dict[str, int] = defaultdict(int)
        self.ll_response_overhead_ns: Dict[str, int] = defaultdict(int)
        self.ll_responses: Dict[str, int] = defaultdict(int)
        self.hack_extra_airtime_ns = 0
        self.hack_responses = 0
        self.hack_fits_aifs = 0
        self.hack_payload_bytes = 0

        self.bar_give_ups = 0

    # ------------------------------------------------------------------
    # Hooks called by DcfMac
    # ------------------------------------------------------------------
    def on_tx_start(self, addr: str, job: Any, frame: Any,
                    duration: int, wait_ns: int) -> None:
        kind = "bar" if job.kind == "bar" else job.stat_kind
        self.airtime_ns[kind] += duration
        self.acquisition_wait_ns[kind] += wait_ns
        self.tx_attempts[kind] += 1

    def on_exchange_failed(self, addr: str, job: Any) -> None:
        kind = "bar" if job.kind == "bar" else job.stat_kind
        self.exchange_failures[kind] += 1

    def on_exchange_succeeded(self, addr: str, job: Any) -> None:
        kind = "bar" if job.kind == "bar" else job.stat_kind
        self.exchange_successes[kind] += 1

    def on_mpdu_delivered(self, addr: str, mpdu: Any) -> None:
        if mpdu.retry_count == 0:
            self.delivered_first_attempt[mpdu.dst] += 1
        else:
            self.delivered_after_retry[mpdu.dst] += 1

    def on_mpdu_dropped(self, addr: str, mpdu: Any) -> None:
        self.mpdus_dropped[mpdu.dst] += 1

    def on_mpdu_corrupted(self, addr: str, mpdu: Any) -> None:
        self.mpdus_corrupted[addr] += 1

    def on_bar_give_up(self, addr: str, dst: str) -> None:
        self.bar_give_ups += 1

    def on_ll_response(self, addr: str, response: Any, duration: int,
                       stock_duration: int, elicited_by: Any, phy: Any,
                       extra_delay: int) -> None:
        kind = self._elicited_kind(elicited_by)
        self.ll_response_airtime_ns[kind] += duration
        # Total response overhead the eliciting sender experiences:
        # SIFS + (device lateness) + ACK airtime.
        self.ll_response_overhead_ns[kind] += (
            phy.sifs_ns + extra_delay + duration)
        self.ll_responses[kind] += 1
        extra = duration - stock_duration
        if extra > 0:
            self.hack_extra_airtime_ns += extra
            self.hack_responses += 1
            self.hack_payload_bytes += (
                len(response.hack_payload) if response.hack_payload else 0)
            if extra <= phy.difs_ns:
                self.hack_fits_aifs += 1

    @staticmethod
    def _elicited_kind(frame: Any) -> str:
        mpdus = getattr(frame, "mpdus", None)
        if not mpdus:
            return "bar"
        return getattr(mpdus[0].payload, "kind", "data")

    #: Every defaultdict counter (summed key-wise on merge).
    _DICT_COUNTERS = (
        "airtime_ns", "acquisition_wait_ns", "tx_attempts",
        "exchange_failures", "exchange_successes",
        "delivered_first_attempt", "delivered_after_retry",
        "mpdus_dropped", "mpdus_corrupted",
        "ll_response_airtime_ns", "ll_response_overhead_ns",
        "ll_responses")
    #: Every scalar counter (summed on merge).
    _SCALAR_COUNTERS = (
        "hack_extra_airtime_ns", "hack_responses", "hack_fits_aifs",
        "hack_payload_bytes", "bar_give_ups")

    def merge(self, other: "MacStats") -> None:
        """Fold another simulation's accumulator into this one.

        Every field is an integer count or sum, so merging is exact
        and order-independent — the derived reports (retry table, fit
        fraction, time breakdown) computed from a merge equal those of
        a single simulation that saw all the events.  Used by the
        channel-shard pipeline to combine per-shard stats.
        """
        for attr in self._DICT_COUNTERS:
            mine = getattr(self, attr)
            for key, value in getattr(other, attr).items():
                mine[key] += value
        for attr in self._SCALAR_COUNTERS:
            setattr(self, attr, getattr(self, attr)
                    + getattr(other, attr))

    # ------------------------------------------------------------------
    # Report helpers
    # ------------------------------------------------------------------
    def retry_table(self) -> Dict[str, Dict[str, float]]:
        """Table 1: per destination, fraction delivered with no retries
        vs. one-or-more retries."""
        table: Dict[str, Dict[str, float]] = {}
        dsts = set(self.delivered_first_attempt) | \
            set(self.delivered_after_retry)
        for dst in sorted(dsts, key=str):
            first = self.delivered_first_attempt[dst]
            retried = self.delivered_after_retry[dst]
            total = first + retried
            if total == 0:
                continue
            table[dst] = {
                "no_retries": first / total,
                "one_or_more": retried / total,
                "total": total,
            }
        return table

    def hack_fit_fraction(self) -> float:
        """§3.3.2: fraction of augmented LL ACKs fitting within AIFS."""
        if self.hack_responses == 0:
            return 1.0
        return self.hack_fits_aifs / self.hack_responses

    def time_breakdown_ms(self) -> Dict[str, float]:
        """Table 3 rows, in milliseconds."""
        return {
            "tcp_ack_airtime": self.airtime_ns["tcp_ack"] / 1e6,
            "rohc_airtime": self.hack_extra_airtime_ns / 1e6,
            "channel_acquisition": self.acquisition_wait_ns["tcp_ack"] / 1e6,
            "ll_ack_overhead": self.ll_response_overhead_ns["tcp_ack"] / 1e6,
        }
