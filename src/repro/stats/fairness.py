"""Fairness and share metrics.

The paper notes "Both TCP/HACK and TCP/802.11a are fair" (§4.2);
these helpers quantify that: Jain's fairness index over per-flow
goodputs, and airtime shares from a trace.
"""

from __future__ import annotations

from typing import Dict, Iterable


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one hog."""
    values = [v for v in values]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def airtime_shares(airtime_by_station: Dict[str, int],
                   exclude: Iterable[str] = ()) -> Dict[str, float]:
    """Normalise per-station airtime to fractional shares."""
    excluded = set(exclude)
    filtered = {k: v for k, v in airtime_by_station.items()
                if k not in excluded}
    total = sum(filtered.values())
    if total == 0:
        return {k: 0.0 for k in filtered}
    return {k: v / total for k, v in filtered.items()}


def goodput_fairness(per_flow_goodput: Dict[int, float]) -> float:
    """Jain's index over TCP flows (UDP pseudo-flows excluded)."""
    return jain_index(v for k, v in per_flow_goodput.items() if k > 0)
