"""Measurement collectors: MAC stats, tracing, fairness, FCT."""

from .collectors import MacStats
from .fairness import airtime_shares, goodput_fairness, jain_index
from .fct import FctCollector, FctRecord, percentile
from .trace import MediumTracer, TraceRecord

__all__ = ["MacStats", "MediumTracer", "TraceRecord", "jain_index",
           "airtime_shares", "goodput_fairness", "FctCollector",
           "FctRecord", "percentile"]
