"""Flow-completion-time statistics.

The paper's tables are steady-state goodputs; churn workloads are
instead judged by *flow completion time* (FCT): how long each finite
transfer took from arrival to last-byte ACK.  This module is the
bookkeeping layer the :class:`~repro.traffic.manager.FlowManager`
feeds and :meth:`ScenarioResult.metrics_dict` surfaces:

* one :class:`FctRecord` per spawned flow (completed or censored at
  the end of the run);
* distribution summaries (p50/p95/p99/mean) computed with a
  deterministic linear-interpolation percentile, overall and binned by
  flow size (mice vs. elephants behave very differently under
  ACK-compression schemes);
* offered vs. carried load — how much the arrival process asked for
  vs. what the network actually delivered inside the run window.

Everything here is plain data so sweep records stay JSON-serialisable
and bit-identical across serial, parallel and cache-restored execution.

Two collection modes share one interface (``open`` / ``close`` /
``summary``):

* :class:`FctCollector` — the default *exact* mode: every record is
  kept, percentiles are exact linear-interpolation order statistics,
  and the summary carries the full per-flow list.  Memory is O(flows).
* :class:`FctAggregator` — the *streaming* mode behind
  ``ScenarioConfig.stream_stats``: completed flows are folded into
  log-spaced histograms and forgotten, so memory is O(live flows +
  occupied bins) — independent of how many flows the run spawns.
  Percentiles come from the histogram at a documented resolution
  (:data:`FctAggregator.BINS_PER_DECADE` bins per decade; every
  reported percentile is within one bin — a factor of
  ``10 ** (1 / BINS_PER_DECADE)``, about 2.3% — of the exact order
  statistic).  Counts, means, min/max and load accounting stay exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..sim.units import MS

#: Size-bin upper bounds (bytes) and their stable labels, mice first.
SIZE_BINS: Tuple[Tuple[Optional[int], str], ...] = (
    (30_000, "<=30KB"),
    (300_000, "30KB-300KB"),
    (None, ">300KB"),
)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (deterministic, no numpy).

    ``fraction`` is in [0, 1].  Matches ``numpy.percentile``'s default
    'linear' method.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction {fraction} outside [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass
class FctRecord:
    """One flow's lifecycle, as the FlowManager saw it."""

    flow_id: int
    client: str
    direction: str
    size_bytes: int
    start_ns: int
    end_ns: Optional[int] = None          # None = censored at run end
    bytes_delivered: int = 0

    @property
    def completed(self) -> bool:
        return self.end_ns is not None

    @property
    def fct_ns(self) -> Optional[int]:
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    def as_dict(self) -> Dict[str, Any]:
        fct = self.fct_ns
        return {
            "flow_id": self.flow_id,
            "client": self.client,
            "direction": self.direction,
            "size_bytes": self.size_bytes,
            "start_ms": self.start_ns / MS,
            "fct_ms": None if fct is None else fct / MS,
            "completed": self.completed,
            "bytes_delivered": self.bytes_delivered,
        }


def _distribution(fcts_ms: Sequence[float]) -> Dict[str, float]:
    return {
        "p50": percentile(fcts_ms, 0.50),
        "p95": percentile(fcts_ms, 0.95),
        "p99": percentile(fcts_ms, 0.99),
        "mean": sum(fcts_ms) / len(fcts_ms),
        "min": min(fcts_ms),
        "max": max(fcts_ms),
    }


def zero_distribution() -> Dict[str, Any]:
    """The ``fct_ms`` block of a run that completed zero flows.

    Explicit (``flows: 0`` with null statistics) rather than a bare
    ``None``: consumers keying into the block get a clear "nothing
    completed" record instead of a silently missing distribution, and
    the schema stays a dict in every case.  ``flows`` only appears
    here — non-empty distributions carry their counts in the sibling
    ``flows_completed`` / per-size ``flows`` fields as before.
    """
    return {"p50": None, "p95": None, "p99": None,
            "mean": None, "min": None, "max": None, "flows": 0}


def has_completions(fct_ms: Optional[Dict[str, Any]]) -> bool:
    """True when an ``fct_ms`` block holds a real distribution (it is
    the zero-count block when no flow completed; older artifacts used
    ``None``)."""
    return fct_ms is not None and fct_ms.get("p50") is not None


def size_bin_label(size_bytes: int) -> str:
    for bound, label in SIZE_BINS:
        if bound is None or size_bytes <= bound:
            return label
    raise AssertionError("unreachable: last bin is unbounded")


class FctCollector:
    """Accumulates :class:`FctRecord`\\ s and summarises them."""

    def __init__(self) -> None:
        self.records: List[FctRecord] = []

    # -- recording -----------------------------------------------------
    def open(self, flow_id: int, client: str, direction: str,
             size_bytes: int, now: int) -> FctRecord:
        record = FctRecord(flow_id=flow_id, client=client,
                           direction=direction, size_bytes=size_bytes,
                           start_ns=now)
        self.records.append(record)
        return record

    def close(self, record: FctRecord) -> None:
        """A flow finished (or was censored at run end).

        Exact mode keeps every record, so there is nothing to fold;
        the hook exists so the :class:`FctAggregator` can share the
        :class:`~repro.traffic.manager.FlowManager` call sequence."""

    def merge(self, other: "FctCollector") -> None:
        """Fold another collector's records into this one (multi-cell
        runs merge per-cell collectors into the combined ``fct``
        block).  ``other`` is left untouched."""
        if not isinstance(other, FctCollector):
            raise TypeError(
                f"cannot merge {type(other).__name__} into exact "
                "FctCollector (collection modes must match)")
        self.records.extend(other.records)

    # -- views ---------------------------------------------------------
    @property
    def spawned(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> List[FctRecord]:
        return [r for r in self.records if r.completed]

    def summary(self, duration_ns: int,
                include_flows: bool = True) -> Dict[str, Any]:
        """The JSON-able block ``metrics_dict`` exposes as ``"fct"``.

        ``duration_ns`` is the load-accounting window (the scenario
        duration); offered load counts every spawned byte, carried
        load counts delivered bytes (completed flows in full, censored
        flows up to their last delivered byte).
        """
        done = self.completed
        fcts_ms = [r.fct_ns / MS for r in done]
        offered_bytes = sum(r.size_bytes for r in self.records)
        carried_bytes = sum(
            r.size_bytes if r.completed else r.bytes_delivered
            for r in self.records)
        by_size: Dict[str, Dict[str, Any]] = {}
        for _, label in SIZE_BINS:
            bin_fcts = [r.fct_ns / MS for r in done
                        if size_bin_label(r.size_bytes) == label]
            if bin_fcts:
                by_size[label] = dict(
                    _distribution(bin_fcts), flows=len(bin_fcts))
        summary: Dict[str, Any] = {
            "flows_spawned": self.spawned,
            "flows_completed": len(done),
            "flows_censored": self.spawned - len(done),
            "fct_ms": _distribution(fcts_ms) if fcts_ms
            else zero_distribution(),
            "fct_by_size_ms": by_size,
            "offered_load_mbps":
                offered_bytes * 8 * 1_000.0 / duration_ns
                if duration_ns > 0 else 0.0,
            "carried_load_mbps":
                carried_bytes * 8 * 1_000.0 / duration_ns
                if duration_ns > 0 else 0.0,
        }
        if include_flows:
            summary["flows"] = [r.as_dict() for r in self.records]
        return summary


class _StreamBin:
    """Online accumulator for one population (overall or a size bin)."""

    __slots__ = ("count", "total", "minimum", "maximum", "histogram")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        #: log-bin index -> completed-flow count (sparse).
        self.histogram: Dict[int, int] = {}

    def add(self, fct_ms: float, bin_index: int) -> None:
        self.count += 1
        self.total += fct_ms
        if fct_ms < self.minimum:
            self.minimum = fct_ms
        if fct_ms > self.maximum:
            self.maximum = fct_ms
        self.histogram[bin_index] = \
            self.histogram.get(bin_index, 0) + 1

    def merge(self, other: "_StreamBin") -> None:
        """Fold another population in; exact fields stay exact."""
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        for index, count in other.histogram.items():
            self.histogram[index] = \
                self.histogram.get(index, 0) + count


class FctAggregator:
    """Online, bounded-memory FCT statistics (``stream_stats=True``).

    Interface-compatible with :class:`FctCollector` (``open`` /
    ``close`` / ``summary``) but nothing is retained per flow once it
    closes: completed FCTs are folded into log-spaced histograms
    (:data:`BINS_PER_DECADE` bins per decade of milliseconds) and the
    record object is dropped.  Peak memory is therefore

        O(concurrently live flows + occupied histogram bins)

    — independent of the total number of flows a run spawns, which is
    what lets million-flow churn cells run inside hundred-cell sweeps.

    **Percentile resolution** (documented contract, tested in
    ``tests/stats/test_fct_stream.py``): a reported percentile is the
    log-midpoint of the histogram bin holding the corresponding order
    statistic (rank interpolation matching :func:`percentile`), so it
    is within one bin — a multiplicative factor of
    ``10 ** (1 / BINS_PER_DECADE)`` ≈ 2.33% — of the exact value.
    Counts, mean, min/max, offered/carried load and size-bin tallies
    are exact; only percentiles are quantised.
    """

    #: Histogram resolution: 100 log-bins per decade of milliseconds
    #: (bin edges at 10**(i/100) ms), i.e. ~2.33% relative bin width.
    BINS_PER_DECADE = 100

    #: FCTs at or below this floor (ms) all land in the lowest bin;
    #: simulated flows take at least microseconds so this is never hit
    #: in practice, but it keeps ``log10`` total.
    MIN_FCT_MS = 1e-6

    def __init__(self) -> None:
        self.spawned = 0
        self.offered_bytes = 0
        self.carried_bytes = 0
        self.overall = _StreamBin()
        self.by_size: Dict[str, _StreamBin] = {}
        #: Live (open, not yet closed) records — bounded by flow
        #: concurrency, not by total flow count.
        self.live_open = 0
        self.max_live = 0

    # -- recording -----------------------------------------------------
    def open(self, flow_id: int, client: str, direction: str,
             size_bytes: int, now: int) -> FctRecord:
        self.spawned += 1
        self.offered_bytes += size_bytes
        self.live_open += 1
        if self.live_open > self.max_live:
            self.max_live = self.live_open
        return FctRecord(flow_id=flow_id, client=client,
                         direction=direction, size_bytes=size_bytes,
                         start_ns=now)

    def close(self, record: FctRecord) -> None:
        """Fold one finished (or censored) flow and forget it."""
        self.live_open -= 1
        if not record.completed:
            # Censored flows only contribute their partial delivery;
            # ``flows_censored`` is derived as spawned - completed in
            # :meth:`summary` (matching exact mode, which also counts
            # still-open flows as censored mid-run).
            self.carried_bytes += record.bytes_delivered
            return
        self.carried_bytes += record.size_bytes
        fct_ms = record.fct_ns / MS
        index = self._bin_index(fct_ms)
        self.overall.add(fct_ms, index)
        label = size_bin_label(record.size_bytes)
        per_size = self.by_size.get(label)
        if per_size is None:
            per_size = self.by_size[label] = _StreamBin()
        per_size.add(fct_ms, index)

    def merge(self, other: "FctAggregator") -> None:
        """Fold another aggregator in (multi-cell runs merge per-cell
        aggregators into the combined ``fct`` block).

        Counts, means, min/max, size-bin tallies and load accounting
        stay exact; histograms add bin-wise, so merged percentiles
        carry the same documented one-bin resolution as any single
        aggregator (both sides quantise on the identical global bin
        edges — merging loses nothing beyond that).  ``max_live`` sums
        (the cells ran concurrently, so the peaks may coincide: the
        sum is the honest upper bound).  ``other`` is left untouched.
        """
        if not isinstance(other, FctAggregator):
            raise TypeError(
                f"cannot merge {type(other).__name__} into streaming "
                "FctAggregator (collection modes must match)")
        self.spawned += other.spawned
        self.offered_bytes += other.offered_bytes
        self.carried_bytes += other.carried_bytes
        self.live_open += other.live_open
        self.max_live += other.max_live
        self.overall.merge(other.overall)
        for label, bin_ in other.by_size.items():
            mine = self.by_size.get(label)
            if mine is None:
                mine = self.by_size[label] = _StreamBin()
            mine.merge(bin_)

    @classmethod
    def _bin_index(cls, fct_ms: float) -> int:
        return math.floor(
            math.log10(max(fct_ms, cls.MIN_FCT_MS))
            * cls.BINS_PER_DECADE)

    @classmethod
    def _bin_value(cls, index: int) -> float:
        """Representative FCT of one bin: its log-midpoint."""
        return 10.0 ** ((index + 0.5) / cls.BINS_PER_DECADE)

    # -- views ---------------------------------------------------------
    @property
    def completed_count(self) -> int:
        return self.overall.count

    def occupied_bins(self) -> int:
        """Histogram cells in use (the non-live part of peak memory)."""
        return (len(self.overall.histogram)
                + sum(len(b.histogram)
                      for b in self.by_size.values()))

    @classmethod
    def _histogram_percentile(cls, histogram: Dict[int, int],
                              count: int, fraction: float) -> float:
        """Rank-interpolated percentile over a sparse log histogram.

        Mirrors :func:`percentile`: the target position is
        ``fraction * (count - 1)``; the values at its floor and
        ceiling ranks are approximated by their bins' log-midpoints
        and linearly interpolated."""
        position = fraction * (count - 1)
        lower_rank = int(position)
        weight = position - lower_rank
        lower_value: Optional[float] = None
        upper_value: Optional[float] = None
        seen = 0
        for index in sorted(histogram):
            seen += histogram[index]
            if lower_value is None and seen > lower_rank:
                lower_value = cls._bin_value(index)
            if seen > lower_rank + (1 if weight > 0 else 0):
                upper_value = cls._bin_value(index)
                break
        assert lower_value is not None
        if upper_value is None or weight == 0:
            return lower_value
        return lower_value * (1.0 - weight) + upper_value * weight

    @classmethod
    def _stream_distribution(cls, bin_: _StreamBin) -> Dict[str, float]:
        def pct(fraction: float) -> float:
            value = cls._histogram_percentile(
                bin_.histogram, bin_.count, fraction)
            # Min/max are exact; clamping the quantised percentile
            # into their range keeps one summary self-consistent
            # (never p99 > max) and only ever reduces the error.
            return min(max(value, bin_.minimum), bin_.maximum)

        return {
            "p50": pct(0.50),
            "p95": pct(0.95),
            "p99": pct(0.99),
            "mean": bin_.total / bin_.count,
            "min": bin_.minimum,
            "max": bin_.maximum,
        }

    def summary(self, duration_ns: int,
                include_flows: bool = True) -> Dict[str, Any]:
        """Same schema as :meth:`FctCollector.summary`, except the
        per-flow ``"flows"`` list is never included (there is nothing
        to list — that is the point) and a ``"streaming"`` block
        documents the percentile resolution."""
        done = self.overall.count
        by_size: Dict[str, Dict[str, Any]] = {}
        for _, label in SIZE_BINS:
            bin_ = self.by_size.get(label)
            if bin_ is not None and bin_.count:
                by_size[label] = dict(
                    self._stream_distribution(bin_), flows=bin_.count)
        return {
            "flows_spawned": self.spawned,
            "flows_completed": done,
            "flows_censored": self.spawned - done,
            "fct_ms": self._stream_distribution(self.overall)
            if done else zero_distribution(),
            "fct_by_size_ms": by_size,
            "offered_load_mbps":
                self.offered_bytes * 8 * 1_000.0 / duration_ns
                if duration_ns > 0 else 0.0,
            "carried_load_mbps":
                self.carried_bytes * 8 * 1_000.0 / duration_ns
                if duration_ns > 0 else 0.0,
            "streaming": {
                "bins_per_decade": self.BINS_PER_DECADE,
                "relative_resolution":
                    10.0 ** (1.0 / self.BINS_PER_DECADE) - 1.0,
                "occupied_bins": self.occupied_bins(),
                "max_live_records": self.max_live,
            },
        }
