"""Flow-completion-time statistics.

The paper's tables are steady-state goodputs; churn workloads are
instead judged by *flow completion time* (FCT): how long each finite
transfer took from arrival to last-byte ACK.  This module is the
bookkeeping layer the :class:`~repro.traffic.manager.FlowManager`
feeds and :meth:`ScenarioResult.metrics_dict` surfaces:

* one :class:`FctRecord` per spawned flow (completed or censored at
  the end of the run);
* distribution summaries (p50/p95/p99/mean) computed with a
  deterministic linear-interpolation percentile, overall and binned by
  flow size (mice vs. elephants behave very differently under
  ACK-compression schemes);
* offered vs. carried load — how much the arrival process asked for
  vs. what the network actually delivered inside the run window.

Everything here is plain data so sweep records stay JSON-serialisable
and bit-identical across serial, parallel and cache-restored execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..sim.units import MS

#: Size-bin upper bounds (bytes) and their stable labels, mice first.
SIZE_BINS: Tuple[Tuple[Optional[int], str], ...] = (
    (30_000, "<=30KB"),
    (300_000, "30KB-300KB"),
    (None, ">300KB"),
)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (deterministic, no numpy).

    ``fraction`` is in [0, 1].  Matches ``numpy.percentile``'s default
    'linear' method.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction {fraction} outside [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass
class FctRecord:
    """One flow's lifecycle, as the FlowManager saw it."""

    flow_id: int
    client: str
    direction: str
    size_bytes: int
    start_ns: int
    end_ns: Optional[int] = None          # None = censored at run end
    bytes_delivered: int = 0

    @property
    def completed(self) -> bool:
        return self.end_ns is not None

    @property
    def fct_ns(self) -> Optional[int]:
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    def as_dict(self) -> Dict[str, Any]:
        fct = self.fct_ns
        return {
            "flow_id": self.flow_id,
            "client": self.client,
            "direction": self.direction,
            "size_bytes": self.size_bytes,
            "start_ms": self.start_ns / MS,
            "fct_ms": None if fct is None else fct / MS,
            "completed": self.completed,
            "bytes_delivered": self.bytes_delivered,
        }


def _distribution(fcts_ms: Sequence[float]) -> Dict[str, float]:
    return {
        "p50": percentile(fcts_ms, 0.50),
        "p95": percentile(fcts_ms, 0.95),
        "p99": percentile(fcts_ms, 0.99),
        "mean": sum(fcts_ms) / len(fcts_ms),
        "min": min(fcts_ms),
        "max": max(fcts_ms),
    }


def size_bin_label(size_bytes: int) -> str:
    for bound, label in SIZE_BINS:
        if bound is None or size_bytes <= bound:
            return label
    raise AssertionError("unreachable: last bin is unbounded")


class FctCollector:
    """Accumulates :class:`FctRecord`\\ s and summarises them."""

    def __init__(self) -> None:
        self.records: List[FctRecord] = []

    # -- recording -----------------------------------------------------
    def open(self, flow_id: int, client: str, direction: str,
             size_bytes: int, now: int) -> FctRecord:
        record = FctRecord(flow_id=flow_id, client=client,
                           direction=direction, size_bytes=size_bytes,
                           start_ns=now)
        self.records.append(record)
        return record

    # -- views ---------------------------------------------------------
    @property
    def spawned(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> List[FctRecord]:
        return [r for r in self.records if r.completed]

    def summary(self, duration_ns: int,
                include_flows: bool = True) -> Dict[str, Any]:
        """The JSON-able block ``metrics_dict`` exposes as ``"fct"``.

        ``duration_ns`` is the load-accounting window (the scenario
        duration); offered load counts every spawned byte, carried
        load counts delivered bytes (completed flows in full, censored
        flows up to their last delivered byte).
        """
        done = self.completed
        fcts_ms = [r.fct_ns / MS for r in done]
        offered_bytes = sum(r.size_bytes for r in self.records)
        carried_bytes = sum(
            r.size_bytes if r.completed else r.bytes_delivered
            for r in self.records)
        by_size: Dict[str, Dict[str, Any]] = {}
        for _, label in SIZE_BINS:
            bin_fcts = [r.fct_ns / MS for r in done
                        if size_bin_label(r.size_bytes) == label]
            if bin_fcts:
                by_size[label] = dict(
                    _distribution(bin_fcts), flows=len(bin_fcts))
        summary: Dict[str, Any] = {
            "flows_spawned": self.spawned,
            "flows_completed": len(done),
            "flows_censored": self.spawned - len(done),
            "fct_ms": _distribution(fcts_ms) if fcts_ms else None,
            "fct_by_size_ms": by_size,
            "offered_load_mbps":
                offered_bytes * 8 * 1_000.0 / duration_ns
                if duration_ns > 0 else 0.0,
            "carried_load_mbps":
                carried_bytes * 8 * 1_000.0 / duration_ns
                if duration_ns > 0 else 0.0,
        }
        if include_flows:
            summary["flows"] = [r.as_dict() for r in self.records]
        return summary
