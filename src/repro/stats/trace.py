"""Frame-level tracing.

A :class:`MediumTracer` attaches to a :class:`~repro.sim.medium.Medium`
as an observer and records one :class:`TraceRecord` per completed
transmission — a lightweight pcap equivalent for debugging protocol
behaviour and for assertions in tests ("the Block ACK left exactly one
SIFS after the A-MPDU", "no vanilla TCP ACK was transmitted while the
MORE DATA latch was set", ...).

Records carry frame classification, addressing, airtime, collision
status and the HACK payload size, and the tracer offers simple
filtering and timeline-gap helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..mac.frames import AckFrame, AmpduFrame, BarFrame, BlockAckFrame, \
    DataFrame
from ..sim.medium import ChannelizedMedium, Medium, Transmission


@dataclass
class TraceRecord:
    """One transmission on the medium."""

    index: int
    start_ns: int
    end_ns: int
    src: Optional[str]
    dst: Optional[str]
    frame_type: str       # data | ampdu | ack | block_ack | bar | other
    byte_length: int
    mpdu_count: int
    collided: bool
    hack_payload_bytes: int
    more_data: bool
    sync: bool
    channel: int = 0

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def is_control(self) -> bool:
        return self.frame_type in ("ack", "block_ack", "bar")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(flag for flag, on in (
            ("M", self.more_data), ("S", self.sync),
            ("X", self.collided),
            ("H", self.hack_payload_bytes > 0)) if on)
        return (f"<{self.start_ns / 1000:.1f}us {self.frame_type} "
                f"{self.src}->{self.dst} {self.byte_length}B {flags}>")


def _classify(frame: Any) -> str:
    if isinstance(frame, AmpduFrame):
        return "ampdu"
    if isinstance(frame, DataFrame):
        return "data"
    if isinstance(frame, BlockAckFrame):
        return "block_ack"
    if isinstance(frame, AckFrame):
        return "ack"
    if isinstance(frame, BarFrame):
        return "bar"
    return "other"


class MediumTracer:
    """Observer that turns medium transmissions into TraceRecords.

    Accepts a single :class:`Medium` or a
    :class:`~repro.sim.medium.ChannelizedMedium`; in the channelized
    case one observer is attached per channel and each record is tagged
    with the channel id it was heard on.
    """

    def __init__(self, medium: "Medium | ChannelizedMedium",
                 max_records: Optional[int] = None):
        self.records: List[TraceRecord] = []
        self.max_records = max_records
        self.dropped = 0
        if isinstance(medium, ChannelizedMedium):
            for channel in medium.channels():
                self._attach(medium.medium(channel), channel)
        else:
            self._attach(medium, getattr(medium, "channel", 0))

    def _attach(self, medium: Medium, channel: int) -> None:
        medium.observers.append(
            lambda tx, _ch=channel: self._observe(tx, _ch))

    def _observe(self, tx: Transmission, channel: int = 0) -> None:
        if (self.max_records is not None
                and len(self.records) >= self.max_records):
            self.dropped += 1
            return
        frame = tx.frame
        sender_addr = getattr(tx.sender, "address", None)
        payload = getattr(frame, "hack_payload", None)
        mpdus = getattr(frame, "mpdus", None)
        self.records.append(TraceRecord(
            index=len(self.records),
            start_ns=tx.start, end_ns=tx.end,
            src=getattr(frame, "src", sender_addr),
            dst=getattr(frame, "dst", None),
            frame_type=_classify(frame),
            byte_length=getattr(frame, "byte_length", 0),
            mpdu_count=len(mpdus) if mpdus else 0,
            collided=tx.collided,
            hack_payload_bytes=len(payload) if payload else 0,
            more_data=bool(getattr(frame, "more_data", False)),
            sync=bool(getattr(frame, "sync", False)),
            channel=channel,
        ))

    # ------------------------------------------------------------------
    def filter(self, frame_type: Optional[str] = None,
               src: Optional[str] = None, dst: Optional[str] = None,
               predicate: Optional[Callable[[TraceRecord], bool]] = None
               ) -> List[TraceRecord]:
        """Records matching all given criteria."""
        out = []
        for record in self.records:
            if frame_type is not None and record.frame_type != frame_type:
                continue
            if src is not None and record.src != src:
                continue
            if dst is not None and record.dst != dst:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def response_gaps_ns(self) -> List[int]:
        """Gaps between each data/ampdu frame and the next control
        frame from its receiver (SIFS + device delay, observable)."""
        gaps = []
        for i, record in enumerate(self.records[:-1]):
            if record.frame_type not in ("data", "ampdu"):
                continue
            nxt = self.records[i + 1]
            if nxt.is_control and nxt.src == record.dst:
                gaps.append(nxt.start_ns - record.end_ns)
        return gaps

    def airtime_by_station(self) -> dict:
        """Total airtime (ns) keyed by transmitting station."""
        totals: dict = {}
        for record in self.records:
            key = record.src
            totals[key] = totals.get(key, 0) + record.duration_ns
        return totals

    def summary(self) -> dict:
        """Aggregate counts by frame type plus collision totals."""
        out: dict = {"total": len(self.records),
                     "collided": sum(r.collided for r in self.records),
                     "hack_frames": sum(
                         r.hack_payload_bytes > 0 for r in self.records)}
        for record in self.records:
            key = f"type_{record.frame_type}"
            out[key] = out.get(key, 0) + 1
        return out

    def render_timeline(self, start_ns: int = 0,
                        end_ns: Optional[int] = None,
                        limit: int = 60) -> str:
        """Human-readable timeline excerpt, one line per frame::

              1234.0us AP  ->C1   ampdu      x42  65336B  [M]
              1238.5us C1  ->AP   block_ack         57B  [H25]

        Flags: M = MORE DATA, S = SYNC, X = collided, Hn = n bytes of
        compressed TCP ACKs appended.
        """
        lines = []
        for record in self.records:
            if record.start_ns < start_ns:
                continue
            if end_ns is not None and record.start_ns >= end_ns:
                break
            if len(lines) >= limit:
                lines.append(f"... ({len(self.records)} records total)")
                break
            flags = []
            if record.more_data:
                flags.append("M")
            if record.sync:
                flags.append("S")
            if record.collided:
                flags.append("X")
            if record.hack_payload_bytes:
                flags.append(f"H{record.hack_payload_bytes}")
            mpdus = f"x{record.mpdu_count:<3}" if record.mpdu_count \
                else "    "
            flag_text = f"[{','.join(flags)}]" if flags else ""
            lines.append(
                f"{record.start_ns / 1000:>10.1f}us "
                f"{str(record.src):<4}->{str(record.dst):<4} "
                f"{record.frame_type:<9} {mpdus} "
                f"{record.byte_length:>6}B {flag_text}")
        return "\n".join(lines)
