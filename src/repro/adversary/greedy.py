"""CW-cheating greedy station (MAC-layer selfishness).

The classic 802.11 misbehaviour: a station that draws its random
backoff from a smaller contention window than the standard mandates
wins a disproportionate share of medium acquisitions.  ``GreedyDcfMac``
is a drop-in :class:`~repro.mac.dcf.DcfMac` subclass that overrides
the ``_current_cw`` hook — the *draw* is cheated, so the cheater still
pays DIFS/EIFS and still doubles its nominal window on losses (it
cheats the lottery, it does not skip the queue), which is exactly how
firmware-level CW cheats behave.
"""

from __future__ import annotations

from ..mac.dcf import DcfMac


class GreedyDcfMac(DcfMac):
    """A `DcfMac` that draws backoff from a shrunken window.

    ``cheat`` in [0, 1] scales the effective contention window to
    ``int(cw * (1 - cheat))``: 0.0 is an honest station, 1.0 always
    draws zero backoff slots.  ``cheated_draws`` counts the draws
    where the shrink actually changed the window bound.
    """

    def __init__(self, *args, cheat: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        self._cheat = min(1.0, max(0.0, cheat))
        self.cheated_draws = 0

    def _current_cw(self) -> int:
        honest = super()._current_cw()
        shrunk = int(honest * (1.0 - self._cheat))
        if shrunk != honest:
            self.cheated_draws += 1
        return shrunk
