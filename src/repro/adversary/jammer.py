"""Energy-only jammer for `Medium`/`ChannelizedMedium`.

The jammer transmits undecodable energy bursts.  It attaches to the
medium in its own dispatch cell (``Jammer.CELL``), which gives exactly
the physics we want for free from the existing co-channel machinery:

* busy/idle transitions are broadcast to every listener, so honest
  stations carrier-sense the jam and defer (DIFS + frozen backoff);
* a jam pulse that overlaps a real frame collides with it, and the
  collision's :meth:`on_frame_error` reaches every cell (EIFS);
* a jam pulse that overlaps nothing is dispatched only within the
  jammer's own (otherwise empty) cell — pure wasted airtime, decoded
  by nobody.

Two disciplines:

* ``periodic`` — duty-cycled energy: each ``jam_cycle_ns`` window
  starts with one long burst of ``intensity * jam_cycle_ns`` airtime
  (1.0 = continuous energy).  The cycle is much longer than a frame
  airtime, so the dominant honest-station response is carrier-sense
  *deferral* through the burst — capacity scales roughly with
  ``1 - intensity`` instead of collapsing at the first pulse train;
* ``reactive`` — listens for busy transitions and, with probability
  ``intensity``, fires a short ``jam_burst_ns`` pulse into the ongoing
  transmission to force a collision (the classic low-energy reactive
  jammer).

All randomness comes from a dedicated per-channel RNG stream, so
jammed runs are seed-replayable and channel-shardable.
"""

from __future__ import annotations

from .config import AdversaryConfig


class JamFrame:
    """An undecodable energy burst (opaque to every receiver)."""

    __slots__ = ("src", "dst", "byte_length", "mpdu_count",
                 "more_data", "sync", "hack_payload")

    def __init__(self, duration_ns: int):
        self.src = "JAMMER"
        self.dst = None           # addressed to nobody
        # Nominal size for tracer/telemetry consumers; the medium only
        # uses duration_ns, which the jammer passes explicitly.
        self.byte_length = max(1, duration_ns // 8_000)
        self.mpdu_count = 0
        self.more_data = False
        self.sync = False
        self.hack_payload = None


class Jammer:
    """Schedules jam pulses onto one :class:`~repro.sim.medium.Medium`.

    Implements the :class:`~repro.sim.medium.MediumListener` protocol
    (attachment puts it in the listener list); everything except the
    reactive trigger is a no-op.
    """

    #: Dedicated dispatch cell: clean jam pulses decode nowhere.
    CELL = "adversary:jam"

    def __init__(self, sim, medium, rng, config: AdversaryConfig,
                 until_ns: int):
        self.sim = sim
        self.medium = medium
        self.rng = rng
        self.config = config
        self.until_ns = until_ns
        self.bursts = 0
        self.jam_airtime_ns = 0
        self._own_tx = False      # reactive: never react to ourselves
        medium.attach(self, cell=self.CELL)

    def start(self) -> None:
        if self.config.jam_mode == "periodic":
            delay = max(0, self.config.start_ns - self.sim.now)
            self.sim.schedule(delay, self._periodic_fire)

    # -- burst machinery ----------------------------------------------
    def _fire(self, duration_ns: int) -> None:
        self._own_tx = True
        self.medium.transmit(self, JamFrame(duration_ns), duration_ns)
        self.bursts += 1
        self.jam_airtime_ns += duration_ns
        self.sim.schedule(duration_ns, self._burst_done)

    def _burst_done(self) -> None:
        self._own_tx = False

    def _periodic_fire(self) -> None:
        if self.sim.now >= self.until_ns:
            return
        cycle = self.config.jam_cycle_ns
        burst = int(cycle * self.config.intensity)
        if burst > 0:
            self._fire(burst)
        idle = cycle - burst
        if idle > 4:
            # +/-25% jitter on the quiet phase so the cycle does not
            # phase-lock with periodic protocol timers.
            idle = max(0, idle + self.rng.randint(-idle // 4,
                                                  idle // 4))
        self.sim.schedule(max(burst, 1) + idle, self._periodic_fire)

    # -- MediumListener protocol --------------------------------------
    def on_channel_busy(self, now: int) -> None:
        if self.config.jam_mode != "reactive" or self._own_tx:
            return
        if not self.config.start_ns <= now < self.until_ns:
            return
        if self.rng.random() < self.config.intensity:
            # Pulse into the transmission we just sensed; the short
            # reaction delay keeps us inside its airtime, forcing a
            # collision for everyone.
            self.sim.schedule(self.config.jam_reaction_ns,
                              self._reactive_fire)

    def _reactive_fire(self) -> None:
        if self._own_tx or self.sim.now >= self.until_ns:
            return
        self._fire(self.config.jam_burst_ns)

    def on_channel_idle(self, now: int) -> None:
        pass

    def on_frame_received(self, frame, sender) -> None:
        pass

    def on_frame_overheard(self, frame, sender) -> None:
        pass

    def on_frame_error(self, frame, sender) -> None:
        pass

    def counters(self) -> dict:
        return {"jam_bursts": self.bursts,
                "jam_airtime_ns": self.jam_airtime_ns}
