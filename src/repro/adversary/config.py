"""Declarative fault-injection plan (`ScenarioConfig.adversary`).

Kept dependency-free so ``repro.workloads.scenarios`` can embed it in
``ScenarioConfig`` without import cycles; the actors that interpret it
live in the sibling modules.  The config is a plain frozen dataclass:
``dataclasses.asdict`` (the sweep-cache signature path) and canonical
JSON both serialize it with no special casing, so an attacked sweep
point caches, shards and replays exactly like a cooperative one.
"""

from __future__ import annotations

from dataclasses import dataclass

KINDS = ("none", "greedy", "jammer", "mutator")
JAM_MODES = ("periodic", "reactive")
MUTATE_MODES = ("flip", "cid", "storm")

US = 1_000        # ns; local to stay import-free
MS = 1_000_000    # ns


@dataclass(frozen=True)
class AdversaryConfig:
    """One attack, one intensity — deterministic and seed-replayable.

    ``intensity`` is the single cross-attack severity dial in [0, 1]:

    * ``greedy``  — contention-window shrink factor: the cheater draws
      backoff from ``cw * (1 - intensity)`` (1.0 = always zero slots);
    * ``jammer``  — target jamming duty cycle (periodic) or the
      probability of reacting to a busy transition (reactive);
    * ``mutator`` — per-frame probability that a compressed-ACK
      payload is corrupted in flight.

    ``intensity == 0`` (or ``kind == "none"``) is the inert plan: no
    actor is installed and the run is bit-identical to ``adversary=None``
    except for the zeroed ``metrics_dict()["adversary"]`` block.
    """

    kind: str = "none"            # none | greedy | jammer | mutator
    intensity: float = 0.0
    #: greedy: how many cell-0 clients cheat (the first N by name).
    greedy_stations: int = 1
    #: jammer: burst scheduling discipline.
    jam_mode: str = "periodic"    # periodic | reactive
    #: jammer(periodic): duty cycle period.  Each cycle jams for
    #: ``intensity * jam_cycle_ns`` then stays quiet; the cycle is much
    #: longer than a frame airtime so honest stations mostly *defer*
    #: through the burst (carrier sense) instead of losing every frame,
    #: which keeps degradation graded in intensity rather than cliffed.
    jam_cycle_ns: int = 20 * MS
    #: jammer(reactive): energy-burst airtime per pulse.
    jam_burst_ns: int = 200 * US
    #: jammer(reactive): sensing-to-pulse turnaround.
    jam_reaction_ns: int = 10 * US
    #: mutator: corruption flavour (random bit flip, forged CID
    #: collision, or multi-frame desync storm).
    mutate_mode: str = "flip"     # flip | cid | storm
    #: mutator(storm): consecutive HACK frames corrupted per trigger.
    storm_frames: int = 8
    #: all kinds: attack start time (lets warmup stay clean).
    start_ns: int = 0

    @property
    def active(self) -> bool:
        """Whether any actor gets installed at all."""
        return self.kind != "none" and self.intensity > 0

    def validate(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown adversary kind {self.kind!r}")
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError("adversary intensity must be in [0, 1], "
                             f"got {self.intensity!r}")
        if self.jam_mode not in JAM_MODES:
            raise ValueError(f"unknown jam_mode {self.jam_mode!r}")
        if self.mutate_mode not in MUTATE_MODES:
            raise ValueError(
                f"unknown mutate_mode {self.mutate_mode!r}")
        if self.greedy_stations < 1:
            raise ValueError("greedy_stations must be >= 1")
        if self.jam_burst_ns <= 0:
            raise ValueError("jam_burst_ns must be positive")
        if self.jam_cycle_ns <= 0:
            raise ValueError("jam_cycle_ns must be positive")
        if self.storm_frames < 1:
            raise ValueError("storm_frames must be >= 1")
        if self.start_ns < 0:
            raise ValueError("start_ns must be >= 0")
