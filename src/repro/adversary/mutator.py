"""On-air corruption of compressed-ACK payloads.

Installed as the :attr:`~repro.sim.medium.Medium.tamper` hook, the
mutator sees every *cleanly delivered* frame on its channel and —
with per-frame probability ``intensity`` — rewrites the HACK payload
just before dispatch.  Collisions and PHY losses already destroy whole
frames; the mutator models the nastier adversary the paper's §3.3 CRC
argument is about: frames that pass the link-layer FCS but carry
*wrong* compressed-ACK bytes, so only ROHC's own 3-bit CRC and the
decompressor's containment logic stand between the attacker and a
desynchronized TCP connection.

Three flavours (``mutate_mode``):

* ``flip``  — flip one random bit of the payload (transient damage
  the §3.4 retention loop should absorb);
* ``cid``   — forge the explicit CID byte of an entry to a *different
  CID seen earlier on this channel*, steering the entry into the
  wrong flow's context (a context-collision attack; falls back to a
  bit flip when no entry carries an explicit CID);
* ``storm`` — each trigger corrupts ``storm_frames`` *consecutive*
  HACK frames, defeating retention's retry-the-same-bytes recovery
  and driving the context into declared desync.

Mutation happens at delivery time through the managed
``hack_payload`` setter with an equal-length payload, so airtime,
event timing and the compressor's own state are untouched — the
attack is purely on the receiver's parse/apply path.  The whole hook
body is exception-guarded: a mutator bug becomes a counted
``tamper_errors``, never an event-loop crash.
"""

from __future__ import annotations

from ..rohc.packets import ParseError, parse_frame
from .config import AdversaryConfig


class AirframeMutator:
    """Callable for ``Medium.tamper``; one instance per channel."""

    def __init__(self, rng, config: AdversaryConfig, clock=None):
        self.rng = rng
        self.config = config
        self.clock = clock            # () -> ns; gates start_ns
        self.frames_seen = 0
        self.frames_mutated = 0
        self.bit_flips = 0
        self.cid_forges = 0
        self.storm_bursts = 0
        self.tamper_errors = 0
        self._storm_left = 0
        self._seen_cids: set = set()

    # -- Medium.tamper entry point ------------------------------------
    def __call__(self, frame) -> None:
        try:
            self._tamper(frame)
        except Exception:
            self.tamper_errors += 1

    def _tamper(self, frame) -> None:
        payload = getattr(frame, "hack_payload", None)
        if not payload:
            return
        if self.clock is not None and \
                self.clock() < self.config.start_ns:
            return
        self.frames_seen += 1
        self._note_cids(payload)
        if self._storm_left > 0:
            self._storm_left -= 1
        elif self.rng.random() < self.config.intensity:
            if self.config.mutate_mode == "storm":
                self._storm_left = self.config.storm_frames - 1
                self.storm_bursts += 1
        else:
            return
        mutated = self._mutate(payload)
        if mutated is not None and len(mutated) == len(payload):
            frame.hack_payload = mutated
            self.frames_mutated += 1

    # -- corruption flavours ------------------------------------------
    def _mutate(self, payload: bytes):
        if self.config.mutate_mode == "cid":
            forged = self._forge_cid(payload)
            if forged is not None:
                return forged
        return self._flip_bit(payload)

    def _flip_bit(self, payload: bytes) -> bytes:
        data = bytearray(payload)
        index = self.rng.randint(0, len(data) - 1)
        data[index] ^= 1 << self.rng.randint(0, 7)
        self.bit_flips += 1
        return bytes(data)

    def _cid_offsets(self, payload: bytes):
        """Byte offsets of every explicit CID in a valid frame."""
        _, entries = parse_frame(payload)
        offsets = []
        pos = 2
        for entry in entries:
            if not entry.same_cid:
                offsets.append(pos + 2)
            pos += entry.size
        return offsets

    def _forge_cid(self, payload: bytes):
        try:
            offsets = self._cid_offsets(payload)
        except ParseError:
            return None
        if not offsets:
            return None
        data = bytearray(payload)
        offset = offsets[self.rng.randint(0, len(offsets) - 1)]
        current = data[offset]
        # Steer the entry into another flow's context when we have
        # seen one; otherwise invent a colliding CID deterministically.
        candidates = sorted(self._seen_cids - {current})
        if candidates:
            forged = candidates[self.rng.randint(
                0, len(candidates) - 1)]
        else:
            forged = current ^ 0xA5
        data[offset] = forged
        self.cid_forges += 1
        return bytes(data)

    def _note_cids(self, payload: bytes) -> None:
        try:
            for offset in self._cid_offsets(payload):
                self._seen_cids.add(payload[offset])
        except ParseError:
            pass  # previously corrupted frame; nothing to learn

    def counters(self) -> dict:
        return {
            "hack_frames_seen": self.frames_seen,
            "frames_mutated": self.frames_mutated,
            "bit_flips": self.bit_flips,
            "cid_forges": self.cid_forges,
            "storm_bursts": self.storm_bursts,
            "tamper_errors": self.tamper_errors,
        }
