"""Adversarial scenario family: misbehaving stations and ROHC attacks.

Every scenario the repo shipped before this package was cooperative, so
the suite answered *how well* HACK performs but not *how gracefully it
degrades* — the deployment question the paper leaves open, since the
decompressor carries stateful per-CID context that a single corrupted
compressed ACK can desynchronize.  This package makes attacks
first-class, deterministic, seed-replayable scenario ingredients:

* :class:`~repro.adversary.config.AdversaryConfig` — a frozen, fully
  declarative fault-injection plan embedded in ``ScenarioConfig`` (so
  sweep caching, sharding and replay treat attacked runs exactly like
  cooperative ones);
* :class:`~repro.adversary.greedy.GreedyDcfMac` — a CW-cheating
  station that shrinks its contention window (MAC-layer selfishness);
* :class:`~repro.adversary.jammer.Jammer` — periodic or reactive
  energy-only interference on a :class:`~repro.sim.medium.Medium`;
* :class:`~repro.adversary.mutator.AirframeMutator` — an on-air
  mutator for compressed-ACK payloads (bit flips, forged CID
  collisions, desync storms) installed via ``Medium.tamper``.

A zero-intensity adversary installs *nothing* — runs are bit-identical
to cooperative ones (the oracle test pins this).  Under attack, every
injected fault must land in a typed counter; no exception may escape
into the event loop (the hardened ``Decompressor`` and ``HackDriver``
guarantee it, and the ``adversarial`` experiment's resilience criteria
check it per row).
"""

from .config import AdversaryConfig
from .greedy import GreedyDcfMac
from .jammer import Jammer
from .mutator import AirframeMutator
from .runtime import AdversaryRuntime, install_adversary

__all__ = [
    "AdversaryConfig",
    "AdversaryRuntime",
    "AirframeMutator",
    "GreedyDcfMac",
    "Jammer",
    "install_adversary",
]
