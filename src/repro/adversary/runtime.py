"""Wiring adversaries into a built scenario, and their metrics block.

:func:`install_adversary` is called by the scenario builder
(:mod:`repro.workloads.scenarios`) after the cooperative world is
wired.  An inactive plan (``kind == "none"`` or ``intensity == 0``)
installs *nothing* — no listener, no tamper hook, no scheduled event,
no RNG stream — which is what makes zero-intensity runs bit-identical
to ``adversary=None`` runs.

All randomness flows through dedicated, name-derived RNG streams
(``adversary:jam:ch<k>``, ``adversary:mutate:ch<k>``), one per
channel, so attacked multi-channel runs shard exactly like
cooperative ones and never perturb cooperative draws.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .config import AdversaryConfig
from .jammer import Jammer
from .mutator import AirframeMutator

#: The fixed shape of ``metrics_dict()["adversary"]``; stable across
#: kinds and intensities so sweep rows and shard merges never see a
#: shifting schema.  Integers sum across shards; kind/intensity are
#: invariants carried from the config.
_ZERO_COUNTERS = {
    "greedy_stations": 0,
    "cheated_draws": 0,
    "jam_bursts": 0,
    "jam_airtime_ns": 0,
    "hack_frames_seen": 0,
    "frames_mutated": 0,
    "bit_flips": 0,
    "cid_forges": 0,
    "storm_bursts": 0,
    "tamper_errors": 0,
}


class AdversaryRuntime:
    """The live attack actors of one simulator (one shard's worth)."""

    def __init__(self, config: AdversaryConfig):
        self.config = config
        self.jammers: List[Jammer] = []
        self.mutators: List[AirframeMutator] = []
        self.greedy_macs: List[Any] = []

    def counters(self) -> Dict[str, int]:
        out = dict(_ZERO_COUNTERS)
        out["greedy_stations"] = len(self.greedy_macs)
        out["cheated_draws"] = sum(mac.cheated_draws
                                   for mac in self.greedy_macs)
        for jammer in self.jammers:
            for key, value in jammer.counters().items():
                out[key] += value
        for mutator in self.mutators:
            for key, value in mutator.counters().items():
                out[key] += value
        return out


def adversary_block(config: AdversaryConfig,
                    runtime: Optional[AdversaryRuntime]
                    ) -> Dict[str, Any]:
    """The ``metrics_dict()["adversary"]`` payload (plain data)."""
    block: Dict[str, Any] = {"kind": config.kind,
                             "intensity": config.intensity}
    block.update(runtime.counters() if runtime is not None
                 else _ZERO_COUNTERS)
    return block


def merge_adversary_blocks(blocks) -> Optional[Dict[str, Any]]:
    """Sum per-shard adversary blocks (kind/intensity are invariant)."""
    blocks = [b for b in blocks if b is not None]
    if not blocks:
        return None
    merged = dict(blocks[0])
    for block in blocks[1:]:
        for key, value in block.items():
            if key in ("kind", "intensity"):
                continue
            merged[key] = merged.get(key, 0) + value
    return merged


def install_adversary(config: Optional[AdversaryConfig], sim, rngs,
                      media, channels, until_ns: int
                      ) -> Optional[AdversaryRuntime]:
    """Attach jammers / mutators to each channel's medium.

    Greedy stations are not installed here — they replace honest
    client MACs at build time (see ``CellBuilder.make_mac``); the
    builder hands its ``greedy_macs`` to the returned runtime.

    Returns None (and touches nothing) for inactive plans.
    """
    if config is None:
        return None
    config.validate()
    if not config.active:
        return None
    runtime = AdversaryRuntime(config)
    if config.kind == "jammer":
        for channel in channels:
            jammer = Jammer(
                sim, media.medium(channel),
                rngs.stream(f"adversary:jam:ch{channel}"),
                config, until_ns)
            jammer.start()
            runtime.jammers.append(jammer)
    elif config.kind == "mutator":
        for channel in channels:
            mutator = AirframeMutator(
                rngs.stream(f"adversary:mutate:ch{channel}"),
                config, clock=lambda: sim.now)
            media.medium(channel).tamper = mutator
            runtime.mutators.append(mutator)
    return runtime
