"""Analytical capacity models (paper Fig 1 / Fig 12)."""

from .capacity import CapacityPoint, figure_1a, figure_1b, \
    hack_goodput_11a, hack_goodput_11n, tcp_goodput_11a, \
    tcp_goodput_11n

__all__ = ["CapacityPoint", "figure_1a", "figure_1b",
           "tcp_goodput_11a", "hack_goodput_11a",
           "tcp_goodput_11n", "hack_goodput_11n"]
