"""Analytical capacity model (paper §2.1, Figures 1a, 1b and 12).

Closed-form per-exchange accounting of 802.11a / 802.11n MAC time for a
single saturated TCP download with delayed ACKs (one TCP ACK per two
data segments), with and without TCP/HACK.  Assumptions match the
paper's: lossless channel, largest-possible A-MPDUs (bounded by the
64 KiB A-MPDU limit and the 4 ms TXOP), mean contention backoff
(CWmin/2 slots), LL ACKs at the basic control rate, and — for HACK —
every TCP ACK encapsulated at the measured compressed size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..mac.aggregation import max_mpdus_for_txop
from ..mac.params import ACK_BYTES, BLOCK_ACK_BYTES, MAC_DATA_OVERHEAD, \
    MacParams, mpdu_subframe_bytes
from ..phy.params import PHY_11A, PhyParams
from ..tcp.segment import IP_HEADER_BYTES, TCP_HEADER_BYTES, \
    TIMESTAMP_OPTION_BYTES

#: TCP/IP header bytes on every segment (with the timestamp option).
TCP_HEADERS = IP_HEADER_BYTES + TCP_HEADER_BYTES + TIMESTAMP_OPTION_BYTES
#: Measured steady-state compressed size of one TCP ACK (bytes); the
#: paper quotes "about 4 bytes, or even 3" (§3.3.2).
COMPRESSED_ACK_BYTES = 4


@dataclass
class CapacityPoint:
    """Analytic goodput at one PHY rate."""

    rate_mbps: float
    tcp_goodput_mbps: float
    hack_goodput_mbps: float

    @property
    def improvement(self) -> float:
        if self.tcp_goodput_mbps == 0:
            return 0.0
        return self.hack_goodput_mbps / self.tcp_goodput_mbps - 1.0


def _acquisition_ns(phy: PhyParams) -> int:
    """Mean medium-acquisition idle time: AIFS/DIFS + CWmin/2 slots.

    For 802.11n BE parameters this is 43 + 67.5 = 110.5 us — the
    number quoted in the paper's introduction."""
    return phy.difs_ns + phy.mean_backoff_ns()


def _ack_rate(phy: PhyParams, data_rate: float) -> float:
    return phy.control_rate_for(data_rate)


# ----------------------------------------------------------------------
# 802.11a (no aggregation)
# ----------------------------------------------------------------------
def tcp_goodput_11a(rate_mbps: float, mss: int = 1460,
                    phy: PhyParams = PHY_11A) -> float:
    """Stock TCP/802.11a: per 2 data MPDUs, 3 medium acquisitions."""
    ack_rate = _ack_rate(phy, rate_mbps)
    acq = _acquisition_ns(phy)
    data_bytes = mss + TCP_HEADERS + MAC_DATA_OVERHEAD
    tcp_ack_bytes = TCP_HEADERS + MAC_DATA_OVERHEAD
    data_exchange = (acq + phy.frame_duration_ns(data_bytes, rate_mbps)
                     + phy.sifs_ns
                     + phy.control_duration_ns(ACK_BYTES, ack_rate))
    ack_exchange = (acq + phy.frame_duration_ns(tcp_ack_bytes, rate_mbps)
                    + phy.sifs_ns
                    + phy.control_duration_ns(ACK_BYTES, ack_rate))
    cycle_ns = 2 * data_exchange + ack_exchange
    return (2 * mss * 8 * 1000.0) / cycle_ns


def hack_goodput_11a(rate_mbps: float, mss: int = 1460,
                     phy: PhyParams = PHY_11A,
                     compressed_ack_bytes: int = COMPRESSED_ACK_BYTES
                     ) -> float:
    """TCP/HACK on 802.11a: zero acquisitions for TCP ACKs; one LL ACK
    per cycle carries one compressed TCP ACK."""
    ack_rate = _ack_rate(phy, rate_mbps)
    acq = _acquisition_ns(phy)
    data_bytes = mss + TCP_HEADERS + MAC_DATA_OVERHEAD
    stock_ack = phy.control_duration_ns(ACK_BYTES, ack_rate)
    augmented_ack = phy.control_duration_ns(
        ACK_BYTES + compressed_ack_bytes, ack_rate)
    cycle_ns = (2 * (acq + phy.frame_duration_ns(data_bytes, rate_mbps)
                     + phy.sifs_ns)
                + stock_ack + augmented_ack)
    return (2 * mss * 8 * 1000.0) / cycle_ns


# ----------------------------------------------------------------------
# 802.11n (A-MPDU aggregation + Block ACKs)
# ----------------------------------------------------------------------
def _batch_size(rate_mbps: float, mss: int, phy: PhyParams,
                params: MacParams) -> int:
    data_mpdu = mss + TCP_HEADERS + MAC_DATA_OVERHEAD
    return max_mpdus_for_txop(data_mpdu, params, phy, rate_mbps)


def tcp_goodput_11n(rate_mbps: float, mss: int = 1460,
                    phy: PhyParams = None,
                    params: MacParams = None) -> float:
    """Stock TCP/802.11n: data A-MPDU exchange + TCP-ACK A-MPDU
    exchange per cycle."""
    from ..phy.params import PHY_11N, phy_11n_with_rates
    if phy is None:
        phy = PHY_11N if rate_mbps in PHY_11N.data_rates else \
            phy_11n_with_rates((rate_mbps,))
    if params is None:
        params = MacParams(data_rate_mbps=rate_mbps, aggregation=True)
    ack_rate = _ack_rate(phy, rate_mbps)
    acq = _acquisition_ns(phy)
    n = _batch_size(rate_mbps, mss, phy, params)
    data_mpdu = mss + TCP_HEADERS + MAC_DATA_OVERHEAD
    ack_mpdu = TCP_HEADERS + MAC_DATA_OVERHEAD
    data_bytes = n * mpdu_subframe_bytes(data_mpdu)
    n_acks = max(1, n // 2)
    ack_bytes = n_acks * mpdu_subframe_bytes(ack_mpdu)
    block_ack = phy.control_duration_ns(BLOCK_ACK_BYTES, ack_rate)
    data_exchange = (acq + phy.frame_duration_ns(data_bytes, rate_mbps)
                     + phy.sifs_ns + block_ack)
    ack_exchange = (acq + phy.frame_duration_ns(ack_bytes, rate_mbps)
                    + phy.sifs_ns + block_ack)
    cycle_ns = data_exchange + ack_exchange
    return (n * mss * 8 * 1000.0) / cycle_ns


def hack_goodput_11n(rate_mbps: float, mss: int = 1460,
                     phy: PhyParams = None,
                     params: MacParams = None,
                     compressed_ack_bytes: int = COMPRESSED_ACK_BYTES
                     ) -> float:
    """TCP/HACK on 802.11n: the TCP-ACK exchange disappears; the Block
    ACK grows by the compressed ACKs for the previous batch."""
    from ..phy.params import PHY_11N, phy_11n_with_rates
    if phy is None:
        phy = PHY_11N if rate_mbps in PHY_11N.data_rates else \
            phy_11n_with_rates((rate_mbps,))
    if params is None:
        params = MacParams(data_rate_mbps=rate_mbps, aggregation=True)
    ack_rate = _ack_rate(phy, rate_mbps)
    acq = _acquisition_ns(phy)
    n = _batch_size(rate_mbps, mss, phy, params)
    data_mpdu = mss + TCP_HEADERS + MAC_DATA_OVERHEAD
    data_bytes = n * mpdu_subframe_bytes(data_mpdu)
    n_acks = max(1, n // 2)
    augmented_block_ack = phy.control_duration_ns(
        BLOCK_ACK_BYTES + 2 + n_acks * compressed_ack_bytes, ack_rate)
    cycle_ns = (acq + phy.frame_duration_ns(data_bytes, rate_mbps)
                + phy.sifs_ns + augmented_block_ack)
    return (n * mss * 8 * 1000.0) / cycle_ns


# ----------------------------------------------------------------------
# Figure-level sweeps
# ----------------------------------------------------------------------
def figure_1a_point(rate: float) -> CapacityPoint:
    """Theoretical goodput at one 802.11a rate (a Fig 1a cell)."""
    return CapacityPoint(rate, tcp_goodput_11a(rate),
                         hack_goodput_11a(rate))


def figure_1a(rates: Iterable[float] = PHY_11A.data_rates
              ) -> List[CapacityPoint]:
    """Theoretical goodput for 802.11a rates (Fig 1a)."""
    return [figure_1a_point(r) for r in rates]


def figure_1b_rates(max_streams: int = 4) -> List[float]:
    """The HT rate set Fig 1b sweeps (1..max_streams spatial streams)."""
    from ..phy.params import ht_rates_for_streams
    return sorted({r for s in range(1, max_streams + 1)
                   for r in ht_rates_for_streams(s)})


def figure_1b_point(rate: float,
                    max_streams: int = 4) -> CapacityPoint:
    """Theoretical goodput at one 802.11n rate (a Fig 1b cell).

    The PHY's rate ladder spans the whole figure, so the control-rate
    selection matches the multi-stream sweep it belongs to."""
    from ..phy.params import phy_11n_with_rates
    phy = phy_11n_with_rates(tuple(figure_1b_rates(max_streams)))
    params = MacParams(data_rate_mbps=rate, aggregation=True)
    return CapacityPoint(
        rate,
        tcp_goodput_11n(rate, phy=phy, params=params),
        hack_goodput_11n(rate, phy=phy, params=params))


def figure_1b(max_streams: int = 4) -> List[CapacityPoint]:
    """Theoretical goodput for 802.11n rates up to 600 Mbps (Fig 1b)."""
    return [figure_1b_point(rate, max_streams)
            for rate in figure_1b_rates(max_streams)]
