"""Seeded random number streams.

Each subsystem draws from its own named stream so that, for example,
adding an extra random draw in the PHY error model does not perturb the
MAC backoff sequence.  This is the standard trick for run-to-run
comparability in network simulators (ns-3 does the same).
"""

from __future__ import annotations

import random
from typing import Dict


class RngRegistry:
    """A registry of independent ``random.Random`` streams.

    Streams are derived deterministically from a master seed plus the
    stream name, so two simulations with the same seed see identical
    randomness regardless of stream creation order.
    """

    def __init__(self, seed: int = 1):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the named stream."""
        if name not in self._streams:
            # Stable derivation: hash the name into the seed space.
            derived = (self.seed * 1_000_003 + _stable_hash(name)) % (2 ** 63)
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def namespace(self, prefix: str) -> "RngNamespace":
        """A view whose stream names are prefixed with ``prefix:``.

        Lets a subsystem hand out per-entity streams (per client, per
        user, per arrival process) without risking a name collision
        with another subsystem's streams — the traffic layer uses
        ``registry.namespace("traffic")`` for exactly this.
        """
        return RngNamespace(self, prefix)

    def stream_names(self) -> list:
        """Names of the streams created so far (diagnostics)."""
        return sorted(self._streams)


class RngNamespace:
    """A prefixed view onto an :class:`RngRegistry`.

    Same ``stream(name)`` contract; the underlying stream is derived
    from ``"<prefix>:<name>"`` so determinism and creation-order
    independence carry over unchanged.
    """

    def __init__(self, registry: RngRegistry, prefix: str):
        self._registry = registry
        self._prefix = prefix

    def stream(self, name: str) -> random.Random:
        return self._registry.stream(f"{self._prefix}:{name}")

    def namespace(self, prefix: str) -> "RngNamespace":
        return RngNamespace(self._registry,
                            f"{self._prefix}:{prefix}")


def _stable_hash(name: str) -> int:
    """A deterministic (non-salted) string hash.

    ``hash()`` is randomised per interpreter run for strings, which would
    break reproducibility, so we roll a simple FNV-1a.
    """
    value = 0xcbf29ce484222325
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001b3) % (2 ** 64)
    return value
