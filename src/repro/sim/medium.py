"""The shared wireless medium.

Models one *channel* as a single collision domain: every station hears
every other station's energy (the paper simulates clients within a
10 m circle around the AP and states there are no hidden terminals).
Consequences:

* Carrier sense is global — the channel is busy for everyone whenever
  at least one transmission is in flight, regardless of which cell the
  transmitter belongs to.
* Two transmissions that overlap in time corrupt each other (a
  collision); every receiver sees garbage for both frames.
* Independent per-receiver losses (low SNR) are applied by a pluggable
  :class:`~repro.phy.errors.LossModel` on top of collision corruption.

Frames are opaque to the medium except for their ``duration_ns``, which
the sender computes from the PHY rate tables, and their ``dst``: intact
frames are dispatched through a per-station address map, so only the
addressed station pays the full receive path
(:meth:`MediumListener.on_frame_received`) while every other listener
gets the cheap carrier-level :meth:`MediumListener.on_frame_overheard`.
Listener call *order* is unchanged from the broadcast scan (attach
order), which keeps event sequencing — and therefore whole-simulation
determinism — identical to the pre-map behaviour.

**Overlapping cells.**  Several BSSes (an AP plus its clients) can
share the one channel: ``attach(listener, cell=k)`` puts a station in
dispatch group ``k``.  Each cell keeps its own listener list and
address map, so intact-frame dispatch — the per-frame hot path — stays
O(stations in the transmitter's cell) no matter how many co-channel
cells exist.  Inter-cell coupling happens exactly where 802.11's
physical carrier sense lives:

* busy/idle transitions are broadcast to *every* listener, so a cell-B
  AP defers (DIFS + frozen backoff) while a cell-A transmission is in
  flight;
* overlapping transmissions collide regardless of cell, and the
  resulting :meth:`MediumListener.on_frame_error` is delivered to all
  cells (every station heard garbage, so everyone pays EIFS);
* intact frames are decoded only within the transmitter's own cell —
  other cells sense the energy but never pay the decode path.  This is
  the energy-detect OBSS model: a station keeps EIFS until a *good*
  frame of its own cell (or its own exchange) clears it, and a station
  awaiting a response during a cross-cell transmission resolves the
  failure through its busy-aware response timeout rather than through
  frame delivery.

A single-cell simulation (everything attached to the default cell)
takes exactly the historical code paths in the same order, which is
what keeps the paper's scenarios bit-identical.

Per-cell airtime is accounted on transmission end: a *non-collided*
transmission credits its duration to its sender's cell.  Clean
transmissions never overlap (any overlap is a collision by
definition), so summing those credits across cells can never
double-count an instant — per-cell airtime shares always sum to at
most the elapsed window.

**Channels.**  A :class:`Medium` is one channel.  Scenarios spanning
several channels use a :class:`ChannelizedMedium`: an ordered set of
per-channel ``Medium`` instances over one simulator.  Channels never
interact — a frame on channel c contributes no energy, no carrier
sense, no EIFS and no collisions on any other channel, which is
modelled *by construction* (separate ``Medium`` objects, so there is
no cross-channel code path to get wrong).  Every per-cell invariant
above is therefore scoped to a channel: cell airtime shares sum to at
most 1 *per channel*, while the sum over all cells of a multi-channel
scenario can legitimately approach the channel count.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .engine import Simulator

#: The dispatch group stations land in when ``attach`` is not given an
#: explicit cell (and transmissions from never-attached senders are
#: attributed to).  Single-cell simulations only ever touch this one.
DEFAULT_CELL = 0

#: The channel a bare ``Medium`` models (and the one single-channel
#: scenarios have always run on).
DEFAULT_CHANNEL = 0


class Transmission:
    """One frame in flight on the medium."""

    __slots__ = ("sender", "frame", "start", "end", "collided", "cell")

    def __init__(self, sender: Any, frame: Any, start: int, end: int,
                 cell: Any = DEFAULT_CELL):
        self.sender = sender
        self.frame = frame
        self.start = start
        self.end = end
        self.collided = False
        self.cell = cell

    @property
    def duration(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Tx {self.frame!r} {self.start}..{self.end}"
                f"{' COLLIDED' if self.collided else ''}>")


class MediumListener:
    """Interface stations implement to hear the medium.

    Subclasses override what they need; defaults are no-ops so simple
    test doubles stay short.
    """

    def on_channel_busy(self, now: int) -> None:
        """The medium transitioned idle -> busy."""

    def on_channel_idle(self, now: int) -> None:
        """The medium transitioned busy -> idle."""

    def on_frame_received(self, frame: Any, sender: Any) -> None:
        """A frame addressed to this station arrived intact."""

    def on_frame_overheard(self, frame: Any, sender: Any) -> None:
        """A frame addressed to *another* station arrived intact.

        The default forwards to :meth:`on_frame_received` so listeners
        that don't distinguish (test doubles, promiscuous observers)
        keep seeing every frame.
        """
        self.on_frame_received(frame, sender)

    def on_frame_error(self, frame: Any, sender: Any) -> None:
        """A frame arrived but was corrupted (collision or channel loss)."""


class _Cell:
    """One co-channel BSS's dispatch group and airtime accounting."""

    __slots__ = ("listeners", "by_address", "airtime_ns",
                 "frames_sent", "frames_collided")

    def __init__(self) -> None:
        self.listeners: List[MediumListener] = []
        #: Station address -> listener, for O(1) delivery dispatch
        #: scoped to this cell.
        self.by_address: Dict[Any, MediumListener] = {}
        #: Cumulative ns of *clean* (non-collided) transmissions by
        #: this cell's stations.  Clean transmissions are globally
        #: disjoint in time, so these credits never double-count.
        self.airtime_ns: int = 0
        self.frames_sent: int = 0
        self.frames_collided: int = 0


class Medium:
    """Single-channel broadcast medium with collisions and carrier sense.

    Supports several overlapping cells (dispatch groups) on the one
    channel; see the module docstring for the inter-cell semantics.
    """

    def __init__(self, sim: Simulator, loss_model: Optional[Any] = None,
                 channel: int = DEFAULT_CHANNEL):
        self.sim = sim
        self.loss_model = loss_model
        #: Which channel this medium models (informational; media of
        #: different channels share nothing but the simulator clock).
        self.channel = channel
        self.listeners: List[MediumListener] = []
        #: cell key -> dispatch group; the default cell always exists.
        self._cells: Dict[Any, _Cell] = {DEFAULT_CELL: _Cell()}
        #: listener -> cell key (senders not in here transmit as the
        #: default cell — test doubles mostly).
        self._cell_of: Dict[Any, Any] = {}
        self._active: List[Transmission] = []
        #: Cumulative ns the channel has spent busy (for utilisation stats).
        self.busy_time: int = 0
        self._busy_since: Optional[int] = None
        #: Total frames offered / collided (for stats).
        self.frames_sent = 0
        self.frames_collided = 0
        #: Optional observers called with each completed Transmission.
        self.observers: List[Callable[[Transmission], None]] = []
        #: Optional adversarial hook: called with each *cleanly
        #: delivered* frame just before dispatch, and may rewrite its
        #: payload in place (frames that passed the link-layer FCS but
        #: carry corrupted contents — see repro.adversary.mutator).
        #: None (the default) costs one attribute check per frame.
        self.tamper: Optional[Callable[[Any], None]] = None

    # ------------------------------------------------------------------
    def attach(self, listener: MediumListener,
               cell: Any = DEFAULT_CELL) -> None:
        """Register a station; it will hear busy/idle and frame events.

        ``cell`` selects the dispatch group the station decodes frames
        in; stations of other cells only share carrier sense (busy/
        idle) and collision corruption with it.
        """
        self.listeners.append(listener)
        group = self._cells.get(cell)
        if group is None:
            group = self._cells[cell] = _Cell()
        group.listeners.append(listener)
        self._cell_of[listener] = cell
        address = getattr(listener, "address", None)
        if address is not None:
            group.by_address[address] = listener

    def cell_keys(self) -> List[Any]:
        """Every dispatch group created so far (default cell first)."""
        return list(self._cells)

    def cell_of(self, listener: MediumListener) -> Any:
        """The dispatch group a listener was attached under."""
        return self._cell_of.get(listener, DEFAULT_CELL)

    def cell_stats(self, cell: Any = DEFAULT_CELL) -> Dict[str, int]:
        """Per-cell counters: clean airtime and frames offered/collided.

        Scope is this one channel: the airtime credited here is time
        the cell held *this* medium, and the disjointness guarantee
        (clean transmissions never overlap) holds among this channel's
        cells only.  Cells on other channels keep their own, entirely
        independent, books.
        """
        group = self._cells.get(cell)
        if group is None:
            return {"airtime_ns": 0, "frames_sent": 0,
                    "frames_collided": 0}
        return {"airtime_ns": group.airtime_ns,
                "frames_sent": group.frames_sent,
                "frames_collided": group.frames_collided}

    def cell_airtime_share(self, cell: Any = DEFAULT_CELL,
                           elapsed: Optional[int] = None) -> float:
        """Fraction of a window this cell's clean transmissions held the
        channel.  Shares across *this channel's* cells sum to at most 1
        (clean transmissions on one channel are disjoint by definition
        of a collision); summed over every cell of a multi-channel
        scenario the total can legitimately exceed 1 — each channel
        carries clean airtime concurrently."""
        if elapsed is not None and elapsed < 0:
            raise ValueError(f"negative elapsed window {elapsed}")
        total = elapsed if elapsed is not None else self.sim.now
        if total <= 0:
            return 0.0
        return min(1.0, self.cell_stats(cell)["airtime_ns"] / total)

    @property
    def busy(self) -> bool:
        """True while any transmission is in flight."""
        return bool(self._active)

    @property
    def busy_until(self) -> Optional[int]:
        """When the current busy period is guaranteed to last until:
        the latest end among in-flight transmissions, or None if idle.

        The medium stays continuously busy up to that instant (every
        moment before it is covered by the longest-lived transmission);
        new transmissions can only extend it.  Timers that poll for
        idle use this to skip guaranteed-busy re-checks.
        """
        if not self._active:
            return None
        return max(tx.end for tx in self._active)

    # ------------------------------------------------------------------
    def transmit(self, sender: Any, frame: Any, duration: int) -> Transmission:
        """Begin transmitting ``frame`` for ``duration`` ns.

        The sender must have already honoured carrier sense; the medium
        does not police that (it is the DCF's job), but overlapping
        transmissions are faithfully collided.
        """
        if duration <= 0:
            raise ValueError("transmission duration must be positive")
        now = self.sim.now
        cell = self._cell_of.get(sender, DEFAULT_CELL)
        tx = Transmission(sender, frame, now, now + duration, cell=cell)
        was_idle = not self._active
        if self._active:
            # Collision: every concurrently in-flight frame is
            # corrupted, whichever cell it belongs to.
            tx.collided = True
            for other in self._active:
                if not other.collided:
                    other.collided = True
                    self.frames_collided += 1
                    self._cells[other.cell].frames_collided += 1
            self.frames_collided += 1
            self._cells[cell].frames_collided += 1
        self._active.append(tx)
        self.frames_sent += 1
        self._cells[cell].frames_sent += 1
        if was_idle:
            self._busy_since = now
            for listener in self.listeners:
                listener.on_channel_busy(now)
        self.sim.schedule(duration, self._transmission_ends, tx, priority=-1)
        return tx

    # ------------------------------------------------------------------
    def _transmission_ends(self, tx: Transmission) -> None:
        self._active.remove(tx)
        now = self.sim.now
        # Idle notification precedes frame delivery so that stations'
        # idle-time bookkeeping is fresh when delivery callbacks decide
        # to resume contention at this same instant.
        listeners = self.listeners
        if not self._active:
            assert self._busy_since is not None
            self.busy_time += now - self._busy_since
            self._busy_since = None
            for listener in listeners:
                listener.on_channel_idle(now)
        # Deliver to every station of the sender's cell except the
        # sender itself: the addressed station (resolved once, via the
        # cell's address map) takes the full receive path, everyone
        # else in the cell the cheap overheard path.  A *collided*
        # frame is garbage for every cell, so errors go to all
        # listeners.  Intact frames are never decoded outside the
        # sender's cell (energy-detect OBSS; see module docstring).
        sender = tx.sender
        frame = tx.frame
        loss_model = self.loss_model
        if tx.collided:
            for listener in listeners:
                if listener is not sender:
                    listener.on_frame_error(frame, sender)
        else:
            group = self._cells[tx.cell]
            group.airtime_ns += tx.end - tx.start
            if self.tamper is not None:
                self.tamper(frame)
            target = group.by_address.get(getattr(frame, "dst", None))
            for listener in group.listeners:
                if listener is sender:
                    continue
                if loss_model is not None and loss_model.is_lost(
                        sender, listener, frame):
                    listener.on_frame_error(frame, sender)
                elif listener is target:
                    listener.on_frame_received(frame, sender)
                else:
                    listener.on_frame_overheard(frame, sender)
        for observer in self.observers:
            observer(tx)

    def utilisation(self, elapsed: Optional[int] = None) -> float:
        """Fraction of time the channel was busy, clamped to [0, 1].

        ``elapsed`` measures against a caller-chosen window (e.g. the
        configured duration); a window shorter than the accumulated
        busy time yields 1.0 rather than a nonsensical >1 fraction.
        Negative windows are a caller bug and raise.
        """
        if elapsed is not None and elapsed < 0:
            raise ValueError(f"negative elapsed window {elapsed}")
        total = elapsed if elapsed is not None else self.sim.now
        if total <= 0:
            return 0.0
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        return min(1.0, busy / total)


class ChannelizedMedium:
    """An ordered set of independent channels over one simulator.

    Each channel is a full :class:`Medium` (its own collision domain,
    carrier sense, EIFS and loss model); cross-channel frames are
    invisible to each other by construction because the media share no
    state.  A single-channel scenario built through this class runs the
    exact historical ``Medium`` code paths — the wrapper only holds the
    mapping and aggregates counters.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._media: Dict[int, Medium] = {}

    def add_channel(self, channel: int,
                    loss_model: Optional[Any] = None) -> Medium:
        """Create one channel's medium (channels are registered once,
        in the order scenarios enumerate them)."""
        if channel in self._media:
            raise ValueError(f"channel {channel} already exists")
        medium = Medium(self.sim, loss_model=loss_model,
                        channel=channel)
        self._media[channel] = medium
        return medium

    def medium(self, channel: int) -> Medium:
        """The :class:`Medium` modelling one channel."""
        return self._media[channel]

    def channels(self) -> List[int]:
        """Registered channels, in registration order."""
        return list(self._media)

    @property
    def frames_sent(self) -> int:
        """Frames offered across every channel."""
        return sum(m.frames_sent for m in self._media.values())

    @property
    def frames_collided(self) -> int:
        """Collided frames across every channel (collisions only ever
        happen within one channel)."""
        return sum(m.frames_collided for m in self._media.values())

    def utilisation(self, elapsed: Optional[int] = None) -> float:
        """Mean per-channel busy fraction (each channel in [0, 1]).

        For a single channel this is exactly that channel's
        :meth:`Medium.utilisation` — the historical headline number.
        """
        media = list(self._media.values())
        if not media:
            return 0.0
        return sum(m.utilisation(elapsed) for m in media) / len(media)
