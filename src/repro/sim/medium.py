"""The shared wireless medium.

Models a single collision domain: every station hears every other
station (the paper simulates clients within a 10 m circle around the AP
and states there are no hidden terminals).  Consequences:

* Carrier sense is global — the channel is busy for everyone whenever
  at least one transmission is in flight.
* Two transmissions that overlap in time corrupt each other (a
  collision); every receiver sees garbage for both frames.
* Independent per-receiver losses (low SNR) are applied by a pluggable
  :class:`~repro.phy.errors.LossModel` on top of collision corruption.

Frames are opaque to the medium except for their ``duration_ns``, which
the sender computes from the PHY rate tables, and their ``dst``: intact
frames are dispatched through a per-station address map, so only the
addressed station pays the full receive path
(:meth:`MediumListener.on_frame_received`) while every other listener
gets the cheap carrier-level :meth:`MediumListener.on_frame_overheard`.
Listener call *order* is unchanged from the broadcast scan (attach
order), which keeps event sequencing — and therefore whole-simulation
determinism — identical to the pre-map behaviour.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .engine import Simulator


class Transmission:
    """One frame in flight on the medium."""

    __slots__ = ("sender", "frame", "start", "end", "collided")

    def __init__(self, sender: Any, frame: Any, start: int, end: int):
        self.sender = sender
        self.frame = frame
        self.start = start
        self.end = end
        self.collided = False

    @property
    def duration(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Tx {self.frame!r} {self.start}..{self.end}"
                f"{' COLLIDED' if self.collided else ''}>")


class MediumListener:
    """Interface stations implement to hear the medium.

    Subclasses override what they need; defaults are no-ops so simple
    test doubles stay short.
    """

    def on_channel_busy(self, now: int) -> None:
        """The medium transitioned idle -> busy."""

    def on_channel_idle(self, now: int) -> None:
        """The medium transitioned busy -> idle."""

    def on_frame_received(self, frame: Any, sender: Any) -> None:
        """A frame addressed to this station arrived intact."""

    def on_frame_overheard(self, frame: Any, sender: Any) -> None:
        """A frame addressed to *another* station arrived intact.

        The default forwards to :meth:`on_frame_received` so listeners
        that don't distinguish (test doubles, promiscuous observers)
        keep seeing every frame.
        """
        self.on_frame_received(frame, sender)

    def on_frame_error(self, frame: Any, sender: Any) -> None:
        """A frame arrived but was corrupted (collision or channel loss)."""


class Medium:
    """Single-channel broadcast medium with collisions and carrier sense."""

    def __init__(self, sim: Simulator, loss_model: Optional[Any] = None):
        self.sim = sim
        self.loss_model = loss_model
        self.listeners: List[MediumListener] = []
        #: Station address -> listener, for O(1) delivery dispatch.
        self._by_address: Dict[Any, MediumListener] = {}
        self._active: List[Transmission] = []
        #: Cumulative ns the channel has spent busy (for utilisation stats).
        self.busy_time: int = 0
        self._busy_since: Optional[int] = None
        #: Total frames offered / collided (for stats).
        self.frames_sent = 0
        self.frames_collided = 0
        #: Optional observers called with each completed Transmission.
        self.observers: List[Callable[[Transmission], None]] = []

    # ------------------------------------------------------------------
    def attach(self, listener: MediumListener) -> None:
        """Register a station; it will hear busy/idle and frame events."""
        self.listeners.append(listener)
        address = getattr(listener, "address", None)
        if address is not None:
            self._by_address[address] = listener

    @property
    def busy(self) -> bool:
        """True while any transmission is in flight."""
        return bool(self._active)

    @property
    def busy_until(self) -> Optional[int]:
        """When the current busy period is guaranteed to last until:
        the latest end among in-flight transmissions, or None if idle.

        The medium stays continuously busy up to that instant (every
        moment before it is covered by the longest-lived transmission);
        new transmissions can only extend it.  Timers that poll for
        idle use this to skip guaranteed-busy re-checks.
        """
        if not self._active:
            return None
        return max(tx.end for tx in self._active)

    # ------------------------------------------------------------------
    def transmit(self, sender: Any, frame: Any, duration: int) -> Transmission:
        """Begin transmitting ``frame`` for ``duration`` ns.

        The sender must have already honoured carrier sense; the medium
        does not police that (it is the DCF's job), but overlapping
        transmissions are faithfully collided.
        """
        if duration <= 0:
            raise ValueError("transmission duration must be positive")
        now = self.sim.now
        tx = Transmission(sender, frame, now, now + duration)
        was_idle = not self._active
        if self._active:
            # Collision: every concurrently in-flight frame is corrupted.
            tx.collided = True
            for other in self._active:
                if not other.collided:
                    other.collided = True
                    self.frames_collided += 1
            self.frames_collided += 1
        self._active.append(tx)
        self.frames_sent += 1
        if was_idle:
            self._busy_since = now
            for listener in self.listeners:
                listener.on_channel_busy(now)
        self.sim.schedule(duration, self._transmission_ends, tx, priority=-1)
        return tx

    # ------------------------------------------------------------------
    def _transmission_ends(self, tx: Transmission) -> None:
        self._active.remove(tx)
        now = self.sim.now
        # Idle notification precedes frame delivery so that stations'
        # idle-time bookkeeping is fresh when delivery callbacks decide
        # to resume contention at this same instant.
        listeners = self.listeners
        if not self._active:
            assert self._busy_since is not None
            self.busy_time += now - self._busy_since
            self._busy_since = None
            for listener in listeners:
                listener.on_channel_idle(now)
        # Deliver to every station except the sender: the addressed
        # station (resolved once, via the per-station map) takes the
        # full receive path, everyone else the cheap overheard path.
        sender = tx.sender
        frame = tx.frame
        loss_model = self.loss_model
        if tx.collided:
            for listener in listeners:
                if listener is not sender:
                    listener.on_frame_error(frame, sender)
        else:
            target = self._by_address.get(getattr(frame, "dst", None))
            for listener in listeners:
                if listener is sender:
                    continue
                if loss_model is not None and loss_model.is_lost(
                        sender, listener, frame):
                    listener.on_frame_error(frame, sender)
                elif listener is target:
                    listener.on_frame_received(frame, sender)
                else:
                    listener.on_frame_overheard(frame, sender)
        for observer in self.observers:
            observer(tx)

    def utilisation(self, elapsed: Optional[int] = None) -> float:
        """Fraction of time the channel was busy, clamped to [0, 1].

        ``elapsed`` measures against a caller-chosen window (e.g. the
        configured duration); a window shorter than the accumulated
        busy time yields 1.0 rather than a nonsensical >1 fraction.
        Negative windows are a caller bug and raise.
        """
        if elapsed is not None and elapsed < 0:
            raise ValueError(f"negative elapsed window {elapsed}")
        total = elapsed if elapsed is not None else self.sim.now
        if total <= 0:
            return 0.0
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        return min(1.0, busy / total)
