"""The shared wireless medium.

Models a single collision domain: every station hears every other
station (the paper simulates clients within a 10 m circle around the AP
and states there are no hidden terminals).  Consequences:

* Carrier sense is global — the channel is busy for everyone whenever
  at least one transmission is in flight.
* Two transmissions that overlap in time corrupt each other (a
  collision); every receiver sees garbage for both frames.
* Independent per-receiver losses (low SNR) are applied by a pluggable
  :class:`~repro.phy.errors.LossModel` on top of collision corruption.

Frames are opaque to the medium except for their ``duration_ns``, which
the sender computes from the PHY rate tables.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .engine import Simulator


class Transmission:
    """One frame in flight on the medium."""

    __slots__ = ("sender", "frame", "start", "end", "collided")

    def __init__(self, sender: Any, frame: Any, start: int, end: int):
        self.sender = sender
        self.frame = frame
        self.start = start
        self.end = end
        self.collided = False

    @property
    def duration(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Tx {self.frame!r} {self.start}..{self.end}"
                f"{' COLLIDED' if self.collided else ''}>")


class MediumListener:
    """Interface stations implement to hear the medium.

    Subclasses override what they need; defaults are no-ops so simple
    test doubles stay short.
    """

    def on_channel_busy(self, now: int) -> None:
        """The medium transitioned idle -> busy."""

    def on_channel_idle(self, now: int) -> None:
        """The medium transitioned busy -> idle."""

    def on_frame_received(self, frame: Any, sender: Any) -> None:
        """A frame addressed to anyone arrived intact at this station."""

    def on_frame_error(self, frame: Any, sender: Any) -> None:
        """A frame arrived but was corrupted (collision or channel loss)."""


class Medium:
    """Single-channel broadcast medium with collisions and carrier sense."""

    def __init__(self, sim: Simulator, loss_model: Optional[Any] = None):
        self.sim = sim
        self.loss_model = loss_model
        self.listeners: List[MediumListener] = []
        self._active: List[Transmission] = []
        #: Cumulative ns the channel has spent busy (for utilisation stats).
        self.busy_time: int = 0
        self._busy_since: Optional[int] = None
        #: Total frames offered / collided (for stats).
        self.frames_sent = 0
        self.frames_collided = 0
        #: Optional observers called with each completed Transmission.
        self.observers: List[Callable[[Transmission], None]] = []

    # ------------------------------------------------------------------
    def attach(self, listener: MediumListener) -> None:
        """Register a station; it will hear busy/idle and frame events."""
        self.listeners.append(listener)

    @property
    def busy(self) -> bool:
        """True while any transmission is in flight."""
        return bool(self._active)

    # ------------------------------------------------------------------
    def transmit(self, sender: Any, frame: Any, duration: int) -> Transmission:
        """Begin transmitting ``frame`` for ``duration`` ns.

        The sender must have already honoured carrier sense; the medium
        does not police that (it is the DCF's job), but overlapping
        transmissions are faithfully collided.
        """
        if duration <= 0:
            raise ValueError("transmission duration must be positive")
        now = self.sim.now
        tx = Transmission(sender, frame, now, now + duration)
        was_idle = not self._active
        if self._active:
            # Collision: every concurrently in-flight frame is corrupted.
            tx.collided = True
            for other in self._active:
                if not other.collided:
                    other.collided = True
                    self.frames_collided += 1
            self.frames_collided += 1
        self._active.append(tx)
        self.frames_sent += 1
        if was_idle:
            self._busy_since = now
            for listener in self.listeners:
                listener.on_channel_busy(now)
        self.sim.schedule(duration, self._transmission_ends, tx, priority=-1)
        return tx

    # ------------------------------------------------------------------
    def _transmission_ends(self, tx: Transmission) -> None:
        self._active.remove(tx)
        now = self.sim.now
        # Idle notification precedes frame delivery so that stations'
        # idle-time bookkeeping is fresh when delivery callbacks decide
        # to resume contention at this same instant.
        if not self._active:
            assert self._busy_since is not None
            self.busy_time += now - self._busy_since
            self._busy_since = None
            for listener in self.listeners:
                listener.on_channel_idle(now)
        # Deliver to every station except the sender.
        for listener in self.listeners:
            if listener is tx.sender:
                continue
            if tx.collided:
                listener.on_frame_error(tx.frame, tx.sender)
            elif self.loss_model is not None and self.loss_model.is_lost(
                    tx.sender, listener, tx.frame):
                listener.on_frame_error(tx.frame, tx.sender)
            else:
                listener.on_frame_received(tx.frame, tx.sender)
        for observer in self.observers:
            observer(tx)

    def utilisation(self, elapsed: Optional[int] = None) -> float:
        """Fraction of time the channel was busy."""
        total = elapsed if elapsed is not None else self.sim.now
        if total <= 0:
            return 0.0
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        return busy / total
