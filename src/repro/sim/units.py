"""Time and data-size units for the simulator.

All simulation timestamps and durations are integer nanoseconds.  Using
integers makes event ordering exact and reproducible across platforms;
floating-point microseconds would accumulate rounding error over the
millions of SIFS/slot additions a long run performs.

The 802.11 standard specifies intervals in microseconds, so most call
sites use the ``usec`` helper or the ``US`` multiplier.
"""

from __future__ import annotations

#: One nanosecond (the base unit).
NS = 1
#: Nanoseconds per microsecond.
US = 1_000
#: Nanoseconds per millisecond.
MS = 1_000_000
#: Nanoseconds per second.
SEC = 1_000_000_000


def usec(value: float) -> int:
    """Convert a value in microseconds to integer nanoseconds."""
    return round(value * US)


def msec(value: float) -> int:
    """Convert a value in milliseconds to integer nanoseconds."""
    return round(value * MS)


def sec(value: float) -> int:
    """Convert a value in seconds to integer nanoseconds."""
    return round(value * SEC)


def to_usec(ns: int) -> float:
    """Convert integer nanoseconds to (float) microseconds."""
    return ns / US


def to_msec(ns: int) -> float:
    """Convert integer nanoseconds to (float) milliseconds."""
    return ns / MS


def to_sec(ns: int) -> float:
    """Convert integer nanoseconds to (float) seconds."""
    return ns / SEC


def mbps_to_bits_per_ns(rate_mbps: float) -> float:
    """Convert a rate in Mbit/s to bits per nanosecond."""
    return rate_mbps / 1_000.0


def transmission_time_ns(num_bytes: int, rate_mbps: float) -> int:
    """Serialisation delay for ``num_bytes`` at ``rate_mbps`` (exact, ceil)."""
    if rate_mbps <= 0:
        raise ValueError("rate must be positive")
    bits = num_bytes * 8
    # bits / (Mbit/s) = microseconds; scale to ns and round up.
    ns = (bits * 1_000) / rate_mbps
    return int(-(-ns // 1))  # ceil for floats that are whole numbers too


def throughput_mbps(num_bytes: int, duration_ns: int) -> float:
    """Application-level throughput in Mbit/s for bytes moved in a duration."""
    if duration_ns <= 0:
        return 0.0
    # bits / ns * 1000 == Mbit/s
    return (num_bytes * 8 * 1_000.0) / duration_ns
