"""Discrete-event simulation engine.

A minimal but complete event scheduler: events are ``(time, priority,
sequence, callback)`` tuples kept in a binary heap.  Ties on time are
broken first by an explicit priority (lower runs first) and then by
insertion order, which makes runs fully deterministic.

Events can be cancelled; cancellation is O(1) (the heap entry is marked
dead and skipped when popped), which matters because the MAC layer
cancels timers constantly (ACK timeouts, backoff slot timers).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from .units import SEC


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Use :meth:`cancel` to prevent a pending event from firing.  Attributes
    are read-only from the caller's perspective.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, priority: int, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event dead; it will be skipped by the main loop."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} prio={self.priority} {state}>"


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(usec(10), lambda: print("hello"))
        sim.run(until=sec(1))
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Event] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., Any],
                 *args: Any, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, callback, *args,
                                priority=priority)

    def schedule_at(self, time: int, callback: Callable[..., Any],
                    *args: Any, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` at an absolute timestamp."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self.now}")
        self._seq += 1
        event = Event(time, priority, self._seq, callback, args)
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the number of events run.

        ``until`` is exclusive: an event at exactly ``until`` does not run,
        and ``now`` is advanced to ``until`` when the horizon is hit.
        """
        if until is None:
            until = 365 * 24 * 3600 * SEC  # effectively forever
        executed = 0
        self._running = True
        self._stopped = False
        try:
            while self._heap:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if event.time >= until:
                    self.now = until
                    break
                heapq.heappop(self._heap)
                self.now = event.time
                event.callback(*event.args)
                executed += 1
            else:
                # Heap drained; advance the clock to the horizon if finite.
                if until < 365 * 24 * 3600 * SEC:
                    self.now = max(self.now, until)
        finally:
            self._running = False
        return executed

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now} pending={len(self._heap)}>"
