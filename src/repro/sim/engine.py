"""Discrete-event simulation engine.

A minimal but complete event scheduler: events are ``(time, priority,
sequence, callback)`` tuples kept in a binary heap.  Ties on time are
broken first by an explicit priority (lower runs first) and then by
insertion order, which makes runs fully deterministic.

Events can be cancelled; cancellation is O(1) (the heap entry is marked
dead and skipped when popped), which matters because the MAC layer
cancels timers constantly (ACK timeouts, backoff expiries).  The heap
is kept hygienic under heavy cancellation: a live-event counter makes
:attr:`Simulator.pending_events` O(1), and the heap is compacted in
place whenever dead entries outnumber live ones, so a long run that
schedules and cancels millions of timers keeps a bounded heap instead
of accreting garbage until the run ends.

:attr:`Simulator.stats` counts scheduled/executed/cancelled events and
compactions; scenario results surface it so benchmarks can report
kernel overhead (events per simulated exchange) alongside goodput.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional

from .units import SEC

#: Sentinel horizon for ``run(until=None)``: effectively forever.
_FOREVER = 365 * 24 * 3600 * SEC

#: Compaction policy: never compact tiny heaps (the rebuild would cost
#: more than it frees), and only when dead entries are the majority.
_COMPACT_MIN_SIZE = 64


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Use :meth:`cancel` to prevent a pending event from firing.  Attributes
    are read-only from the caller's perspective.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args",
                 "cancelled", "sim", "sort_key")

    def __init__(self, time: int, priority: int, seq: int,
                 callback: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Owning simulator while the event sits in the heap (cleared
        #: when popped, so late cancels cannot corrupt live counts).
        self.sim = sim
        #: Precomputed ordering key: heap sift comparisons dominate
        #: scheduling cost, and building two tuples per ``__lt__`` was
        #: measurable at hundreds of thousands of comparisons per run.
        self.sort_key = (time, priority, seq)

    def cancel(self) -> None:
        """Mark this event dead; it will be skipped by the main loop."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            self.sim = None
            sim._event_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} prio={self.priority} {state}>"


class SimStats:
    """Kernel counters, cheap enough to keep always-on."""

    __slots__ = ("scheduled", "executed", "cancelled", "compactions")

    def __init__(self) -> None:
        self.scheduled = 0
        self.executed = 0
        self.cancelled = 0
        self.compactions = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "events_scheduled": self.scheduled,
            "events_executed": self.executed,
            "events_cancelled": self.cancelled,
            "heap_compactions": self.compactions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SimStats scheduled={self.scheduled} "
                f"executed={self.executed} cancelled={self.cancelled} "
                f"compactions={self.compactions}>")


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(usec(10), lambda: print("hello"))
        sim.run(until=sec(1))
    """

    def __init__(self) -> None:
        self.now: int = 0
        self.stats = SimStats()
        self._heap: List[Event] = []
        self._seq: int = 0
        self._live: int = 0
        self._running = False
        self._stopped = False
        self._frame_ids: int = 0
        #: Optional observability hook (see :mod:`repro.obs.spans`).
        #: None routes :meth:`run` through the original uninstrumented
        #: loop — the disabled mode costs one check per ``run()`` call,
        #: never per event.
        self._instrument = None

    def set_instrument(self, instrument) -> None:
        """Install (or clear, with ``None``) a span instrument.

        The instrument's ``record(callback, sim_ns, wall_ns)`` is
        invoked after every executed event.  It observes the timeline;
        it must never mutate it — event order, timestamps and
        scheduling behaviour are identical with and without it.
        """
        self._instrument = instrument

    def new_frame_id(self) -> int:
        """Allocate a MAC frame id scoped to this simulation.

        Ids used to come from a process-global counter, so the ids a
        run observed depended on whatever other simulations the
        process had executed before it; a per-Simulator counter makes
        back-to-back identical runs produce identical ids.
        """
        self._frame_ids += 1
        return self._frame_ids

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., Any],
                 *args: Any, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, callback, *args,
                                priority=priority)

    def schedule_at(self, time: int, callback: Callable[..., Any],
                    *args: Any, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` at an absolute timestamp."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self.now}")
        self._seq += 1
        event = Event(time, priority, self._seq, callback, args, self)
        heapq.heappush(self._heap, event)
        self._live += 1
        self.stats.scheduled += 1
        return event

    # ------------------------------------------------------------------
    # Heap hygiene
    # ------------------------------------------------------------------
    def _event_cancelled(self) -> None:
        """Bookkeeping callback from :meth:`Event.cancel`."""
        self._live -= 1
        self.stats.cancelled += 1
        heap = self._heap
        if (len(heap) > _COMPACT_MIN_SIZE
                and (len(heap) - self._live) * 2 > len(heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop dead entries and re-heapify, in place.

        In place matters: :meth:`run` holds a reference to the heap
        list, so compaction mutates rather than rebinding it.  Event
        ordering is a strict total order (seq breaks all ties), so
        rebuilding the heap cannot reorder execution.
        """
        heap = self._heap
        heap[:] = [event for event in heap if not event.cancelled]
        heapq.heapify(heap)
        self.stats.compactions += 1

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the number of events run.

        ``until`` is exclusive: an event at exactly ``until`` does not run,
        and ``now`` is advanced to ``until`` when the horizon is hit.
        """
        if self._instrument is not None:
            return self._run_instrumented(until, max_events)
        if until is None:
            until = _FOREVER
        if max_events is None:
            max_events = float("inf")
        executed = 0
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                if self._stopped:
                    break
                if executed >= max_events:
                    break
                event = heap[0]
                if event.cancelled:
                    pop(heap)
                    continue
                if event.time >= until:
                    self.now = until
                    break
                pop(heap)
                event.sim = None
                self._live -= 1
                self.now = event.time
                event.callback(*event.args)
                executed += 1
            else:
                # Heap drained; advance the clock to the horizon if finite.
                if until < _FOREVER:
                    self.now = max(self.now, until)
        finally:
            self._running = False
            self.stats.executed += executed
        return executed

    def _run_instrumented(self, until: Optional[int],
                          max_events: Optional[int]) -> int:
        """:meth:`run` with per-event span timing.

        A deliberate duplicate of the hot loop rather than a per-event
        ``if instrument`` branch inside it: the uninstrumented path
        must stay byte-for-byte what the perf gate measured.  Event
        selection, clock advance and bookkeeping are identical — only
        the ``perf_counter_ns`` bracket around the callback is new, so
        the simulated timeline cannot diverge.
        """
        from time import perf_counter_ns

        instrument = self._instrument
        if until is None:
            until = _FOREVER
        if max_events is None:
            max_events = float("inf")
        executed = 0
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                if self._stopped:
                    break
                if executed >= max_events:
                    break
                event = heap[0]
                if event.cancelled:
                    pop(heap)
                    continue
                if event.time >= until:
                    self.now = until
                    break
                pop(heap)
                event.sim = None
                self._live -= 1
                self.now = event.time
                started = perf_counter_ns()
                event.callback(*event.args)
                instrument.record(event.callback, event.time,
                                  perf_counter_ns() - started)
                executed += 1
            else:
                if until < _FOREVER:
                    self.now = max(self.now, until)
        finally:
            self._running = False
            self.stats.executed += executed
        return executed

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1)."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator now={self.now} pending={self._live} "
                f"heap={len(self._heap)}>")
