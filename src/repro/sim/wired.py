"""Point-to-point wired links (the server <-> AP backhaul).

The paper's simulated topology attaches the TCP server to the AP over a
500 Mbit/s wired link with 1 ms one-way latency.  We model a full-duplex
link as two independent unidirectional pipes, each a FIFO with a
serialisation rate, propagation delay and a drop-tail packet-count
bound.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from .engine import Simulator
from .units import transmission_time_ns


class WiredPipe:
    """One direction of a wired link.

    ``deliver`` is called with each packet after serialisation plus
    propagation delay.  Packets must expose ``byte_length``.
    """

    def __init__(self, sim: Simulator, rate_mbps: float, delay_ns: int,
                 deliver: Callable[[Any], None],
                 queue_limit: Optional[int] = None):
        if rate_mbps <= 0:
            raise ValueError("rate must be positive")
        if delay_ns < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.rate_mbps = rate_mbps
        self.delay_ns = delay_ns
        self.deliver = deliver
        self.queue_limit = queue_limit
        self._queue: Deque[Any] = deque()
        self._transmitting = False
        #: Stats
        self.packets_sent = 0
        self.packets_dropped = 0
        self.bytes_sent = 0

    def send(self, packet: Any) -> bool:
        """Enqueue a packet; returns False (and drops) if the queue is full."""
        if (self.queue_limit is not None
                and len(self._queue) >= self.queue_limit):
            self.packets_dropped += 1
            return False
        self._queue.append(packet)
        if not self._transmitting:
            self._start_next()
        return True

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def _start_next(self) -> None:
        if not self._queue:
            self._transmitting = False
            return
        self._transmitting = True
        packet = self._queue.popleft()
        tx_time = transmission_time_ns(packet.byte_length, self.rate_mbps)
        self.sim.schedule(tx_time, self._serialised, packet)

    def _serialised(self, packet: Any) -> None:
        self.packets_sent += 1
        self.bytes_sent += packet.byte_length
        self.sim.schedule(self.delay_ns, self.deliver, packet)
        self._start_next()


class WiredLink:
    """A full-duplex link between two endpoints.

    Endpoints are objects with a ``receive_wired(packet)`` method; use
    :meth:`endpoint_a` / :meth:`endpoint_b` handles to send.
    """

    def __init__(self, sim: Simulator, a: Any, b: Any, rate_mbps: float,
                 delay_ns: int, queue_limit: Optional[int] = None):
        self.a = a
        self.b = b
        self._a_to_b = WiredPipe(sim, rate_mbps, delay_ns,
                                 lambda pkt: b.receive_wired(pkt),
                                 queue_limit)
        self._b_to_a = WiredPipe(sim, rate_mbps, delay_ns,
                                 lambda pkt: a.receive_wired(pkt),
                                 queue_limit)

    def send_from(self, endpoint: Any, packet: Any) -> bool:
        """Send ``packet`` from one of the two attached endpoints."""
        if endpoint is self.a:
            return self._a_to_b.send(packet)
        if endpoint is self.b:
            return self._b_to_a.send(packet)
        raise ValueError("endpoint is not attached to this link")

    def pipes(self) -> Tuple[WiredPipe, WiredPipe]:
        """(a->b pipe, b->a pipe), mainly for stats inspection."""
        return self._a_to_b, self._b_to_a
