"""Point-to-point wired links (the server <-> AP backhaul).

The paper's simulated topology attaches the TCP server to the AP over a
500 Mbit/s wired link with 1 ms one-way latency.  We model a full-duplex
link as two independent unidirectional pipes, each a FIFO with a
serialisation rate, propagation delay and a drop-tail packet-count
bound.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from .engine import Simulator
from .units import transmission_time_ns


class WiredPipe:
    """One direction of a wired link.

    ``deliver`` is called with each packet after serialisation plus
    propagation delay.  Packets must expose ``byte_length``.

    Because the pipe is a FIFO with a fixed rate and delay, every
    packet's delivery timestamp is known the moment it is accepted, so
    serialisation is tracked as plain arithmetic (``_busy_until``) and
    each packet costs exactly one simulator event (its delivery)
    instead of the historical serialisation-complete + propagation
    pair.  Delivery times, FIFO order, drop-tail decisions and the
    counters' timing (``packets_sent`` reflects serialisation
    completion, not delivery) match the two-event formulation, with
    one convention pinned down: at the exact instant a serialisation
    boundary falls, the packet counts as serialised/started — where
    the old code's answer depended on whether its boundary event had
    already run within that same timestamp.
    """

    def __init__(self, sim: Simulator, rate_mbps: float, delay_ns: int,
                 deliver: Callable[[Any], None],
                 queue_limit: Optional[int] = None):
        if rate_mbps <= 0:
            raise ValueError("rate must be positive")
        if delay_ns < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.rate_mbps = rate_mbps
        self.delay_ns = delay_ns
        self.deliver = deliver
        self.queue_limit = queue_limit
        #: When the last accepted packet finishes serialising.
        self._busy_until = 0
        #: (serialisation start, serialisation end, bytes) per accepted
        #: packet, folded into the counters as the clock passes each
        #: end; the entries still ahead of the clock are the queue.
        self._pending: Deque[tuple] = deque()
        #: Stats
        self._packets_sent = 0
        self._bytes_sent = 0
        self.packets_dropped = 0

    def _advance(self) -> None:
        """Fold serialisations the clock has passed into the counters."""
        pending = self._pending
        now = self.sim.now
        while pending and pending[0][1] <= now:
            _, _, nbytes = pending.popleft()
            self._packets_sent += 1
            self._bytes_sent += nbytes

    def send(self, packet: Any) -> bool:
        """Enqueue a packet; returns False (and drops) if the queue is full."""
        self._advance()
        if (self.queue_limit is not None
                and self.queue_depth >= self.queue_limit):
            self.packets_dropped += 1
            return False
        now = self.sim.now
        start = self._busy_until if self._busy_until > now else now
        tx_time = transmission_time_ns(packet.byte_length, self.rate_mbps)
        self._busy_until = start + tx_time
        self._pending.append((start, self._busy_until,
                              packet.byte_length))
        self.sim.schedule_at(self._busy_until + self.delay_ns,
                             self._delivered, packet)
        return True

    @property
    def queue_depth(self) -> int:
        """Packets accepted but not yet begun serialising.  O(1):
        after ``_advance()`` every remaining entry ends after ``now``,
        and FIFO-contiguous serialisation means only the head can have
        started (any later entry starts at or after the head's end) —
        so the depth is the backlog minus that in-flight head."""
        self._advance()
        pending = self._pending
        in_flight = 1 if pending and pending[0][0] <= self.sim.now \
            else 0
        return len(pending) - in_flight

    @property
    def packets_sent(self) -> int:
        """Packets fully serialised onto the wire (propagation may
        still be in progress), exactly as the two-event pipe counted."""
        self._advance()
        return self._packets_sent

    @property
    def bytes_sent(self) -> int:
        """Bytes fully serialised onto the wire."""
        self._advance()
        return self._bytes_sent

    def _delivered(self, packet: Any) -> None:
        self._advance()
        self.deliver(packet)


class WiredLink:
    """A full-duplex link between two endpoints.

    Endpoints are objects with a ``receive_wired(packet)`` method; use
    :meth:`endpoint_a` / :meth:`endpoint_b` handles to send.
    """

    def __init__(self, sim: Simulator, a: Any, b: Any, rate_mbps: float,
                 delay_ns: int, queue_limit: Optional[int] = None):
        self.a = a
        self.b = b
        self._a_to_b = WiredPipe(sim, rate_mbps, delay_ns,
                                 lambda pkt: b.receive_wired(pkt),
                                 queue_limit)
        self._b_to_a = WiredPipe(sim, rate_mbps, delay_ns,
                                 lambda pkt: a.receive_wired(pkt),
                                 queue_limit)

    def send_from(self, endpoint: Any, packet: Any) -> bool:
        """Send ``packet`` from one of the two attached endpoints."""
        if endpoint is self.a:
            return self._a_to_b.send(packet)
        if endpoint is self.b:
            return self._b_to_a.send(packet)
        raise ValueError("endpoint is not attached to this link")

    def pipes(self) -> Tuple[WiredPipe, WiredPipe]:
        """(a->b pipe, b->a pipe), mainly for stats inspection."""
        return self._a_to_b, self._b_to_a

    def queue_depths(self) -> Tuple[int, int]:
        """(a->b depth, b->a depth) — for the server->AP backhaul
        that is (downlink queue, uplink queue).  O(1) per pipe."""
        return self._a_to_b.queue_depth, self._b_to_a.queue_depth
