"""Discrete-event simulation substrate: engine, medium, wired links."""

from .engine import Event, Simulator
from .medium import Medium, MediumListener, Transmission
from .rng import RngRegistry
from .units import MS, NS, SEC, US, msec, sec, throughput_mbps, to_msec, \
    to_sec, to_usec, transmission_time_ns, usec
from .wired import WiredLink, WiredPipe

__all__ = [
    "Event", "Simulator", "Medium", "MediumListener", "Transmission",
    "RngRegistry", "WiredLink", "WiredPipe",
    "NS", "US", "MS", "SEC", "usec", "msec", "sec",
    "to_usec", "to_msec", "to_sec", "transmission_time_ns",
    "throughput_mbps",
]
