"""Scenario builder: assembles a full simulated WLAN and runs it.

This is the public high-level API most examples, tests and benchmarks
use.  A :class:`ScenarioConfig` describes the paper's experimental
setups declaratively (PHY mode, rate, clients, HACK policy, loss
model, traffic); :func:`run_scenario` wires up the server, wired link,
AP, clients, drivers and flows, runs the event loop, and returns a
:class:`ScenarioResult` with goodputs and all collected statistics.

Beyond the paper's static workloads, ``traffic="dynamic"`` plus an
:class:`~repro.traffic.arrivals.ArrivalSpec` drives the scenario with
flow churn (arrivals, finite transfers, runtime teardown; see
:mod:`repro.traffic`), reported through the result's ``fct`` block,
and ``udp_background_mbps`` adds per-client constant-bit-rate UDP
noise to any TCP workload.

``cells=N`` replicates the whole BSS — AP, wired server/link, clients
and traffic — N times.  Co-channel cells defer to and collide with
each other through the ordinary DCF/EIFS machinery while frame
decoding stays scoped to each cell's own address map; results gain
per-cell blocks (goodput, clean-airtime share, FCT, intra-cell Jain)
plus a cross-cell fairness index.  Cell 1 is wired exactly as the
historical single-BSS topology, so single-cell runs are bit-identical
to what they always were.

``channels=C`` spreads the cells over C independent collision domains
(one :class:`~repro.sim.medium.Medium` each; assignment via
``cell_channel`` or round-robin).  Cells on different channels never
interact, which is what lets :func:`run_scenario`'s ``shard_jobs``
knob hand each channel's cells to its own simulator — serially or
across worker processes — and merge the shard results back into one
:class:`ScenarioResult` (see :mod:`repro.workloads.sharding`); results
gain per-channel blocks either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..adversary import AdversaryConfig, GreedyDcfMac
from ..adversary.runtime import adversary_block, install_adversary
from ..core.driver import HackDriver
from ..core.policies import HackConfig, HackPolicy
from ..mac.dcf import DcfMac
from ..mac.params import MacParams
from ..mac.qdisc import merge_aqm_blocks
from ..mac.rate_control import Aarf
from ..obs import TelemetryConfig, TelemetrySession, chrome_trace, \
    write_chrome_trace
from ..phy.errors import LossModel, NoLoss, SnrLossModel, UniformLossModel
from ..phy.params import PHY_11A, PHY_11N, PhyParams
from ..sim.engine import Simulator
from ..sim.medium import ChannelizedMedium, DEFAULT_CHANNEL, Medium
from ..sim.rng import RngRegistry
from ..sim.units import MS, SEC, msec, sec, throughput_mbps, usec
from ..sim.wired import WiredLink
from ..stats.collectors import MacStats
from ..stats.fairness import goodput_fairness, jain_index
from ..stats.fct import FctAggregator, FctCollector
from ..stats.trace import MediumTracer
from ..traffic.arrivals import ArrivalSpec, build_processes
from ..traffic.manager import CELL_FLOW_ID_STRIDE, \
    DYNAMIC_FLOW_ID_BASE, FlowManager
from ..tcp.flow import TcpFlow, wire_flow
from ..tcp.segment import FiveTuple
from ..nodes.ap import ApNode
from ..nodes.client import ClientNode
from ..nodes.server import ServerNode, UdpSource


@dataclass
class LossSpec:
    """Declarative channel-loss description."""

    kind: str = "none"                 # "none" | "uniform" | "snr"
    data_loss: float = 0.0             # uniform: per-MPDU probability
    control_loss: Optional[float] = None
    per_client: Dict[str, float] = field(default_factory=dict)
    snr_db: float = 30.0               # snr: channel quality
    per_client_snr: Dict[str, float] = field(default_factory=dict)

    def build(self, rng) -> LossModel:
        if self.kind == "none":
            return NoLoss()
        if self.kind == "uniform":
            return UniformLossModel(
                rng, self.data_loss, control_loss=self.control_loss,
                per_receiver=dict(self.per_client))
        if self.kind == "snr":
            return SnrLossModel(
                rng, self.snr_db,
                per_receiver_snr=dict(self.per_client_snr))
        raise ValueError(f"unknown loss kind {self.kind!r}")


@dataclass
class ScenarioConfig:
    """One experiment's worth of configuration."""

    phy_mode: str = "11n"              # "11a" | "11n"
    data_rate_mbps: float = 150.0
    n_clients: int = 1
    #: Co-channel overlapping cells: each cell is a full BSS (AP +
    #: wired server/link + clients + its own traffic) sharing the one
    #: collision domain.  1 = the paper's single-BSS topology.
    cells: int = 1
    #: Per-cell client counts (length ``cells``); None = ``n_clients``
    #: clients in every cell.  A 0 entry builds a silent BSS (AP and
    #: wired plumbing, no stations, no traffic).
    cell_clients: Optional[Tuple[int, ...]] = None
    #: Distinct radio channels the cells are spread over.  Channels do
    #: not share a collision domain (separate
    #: :class:`~repro.sim.medium.Medium` instances), so a multi-channel
    #: scenario factors exactly into independent per-channel shards —
    #: see :mod:`repro.workloads.sharding`.  1 = everything co-channel,
    #: the historical behaviour.
    channels: int = 1
    #: Explicit cell -> channel assignment (length ``cells``, entries
    #: in ``range(channels)``); None = round-robin ``cell % channels``.
    cell_channel: Optional[Tuple[int, ...]] = None
    #: Concurrent TCP flows per client (the AP queue scales with this,
    #: matching the paper's "126 packets per flow" sizing).
    flows_per_client: int = 1
    policy: HackPolicy = HackPolicy.VANILLA
    #: "tcp_download" | "tcp_upload" | "udp_download" | "dynamic"
    #: ("dynamic" = no static flows; ``arrivals`` drives all traffic).
    traffic: str = "tcp_download"
    #: Flow churn: when set, a :class:`~repro.traffic.FlowManager`
    #: creates/tears down finite flows at runtime as this arrival
    #: process dictates (composes with static ``traffic`` modes).
    arrivals: Optional[ArrivalSpec] = None
    #: Constant-bit-rate UDP background noise per client (0 = none);
    #: rides alongside any TCP traffic, static or churn.
    udp_background_mbps: float = 0.0
    seed: int = 1
    duration_ns: int = 3 * SEC
    warmup_ns: int = 1 * SEC
    #: Finite transfer size per flow (None = saturated/unlimited).
    file_bytes: Optional[int] = None
    udp_rate_mbps: float = 200.0
    loss: LossSpec = field(default_factory=LossSpec)
    #: AP transmit-queue bound per client (paper: 126 per flow).
    ap_queue_per_client: int = 126
    mss: int = 1460
    initial_cwnd_segments: int = 2
    initial_ssthresh_bytes: int = 65_535
    stack_delay_ns: int = usec(100)
    delayed_ack: bool = True
    #: Receiver generates SACK blocks; with ``sack_recovery`` the
    #: sender also uses them (simplified RFC 6675).
    generate_sack: bool = False
    sack_recovery: bool = False
    #: Congestion control for every TCP sender: "reno" (the paper-era
    #: default, bit-identical to the historical loop) or "cubic".
    cc: str = "reno"
    #: Pace new segments at ~2*cwnd/SRTT instead of ACK-clocked bursts.
    pacing: bool = False
    #: Queue discipline for every station's per-destination MAC queues:
    #: "droptail", "codel" or "fq_codel" (see repro.mac.qdisc).
    queue_discipline: str = "droptail"
    stagger_ns: int = 200 * MS
    wired_rate_mbps: float = 500.0
    wired_delay_ns: int = 1 * MS
    #: Device quirks (SoRa emulation).
    extra_response_delay_ns: int = 0
    ack_timeout_extra_ns: int = 0
    #: HACK knobs.
    stall_guard_ns: Optional[int] = None
    explicit_timer_ns: Optional[int] = None
    init_vanilla_acks: int = 1
    #: §3.3.2: keep each augmented LL ACK's extra airtime within AIFS
    #: by splitting the compressed-ACK buffer across responses.
    hack_split_to_aifs: bool = False
    #: Override the 4 ms TXOP limit (None keeps the default).
    txop_limit_ns: Optional[int] = msec(4)
    #: Force aggregation on/off (default: on for 11n, off for 11a).
    aggregation: Optional[bool] = None
    #: Rate adaptation: None = fixed at data_rate_mbps; "aarf" = AARF
    #: over the PHY's rate ladder, starting at data_rate_mbps.
    rate_adaptation: Optional[str] = None
    #: Record a frame-level trace of the whole run (ScenarioResult.trace).
    trace: bool = False
    #: Cap on trace records (protects memory on long runs).
    trace_max_records: Optional[int] = 200_000
    #: Streaming FCT statistics: fold each completed churn flow into a
    #: bounded-memory :class:`~repro.stats.fct.FctAggregator` instead
    #: of keeping every :class:`~repro.stats.fct.FctRecord`.  Peak
    #: FCT-record memory becomes independent of flow count (what
    #: million-flow cells inside 200+ cell sweeps need); percentiles
    #: are then histogram-quantised at the aggregator's documented
    #: resolution (~2.3%).  Exact record mode stays the default.
    stream_stats: bool = False
    #: Deterministic fault-injection plan (repro.adversary): a greedy
    #: CW-cheating station, a jammer, or an on-air compressed-ACK
    #: mutator.  None — and any plan with intensity 0 — installs
    #: nothing and runs bit-identical to the cooperative scenario.
    #: Part of the config on purpose: sweep cache signatures, sharding
    #: and replay treat attacked points like any other point.
    adversary: Optional[AdversaryConfig] = None

    @property
    def phy(self) -> PhyParams:
        return PHY_11A if self.phy_mode == "11a" else PHY_11N

    @property
    def use_aggregation(self) -> bool:
        if self.aggregation is not None:
            return self.aggregation
        return self.phy_mode == "11n"

    def client_names(self) -> List[str]:
        return [f"C{i + 1}" for i in range(self.n_clients)]

    # -- multi-cell helpers -------------------------------------------
    def validate_cells(self) -> None:
        if self.cells < 1:
            raise ValueError(f"cells must be >= 1, got {self.cells}")
        if self.cell_clients is not None:
            if len(self.cell_clients) != self.cells:
                raise ValueError(
                    f"cell_clients has {len(self.cell_clients)} "
                    f"entries for {self.cells} cells")
            if any(n < 0 for n in self.cell_clients):
                raise ValueError("cell_clients entries must be >= 0")
        if self.channels < 1:
            raise ValueError(
                f"channels must be >= 1, got {self.channels}")
        if self.cell_channel is not None:
            if len(self.cell_channel) != self.cells:
                raise ValueError(
                    f"cell_channel has {len(self.cell_channel)} "
                    f"entries for {self.cells} cells")
            bad = [c for c in self.cell_channel
                   if not 0 <= c < self.channels]
            if bad:
                raise ValueError(
                    f"cell_channel entries {bad} outside "
                    f"range({self.channels})")
        if self.adversary is not None:
            self.adversary.validate()

    def clients_in_cell(self, cell: int) -> int:
        if self.cell_clients is not None:
            return self.cell_clients[cell]
        return self.n_clients

    def cell_label(self, cell: int) -> str:
        """Stable metrics key for one cell ("cell1" is the legacy BSS)."""
        return f"cell{cell + 1}"

    def cell_ap_name(self, cell: int) -> str:
        """Cell 0 keeps the historical "AP" (bit-identity); later
        cells get globally unique addresses ("AP2", "AP3", ...)."""
        return "AP" if cell == 0 else f"AP{cell + 1}"

    def cell_client_names(self, cell: int) -> List[str]:
        """Station addresses are unique across the whole channel:
        cell 0 keeps "C1".."Cn", cell k (k >= 1) gets "C1.<k+1>"..."""
        count = self.clients_in_cell(cell)
        if cell == 0:
            return [f"C{i + 1}" for i in range(count)]
        return [f"C{i + 1}.{cell + 1}" for i in range(count)]

    def cell_ip_prefix(self, cell: int) -> str:
        """Each cell's wired island gets its own /16 ("10.<cell>")."""
        return f"10.{cell}"

    # -- multi-channel helpers ----------------------------------------
    def channel_of(self, cell: int) -> int:
        """The channel cell ``cell`` radiates on (explicit assignment
        or round-robin)."""
        if self.cell_channel is not None:
            return self.cell_channel[cell]
        return cell % self.channels

    def ordered_channels(self, cell_indices=None) -> Tuple[int, ...]:
        """Distinct channels of the given cells (default: all cells),
        in first-appearance order over ascending cell index."""
        if cell_indices is None:
            cell_indices = range(self.cells)
        seen: Dict[int, None] = {}
        for cell in cell_indices:
            seen.setdefault(self.channel_of(cell), None)
        return tuple(seen)

    # -- global id layout (shard-stable by construction) --------------
    # Flow ids, UDP pseudo-flow ids and wired /16s are all computed
    # from the *global* cell index rather than from per-run counters,
    # so a shard rebuilding a subset of cells mints exactly the ids
    # the unsharded run would have given those cells.
    def static_flow_count(self, cell: int) -> int:
        """TCP flow ids one cell's static traffic consumes."""
        if self.traffic in ("dynamic", "udp_download"):
            return 0
        return self.clients_in_cell(cell) * max(1, self.flows_per_client)

    def static_flow_id_base(self, cell: int) -> int:
        """First static flow id of one cell (ids start at 1 and run in
        cell order, exactly as the historical global counter did)."""
        return 1 + sum(self.static_flow_count(j) for j in range(cell))

    def udp_sink_count(self, cell: int) -> int:
        """``udp_download`` sinks one cell contributes."""
        if self.traffic != "udp_download":
            return 0
        return self.clients_in_cell(cell)

    def udp_index_base(self, cell: int) -> int:
        """First global UDP-sink index of one cell (sink *i* reports
        under pseudo-flow id ``-(i + 1)``)."""
        return sum(self.udp_sink_count(j) for j in range(cell))


@dataclass
class ScenarioResult:
    """Everything a benchmark needs to print a paper table/figure row."""

    config: ScenarioConfig
    per_flow_goodput_mbps: Dict[int, float]
    mac_stats: MacStats
    driver_stats: Dict[str, Any]
    decomp_counters: Dict[str, int]
    medium_frames_sent: int
    medium_frames_collided: int
    medium_utilisation: float
    flows: List[TcpFlow] = field(default_factory=list)
    completion_times_ns: Dict[int, Optional[int]] = field(
        default_factory=dict)
    sender_counters: Dict[int, Dict[str, int]] = field(
        default_factory=dict)
    clients: Dict[str, Any] = field(default_factory=dict)
    drivers: Dict[str, Any] = field(default_factory=dict)
    trace: Optional[MediumTracer] = None
    #: Event-kernel counters for this run (see ``SimStats.as_dict``).
    kernel_stats: Dict[str, int] = field(default_factory=dict)
    #: ROHC robustness/containment counters (``metrics_dict()["rohc"]``)
    #: summed across drivers — desyncs, recoveries, aborted frames,
    #: chain repairs.  All zero in cooperative runs.
    rohc_counters: Dict[str, int] = field(default_factory=dict)
    #: Queue-discipline block (``metrics_dict()["aqm"]``) merged over
    #: every station's MAC queues — AQM drops, marks, and delivered-
    #: packet sojourn percentiles (see ``repro.mac.qdisc``).
    aqm_counters: Dict[str, Any] = field(default_factory=dict)
    #: The ``metrics_dict()["adversary"]`` block — present exactly when
    #: ``config.adversary`` is set (zeroed counters for inert plans).
    adversary_counters: Optional[Dict[str, Any]] = None
    #: Flow-churn results (``FctCollector.summary``); None for
    #: scenarios without an arrival process.
    fct: Optional[Dict[str, Any]] = None
    #: Measured CBR background noise per client (empty when the
    #: ``udp_background_mbps`` knob is off).  Deliberately separate
    #: from ``per_flow_goodput_mbps``: noise must not inflate the
    #: workload's aggregate goodput.
    udp_background_goodput_mbps: Dict[str, float] = field(
        default_factory=dict)
    #: The live FlowManager (in-process consumers/tests; not metrics).
    #: Multi-cell runs keep cell 1's here; see ``traffic_managers``.
    traffic_manager: Optional[FlowManager] = None
    #: Per-cell result blocks (plain data; one per cell, "cell1"
    #: first).  Single-cell runs have exactly one block.
    cell_blocks: List[Dict[str, Any]] = field(default_factory=list)
    #: One FlowManager per cell (None where the cell has no arrivals).
    traffic_managers: List[Optional[FlowManager]] = field(
        default_factory=list)
    #: Per-channel result blocks (plain data; one per channel used, in
    #: first-appearance order).  Single-channel runs have exactly one.
    channel_blocks: List[Dict[str, Any]] = field(default_factory=list)
    #: Precomputed ``metrics_dict()["drivers"]`` payload.  Set on
    #: results merged from shards (whose live driver objects never
    #: cross the process boundary); None means "read ``drivers``".
    driver_metrics: Optional[Dict[str, Dict[str, int]]] = None
    #: How this result was executed when it came from the shard
    #: pipeline (plan + per-shard wall clock; not part of metrics).
    #: None for ordinary single-simulator runs.
    shard_info: Optional[Dict[str, Any]] = None
    #: The live per-cell nets, in build order (in-process consumers —
    #: the shard pipeline reads per-cell flow ordering off these).
    cell_nets: List[Any] = field(default_factory=list, repr=False)
    #: The ``metrics_dict()["telemetry"]`` block — present only when
    #: the run was executed with ``telemetry=TelemetryConfig(...)``
    #: (an execution knob: never in ScenarioConfig, never in sweep
    #: cache signatures).  Everything here is deterministic except the
    #: ``"spans"`` sub-block (host wall times).
    telemetry: Optional[Dict[str, Any]] = None
    #: Per-shard kernel/telemetry blocks (``metrics_dict()["shards"]``)
    #: for results merged from the shard pipeline: one entry per shard
    #: in plan order, each ``{channel, cells, kernel_stats,
    #: telemetry}``.  Replaces the old summed ``kernel_stats`` (the
    #: merged result's own ``kernel_stats`` is ``{}`` — summing
    #: counters across independent simulators was never meaningful).
    shard_blocks: Optional[List[Dict[str, Any]]] = None
    #: The live TelemetrySession (in-process consumers/tests; not
    #: metrics).  None for shard-merged results.
    telemetry_session: Optional[Any] = field(default=None, repr=False)

    @property
    def aggregate_goodput_mbps(self) -> float:
        return sum(self.per_flow_goodput_mbps.values())

    @property
    def fairness_index(self) -> float:
        """Jain's index over TCP flows (paper §4.2: 'both are fair')."""
        return goodput_fairness(self.per_flow_goodput_mbps)

    @property
    def cell_fairness_index(self) -> float:
        """Jain's index over per-cell carried traffic (static goodput
        plus churn carried load) — how evenly co-channel cells share
        the medium.  1.0 for a single cell by construction."""
        return jain_index(block["carried_mbps"]
                          for block in self.cell_blocks)

    def metrics_dict(self) -> Dict[str, Any]:
        """Full JSON-able flattening of this run (one sweep record).

        This is the superset every experiment harness reads from;
        keeping it plain data is what makes results picklable,
        cacheable and identical across serial and parallel execution
        (all dict keys are strings so a JSON round-trip is lossless).
        """
        if self.driver_metrics is not None:
            drivers = {name: dict(stats)
                       for name, stats in self.driver_metrics.items()}
        else:
            drivers = driver_metrics_dict(self.drivers)
        out = {
            "aggregate_goodput_mbps": self.aggregate_goodput_mbps,
            "per_flow_goodput_mbps": {
                str(k): v
                for k, v in self.per_flow_goodput_mbps.items()},
            "fairness_index": self.fairness_index,
            "medium_frames_sent": self.medium_frames_sent,
            "medium_frames_collided": self.medium_frames_collided,
            "medium_utilisation": self.medium_utilisation,
            "decompressor": dict(self.decomp_counters),
            "sender_counters": {
                str(k): dict(v)
                for k, v in self.sender_counters.items()},
            "completion_times_ns": {
                str(k): v
                for k, v in self.completion_times_ns.items()},
            "hack_fit_fraction": self.mac_stats.hack_fit_fraction(),
            "retry_table": {dst: dict(data) for dst, data
                            in self.mac_stats.retry_table().items()},
            "time_breakdown_ms": self.mac_stats.time_breakdown_ms(),
            "drivers": drivers,
            "kernel_stats": dict(self.kernel_stats),
            "fct": self.fct,
            "udp_background_goodput_mbps":
                dict(self.udp_background_goodput_mbps),
            "cells": [dict(block) for block in self.cell_blocks],
            "cell_fairness_index": self.cell_fairness_index,
            "channels": [dict(block) for block in self.channel_blocks],
            "rohc": dict(self.rohc_counters),
            "aqm": dict(self.aqm_counters),
        }
        # Conditional keys: absent unless the run opted in, so every
        # telemetry-off metrics dict (golden rows, cached sweep
        # records) keeps its historical shape bit-for-bit.
        if self.telemetry is not None:
            out["telemetry"] = dict(self.telemetry)
        if self.shard_blocks is not None:
            out["shards"] = [dict(block) for block in self.shard_blocks]
        if self.adversary_counters is not None:
            out["adversary"] = dict(self.adversary_counters)
        return out

    def summary_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary (config block + headline metrics)."""
        metrics = self.metrics_dict()
        return {
            "config": {
                "phy_mode": self.config.phy_mode,
                "data_rate_mbps": self.config.data_rate_mbps,
                "n_clients": self.config.n_clients,
                "cells": self.config.cells,
                "flows_per_client": self.config.flows_per_client,
                "policy": self.config.policy.value,
                "traffic": self.config.traffic,
                "seed": self.config.seed,
                "loss": self.config.loss.kind,
                "rate_adaptation": self.config.rate_adaptation,
            },
            "aggregate_goodput_mbps":
                metrics["aggregate_goodput_mbps"],
            "per_flow_goodput_mbps": dict(self.per_flow_goodput_mbps),
            "fairness_index": metrics["fairness_index"],
            "medium_frames_sent": metrics["medium_frames_sent"],
            "medium_frames_collided":
                metrics["medium_frames_collided"],
            "medium_utilisation": metrics["medium_utilisation"],
            "decompressor": metrics["decompressor"],
            "tcp": metrics["sender_counters"],
            "hack_fit_fraction": metrics["hack_fit_fraction"],
        }


def _hack_config(cfg: ScenarioConfig) -> HackConfig:
    base = HackConfig.for_policy(cfg.policy)
    if cfg.stall_guard_ns is not None:
        base.stall_guard_ns = cfg.stall_guard_ns
    if cfg.explicit_timer_ns is not None:
        base.flush_after_ns = cfg.explicit_timer_ns
    base.init_vanilla_acks = cfg.init_vanilla_acks
    base.split_to_aifs = cfg.hack_split_to_aifs
    return base


class _CellNet:
    """One BSS's live objects while a scenario is being built/run."""

    __slots__ = ("index", "ap_name", "client_names", "server", "ap",
                 "clients", "drivers", "flows", "udp_names",
                 "background_names", "flow_manager")

    def __init__(self, index: int, ap_name: str,
                 client_names: List[str]):
        self.index = index
        self.ap_name = ap_name
        self.client_names = client_names
        self.server: Optional[ServerNode] = None
        self.ap: Optional[ApNode] = None
        self.clients: Dict[str, ClientNode] = {}
        self.drivers: Dict[str, HackDriver] = {}
        self.flows: List[TcpFlow] = []
        self.udp_names: List[str] = []          # udp_download sinks
        self.background_names: List[str] = []   # CBR noise sinks
        self.flow_manager: Optional[FlowManager] = None


def driver_metrics_dict(
        drivers: Dict[str, HackDriver]) -> Dict[str, Dict[str, int]]:
    """The ``metrics_dict()["drivers"]`` payload from live drivers.

    Shared with the shard pipeline, which flattens each shard's
    drivers to plain data before crossing the process boundary."""
    out: Dict[str, Dict[str, int]] = {}
    for name, driver in drivers.items():
        stats = driver.stats
        out[name] = {
            "vanilla_acks_sent": stats.vanilla_acks_sent,
            "vanilla_ack_bytes": stats.vanilla_ack_bytes,
            "hack_frames_attached": stats.hack_frames_attached,
            "hack_frame_bytes": stats.hack_frame_bytes,
            "compressed_acks": driver.compressed_acks,
            "compressed_bytes": driver.compressed_bytes,
        }
    return out


def _validate_traffic(cfg: ScenarioConfig) -> None:
    """Traffic-shape validation (shared by every cell)."""
    if cfg.traffic not in ("tcp_download", "tcp_upload",
                           "udp_download", "dynamic"):
        raise ValueError(f"unknown traffic {cfg.traffic!r}")
    if cfg.traffic == "dynamic" and cfg.arrivals is None:
        raise ValueError(
            "traffic='dynamic' requires an ArrivalSpec in cfg.arrivals")
    if cfg.udp_background_mbps > 0 and cfg.traffic == "udp_download":
        raise ValueError("udp_background_mbps composes with TCP "
                         "traffic; use udp_rate_mbps for udp_download")


def _loss_stream_name(channel: int) -> str:
    """Channel 0 keeps the historical "phy-loss" stream (bit-identity
    for every single-channel scenario); other channels draw from their
    own stream so no channel's losses perturb another's — and so a
    shard rebuilding one channel reproduces its draws exactly
    (RngRegistry streams are name-derived, not creation-order)."""
    if channel == DEFAULT_CHANNEL:
        return "phy-loss"
    return f"channel{channel}:phy-loss"


class CellBuilder:
    """Builds one cell's BSS — nodes, wiring and traffic — into a
    shared simulator, accumulating the run-wide collections.

    Everything id-like (station addresses, wired /16s, static flow
    ids, UDP pseudo-flow ids, RNG stream names) derives from the
    *global* cell index, never from build-order counters.  Building
    cells 0..N-1 in one simulator and building any subset of them in a
    fresh simulator therefore mint identical ids and draw identical
    random streams — the property the channel-shard pipeline
    (:mod:`repro.workloads.sharding`) rests on.
    """

    def __init__(self, cfg: ScenarioConfig, sim: Simulator,
                 rngs: RngRegistry, mac_stats: MacStats):
        self.cfg = cfg
        self.sim = sim
        self.rngs = rngs
        self.mac_stats = mac_stats
        # Run-wide collections, in build order.
        self.cells: List[_CellNet] = []
        self.flows: List[TcpFlow] = []
        self.udp_sources: List[tuple] = []  # (pseudo id, name, source)
        self.udp_background: List[tuple] = []   # (name, source)
        self.clients: Dict[str, ClientNode] = {}
        self.drivers: Dict[str, HackDriver] = {}
        # Active greedy plan: which station addresses cheat (the first
        # N clients of global cell 0) and the cheaters actually built.
        adv = cfg.adversary
        self.greedy_names = frozenset()
        if adv is not None and adv.active and adv.kind == "greedy":
            names = cfg.cell_client_names(0)
            self.greedy_names = frozenset(
                names[:adv.greedy_stations])
        self.greedy_macs: List[GreedyDcfMac] = []

    def make_mac(self, address: str, queue_limit: Optional[int],
                 cell: int, medium: Medium,
                 loss_model: LossModel) -> DcfMac:
        cfg = self.cfg
        phy = cfg.phy
        params = MacParams(
            data_rate_mbps=cfg.data_rate_mbps,
            aggregation=cfg.use_aggregation,
            queue_limit=queue_limit,
            queue_discipline=cfg.queue_discipline,
            extra_response_delay_ns=cfg.extra_response_delay_ns,
            ack_timeout_extra_ns=cfg.ack_timeout_extra_ns,
            txop_limit_ns=cfg.txop_limit_ns)
        factory = None
        if cfg.rate_adaptation == "aarf":
            def factory():
                return Aarf(phy.data_rates,
                            initial_rate=cfg.data_rate_mbps)
        elif cfg.rate_adaptation is not None:
            raise ValueError(
                f"unknown rate_adaptation {cfg.rate_adaptation!r}")
        if address in self.greedy_names:
            mac = GreedyDcfMac(
                self.sim, medium, phy, address, params,
                self.rngs.stream(f"mac-{address}"),
                stats=self.mac_stats, loss_model=loss_model,
                rate_control_factory=factory, cell=cell,
                cheat=cfg.adversary.intensity)
            self.greedy_macs.append(mac)
            return mac
        return DcfMac(self.sim, medium, phy, address, params,
                      self.rngs.stream(f"mac-{address}"),
                      stats=self.mac_stats, loss_model=loss_model,
                      rate_control_factory=factory, cell=cell)

    def build(self, cell_index: int, medium: Medium,
              loss_model: LossModel) -> _CellNet:
        """Wire one cell (global index) onto its channel's medium."""
        cfg = self.cfg
        sim = self.sim
        net = _CellNet(cell_index, cfg.cell_ap_name(cell_index),
                       cfg.cell_client_names(cell_index))
        self.cells.append(net)

        # --- Nodes ---------------------------------------------------
        ap_mac = self.make_mac(
            net.ap_name,
            cfg.ap_queue_per_client * max(1, cfg.flows_per_client),
            cell_index, medium, loss_model)
        ap_driver = HackDriver(sim, ap_mac, _hack_config(cfg))
        ap = ApNode(sim, ap_driver, name=net.ap_name)
        net.ap = ap

        server = ServerNode(sim)
        link = WiredLink(sim, server, ap, cfg.wired_rate_mbps,
                         cfg.wired_delay_ns)
        server.attach_link(link)
        ap.attach_link(link)
        net.server = server
        net.drivers[net.ap_name] = ap_driver
        self.drivers[net.ap_name] = ap_driver

        for name in net.client_names:
            mac = self.make_mac(name, None, cell_index, medium,
                                loss_model)
            driver = HackDriver(sim, mac, _hack_config(cfg))
            client = ClientNode(sim, driver, name,
                                ap_name=net.ap_name,
                                stack_delay_ns=cfg.stack_delay_ns)
            net.clients[name] = client
            self.clients[name] = client
            net.drivers[name] = driver
            self.drivers[name] = driver

        self._build_static_traffic(net, server)
        self._build_churn(net)
        self._build_background(net, server)
        return net

    def _build_static_traffic(self, net: _CellNet,
                              server: ServerNode) -> None:
        cfg = self.cfg
        sim = self.sim
        ip = cfg.cell_ip_prefix(net.index)
        flow_specs = []
        if cfg.traffic != "dynamic":
            for index, name in enumerate(net.client_names):
                if cfg.traffic == "udp_download":
                    flow_specs.append((index, name, 0))
                else:
                    for sub in range(max(1, cfg.flows_per_client)):
                        flow_specs.append((index, name, sub))
        next_flow_id = cfg.static_flow_id_base(net.index)
        for spec_index, (index, name, sub) in enumerate(flow_specs):
            # Staggered starts are cell-local: each cell's operator
            # spaces their own flows, so co-channel cells ramp up
            # concurrently (that concurrency is the point).
            start_at = spec_index * cfg.stagger_ns
            if cfg.traffic == "udp_download":
                source = UdpSource(sim, server, name,
                                   cfg.udp_rate_mbps)
                pseudo_id = -(cfg.udp_index_base(net.index)
                              + len(net.udp_names) + 1)
                self.udp_sources.append((pseudo_id, name, source))
                net.udp_names.append(name)
                sim.schedule(start_at, source.start)
                continue
            flow_id = next_flow_id
            next_flow_id += 1
            tuple_down = FiveTuple(f"{ip}.0.1", f"{ip}.1.{index + 1}",
                                   5000 + flow_id, 80)
            direction = "download" if cfg.traffic == "tcp_download" \
                else "upload"
            flow = wire_flow(
                sim, flow_id, tuple_down, direction, server,
                net.clients[name], name, total_bytes=cfg.file_bytes,
                mss=cfg.mss,
                initial_cwnd_segments=cfg.initial_cwnd_segments,
                initial_ssthresh_bytes=cfg.initial_ssthresh_bytes,
                delayed_ack=cfg.delayed_ack,
                generate_sack=cfg.generate_sack,
                sack_recovery=cfg.sack_recovery,
                cc=cfg.cc, pacing=cfg.pacing)
            sender = flow.sender
            self.flows.append(flow)
            net.flows.append(flow)

            def _start(s=sender, f=flow):
                f.started_at = sim.now
                s.start()

            def _done(f=flow):
                f.completed_at = sim.now

            sender.on_complete = _done
            sim.schedule(start_at, _start)

    def _build_churn(self, net: _CellNet) -> None:
        cfg = self.cfg
        sim = self.sim
        if cfg.arrivals is None or not net.client_names:
            return
        net.flow_manager = FlowManager(
            sim, net.server, net.clients, net.client_names,
            net.drivers,
            FctAggregator() if cfg.stream_stats else FctCollector(),
            direction=cfg.arrivals.direction, mss=cfg.mss,
            initial_cwnd_segments=cfg.initial_cwnd_segments,
            initial_ssthresh_bytes=cfg.initial_ssthresh_bytes,
            delayed_ack=cfg.delayed_ack,
            generate_sack=cfg.generate_sack,
            sack_recovery=cfg.sack_recovery,
            cc=cfg.cc, pacing=cfg.pacing,
            ap_name=net.ap_name,
            flow_id_base=DYNAMIC_FLOW_ID_BASE
            + net.index * CELL_FLOW_ID_STRIDE,
            ip_prefix=cfg.cell_ip_prefix(net.index))
        # Cell 1 draws from the historical "traffic:*" streams; later
        # cells get their own "cell<k>:traffic:*" namespace so no
        # cell's arrivals can perturb another's draws.
        cell_rngs = self.rngs if net.index == 0 else \
            self.rngs.namespace(cfg.cell_label(net.index))
        for process in build_processes(sim, cfg.arrivals,
                                       net.flow_manager.spawn,
                                       net.client_names,
                                       cell_rngs):
            sim.schedule(cfg.arrivals.start_ns, process.start)

    def _build_background(self, net: _CellNet,
                          server: ServerNode) -> None:
        # Kept out of ``udp_sources``/``per_flow``: noise is
        # environment, not workload — it must not inflate aggregate
        # goodput the way ``udp_download``'s sinks (the measured
        # traffic) legitimately do.
        cfg = self.cfg
        if cfg.udp_background_mbps <= 0:
            return
        for name in net.client_names:
            source = UdpSource(self.sim, server, name,
                               cfg.udp_background_mbps)
            self.udp_background.append((name, source))
            net.background_names.append(name)
            self.sim.schedule(0, source.start)


def run_scenario(cfg: ScenarioConfig,
                 shard_jobs: Optional[int] = None,
                 telemetry: Optional[TelemetryConfig] = None
                 ) -> ScenarioResult:
    """Build the WLAN(s) described by ``cfg``, run, collect results.

    With ``cells=1`` (the default) this wires the paper's single-BSS
    topology exactly as it always did; ``cells=N`` repeats the whole
    wiring per cell (see the module docstring), spreading the cells
    over ``cfg.channels`` independent collision domains.

    ``shard_jobs`` opts a multi-channel config into the channel-shard
    pipeline (:mod:`repro.workloads.sharding`): cells are partitioned
    by channel into independent simulators — ``1`` runs the shards
    serially in-process, ``N > 1`` fans them over a process pool — and
    the shard results are merged into one :class:`ScenarioResult`.
    ``None`` (the default) runs everything in a single simulator
    regardless of channel count.  Merged metrics are identical to the
    single-simulator run, with the merged ``kernel_stats`` empty and
    the per-shard kernel counters carried under ``metrics_dict()
    ["shards"]`` instead.

    ``telemetry`` (a :class:`~repro.obs.TelemetryConfig`) turns on the
    observability layer — kernel span timing, the periodic time-series
    sampler, the metrics registry and the optional JSONL / Chrome-trace
    artifacts.  Like ``shard_jobs`` it is an execution knob: it never
    enters ``ScenarioConfig``, sweep cache signatures or golden rows,
    and every scenario metric except ``kernel_stats`` stays
    bit-identical to a telemetry-off run.
    """
    cfg.validate_cells()
    _validate_traffic(cfg)
    if shard_jobs is not None:
        from .sharding import ShardPlan, run_sharded
        plan = ShardPlan.from_config(cfg)
        if plan.shard_count > 1:
            return run_sharded(cfg, plan, shard_jobs,
                               telemetry=telemetry)
    return _run_cells(cfg, tuple(range(cfg.cells)),
                      telemetry=telemetry)


def _run_cells(cfg: ScenarioConfig, cell_indices: Tuple[int, ...],
               telemetry: Optional[TelemetryConfig] = None
               ) -> ScenarioResult:
    """Build and run the given cells (global indices) in one simulator.

    Called with every cell for ordinary runs, or with one channel's
    cells for a shard.  Single-channel full runs take the exact
    historical construction order (bit-identity with the pre-channel
    code path)."""
    sim = Simulator()
    rngs = RngRegistry(cfg.seed)
    channels = cfg.ordered_channels(cell_indices)
    media = ChannelizedMedium(sim)
    loss_models: Dict[int, LossModel] = {}
    for channel in channels:
        loss_models[channel] = cfg.loss.build(
            rngs.stream(_loss_stream_name(channel)))
        media.add_channel(channel, loss_models[channel])
    # One tracer serves both cfg.trace (the result's in-process trace)
    # and the telemetry layer's Chrome-trace export; the channelized
    # tracer tags every record with its channel id.
    want_export_trace = (telemetry is not None
                         and telemetry.trace_export_path is not None)
    tracer = None
    if cfg.trace:
        tracer = MediumTracer(media, cfg.trace_max_records)
    elif want_export_trace:
        tracer = MediumTracer(media, telemetry.trace_max_records)
    mac_stats = MacStats()

    builder = CellBuilder(cfg, sim, rngs, mac_stats)
    for cell_index in cell_indices:
        channel = cfg.channel_of(cell_index)
        builder.build(cell_index, media.medium(channel),
                      loss_models[channel])

    cells = builder.cells
    flows = builder.flows
    clients = builder.clients
    drivers = builder.drivers

    # Adversarial actors (inactive plans install nothing at all, so
    # zero-intensity runs stay bit-identical to adversary=None runs;
    # greedy stations were already substituted at MAC build time).
    adversary_runtime = install_adversary(
        cfg.adversary, sim, rngs, media, channels, cfg.duration_ns)
    if adversary_runtime is not None:
        adversary_runtime.greedy_macs = builder.greedy_macs

    session: Optional[TelemetrySession] = None
    if telemetry is not None:
        session = TelemetrySession(cfg, telemetry, sim, media,
                                   channels, cells)
        session.start()

    # --- Measurement windows -----------------------------------------
    def snapshot_all() -> None:
        for flow in flows:
            flow.snapshot(sim.now)
        for client in clients.values():
            client.snapshot_udp()

    sim.schedule(cfg.warmup_ns, snapshot_all)
    sim.schedule(cfg.duration_ns, snapshot_all, priority=10)

    sim.run(until=cfg.duration_ns + 1)

    telemetry_block: Optional[Dict[str, Any]] = None
    if session is not None:
        telemetry_block = session.finish()
        if want_export_trace:
            document = chrome_trace(
                frames=tracer.records if tracer is not None else (),
                spans=(session.instrument.spans
                       if session.instrument is not None else ()),
                samples=session.samples,
                meta=session.meta())
            write_chrome_trace(telemetry.trace_export_path, document)

    # --- Results -------------------------------------------------------
    per_flow: Dict[int, float] = {}
    completion: Dict[int, Optional[int]] = {}
    sender_counters: Dict[int, Dict[str, int]] = {}
    for flow in flows:
        if cfg.file_bytes is not None and flow.completed_at is not None:
            duration = flow.completed_at - (flow.started_at or 0)
            per_flow[flow.flow_id] = throughput_mbps(cfg.file_bytes,
                                                     duration)
        else:
            per_flow[flow.flow_id] = flow.stats.goodput_mbps(
                cfg.warmup_ns, cfg.duration_ns)
        completion[flow.flow_id] = flow.completion_time_ns()
        sender_counters[flow.flow_id] = {
            "timeouts": flow.sender.timeouts,
            "fast_retransmits": flow.sender.fast_retransmits,
            "retransmits": flow.sender.retransmits,
            "segments_sent": flow.sender.segments_sent,
        }

    def sink_mbps(name: str) -> Optional[float]:
        snaps = clients[name].udp_snapshots
        if len(snaps) < 2:
            return None
        (t0, b0), (t1, b1) = snaps[0], snaps[-1]
        return throughput_mbps(b1 - b0, t1 - t0)

    udp_ids: Dict[int, str] = {}        # pseudo-flow id -> client
    for pseudo_id, name, source in builder.udp_sources:
        mbps = sink_mbps(name)
        if mbps is not None:
            per_flow[pseudo_id] = mbps
            udp_ids[pseudo_id] = name

    background_mbps: Dict[str, float] = {}
    for name, source in builder.udp_background:
        mbps = sink_mbps(name)
        if mbps is not None:
            background_mbps[name] = mbps

    for net in cells:
        if net.flow_manager is not None:
            net.flow_manager.finalize()

    fct_summary: Optional[Dict[str, Any]] = None
    managers = [net.flow_manager for net in cells
                if net.flow_manager is not None]
    if len(managers) == 1:
        fct_summary = managers[0].collector.summary(cfg.duration_ns)
    elif managers:
        merged = type(managers[0].collector)()
        for manager in managers:
            merged.merge(manager.collector)
        fct_summary = merged.summary(cfg.duration_ns)

    decomp: Dict[str, int] = {
        "acks_reconstructed": 0, "crc_failures": 0, "unknown_cid": 0,
        "duplicates_skipped": 0, "damaged_skips": 0, "parse_errors": 0}
    for driver in drivers.values():
        for key, value in driver.decompressor_counters().items():
            decomp[key] += value

    rohc: Dict[str, int] = dict.fromkeys(
        HackDriver.ROHC_ROBUSTNESS_KEYS, 0)
    for driver in drivers.values():
        for key, value in driver.rohc_robustness_counters().items():
            rohc[key] = rohc.get(key, 0) + value

    adversary_counters = None
    if cfg.adversary is not None:
        adversary_counters = adversary_block(cfg.adversary,
                                             adversary_runtime)

    aqm = merge_aqm_blocks(driver.mac.aqm_stats()
                           for driver in drivers.values())

    cell_blocks = [
        _cell_block(cfg, net, media.medium(cfg.channel_of(net.index)),
                    per_flow, udp_ids, background_mbps)
        for net in cells]
    channel_blocks = [
        _channel_block(cfg, media.medium(channel), cell_indices)
        for channel in channels]

    return ScenarioResult(
        config=cfg,
        per_flow_goodput_mbps=per_flow,
        mac_stats=mac_stats,
        driver_stats={name: d.stats for name, d in drivers.items()},
        decomp_counters=decomp,
        medium_frames_sent=media.frames_sent,
        medium_frames_collided=media.frames_collided,
        medium_utilisation=media.utilisation(cfg.duration_ns),
        flows=flows,
        completion_times_ns=completion,
        sender_counters=sender_counters,
        clients=clients,
        drivers=drivers,
        trace=tracer if cfg.trace else None,
        kernel_stats=sim.stats.as_dict(),
        rohc_counters=rohc,
        aqm_counters=aqm,
        adversary_counters=adversary_counters,
        fct=fct_summary,
        traffic_manager=cells[0].flow_manager,
        traffic_managers=[net.flow_manager for net in cells],
        udp_background_goodput_mbps=background_mbps,
        cell_blocks=cell_blocks,
        channel_blocks=channel_blocks,
        cell_nets=cells,
        telemetry=telemetry_block,
        telemetry_session=session,
    )


def _channel_block(cfg: ScenarioConfig, medium: Medium,
                   cell_indices: Tuple[int, ...]) -> Dict[str, Any]:
    """One channel's JSON-able block (``metrics_dict()["channels"]``).

    Deliberately free of cell membership (each cell block already
    carries its "channel" key), so a silent extra cell changes no
    channel block.  ``airtime_share_sum`` is the per-channel invariant
    the multi-cell accounting guarantees to stay <= 1."""
    channel = medium.channel
    share_sum = sum(
        medium.cell_airtime_share(cell, cfg.duration_ns)
        for cell in cell_indices if cfg.channel_of(cell) == channel)
    return {
        "channel": channel,
        "utilisation": medium.utilisation(cfg.duration_ns),
        "frames_sent": medium.frames_sent,
        "frames_collided": medium.frames_collided,
        "airtime_share_sum": share_sum,
    }


def _cell_block(cfg: ScenarioConfig, net: _CellNet, medium: Medium,
                per_flow: Dict[int, float], udp_ids: Dict[int, str],
                background_mbps: Dict[str, float]) -> Dict[str, Any]:
    """One cell's JSON-able metrics block (``metrics_dict()["cells"]``)."""
    cell_flow: Dict[int, float] = {
        flow.flow_id: per_flow[flow.flow_id]
        for flow in net.flows if flow.flow_id in per_flow}
    for pseudo_id, name in udp_ids.items():
        if name in net.udp_names:
            cell_flow[pseudo_id] = per_flow[pseudo_id]
    aggregate = sum(cell_flow.values())
    fct: Optional[Dict[str, Any]] = None
    carried = aggregate
    if net.flow_manager is not None:
        fct = net.flow_manager.collector.summary(
            cfg.duration_ns, include_flows=False)
        carried += fct["carried_load_mbps"]
    stats = medium.cell_stats(net.index)
    return {
        "label": cfg.cell_label(net.index),
        "ap": net.ap_name,
        "clients": list(net.client_names),
        "channel": cfg.channel_of(net.index),
        "aggregate_goodput_mbps": aggregate,
        "per_flow_goodput_mbps": {
            str(k): v for k, v in cell_flow.items()},
        "fairness_index": goodput_fairness(cell_flow),
        # Static goodput + churn carried load: the cross-cell fairness
        # basis (covers pure-churn cells whose static aggregate is 0).
        "carried_mbps": carried,
        "airtime_share": medium.cell_airtime_share(
            net.index, cfg.duration_ns),
        "frames_sent": stats["frames_sent"],
        "frames_collided": stats["frames_collided"],
        "fct": fct,
        "udp_background_goodput_mbps": {
            name: background_mbps[name]
            for name in net.background_names
            if name in background_mbps},
    }
