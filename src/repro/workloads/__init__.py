"""Workloads and the high-level scenario builder."""

from .scenarios import LossSpec, ScenarioConfig, ScenarioResult, \
    run_scenario

__all__ = ["ScenarioConfig", "ScenarioResult", "LossSpec",
           "run_scenario"]
