"""Workloads: the high-level scenario builder + named registry."""

from .scenarios import LossSpec, ScenarioConfig, ScenarioResult, \
    run_scenario
from . import registry
from .registry import UnknownScenarioError

__all__ = ["ScenarioConfig", "ScenarioResult", "LossSpec",
           "run_scenario", "registry", "UnknownScenarioError"]
