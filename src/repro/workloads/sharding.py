"""Channel sharding: plan -> shard -> merge for city-scale scenarios.

Cells on different channels share nothing — not carrier sense, not
collisions, not loss draws (per-channel RNG streams), not flow ids,
not wired /16s.  A multi-channel scenario therefore *factors exactly*
into one independent sub-scenario per channel, and this module turns
that observation into the execution pipeline behind
``run_scenario(cfg, shard_jobs=...)``:

* **plan** — :class:`ShardPlan` partitions the cells by channel
  (:meth:`ShardPlan.from_config`); one shard per channel in use.
* **shard** — each shard rebuilds *its* cells in a fresh
  :class:`~repro.sim.engine.Simulator` via the same
  :class:`~repro.workloads.scenarios.CellBuilder` path the unsharded
  run takes.  Because every id (addresses, static flow ids, UDP
  pseudo-ids, RNG stream names, IP prefixes) derives from the global
  cell index, the shard's event sequence is identical to the unsharded
  run's sub-sequence for those cells.  Shards run serially
  (``shard_jobs=1``) or across a process pool (``shard_jobs=N``) with
  the same submit/poll shape the sweep engine uses; each shard ships a
  plain-data :class:`ShardOutcome` back.
* **merge** — :func:`merge_outcomes` reassembles one
  :class:`~repro.workloads.scenarios.ScenarioResult`: per-flow
  goodputs in the unsharded insertion order (so order-sensitive float
  reductions — aggregate goodput, Jain — are bit-identical),
  per-cell FCT collectors merged in cell order through the existing
  ``FctCollector.merge`` / ``FctAggregator.merge``, MAC/driver/
  decompressor counters summed, and per-cell / per-channel blocks
  reordered globally.

``kernel_stats`` is handled per shard rather than summed: a merged
result's own ``kernel_stats`` is empty (summing counters across
independent simulators never equalled the single shared kernel of an
unsharded run — e.g. the two snapshot events are scheduled once per
shard) and each shard's counters are carried verbatim under
``metrics_dict()["shards"]`` (one ``{channel, cells, kernel_stats,
telemetry}`` block per shard, plan order).  Everything else in
``metrics_dict()`` is identical across ``shard_jobs=None`` / ``1`` /
``N``.

Telemetry (``run_scenario(..., telemetry=...)``) shards cleanly too:
each shard runs its own sampler and kernel instrument
(``TelemetryConfig.without_paths()`` — only the parent writes
artifacts), and the merge reassembles the unsharded stream exactly —
samples sorted by ``(t_ns, plan channel order)`` are line-identical to
the unsharded JSONL, and the disjointly-named per-channel/per-cell
registry entries union back into the unsharded registry.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, \
    wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..adversary.runtime import merge_adversary_blocks
from ..mac.qdisc import merge_aqm_blocks
from ..obs import MetricsRegistry, TelemetryConfig, \
    merge_span_blocks, telemetry_meta, write_telemetry_file
from ..stats.collectors import MacStats


@dataclass(frozen=True)
class ShardPlan:
    """The cells-by-channel partition of one scenario.

    ``channels`` lists the channels in use in first-appearance order
    over ascending cell index (for round-robin assignment that is
    simply 0, 1, ..., C-1); ``cells_by_channel`` is aligned with it,
    each entry the ascending global cell indices on that channel.
    """

    channels: Tuple[int, ...]
    cells_by_channel: Tuple[Tuple[int, ...], ...]

    @classmethod
    def from_config(cls, cfg) -> "ShardPlan":
        cfg.validate_cells()
        channels: Dict[int, List[int]] = {}
        for cell in range(cfg.cells):
            channels.setdefault(cfg.channel_of(cell), []).append(cell)
        return cls(channels=tuple(channels),
                   cells_by_channel=tuple(
                       tuple(cells) for cells in channels.values()))

    @property
    def shard_count(self) -> int:
        return len(self.channels)

    def shards(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """(channel, cells) pairs, one per shard, in channel order."""
        return list(zip(self.channels, self.cells_by_channel))

    def describe(self) -> Dict[str, Any]:
        """JSON-able plan summary (CLI output, ``shard_info``)."""
        return {
            "shards": self.shard_count,
            "channels": list(self.channels),
            "cells_by_channel": {
                str(channel): list(cells)
                for channel, cells in self.shards()},
        }


@dataclass
class ShardOutcome:
    """One shard's results, flattened to picklable plain data.

    Live simulation objects (flows, clients, drivers, managers) never
    cross the process boundary; everything a merged
    ``ScenarioResult.metrics_dict()`` needs is extracted here, keyed
    by *global* cell index so the merge can restore unsharded
    ordering.  The FCT collectors themselves (plain-data record lists
    / histograms) do ship — the merge reuses their exact ``merge``
    methods.
    """

    channel: int
    cell_indices: Tuple[int, ...]
    #: cell -> [(flow id, goodput)] for static TCP flows, build order.
    tcp_flows_by_cell: Dict[int, List[Tuple[int, float]]]
    #: cell -> [(pseudo id, goodput, client)] for udp_download sinks.
    udp_flows_by_cell: Dict[int, List[Tuple[int, float, str]]]
    completion_times_ns: Dict[int, Optional[int]]
    sender_counters: Dict[int, Dict[str, int]]
    mac_stats: MacStats
    driver_metrics: Dict[str, Dict[str, int]]
    decomp_counters: Dict[str, int]
    kernel_stats: Dict[str, int]
    udp_background_goodput_mbps: Dict[str, float]
    #: ROHC robustness counters (metrics_dict()["rohc"]; summed).
    rohc_counters: Dict[str, int] = field(default_factory=dict)
    #: AQM block (metrics_dict()["aqm"]; counters summed, sojourn
    #: histograms merged bin-wise, percentiles recomputed).
    aqm_counters: Dict[str, Any] = field(default_factory=dict)
    #: Adversary block (metrics_dict()["adversary"]; None when the
    #: config has no adversary; integer fields summed on merge).
    adversary_counters: Optional[Dict[str, Any]] = None
    #: (cell index, cell block) in build (= ascending-cell) order.
    cell_blocks: List[Tuple[int, Dict[str, Any]]] = field(
        default_factory=list)
    channel_block: Dict[str, Any] = field(default_factory=dict)
    #: (cell index, FctCollector | FctAggregator) where churn ran.
    collectors: List[Tuple[int, Any]] = field(default_factory=list)
    wall_s: float = 0.0
    #: Telemetry products (None/empty when the run had no telemetry):
    #: the shard's ``metrics_dict()["telemetry"]`` block, its retained
    #: sample records (time order), and its live registry (merged by
    #: the parent — disjoint names make the union exact).
    telemetry_block: Optional[Dict[str, Any]] = None
    telemetry_samples: List[Dict[str, Any]] = field(
        default_factory=list)
    telemetry_registry: Optional[MetricsRegistry] = None
    telemetry_emitted: int = 0
    telemetry_dropped: int = 0


class ShardExecutionError(RuntimeError):
    """One shard raised; identifies the shard for fault isolation."""

    def __init__(self, channel: int, cells: Tuple[int, ...],
                 cause: BaseException):
        super().__init__(
            f"shard for channel {channel} (cells {list(cells)}) "
            f"failed: {type(cause).__name__}: {cause}")
        self.channel = channel
        self.cells = cells


def execute_shard(cfg, cell_indices: Tuple[int, ...],
                  telemetry: Optional[TelemetryConfig] = None
                  ) -> ShardOutcome:
    """Run one channel's cells in a fresh simulator (the pool work
    function — module-level so it pickles)."""
    from .scenarios import _run_cells, driver_metrics_dict

    started = time.perf_counter()
    result = _run_cells(cfg, tuple(cell_indices), telemetry=telemetry)
    per_flow = result.per_flow_goodput_mbps
    tcp_flows: Dict[int, List[Tuple[int, float]]] = {}
    udp_flows: Dict[int, List[Tuple[int, float, str]]] = {}
    collectors: List[Tuple[int, Any]] = []
    blocks: List[Tuple[int, Dict[str, Any]]] = []
    for net, block in zip(result.cell_nets, result.cell_blocks):
        tcp_flows[net.index] = [
            (flow.flow_id, per_flow[flow.flow_id])
            for flow in net.flows if flow.flow_id in per_flow]
        udp_flows[net.index] = [
            (pseudo_id, per_flow[pseudo_id], name)
            for local, name in enumerate(net.udp_names)
            for pseudo_id in (-(cfg.udp_index_base(net.index)
                                + local + 1),)
            if pseudo_id in per_flow]
        if net.flow_manager is not None:
            collectors.append((net.index, net.flow_manager.collector))
        blocks.append((net.index, block))
    channel = cfg.channel_of(cell_indices[0])
    session = result.telemetry_session
    return ShardOutcome(
        channel=channel,
        cell_indices=tuple(cell_indices),
        tcp_flows_by_cell=tcp_flows,
        udp_flows_by_cell=udp_flows,
        completion_times_ns=dict(result.completion_times_ns),
        sender_counters={k: dict(v)
                         for k, v in result.sender_counters.items()},
        mac_stats=result.mac_stats,
        driver_metrics=driver_metrics_dict(result.drivers),
        decomp_counters=dict(result.decomp_counters),
        kernel_stats=dict(result.kernel_stats),
        udp_background_goodput_mbps=dict(
            result.udp_background_goodput_mbps),
        rohc_counters=dict(result.rohc_counters),
        aqm_counters=dict(result.aqm_counters),
        adversary_counters=(dict(result.adversary_counters)
                            if result.adversary_counters is not None
                            else None),
        cell_blocks=blocks,
        channel_block=dict(result.channel_blocks[0]),
        collectors=collectors,
        wall_s=time.perf_counter() - started,
        telemetry_block=result.telemetry,
        telemetry_samples=(list(session.samples)
                           if session is not None else []),
        telemetry_registry=(session.registry
                            if session is not None else None),
        telemetry_emitted=(session.emitted
                           if session is not None else 0),
        telemetry_dropped=(session.dropped_samples
                           if session is not None else 0),
    )


def _effective_jobs(shard_jobs: int, shard_count: int) -> int:
    """Clamp the worker count; fall back to serial shards inside a
    daemonic worker (a sweep pool's child cannot spawn its own pool —
    serial shards produce identical metrics anyway)."""
    jobs = min(max(1, shard_jobs), shard_count)
    if jobs > 1 and multiprocessing.current_process().daemon:
        return 1
    return jobs


def run_sharded(cfg, plan: ShardPlan, shard_jobs: int,
                telemetry: Optional[TelemetryConfig] = None):
    """Execute every shard of ``plan`` and merge the outcomes.

    ``shard_jobs=1`` runs shards serially in-process; ``N > 1`` fans
    them over a process pool with the sweep engine's submit/poll
    shape (``wait(FIRST_COMPLETED)``), so a slow channel never blocks
    collection of the others.  Per-shard faults are isolated into
    :class:`ShardExecutionError` naming the channel and cells.

    With ``telemetry`` set, each shard samples and times its own
    kernel (``without_paths()`` — shards never write files); the merge
    rebuilds the unsharded sample stream and registry and the *parent*
    writes the JSONL artifact.  ``trace_export_path`` is refused: a
    Chrome trace records one simulator's frames and cannot span
    shards.
    """
    if cfg.trace:
        raise ValueError(
            "trace=True records a single simulator's frames; it "
            "cannot span channel shards (run with shard_jobs=None)")
    if telemetry is not None and telemetry.trace_export_path:
        raise ValueError(
            "trace_export_path records a single simulator's frames; "
            "it cannot span channel shards (run with shard_jobs=None)")
    shard_telemetry = (telemetry.without_paths()
                       if telemetry is not None else None)
    shards = plan.shards()
    jobs = _effective_jobs(shard_jobs, plan.shard_count)
    started = time.perf_counter()
    outcomes: Dict[int, ShardOutcome] = {}
    if jobs <= 1:
        for channel, cells in shards:
            try:
                outcomes[channel] = execute_shard(cfg, cells,
                                                  shard_telemetry)
            except Exception as exc:
                raise ShardExecutionError(channel, cells, exc) from exc
        mode = "serial"
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(execute_shard, cfg, cells,
                            shard_telemetry): (channel, cells)
                for channel, cells in shards}
            pending = set(futures)
            while pending:
                done, pending = wait(pending,
                                     return_when=FIRST_COMPLETED)
                for future in done:
                    channel, cells = futures[future]
                    try:
                        outcomes[channel] = future.result()
                    except Exception as exc:
                        raise ShardExecutionError(channel, cells,
                                                  exc) from exc
        mode = "parallel"
    shard_info = {
        "mode": mode,
        "jobs": jobs,
        "requested_jobs": shard_jobs,
        "wall_s": time.perf_counter() - started,
        "shard_wall_s": {
            str(channel): outcomes[channel].wall_s
            for channel, _ in shards},
        "plan": plan.describe(),
    }
    return merge_outcomes(cfg, plan, outcomes, shard_info,
                          telemetry=telemetry)


def merge_outcomes(cfg, plan: ShardPlan,
                   outcomes: Dict[int, ShardOutcome],
                   shard_info: Optional[Dict[str, Any]] = None,
                   telemetry: Optional[TelemetryConfig] = None):
    """Reassemble one ScenarioResult from per-channel outcomes.

    Ordering discipline: everything order-sensitive is rebuilt in the
    *unsharded* run's order — static flows across all cells (ascending
    cell), then UDP sinks across all cells; cell blocks ascending;
    channel blocks in plan order; FCT collectors merged ascending by
    cell.  Float reductions over those sequences are then bit-identical
    to the single-simulator run.

    Per-shard kernel counters (and telemetry blocks, when sampling
    ran) are preserved verbatim as ``ScenarioResult.shard_blocks``;
    the merged result's own ``kernel_stats`` is empty.
    """
    from .scenarios import ScenarioResult

    ordered = [outcomes[channel] for channel in plan.channels]
    by_cell_tcp: Dict[int, List[Tuple[int, float]]] = {}
    by_cell_udp: Dict[int, List[Tuple[int, float, str]]] = {}
    for outcome in ordered:
        by_cell_tcp.update(outcome.tcp_flows_by_cell)
        by_cell_udp.update(outcome.udp_flows_by_cell)
    all_cells = sorted(by_cell_tcp)

    per_flow: Dict[int, float] = {}
    for cell in all_cells:
        for flow_id, mbps in by_cell_tcp[cell]:
            per_flow[flow_id] = mbps
    for cell in all_cells:
        for pseudo_id, mbps, _name in by_cell_udp[cell]:
            per_flow[pseudo_id] = mbps

    completion: Dict[int, Optional[int]] = {}
    sender_counters: Dict[int, Dict[str, int]] = {}
    background: Dict[str, float] = {}
    driver_metrics: Dict[str, Dict[str, int]] = {}
    mac_stats = MacStats()
    decomp: Dict[str, int] = {}
    rohc: Dict[str, int] = {}
    for outcome in ordered:
        completion.update(outcome.completion_times_ns)
        sender_counters.update(outcome.sender_counters)
        background.update(outcome.udp_background_goodput_mbps)
        driver_metrics.update(outcome.driver_metrics)
        mac_stats.merge(outcome.mac_stats)
        for key, value in outcome.decomp_counters.items():
            decomp[key] = decomp.get(key, 0) + value
        for key, value in outcome.rohc_counters.items():
            rohc[key] = rohc.get(key, 0) + value
    adversary_counters = merge_adversary_blocks(
        outcome.adversary_counters for outcome in ordered)
    aqm = merge_aqm_blocks(outcome.aqm_counters
                           for outcome in ordered
                           if outcome.aqm_counters)

    # Per-shard kernel/telemetry blocks, plan order: independent
    # simulators' counters are reported, never summed.
    shard_blocks = [
        {
            "channel": outcome.channel,
            "cells": list(outcome.cell_indices),
            "kernel_stats": dict(outcome.kernel_stats),
            "telemetry": (dict(outcome.telemetry_block)
                          if outcome.telemetry_block is not None
                          else None),
        }
        for outcome in ordered]

    collectors = sorted(
        (pair for outcome in ordered for pair in outcome.collectors),
        key=lambda pair: pair[0])
    fct_summary: Optional[Dict[str, Any]] = None
    if len(collectors) == 1:
        fct_summary = collectors[0][1].summary(cfg.duration_ns)
    elif collectors:
        merged = type(collectors[0][1])()
        for _, collector in collectors:
            merged.merge(collector)
        fct_summary = merged.summary(cfg.duration_ns)

    cell_blocks = [
        block for _, block in sorted(
            (pair for outcome in ordered for pair in
             outcome.cell_blocks),
            key=lambda pair: pair[0])]
    channel_blocks = [dict(outcome.channel_block)
                      for outcome in ordered]
    utilisation = sum(
        block["utilisation"] for block in channel_blocks) \
        / len(channel_blocks) if channel_blocks else 0.0

    telemetry_block: Optional[Dict[str, Any]] = None
    if telemetry is not None:
        telemetry_block = _merge_telemetry(cfg, plan, ordered,
                                           all_cells, telemetry)

    return ScenarioResult(
        config=cfg,
        per_flow_goodput_mbps=per_flow,
        mac_stats=mac_stats,
        driver_stats={},
        decomp_counters=decomp,
        medium_frames_sent=sum(o.channel_block["frames_sent"]
                               for o in ordered),
        medium_frames_collided=sum(o.channel_block["frames_collided"]
                                   for o in ordered),
        medium_utilisation=utilisation,
        completion_times_ns=completion,
        sender_counters=sender_counters,
        kernel_stats={},
        fct=fct_summary,
        udp_background_goodput_mbps=background,
        cell_blocks=cell_blocks,
        channel_blocks=channel_blocks,
        driver_metrics=driver_metrics,
        shard_info=shard_info,
        shard_blocks=shard_blocks,
        telemetry=telemetry_block,
        rohc_counters=rohc,
        aqm_counters=aqm,
        adversary_counters=adversary_counters,
    )


def _merge_telemetry(cfg, plan: ShardPlan,
                     ordered: List[ShardOutcome],
                     all_cells: List[int],
                     telemetry: TelemetryConfig) -> Dict[str, Any]:
    """Rebuild the unsharded telemetry block (and artifact) from the
    per-shard products.

    * Samples: every shard emitted exactly the per-channel records the
      unsharded run would have for its channel, so sorting the union
      by ``(t_ns, plan channel order)`` restores the unsharded stream
      line-for-line.
    * Registry: per-channel/per-cell metric names are disjoint across
      shards, so merging is a disjoint union (plus the ``samples``
      counter, which genuinely sums).
    * Spans: wall times sum by owner (each shard timed its own
      kernel).
    """
    channel_order = {channel: index
                     for index, channel in enumerate(plan.channels)}
    samples = sorted(
        (record for outcome in ordered
         for record in outcome.telemetry_samples),
        key=lambda record: (record["t_ns"],
                            channel_order[record["channel"]]))
    registry = MetricsRegistry()
    for outcome in ordered:
        if outcome.telemetry_registry is not None:
            registry.merge(outcome.telemetry_registry)
    span_blocks = [outcome.telemetry_block.get("spans")
                   for outcome in ordered
                   if outcome.telemetry_block is not None]
    spans = (merge_span_blocks([b for b in span_blocks if b])
             if any(span_blocks) else None)
    emitted = sum(o.telemetry_emitted for o in ordered)
    dropped = sum(o.telemetry_dropped for o in ordered)
    block: Dict[str, Any] = {
        "sample_interval_ns": telemetry.sample_interval_ns,
        "samples": emitted,
        "retained_samples": len(samples),
        "dropped_samples": dropped,
        "metrics": registry.as_dict(),
        "enabled": True,
        "spans": spans,
    }
    if telemetry.telemetry_path:
        summary = {
            "type": "summary",
            "sample_interval_ns": telemetry.sample_interval_ns,
            "samples": emitted,
            "retained_samples": len(samples),
            "dropped_samples": dropped,
            "metrics": registry.as_dict(),
        }
        write_telemetry_file(
            telemetry.telemetry_path,
            telemetry_meta(cfg, telemetry, list(plan.channels),
                           all_cells),
            samples, summary, spans)
    return block
