"""Named scenario registry.

Mirrors the runnable stories under ``examples/`` as first-class,
programmatically addressable scenarios: look one up by name, build its
:class:`ScenarioConfig` (optionally overriding fields), or expand it
into a multi-seed :class:`~repro.experiments.batch.SweepSpec` for the
parallel sweep engine.

    from repro.workloads import registry
    cfg = registry.build("quickstart", policy=HackPolicy.MORE_DATA)
    spec = registry.sweep_spec("multi-client", seeds=(1, 2, 3))
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence

from ..adversary import AdversaryConfig
from ..core.policies import HackPolicy
from ..sim.units import MS, SEC, usec
from ..traffic.arrivals import ArrivalSpec, SizeSpec
from .scenarios import LossSpec, ScenarioConfig


class UnknownScenarioError(KeyError):
    """Raised for a lookup of a name the registry does not hold."""

    def __init__(self, name: str, known: Sequence[str]):
        suggestions = difflib.get_close_matches(name, known, n=3)
        hint = f"; did you mean {', '.join(suggestions)}?" \
            if suggestions else ""
        super().__init__(
            f"unknown scenario {name!r} (known: "
            f"{', '.join(sorted(known))}){hint}")
        self.name = name
        self.suggestions = suggestions


@dataclass(frozen=True)
class RegisteredScenario:
    """A named config factory plus its one-line story."""

    name: str
    description: str
    factory: Callable[[], ScenarioConfig]

    def build(self, seed: int = 1, **overrides: Any) -> ScenarioConfig:
        config = self.factory()
        fields = {f.name for f in dataclasses.fields(ScenarioConfig)}
        unknown = set(overrides) - fields
        if unknown:
            raise TypeError(
                f"scenario {self.name!r}: unknown config fields "
                f"{sorted(unknown)}")
        return dataclasses.replace(config, seed=seed, **overrides)


_REGISTRY: Dict[str, RegisteredScenario] = {}


def register(name: str, description: str
             ) -> Callable[[Callable[[], ScenarioConfig]],
                           Callable[[], ScenarioConfig]]:
    """Decorator: register a zero-argument ScenarioConfig factory."""

    def decorator(factory: Callable[[], ScenarioConfig]
                  ) -> Callable[[], ScenarioConfig]:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        _REGISTRY[name] = RegisteredScenario(name, description, factory)
        return factory

    return decorator


def get(name: str) -> RegisteredScenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(name, list(_REGISTRY)) from None


def names() -> List[str]:
    return sorted(_REGISTRY)


def build(name: str, seed: int = 1, **overrides: Any) -> ScenarioConfig:
    """Build a registered scenario's config (with field overrides)."""
    return get(name).build(seed=seed, **overrides)


def describe_all() -> List[Dict[str, str]]:
    return [{"name": n, "description": _REGISTRY[n].description}
            for n in names()]


def sweep_spec(name: str, seeds: Sequence[int] = (1,),
               **overrides: Any):
    """Expand one named scenario into a per-seed SweepSpec."""
    from ..experiments.batch import SweepSpec

    spec = SweepSpec(f"scenario:{name}")
    for seed in seeds:
        spec.add_scenario((name,), build(name, seed=seed, **overrides))
    return spec


# ----------------------------------------------------------------------
# Built-in scenarios (mirror examples/)
# ----------------------------------------------------------------------
@register("quickstart",
          "one 802.11n client at 150 Mbps, bulk TCP download with "
          "the MORE DATA HACK policy (examples/quickstart.py)")
def _quickstart() -> ScenarioConfig:
    return ScenarioConfig(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=1,
        traffic="tcp_download", policy=HackPolicy.MORE_DATA,
        duration_ns=3 * SEC, warmup_ns=1 * SEC, stagger_ns=0)


@register("lossy-link",
          "single client on a noisy channel (SNR loss model), the "
          "Fig 11 regime (examples/lossy_link_sweep.py)")
def _lossy_link() -> ScenarioConfig:
    return ScenarioConfig(
        phy_mode="11n", data_rate_mbps=90.0, n_clients=1,
        traffic="tcp_download", policy=HackPolicy.MORE_DATA,
        loss=LossSpec(kind="snr", snr_db=18.0),
        duration_ns=2 * SEC, warmup_ns=1 * SEC, stagger_ns=0)


@register("multi-client",
          "several laptops downloading through one AP — the paper's "
          "motivating Fig 10 contention workload "
          "(examples/multi_client_contention.py)")
def _multi_client() -> ScenarioConfig:
    return ScenarioConfig(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=4,
        traffic="tcp_download", policy=HackPolicy.MORE_DATA,
        duration_ns=4 * SEC, warmup_ns=2 * SEC, stagger_ns=50 * MS)


@register("wireless-backup",
          "finite upload to LAN storage (the Time Capsule story, "
          "§3.1): the AP compresses the server's ACKs "
          "(examples/wireless_backup.py)")
def _wireless_backup() -> ScenarioConfig:
    return ScenarioConfig(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=1,
        traffic="tcp_upload", policy=HackPolicy.MORE_DATA,
        file_bytes=20_000_000,
        duration_ns=60 * SEC, warmup_ns=100 * MS, stagger_ns=0)


# -- Flow churn (dynamic traffic; see repro.traffic) -------------------
def _churn_base(policy: HackPolicy,
                arrivals: ArrivalSpec) -> ScenarioConfig:
    return ScenarioConfig(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=2,
        traffic="dynamic", policy=policy, arrivals=arrivals,
        duration_ns=2 * SEC, warmup_ns=1 * SEC, stagger_ns=0)


def _poisson_arrivals() -> ArrivalSpec:
    return ArrivalSpec(
        kind="poisson", rate_per_s=40.0,
        size=SizeSpec(kind="lognormal", median_bytes=50_000,
                      sigma=1.0))


def _web_arrivals() -> ArrivalSpec:
    return ArrivalSpec(
        kind="web", users_per_client=2, think_time_ms=150.0,
        size=SizeSpec(kind="lognormal", median_bytes=30_000,
                      sigma=1.2))


@register("churn-poisson",
          "flow churn: Poisson arrivals (40 flows/s, log-normal "
          "sizes) across two clients with TCP/HACK — FCT instead of "
          "steady-state goodput (examples/flow_churn.py)")
def _churn_poisson() -> ScenarioConfig:
    return _churn_base(HackPolicy.MORE_DATA, _poisson_arrivals())


@register("churn-poisson-vanilla",
          "the churn-poisson workload on stock TCP/802.11n (the "
          "baseline HACK is judged against)")
def _churn_poisson_vanilla() -> ScenarioConfig:
    return _churn_base(HackPolicy.VANILLA, _poisson_arrivals())


@register("churn-web",
          "closed-loop web users (think/request/wait, log-normal "
          "objects) with TCP/HACK — the short-flow regime where "
          "ACK-per-data overhead dominates")
def _churn_web() -> ScenarioConfig:
    return _churn_base(HackPolicy.MORE_DATA, _web_arrivals())


@register("churn-web-vanilla",
          "the churn-web workload on stock TCP/802.11n")
def _churn_web_vanilla() -> ScenarioConfig:
    return _churn_base(HackPolicy.VANILLA, _web_arrivals())


@register("churn-bursty",
          "per-client on/off bursts (exponential ON/OFF, mice + "
          "elephants) with TCP/HACK — bursty aggregate load")
def _churn_bursty() -> ScenarioConfig:
    return _churn_base(
        HackPolicy.MORE_DATA,
        ArrivalSpec(kind="onoff", rate_per_s=60.0, mean_on_ms=150.0,
                    mean_off_ms=250.0,
                    size=SizeSpec(kind="bimodal", small_bytes=15_000,
                                  large_bytes=1_000_000,
                                  p_small=0.9)))


@register("churn-cubic-codel",
          "the churn-poisson workload on the modern stack: CUBIC "
          "congestion control with CoDel at every station's MAC "
          "queue (cc / queue_discipline knobs)")
def _churn_cubic_codel() -> ScenarioConfig:
    return dataclasses.replace(
        _churn_base(HackPolicy.MORE_DATA, _poisson_arrivals()),
        cc="cubic", queue_discipline="codel")


@register("churn-paced",
          "the churn-poisson workload with sender pacing on "
          "(~2*cwnd/SRTT release instead of back-to-back window "
          "bursts; pacing knob)")
def _churn_paced() -> ScenarioConfig:
    return dataclasses.replace(
        _churn_base(HackPolicy.MORE_DATA, _poisson_arrivals()),
        pacing=True)


@register("aqm-fqcodel",
          "Poisson mice riding a 50 Mbps CBR UDP floor per client "
          "through FQ-CoDel MAC queues — per-flow DRR isolates the "
          "mice from the standing UDP queue (the aqm_pacing "
          "experiment's regime)")
def _aqm_fqcodel() -> ScenarioConfig:
    return dataclasses.replace(
        _churn_base(HackPolicy.MORE_DATA, _poisson_arrivals()),
        udp_background_mbps=50.0, queue_discipline="fq_codel")


@register("udp-background",
          "two bulk TCP/HACK downloads sharing the cell with 8 Mbps "
          "of constant-bit-rate UDP noise per client "
          "(udp_background_mbps knob)")
def _udp_background() -> ScenarioConfig:
    return ScenarioConfig(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=2,
        traffic="tcp_download", policy=HackPolicy.MORE_DATA,
        udp_background_mbps=8.0,
        duration_ns=3 * SEC, warmup_ns=1 * SEC, stagger_ns=50 * MS)


# -- Multi-AP overlapping cells (cells=N on one channel) ---------------
@register("multi-ap",
          "two overlapping BSSes (2 APs x 2 clients) contending for "
          "one channel, bulk TCP/HACK downloads in both — inter-cell "
          "contention (examples/multi_ap_cells.py)")
def _multi_ap() -> ScenarioConfig:
    return ScenarioConfig(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=2, cells=2,
        traffic="tcp_download", policy=HackPolicy.MORE_DATA,
        duration_ns=3 * SEC, warmup_ns=1 * SEC, stagger_ns=50 * MS)


@register("multi-ap-vanilla",
          "the multi-ap topology on stock TCP/802.11n (the baseline "
          "for HACK's inter-cell story)")
def _multi_ap_vanilla() -> ScenarioConfig:
    return ScenarioConfig(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=2, cells=2,
        traffic="tcp_download", policy=HackPolicy.VANILLA,
        duration_ns=3 * SEC, warmup_ns=1 * SEC, stagger_ns=50 * MS)


@register("multi-ap-churn",
          "two overlapping cells each running Poisson flow churn — "
          "FCT under inter-cell contention, reported per cell and "
          "merged")
def _multi_ap_churn() -> ScenarioConfig:
    return ScenarioConfig(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=2, cells=2,
        traffic="dynamic", policy=HackPolicy.MORE_DATA,
        arrivals=_poisson_arrivals(),
        duration_ns=2 * SEC, warmup_ns=1 * SEC, stagger_ns=0)


@register("city-20cell",
          "a 20-cell city grid round-robined over the three "
          "2.4 GHz channels, one bulk TCP/HACK download per cell — "
          "the channel-shard pipeline's benchmark topology "
          "(run_scenario(cfg, shard_jobs=...) shards it per channel)")
def _city_20cell() -> ScenarioConfig:
    return ScenarioConfig(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=1, cells=20,
        channels=3, traffic="tcp_download",
        policy=HackPolicy.MORE_DATA,
        duration_ns=2 * SEC, warmup_ns=1 * SEC, stagger_ns=0)


# -- Adversarial scenarios (repro.adversary) ---------------------------
@register("adv-greedy",
          "a CW-cheating greedy station among four honest uploaders "
          "(intensity 1.0: the cheater always draws zero backoff) — "
          "MAC-layer misbehaviour, HACK on")
def _adv_greedy() -> ScenarioConfig:
    return ScenarioConfig(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=4,
        traffic="tcp_upload", policy=HackPolicy.MORE_DATA,
        duration_ns=3 * SEC, warmup_ns=1 * SEC, stagger_ns=50 * MS,
        adversary=AdversaryConfig(kind="greedy", intensity=1.0))


@register("adv-jammer",
          "a duty-cycled energy jammer at 50% intensity over bulk "
          "TCP/HACK downloads — honest stations defer through the "
          "bursts and goodput scales with the quiet fraction")
def _adv_jammer() -> ScenarioConfig:
    return ScenarioConfig(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=3,
        traffic="tcp_download", policy=HackPolicy.MORE_DATA,
        duration_ns=3 * SEC, warmup_ns=1 * SEC, stagger_ns=50 * MS,
        adversary=AdversaryConfig(kind="jammer", intensity=0.5))


@register("adv-mutator",
          "an on-air compressed-ACK mutator in storm mode driving "
          "ROHC context desyncs — exercises the decompressor's "
          "containment and measured context recovery (stall guard "
          "keeps HACK's buffered chain moving)")
def _adv_mutator() -> ScenarioConfig:
    return ScenarioConfig(
        phy_mode="11n", data_rate_mbps=150.0, n_clients=3,
        traffic="tcp_download", policy=HackPolicy.MORE_DATA,
        duration_ns=3 * SEC, warmup_ns=1 * SEC, stagger_ns=50 * MS,
        adversary=AdversaryConfig(kind="mutator", intensity=0.6,
                                  mutate_mode="storm"))


@register("sora-testbed",
          "the §4 SoRa 802.11a testbed: 54 Mbps, per-client loss, "
          "late LL ACKs (examples/sora_testbed.py)")
def _sora_testbed() -> ScenarioConfig:
    return ScenarioConfig(
        phy_mode="11a", data_rate_mbps=54.0, n_clients=2,
        traffic="tcp_download", policy=HackPolicy.MORE_DATA,
        duration_ns=6 * SEC, warmup_ns=2 * SEC, stagger_ns=100 * MS,
        loss=LossSpec(kind="uniform", data_loss=0.01,
                      control_loss=0.002,
                      per_client={"C1": 0.02, "C2": 0.01}),
        extra_response_delay_ns=usec(37),
        ack_timeout_extra_ns=usec(60))
