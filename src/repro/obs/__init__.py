"""repro.obs — the observability layer.

Kernel span instrumentation (:mod:`~repro.obs.spans`), the periodic
time-series sampler and telemetry session (:mod:`~repro.obs.sampler`),
the mergeable metrics registry (:mod:`~repro.obs.metrics`),
Chrome-trace export (:mod:`~repro.obs.export`) and the artifact
reader/summarizer behind ``repro report`` (:mod:`~repro.obs.report`).

Entry point for simulations: pass ``telemetry=TelemetryConfig(...)``
to :func:`repro.workloads.scenarios.run_scenario` (CLI:
``repro simulate --telemetry PATH --trace-export PATH
--sample-interval MS``).  Telemetry is an execution knob — disabled
(the default) it costs one branch per ``Simulator.run`` call and
leaves every metric and cache signature bit-identical.
"""

from .export import chrome_trace, write_chrome_trace
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import TelemetryArtifactError, format_report, \
    load_telemetry, print_report
from .sampler import TelemetryConfig, TelemetrySession, \
    telemetry_meta, write_telemetry_file
from .spans import KernelInstrument, merge_span_blocks, owner_key

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KernelInstrument",
    "MetricsRegistry",
    "TelemetryArtifactError",
    "TelemetryConfig",
    "TelemetrySession",
    "chrome_trace",
    "format_report",
    "load_telemetry",
    "merge_span_blocks",
    "owner_key",
    "print_report",
    "telemetry_meta",
    "write_chrome_trace",
    "write_telemetry_file",
]
