"""Metrics registry: counters, gauges and histograms.

Subsystems register named metrics into a :class:`MetricsRegistry`
during a telemetry-enabled run; the registry flattens to the
``"telemetry"`` block of ``ScenarioResult.metrics_dict()`` and — the
property the channel-shard pipeline rests on — merges exactly across
shards.  Metric *names* carry the shard partition: every sampler
metric is namespaced by channel or cell (``channel0.utilisation``,
``cell3.ap_queue``), so a merged registry is the disjoint union of the
per-shard registries and ``as_dict()`` (sorted by name) is
bit-identical to the unsharded run's.

All three metric kinds hold only plain ints/floats, so registries
pickle across the shard process boundary and JSON-serialise without
custom encoders.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_value(self) -> int:
        return self.value

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """A sampled value with streaming min/max/mean.

    ``observe`` is O(1) and allocation-free, so the periodic sampler
    can call it every tick without perturbing the perf profile; the
    summary (``last``/``min``/``max``/``mean``/``count``) is exact
    regardless of how many samples were retained elsewhere.
    """

    __slots__ = ("last", "min", "max", "total", "count")

    def __init__(self) -> None:
        self.last: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.last = value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.total += value
        self.count += 1

    def as_value(self) -> Dict[str, Any]:
        return {
            "last": self.last,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count if self.count else 0.0,
            "count": self.count,
        }

    def merge(self, other: "Gauge") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.last = other.last
        if self.min is None or (other.min is not None
                                and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None
                                and other.max > self.max):
            self.max = other.max
        self.total += other.total
        self.count += other.count
        self.last = other.last


class Histogram:
    """Power-of-two bucketed distribution of non-negative values.

    Bucket ``k`` counts observations in ``[2^(k-1), 2^k)`` (bucket 0
    is exactly zero), the same log-bucketing discipline the streaming
    FCT aggregator uses.  Merging sums bucket counts, so shard-merged
    distributions equal the unsharded ones exactly.
    """

    __slots__ = ("buckets", "count", "total")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        bucket = 0
        if value >= 1:
            bucket = int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value

    def as_value(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "buckets": {str(k): self.buckets[k]
                        for k in sorted(self.buckets)},
        }

    def merge(self, other: "Histogram") -> None:
        for bucket, count in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + count
        self.count += other.count
        self.total += other.total


class MetricsRegistry:
    """Named metrics, grouped by kind.

    ``counter``/``gauge``/``histogram`` are get-or-create (repeated
    registration under one name returns the same object), so any
    subsystem can grab its metric without coordinating ownership.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter()
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge()
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram()
        return self._histograms[name]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able flattening, sorted by metric name — so insertion
        order (which differs between unsharded and shard-merged
        registries) never leaks into the telemetry block."""
        return {
            "counters": {name: self._counters[name].as_value()
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].as_value()
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].as_value()
                           for name in sorted(self._histograms)},
        }

    def merge(self, other: "MetricsRegistry") -> None:
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other._gauges.items():
            self.gauge(name).merge(gauge)
        for name, histogram in other._histograms.items():
            self.histogram(name).merge(histogram)
