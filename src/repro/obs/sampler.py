"""Periodic time-series sampler and the telemetry session.

A :class:`TelemetrySession` is the run-scoped object behind
``run_scenario(cfg, telemetry=TelemetryConfig(...))``: it installs the
kernel instrument, schedules a simulated-time periodic sampler, and
flattens everything into the ``"telemetry"`` metrics block plus the
streaming JSONL artifact.

Every sample tick emits **one record per channel** (not one per tick),
with that channel's cells nested inside — the shard-friendly shape: a
channel shard emits exactly the records the unsharded run would have
emitted for that channel, so the merged, ``(t_ns, channel-order)``
sorted stream is line-identical to the unsharded artifact.  Sampled
per channel: medium utilisation, instantaneous busy flag and frame
counters; per cell: AP MAC backlog, wired up/down queue depths, live
churn flows, HACK compressed-ACK buffer depth, and ROHC compressor CID
occupancy.

Telemetry is an *execution* knob like ``shard_jobs`` — never part of
``ScenarioConfig`` — so sweep cache signatures and golden rows are
untouched by it.  The sampler's events do run through the shared
kernel (they are simulated-time driven), which perturbs only
``kernel_stats`` counts: sampler callbacks are read-only, so every
scenario metric stays bit-identical to a telemetry-off run (the
determinism oracle in ``tests/obs``).

JSONL artifact layout (one JSON object per line)::

    {"type": "meta", ...}        # scenario + sampling parameters
    {"type": "sample", ...}      # one per (tick, channel), time order
    {"type": "summary", ...}     # merged metrics registry + counts
    {"type": "spans", ...}       # kernel span table (wall time)

Only the ``spans`` line is nondeterministic (host wall times); meta,
samples and summary are bit-identical across telemetry-on reruns and
across unsharded / serial-shard / pool-shard executions.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, IO, List, Optional, Sequence, Tuple

from ..sim.units import MS
from .metrics import MetricsRegistry
from .spans import KernelInstrument

#: Sample-record fields mirrored into per-cell gauges.
_CELL_FIELDS = ("ap_queue", "wired_down_queue", "wired_up_queue",
                "live_flows", "hack_buffer", "rohc_cids",
                "rohc_failures", "aqm_backlog", "aqm_drops",
                "aqm_sojourn_p99_ms")

TELEMETRY_FORMAT = "repro-telemetry"
TELEMETRY_VERSION = 1


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability knobs for one run (execution-side, not config).

    ``telemetry_path`` streams the JSONL artifact; ``trace_export_path``
    writes a Chrome trace-event JSON after the run (frames + kernel
    spans + counter tracks).  Both default off; constructing the
    object at all enables the sampler and metrics registry.
    """

    sample_interval_ns: int = 10 * MS
    telemetry_path: Optional[str] = None
    trace_export_path: Optional[str] = None
    #: Time event callbacks by owner (KernelInstrument).
    kernel_spans: bool = True
    #: Individual spans retained for trace export (aggregates are
    #: always unbounded).
    max_spans: int = 20_000
    #: Cap on retained sample records (None = unbounded; streaming
    #: JSONL output is never capped).
    max_samples: Optional[int] = None
    #: Cap on trace-export frame records.
    trace_max_records: Optional[int] = 200_000

    def __post_init__(self) -> None:
        if self.sample_interval_ns <= 0:
            raise ValueError(
                f"sample_interval_ns must be positive, "
                f"got {self.sample_interval_ns}")

    def without_paths(self) -> "TelemetryConfig":
        """The per-shard variant: shards sample and time, but only the
        parent process writes artifacts (after the merge)."""
        return dataclasses.replace(self, telemetry_path=None,
                                   trace_export_path=None)


def telemetry_meta(cfg, config: TelemetryConfig,
                   channels: Sequence[int],
                   cell_indices: Sequence[int]) -> Dict[str, Any]:
    """The artifact's first line.  Built from the *full* scenario, so
    the shard pipeline's parent writes the same meta line the
    unsharded run streams."""
    meta = {
        "type": "meta",
        "format": TELEMETRY_FORMAT,
        "version": TELEMETRY_VERSION,
        "sample_interval_ns": config.sample_interval_ns,
        "duration_ns": cfg.duration_ns,
        "warmup_ns": cfg.warmup_ns,
        "seed": cfg.seed,
        "traffic": cfg.traffic,
        "policy": cfg.policy.value,
        "cells": list(cell_indices),
        "channels": list(channels),
    }
    # Conditional (cooperative meta lines keep their historical shape):
    # which attack this run was executed under.
    adversary = getattr(cfg, "adversary", None)
    if adversary is not None:
        meta["adversary"] = {
            "kind": adversary.kind,
            "intensity": adversary.intensity,
            "jam_mode": adversary.jam_mode,
            "mutate_mode": adversary.mutate_mode,
        }
    return meta


def _cell_sojourn_p99(net) -> float:
    """Delivered-packet sojourn p99 (ms) across one cell's stations;
    0.0 until anything has been dequeued (keeps the gauge numeric)."""
    from ..mac.qdisc import merge_aqm_blocks

    block = merge_aqm_blocks(driver.mac.aqm_stats()
                             for driver in net.drivers.values())
    return block["sojourn_p99_ms"] or 0.0


def _dump_line(handle: IO[str], record: Dict[str, Any]) -> None:
    handle.write(json.dumps(record, sort_keys=True) + "\n")


def write_telemetry_file(path: str, meta: Dict[str, Any],
                         samples: Sequence[Dict[str, Any]],
                         summary: Dict[str, Any],
                         spans: Optional[Dict[str, Any]]) -> None:
    """Write a complete JSONL artifact in one pass (the shard-merge
    path; unsharded runs stream the same bytes incrementally)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        _dump_line(handle, meta)
        for sample in samples:
            _dump_line(handle, sample)
        _dump_line(handle, summary)
        if spans is not None:
            _dump_line(handle, dict(spans, type="spans"))


class TelemetrySession:
    """One run's live observability state (sampler + registry + spans).

    Wired by ``_run_cells``; the shard pipeline ships the session's
    plain-data products (samples, registry, span block) through
    :class:`~repro.workloads.sharding.ShardOutcome` and merges them in
    the parent.
    """

    def __init__(self, cfg, config: TelemetryConfig, sim, media,
                 channels: Sequence[int], cells: Sequence[Any]):
        self.cfg = cfg
        self.config = config
        self.sim = sim
        self.media = media
        self.channels: Tuple[int, ...] = tuple(channels)
        self.registry = MetricsRegistry()
        self.instrument: Optional[KernelInstrument] = (
            KernelInstrument(config.max_spans)
            if config.kernel_spans else None)
        self.samples: List[Dict[str, Any]] = []
        self.emitted = 0
        self.dropped_samples = 0
        self._stream: Optional[IO[str]] = None
        self._cells_by_channel: Dict[int, List[Any]] = {
            channel: [net for net in cells
                      if cfg.channel_of(net.index) == channel]
            for channel in self.channels}
        self._cell_indices = [net.index for net in cells]

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Install the instrument and schedule the first sample tick
        (t=0; ticks repeat every ``sample_interval_ns`` of simulated
        time through the end of the run)."""
        if self.instrument is not None:
            self.sim.set_instrument(self.instrument)
        if self.config.telemetry_path:
            parent = os.path.dirname(self.config.telemetry_path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._stream = open(self.config.telemetry_path, "w")
            _dump_line(self._stream, self.meta())
        self.sim.schedule(0, self._tick)

    def finish(self) -> Dict[str, Any]:
        """Flush the artifact (summary + spans lines) and return the
        ``metrics_dict()["telemetry"]`` block."""
        block = self.block()
        if self._stream is not None:
            _dump_line(self._stream, self.summary_record())
            if block["spans"] is not None:
                _dump_line(self._stream,
                           dict(block["spans"], type="spans"))
            self._stream.close()
            self._stream = None
        return block

    # -- sampling ------------------------------------------------------
    def _tick(self) -> None:
        now = self.sim.now
        for channel in self.channels:
            self._emit(self._sample_channel(channel, now))
        if now + self.config.sample_interval_ns <= self.cfg.duration_ns:
            self.sim.schedule(self.config.sample_interval_ns,
                              self._tick)

    def _sample_channel(self, channel: int,
                        now: int) -> Dict[str, Any]:
        medium = self.media.medium(channel)
        return {
            "type": "sample",
            "t_ns": now,
            "channel": channel,
            "utilisation": medium.utilisation(now) if now > 0 else 0.0,
            "busy": 1 if medium.busy else 0,
            "frames_sent": medium.frames_sent,
            "frames_collided": medium.frames_collided,
            "cells": [self._sample_cell(net)
                      for net in self._cells_by_channel[channel]],
        }

    def _sample_cell(self, net) -> Dict[str, Any]:
        down, up = net.server.link.queue_depths()
        live = len(net.flow_manager.live) \
            if net.flow_manager is not None else 0
        record = {
            "cell": net.index,
            "label": self.cfg.cell_label(net.index),
            "ap_queue": net.ap.queue_depth(),
            "wired_down_queue": down,
            "wired_up_queue": up,
            "live_flows": live,
            "hack_buffer": sum(driver.buffered_acks()
                               for driver in net.drivers.values()),
            "rohc_cids": sum(driver.rohc_context_count()
                             for driver in net.drivers.values()),
            "rohc_failures": sum(driver.rohc_failure_count()
                                 for driver in net.drivers.values()),
            # Queue-discipline probes: total MAC backlog, cumulative
            # AQM head drops, and the delivered-sojourn p99 so far.
            "aqm_backlog": sum(driver.mac.total_backlog()
                               for driver in net.drivers.values()),
            "aqm_drops": sum(driver.mac.qdisc_stats.drops
                             for driver in net.drivers.values()),
            "aqm_sojourn_p99_ms": _cell_sojourn_p99(net),
        }
        return record

    def _emit(self, record: Dict[str, Any]) -> None:
        registry = self.registry
        channel = record["channel"]
        registry.gauge(
            f"channel{channel}.utilisation").observe(
            record["utilisation"])
        registry.gauge(
            f"channel{channel}.busy").observe(record["busy"])
        for cell in record["cells"]:
            label = cell["label"]
            for name in _CELL_FIELDS:
                registry.gauge(f"{label}.{name}").observe(cell[name])
            registry.histogram(
                f"{label}.ap_queue").observe(cell["ap_queue"])
        registry.counter("samples").inc()
        self.emitted += 1
        if (self.config.max_samples is None
                or len(self.samples) < self.config.max_samples):
            self.samples.append(record)
        else:
            self.dropped_samples += 1
        if self._stream is not None:
            _dump_line(self._stream, record)

    # -- flattening ----------------------------------------------------
    def meta(self) -> Dict[str, Any]:
        return telemetry_meta(self.cfg, self.config, self.channels,
                              self._cell_indices)

    def summary_record(self) -> Dict[str, Any]:
        """The deterministic summary line (no wall times)."""
        return {
            "type": "summary",
            "sample_interval_ns": self.config.sample_interval_ns,
            "samples": self.emitted,
            "retained_samples": len(self.samples),
            "dropped_samples": self.dropped_samples,
            "metrics": self.registry.as_dict(),
        }

    def block(self) -> Dict[str, Any]:
        """The ``metrics_dict()["telemetry"]`` block: the deterministic
        summary plus the wall-time spans table under ``"spans"`` (the
        one key determinism oracles pop before comparing)."""
        summary = self.summary_record()
        del summary["type"]
        summary["enabled"] = True
        summary["spans"] = (self.instrument.as_dict()
                            if self.instrument is not None else None)
        return summary
