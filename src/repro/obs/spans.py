"""Kernel span instrumentation: where wall-clock goes inside a run.

A :class:`KernelInstrument` installed on a
:class:`~repro.sim.engine.Simulator` (``sim.set_instrument``) times
every event callback with ``perf_counter_ns`` and aggregates by
*callback owner* — ``DcfMac._backoff_expires``, ``WiredPipe._delivered``
— giving a per-subsystem event-type histogram and wall-time table
without touching event semantics (the simulated timeline is read-only
to the instrument, so golden rows stay bit-identical).

When no instrument is installed the simulator runs its original
uninstrumented loop — the disabled mode costs one attribute check per
``run()`` call, not per event, which is what keeps the CI events/s
perf gate honest.

Besides the always-on aggregates, the instrument can retain up to
``max_spans`` individual spans (simulated timestamp, owner, wall ns)
for Chrome-trace export: each becomes a duration event placed at its
simulated instant whose length is the host wall time of the handler —
a timeline of *where the host worked* across *simulated* time.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple


def owner_key(callback: Callable[..., Any]) -> str:
    """Stable aggregation key for a callback: ``Class.method`` for
    bound methods, ``__qualname__`` otherwise (plain functions,
    closures like the scenario builder's ``_start``)."""
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        return f"{type(owner).__name__}.{callback.__name__}"
    return getattr(callback, "__qualname__",
                   getattr(callback, "__name__", repr(callback)))


class KernelInstrument:
    """Per-owner span timing + event-type histogram for one simulator."""

    __slots__ = ("owners", "spans", "max_spans", "dropped_spans",
                 "total_wall_ns", "events")

    def __init__(self, max_spans: int = 0):
        #: owner -> [count, total wall ns, max wall ns]
        self.owners: Dict[str, List[int]] = {}
        #: (sim time ns, wall ns, owner) for the first ``max_spans``
        #: executed events (trace export; 0 = aggregates only).
        self.spans: List[Tuple[int, int, str]] = []
        self.max_spans = max_spans
        self.dropped_spans = 0
        self.total_wall_ns = 0
        self.events = 0

    def record(self, callback: Callable[..., Any], sim_ns: int,
               wall_ns: int) -> None:
        """Called by the instrumented run loop after each event."""
        key = owner_key(callback)
        entry = self.owners.get(key)
        if entry is None:
            self.owners[key] = [1, wall_ns, wall_ns]
        else:
            entry[0] += 1
            entry[1] += wall_ns
            if wall_ns > entry[2]:
                entry[2] = wall_ns
        self.total_wall_ns += wall_ns
        self.events += 1
        if len(self.spans) < self.max_spans:
            self.spans.append((sim_ns, wall_ns, key))
        elif self.max_spans:
            self.dropped_spans += 1

    def owner_table(self) -> List[Dict[str, Any]]:
        """Owners sorted by total wall time, descending."""
        rows = []
        for key, (count, wall_ns, max_ns) in self.owners.items():
            rows.append({
                "owner": key,
                "count": count,
                "wall_ns": wall_ns,
                "max_ns": max_ns,
            })
        rows.sort(key=lambda row: (-row["wall_ns"], row["owner"]))
        return rows

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able spans block (the nondeterministic — wall-time —
        part of the telemetry block; kept under its own key so
        determinism oracles can pop it)."""
        return {
            "events": self.events,
            "total_wall_ns": self.total_wall_ns,
            "recorded_spans": len(self.spans),
            "dropped_spans": self.dropped_spans,
            "owners": self.owner_table(),
        }


def merge_span_blocks(blocks: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-shard ``KernelInstrument.as_dict()`` blocks: counts
    and wall times sum by owner (each shard timed its own kernel)."""
    owners: Dict[str, List[int]] = {}
    merged: Dict[str, Any] = {"events": 0, "total_wall_ns": 0,
                              "recorded_spans": 0, "dropped_spans": 0}
    for block in blocks:
        if not block:
            continue
        for field in ("events", "total_wall_ns", "recorded_spans",
                      "dropped_spans"):
            merged[field] += block.get(field, 0)
        for row in block.get("owners", ()):
            entry = owners.setdefault(row["owner"], [0, 0, 0])
            entry[0] += row["count"]
            entry[1] += row["wall_ns"]
            entry[2] = max(entry[2], row["max_ns"])
    rows = [{"owner": key, "count": count, "wall_ns": wall_ns,
             "max_ns": max_ns}
            for key, (count, wall_ns, max_ns) in owners.items()]
    rows.sort(key=lambda row: (-row["wall_ns"], row["owner"]))
    merged["owners"] = rows
    return merged
