"""Chrome-trace / Perfetto export.

Renders a run's observability products as a trace-event JSON document
(the ``chrome://tracing`` / https://ui.perfetto.dev "JSON Array
Format", wrapped in ``{"traceEvents": [...]}``):

* **frames** — every :class:`~repro.stats.trace.TraceRecord` becomes a
  duration (``"X"``) event on a ``channel<k>`` process, one thread per
  transmitting station; ``ts``/``dur`` are simulated microseconds, so
  the timeline *is* the medium schedule (A-MPDU bursts, Block ACK
  turnarounds, collisions flagged in args).
* **kernel spans** — each retained
  :class:`~repro.obs.spans.KernelInstrument` span becomes an ``"X"``
  event on the ``kernel`` process, one thread per callback owner,
  placed at its *simulated* instant with its *host wall* handler time
  as the duration: a map of where the host worked across simulated
  time.
* **samples** — sampler records become counter (``"C"``) tracks:
  per-channel utilisation and per-cell queue/flow/buffer depths.

Everything is plain ``json.dump``-able; load the file directly in
Perfetto or ``chrome://tracing``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

_US = 1000  # ns per trace-event microsecond tick


def _frame_events(records: Iterable[Any]) -> List[Dict[str, Any]]:
    events = []
    for record in records:
        channel = getattr(record, "channel", 0)
        events.append({
            "name": record.frame_type,
            "cat": "frame",
            "ph": "X",
            "ts": record.start_ns / _US,
            "dur": record.duration_ns / _US,
            "pid": f"channel{channel}",
            "tid": str(record.src),
            "args": {
                "dst": record.dst,
                "bytes": record.byte_length,
                "mpdus": record.mpdu_count,
                "collided": record.collided,
                "hack_payload_bytes": record.hack_payload_bytes,
                "more_data": record.more_data,
            },
        })
    return events


def _span_events(spans: Iterable[Any]) -> List[Dict[str, Any]]:
    events = []
    for sim_ns, wall_ns, owner in spans:
        events.append({
            "name": owner,
            "cat": "kernel",
            "ph": "X",
            "ts": sim_ns / _US,
            "dur": wall_ns / _US,
            "pid": "kernel",
            "tid": owner,
            "args": {"wall_ns": wall_ns},
        })
    return events


def _counter_events(samples: Iterable[Dict[str, Any]]
                    ) -> List[Dict[str, Any]]:
    events = []
    for sample in samples:
        pid = f"channel{sample['channel']}"
        ts = sample["t_ns"] / _US
        events.append({
            "name": "utilisation",
            "cat": "telemetry",
            "ph": "C",
            "ts": ts,
            "pid": pid,
            "tid": "telemetry",
            "args": {"utilisation": sample["utilisation"]},
        })
        for cell in sample["cells"]:
            events.append({
                "name": f"{cell['label']} queues",
                "cat": "telemetry",
                "ph": "C",
                "ts": ts,
                "pid": pid,
                "tid": "telemetry",
                "args": {
                    "ap_queue": cell["ap_queue"],
                    "wired_down": cell["wired_down_queue"],
                    "wired_up": cell["wired_up_queue"],
                    "live_flows": cell["live_flows"],
                    "hack_buffer": cell["hack_buffer"],
                },
            })
    return events


def chrome_trace(frames: Iterable[Any] = (),
                 spans: Iterable[Any] = (),
                 samples: Iterable[Dict[str, Any]] = (),
                 meta: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
    """Build the trace-event document (plain dict, ready to dump)."""
    events: List[Dict[str, Any]] = []
    events.extend(_frame_events(frames))
    events.extend(_span_events(spans))
    events.extend(_counter_events(samples))
    document: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if meta:
        document["otherData"] = dict(meta)
    return document


def write_chrome_trace(path: str, document: Dict[str, Any]) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle)
