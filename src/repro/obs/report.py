"""``repro report``: summarize a telemetry JSONL artifact.

Reads the artifact produced by ``repro simulate --telemetry PATH`` (or
a ``repro sweep --telemetry-dir`` per-point file) and prints the run's
top kernel time consumers and queue/airtime highlights — the 30-second
"where did this run spend its time, and where did it queue" view,
without loading anything into a trace viewer.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional


class TelemetryArtifactError(ValueError):
    """The file is not a repro-telemetry JSONL artifact."""


def load_telemetry(path: str) -> Dict[str, Any]:
    """Parse a telemetry JSONL artifact into its typed parts.

    Returns ``{"meta", "samples", "summary", "spans"}`` (summary and
    spans may be None for an artifact truncated mid-run — the streamed
    samples are still readable, which is the point of JSONL).
    """
    meta: Optional[Dict[str, Any]] = None
    samples: List[Dict[str, Any]] = []
    summary: Optional[Dict[str, Any]] = None
    spans: Optional[Dict[str, Any]] = None
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TelemetryArtifactError(
                    f"{path}:{line_no}: not JSON ({error})") from error
            kind = record.get("type")
            if kind == "meta":
                meta = record
            elif kind == "sample":
                samples.append(record)
            elif kind == "summary":
                summary = record
            elif kind == "spans":
                spans = record
            else:
                raise TelemetryArtifactError(
                    f"{path}:{line_no}: unknown record type {kind!r}")
    if meta is None:
        raise TelemetryArtifactError(
            f"{path}: missing meta record (not a telemetry artifact?)")
    if meta.get("format") != "repro-telemetry":
        raise TelemetryArtifactError(
            f"{path}: format {meta.get('format')!r} is not "
            f"'repro-telemetry'")
    return {"meta": meta, "samples": samples, "summary": summary,
            "spans": spans}


def _gauge_highlights(summary: Dict[str, Any],
                      suffix: str) -> List[tuple]:
    """(name, gauge) pairs for one metric family, max-first."""
    gauges = summary.get("metrics", {}).get("gauges", {})
    rows = [(name, value) for name, value in gauges.items()
            if name.endswith(suffix)]
    rows.sort(key=lambda pair: (-(pair[1]["max"] or 0), pair[0]))
    return rows


def format_report(artifact: Dict[str, Any], top: int = 10) -> str:
    """Human-readable report for one parsed artifact."""
    meta = artifact["meta"]
    summary = artifact["summary"]
    spans = artifact["spans"]
    lines: List[str] = []
    duration_ms = meta["duration_ns"] / 1e6
    lines.append(
        f"telemetry report: {len(meta['cells'])} cell(s) on "
        f"{len(meta['channels'])} channel(s), seed {meta['seed']}, "
        f"{duration_ms:.0f} ms simulated, sample interval "
        f"{meta['sample_interval_ns'] / 1e6:.1f} ms")
    lines.append(f"  traffic {meta['traffic']}, "
                 f"policy {meta['policy']}, "
                 f"{len(artifact['samples'])} sample records")
    adversary = meta.get("adversary")
    if adversary is not None:
        lines.append(
            f"  adversary {adversary['kind']} "
            f"@ intensity {adversary['intensity']:g} "
            f"(jam {adversary['jam_mode']}, "
            f"mutate {adversary['mutate_mode']})")

    if spans and spans.get("owners"):
        total = spans["total_wall_ns"] or 1
        lines.append("")
        lines.append(f"top kernel time consumers "
                     f"({spans['events']} events, "
                     f"{total / 1e6:.1f} ms host wall):")
        for row in spans["owners"][:top]:
            share = row["wall_ns"] / total
            mean_us = row["wall_ns"] / row["count"] / 1e3
            lines.append(
                f"  {row['owner']:<40} {share:>6.1%}  "
                f"{row['count']:>9} events  "
                f"{mean_us:>7.2f} us/event")

    if summary is not None:
        util = _gauge_highlights(summary, ".utilisation")
        if util:
            lines.append("")
            lines.append("airtime (medium utilisation at sample "
                         "instants):")
            for name, gauge in util:
                channel = name.split(".")[0]
                lines.append(
                    f"  {channel:<10} mean {gauge['mean']:>7.2%}  "
                    f"max {gauge['max']:>7.2%}")
        queues = _gauge_highlights(summary, ".ap_queue")
        if queues:
            lines.append("")
            lines.append(f"queue highlights (AP MAC backlog, "
                         f"top {top}):")
            for name, gauge in queues[:top]:
                cell = name.split(".")[0]
                lines.append(
                    f"  {cell:<10} mean {gauge['mean']:>7.1f}  "
                    f"max {gauge['max']:>5.0f} packets")
        busiest: List[tuple] = []
        for suffix, label in ((".live_flows", "live flows"),
                              (".hack_buffer", "HACK buffer"),
                              (".rohc_cids", "ROHC CIDs")):
            rows = _gauge_highlights(summary, suffix)
            if rows:
                name, gauge = rows[0]
                busiest.append((label, name.split(".")[0], gauge))
        if busiest:
            lines.append("")
            lines.append("peaks:")
            for label, cell, gauge in busiest:
                lines.append(f"  {label:<12} peak {gauge['max']:>5.0f} "
                             f"({cell}, mean {gauge['mean']:.1f})")
        corrupt = [(name, gauge) for name, gauge
                   in _gauge_highlights(summary, ".rohc_failures")
                   if (gauge["max"] or 0) > 0]
        if corrupt:
            lines.append("")
            lines.append("ROHC corruption (cumulative failure counter "
                         "at sample instants):")
            for name, gauge in corrupt[:top]:
                cell = name.split(".")[0]
                lines.append(
                    f"  {cell:<10} final {gauge['last']:>6.0f}  "
                    f"peak {gauge['max']:>6.0f}")
    else:
        lines.append("")
        lines.append("(no summary record: artifact was truncated "
                     "mid-run; sample lines above are still complete)")
    return "\n".join(lines)


def print_report(path: str, top: int = 10) -> int:
    """CLI entry: load, format, print.  Returns an exit code."""
    artifact = load_telemetry(path)
    print(format_report(artifact, top=top))
    return 0
