"""TCP receiver with delayed ACKs.

Generates one ACK for every second in-order segment (plus a fallback
delayed-ACK timer), immediate duplicate ACKs for out-of-order arrivals,
and an immediate ACK when a hole fills — the RFC 5681 behaviours whose
ACK stream HACK compresses.

The receiver tolerates reordering (the simulator's MAC delivers MPDUs
as they decode; see DESIGN.md) via a standard out-of-order queue, and
can optionally generate SACK blocks so the ROHC encoder's SACK support
is exercised end-to-end.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.units import MS
from .segment import FiveTuple, TcpSegment


class TcpReceiver:
    """One direction of a TCP connection (the data sink)."""

    def __init__(self, sim: Simulator, flow_id: int, src: str, dst: str,
                 output: Callable[[TcpSegment], None],
                 rwnd_bytes: int = 4 * 1024 * 1024,
                 delayed_ack: bool = True,
                 delack_timeout_ns: int = 100 * MS,
                 generate_sack: bool = False,
                 five_tuple: Optional[FiveTuple] = None,
                 on_deliver: Optional[Callable[[int], None]] = None):
        self.sim = sim
        self.flow_id = flow_id
        self.src = src          # this endpoint (the ACK source)
        self.dst = dst          # the data sender
        self.output = output
        self.rwnd_bytes = rwnd_bytes
        self.delayed_ack = delayed_ack
        self.delack_timeout_ns = delack_timeout_ns
        self.generate_sack = generate_sack
        self.five_tuple = five_tuple or FiveTuple(src, dst, 80, 5001)
        self.on_deliver = on_deliver

        self.rcv_nxt = 0
        self._ooo: Dict[int, int] = {}     # seq -> length
        self._pending_ack_segments = 0
        self._delack_event = None
        self._last_ts_val = 0

        # Counters.
        self.bytes_delivered = 0
        self.acks_sent = 0
        self.dup_acks_sent = 0
        self.segments_received = 0
        self.duplicates_received = 0

    # ------------------------------------------------------------------
    def on_segment(self, segment: TcpSegment) -> None:
        """Process an arriving data segment."""
        self.segments_received += 1
        if segment.end_seq <= self.rcv_nxt:
            # Entirely old: duplicate — re-ACK immediately.
            self.duplicates_received += 1
            self._send_ack(immediate=True)
            return
        self._last_ts_val = segment.ts_val
        if segment.seq > self.rcv_nxt:
            # Out of order: queue the hole-side data, dup-ACK now.
            self._ooo[segment.seq] = max(
                self._ooo.get(segment.seq, 0), segment.payload_bytes)
            self.dup_acks_sent += 1
            self._send_ack(immediate=True)
            return
        # In order (possibly partially old): advance.
        had_hole = bool(self._ooo)
        advanced = segment.end_seq - self.rcv_nxt
        self.rcv_nxt = segment.end_seq
        self._drain_ooo()
        self._deliver(advanced)
        if had_hole:
            # Filling (part of) a hole: ACK immediately so the sender's
            # fast recovery sees the partial/full ACK without delay.
            self._send_ack(immediate=True)
            return
        self._pending_ack_segments += 1
        if not self.delayed_ack or self._pending_ack_segments >= 2:
            self._send_ack(immediate=True)
        else:
            self._arm_delack()

    def _drain_ooo(self) -> None:
        moved = 0
        while self.rcv_nxt in self._ooo:
            length = self._ooo.pop(self.rcv_nxt)
            self.rcv_nxt += length
            moved += length
        if moved:
            self._deliver(moved)
        # Discard any queued segments now wholly below rcv_nxt.
        stale = [s for s in self._ooo if s + self._ooo[s] <= self.rcv_nxt]
        for s in stale:
            del self._ooo[s]

    def _deliver(self, nbytes: int) -> None:
        if nbytes <= 0:
            return
        self.bytes_delivered += nbytes
        if self.on_deliver is not None:
            self.on_deliver(nbytes)

    # ------------------------------------------------------------------
    # ACK generation
    # ------------------------------------------------------------------
    def _sack_blocks(self) -> Tuple[Tuple[int, int], ...]:
        if not self.generate_sack or not self._ooo:
            return ()
        blocks: List[Tuple[int, int]] = []
        for seq in sorted(self._ooo):
            end = seq + self._ooo[seq]
            if blocks and seq <= blocks[-1][1]:
                blocks[-1] = (blocks[-1][0], max(blocks[-1][1], end))
            else:
                blocks.append((seq, end))
        return tuple(blocks[:3])

    def _send_ack(self, immediate: bool = False) -> None:
        self._pending_ack_segments = 0
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None
        ack = TcpSegment(
            flow_id=self.flow_id, src=self.src, dst=self.dst,
            seq=0, payload_bytes=0, ack=self.rcv_nxt,
            rwnd=self.rwnd_bytes,
            ts_val=self.sim.now // MS, ts_ecr=self._last_ts_val,
            sack_blocks=self._sack_blocks(),
            five_tuple=self.five_tuple)
        self.acks_sent += 1
        self.output(ack)

    def close(self) -> None:
        """Tear down: cancel the delayed-ACK timer (flow reclaim)."""
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None
        self._pending_ack_segments = 0

    def _arm_delack(self) -> None:
        if self._delack_event is None:
            self._delack_event = self.sim.schedule(
                self.delack_timeout_ns, self._delack_fires)

    def _delack_fires(self) -> None:
        self._delack_event = None
        if self._pending_ack_segments > 0:
            self._send_ack()
