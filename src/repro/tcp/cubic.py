"""CUBIC congestion avoidance (RFC 8312), as a pluggable window law.

``TcpSender`` keeps its NewReno loss-recovery machinery (fast
retransmit, NewReno/SACK recovery, RTO) regardless of the ``cc``
option; CUBIC only replaces the *congestion-avoidance growth* and the
*multiplicative-decrease* factor.  That mirrors how Linux layers CUBIC
over the common recovery core, and it keeps the reno-default event
sequence untouched.

All arithmetic is plain float over deterministic inputs (simulated
time, byte counters), so runs remain bit-reproducible.
"""

from __future__ import annotations

from typing import Optional


class CubicState:
    """Per-connection CUBIC state.

    Window bookkeeping is done in *segments* (floats) as in the RFC;
    the sender's cwnd stays in bytes, so each hook converts at the
    boundary.
    """

    C = 0.4          # cubic scaling constant (RFC 8312 §5.1)
    BETA = 0.7       # multiplicative decrease factor

    def __init__(self) -> None:
        self.w_max = 0.0                  # window before last reduction
        self.epoch_start_ns: Optional[int] = None
        self.k = 0.0                      # time to regain w_max (s)
        self.origin_seg = 0.0             # plateau of the cubic curve
        self.w_est_seg = 0.0              # TCP-friendly estimate

    # ------------------------------------------------------------------
    def on_congestion_event(self, cwnd_bytes: int, mss: int) -> int:
        """Multiplicative decrease on loss (fast retransmit or RTO).

        Updates W_max with fast convergence and resets the epoch.
        Returns the new ssthresh in bytes.
        """
        cwnd_seg = cwnd_bytes / mss
        if cwnd_seg < self.w_max:
            # Fast convergence: give up bandwidth early so newer flows
            # converge faster (RFC 8312 §4.6).
            self.w_max = cwnd_seg * (2.0 - self.BETA) / 2.0
        else:
            self.w_max = cwnd_seg
        self.epoch_start_ns = None
        return max(int(cwnd_bytes * self.BETA), 2 * mss)

    # ------------------------------------------------------------------
    def cwnd_increment(self, now_ns: int, cwnd_bytes: int,
                       newly_acked: int, srtt_ns: int, mss: int) -> int:
        """Bytes to add to cwnd for this ACK during congestion
        avoidance.

        Implements W_cubic(t + RTT) as the per-ACK target, with the
        TCP-friendly region (W_est) as a floor.  The per-ACK increment
        is (target - cwnd)/cwnd scaled by the acked bytes, capped at
        one MSS so growth stays ACK-clocked.
        """
        cwnd_seg = cwnd_bytes / mss
        if self.epoch_start_ns is None:
            self.epoch_start_ns = now_ns
            if self.w_max > cwnd_seg:
                self.origin_seg = self.w_max
                self.k = ((self.w_max - cwnd_seg) / self.C) ** (1.0 / 3.0)
            else:
                self.origin_seg = cwnd_seg
                self.k = 0.0
            self.w_est_seg = cwnd_seg

        t = (now_ns - self.epoch_start_ns + srtt_ns) / 1e9
        w_cubic = self.origin_seg + self.C * (t - self.k) ** 3

        # TCP-friendly region: emulate Reno's per-ACK growth rate
        # 3(1-β)/(1+β) segments per cwnd of acked data (RFC 8312 §4.2).
        self.w_est_seg += (3.0 * (1.0 - self.BETA) / (1.0 + self.BETA)
                           * newly_acked / cwnd_bytes)
        target = max(w_cubic, self.w_est_seg)
        if target <= cwnd_seg:
            return 0
        inc_seg = (target - cwnd_seg) / cwnd_seg * (newly_acked / mss)
        return max(0, min(int(inc_seg * mss), mss))
