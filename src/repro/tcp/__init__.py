"""Packet-level TCP: segments, NewReno sender, delayed-ACK receiver."""

from .flow import FlowStats, TcpFlow
from .receiver import TcpReceiver
from .segment import FiveTuple, TcpSegment, UdpDatagram
from .sender import TcpSender

__all__ = ["TcpSegment", "UdpDatagram", "FiveTuple", "TcpSender",
           "TcpReceiver", "TcpFlow", "FlowStats"]
