"""Flow bookkeeping: pairs a sender and receiver and records goodput.

Goodput is measured the way the paper does for Fig 10: over a
steady-state window (after warm-up, so slow-start transients and
staggered starts don't pollute the average).  :class:`FlowStats`
snapshots cumulative in-order delivered bytes at arbitrary times, and
experiments difference two snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..sim.units import throughput_mbps
from .receiver import TcpReceiver
from .sender import TcpSender


@dataclass
class FlowStats:
    """Time-stamped snapshots of a flow's delivered bytes."""

    snapshots: List[Tuple[int, int]] = field(default_factory=list)

    def record(self, now: int, bytes_delivered: int) -> None:
        self.snapshots.append((now, bytes_delivered))

    def goodput_mbps(self, t_start: Optional[int] = None,
                     t_end: Optional[int] = None) -> float:
        """Goodput between two snapshot times (nearest snapshots used)."""
        if len(self.snapshots) < 2:
            return 0.0
        first = self._nearest(t_start) if t_start is not None \
            else self.snapshots[0]
        last = self._nearest(t_end) if t_end is not None \
            else self.snapshots[-1]
        duration = last[0] - first[0]
        return throughput_mbps(last[1] - first[1], duration)

    def _nearest(self, t: int) -> Tuple[int, int]:
        return min(self.snapshots, key=lambda snap: abs(snap[0] - t))


class TcpFlow:
    """A unidirectional TCP transfer between two nodes."""

    def __init__(self, flow_id: int, sender: TcpSender,
                 receiver: TcpReceiver):
        self.flow_id = flow_id
        self.sender = sender
        self.receiver = receiver
        self.stats = FlowStats()
        self.started_at: Optional[int] = None
        self.completed_at: Optional[int] = None

    def snapshot(self, now: int) -> None:
        self.stats.record(now, self.receiver.bytes_delivered)

    @property
    def bytes_delivered(self) -> int:
        return self.receiver.bytes_delivered

    def completion_time_ns(self) -> Optional[int]:
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at


def wire_flow(sim, flow_id: int, five_tuple, direction: str,
              server, client, client_name: str, *,
              total_bytes: Optional[int],
              mss: int, initial_cwnd_segments: int,
              initial_ssthresh_bytes: int, delayed_ack: bool,
              generate_sack: bool, sack_recovery: bool,
              cc: str = "reno", pacing: bool = False) -> TcpFlow:
    """Build one flow's sender/receiver pair and attach the endpoints.

    The single wiring used by both the static scenario builder and the
    runtime :class:`~repro.traffic.manager.FlowManager`, so a TCP knob
    added to one traffic path can never silently diverge from the
    other.  ``five_tuple`` is the data direction's tuple; the ACK
    stream gets its reverse.  ``server``/``client`` are duck-typed
    endpoint hosts (``.name``, ``.send``/``.transmit``,
    ``add_sender``/``add_receiver``).
    """
    if direction == "download":
        sender = TcpSender(
            sim, flow_id, server.name, client_name,
            output=server.send, total_bytes=total_bytes, mss=mss,
            initial_cwnd_segments=initial_cwnd_segments,
            initial_ssthresh_bytes=initial_ssthresh_bytes,
            use_sack=sack_recovery, cc=cc, pacing=pacing,
            five_tuple=five_tuple)
        server.add_sender(sender)
        receiver = TcpReceiver(
            sim, flow_id, client_name, server.name,
            output=client.transmit, delayed_ack=delayed_ack,
            generate_sack=generate_sack or sack_recovery,
            five_tuple=five_tuple.reversed())
        client.add_receiver(receiver)
    elif direction == "upload":
        sender = TcpSender(
            sim, flow_id, client_name, server.name,
            output=client.transmit, total_bytes=total_bytes, mss=mss,
            initial_cwnd_segments=initial_cwnd_segments,
            initial_ssthresh_bytes=initial_ssthresh_bytes,
            use_sack=sack_recovery, cc=cc, pacing=pacing,
            five_tuple=five_tuple)
        client.add_sender(sender)
        receiver = TcpReceiver(
            sim, flow_id, server.name, client_name,
            output=server.send, delayed_ack=delayed_ack,
            generate_sack=generate_sack or sack_recovery,
            five_tuple=five_tuple.reversed())
        server.add_receiver(receiver)
    else:
        raise ValueError(f"unknown direction {direction!r}")
    return TcpFlow(flow_id, sender, receiver)
